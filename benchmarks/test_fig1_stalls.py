"""Benchmark: regenerate Fig. 1 (stall breakdown of TL / LRR / GTO)."""

import pytest

from repro.harness.experiments import fig1_stall_breakdown

from .conftest import fresh_setup, once

pytestmark = [pytest.mark.bench, pytest.mark.slow]


def test_fig1_stall_breakdown(benchmark):
    result = once(benchmark, lambda: fig1_stall_breakdown(fresh_setup()))
    assert len(result.breakdown) == 15  # one bar group per application
    for sched in ("tl", "lrr", "gto"):
        benchmark.extra_info[f"mean_idle_share_{sched}"] = (
            result.mean_idle_share(sched)
        )
    # Every stall class appears somewhere across the suite.
    kinds_seen = set()
    for per_sched in result.breakdown.values():
        for b in per_sched.values():
            kinds_seen |= {k for k, v in b.items() if v > 0}
    assert kinds_seen == {"idle", "scoreboard", "pipeline"}
    assert "Fig. 1" in result.render()
