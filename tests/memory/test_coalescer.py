"""Unit tests for the reference coalescer."""

import pytest

from repro.memory.coalescer import coalesce_addresses


class TestCoalescing:
    def test_empty_input(self):
        assert coalesce_addresses([]) == []

    def test_single_address(self):
        assert coalesce_addresses([5]) == [0]

    def test_same_line_collapses(self):
        assert coalesce_addresses([0, 4, 8, 127]) == [0]

    def test_two_lines(self):
        assert coalesce_addresses([0, 128]) == [0, 128]

    def test_fully_coalesced_warp(self):
        # 32 lanes x 4 bytes = exactly one 128B transaction
        addrs = [i * 4 for i in range(32)]
        assert coalesce_addresses(addrs) == [0]

    def test_strided_warp(self):
        # 32 lanes x 16B stride = 4 transactions
        addrs = [i * 16 for i in range(32)]
        assert coalesce_addresses(addrs) == [0, 128, 256, 384]

    def test_first_touch_order_preserved(self):
        assert coalesce_addresses([300, 0, 200]) == [256, 0, 128]

    def test_custom_line_size(self):
        assert coalesce_addresses([0, 40, 70], line_size=64) == [0, 64]

    def test_scattered_worst_case(self):
        addrs = [i * 128 for i in range(32)]
        assert len(coalesce_addresses(addrs)) == 32

    def test_negative_address_rejected(self):
        with pytest.raises(ValueError):
            coalesce_addresses([-1])

    def test_bad_line_size_rejected(self):
        with pytest.raises(ValueError):
            coalesce_addresses([0], line_size=100)
        with pytest.raises(ValueError):
            coalesce_addresses([0], line_size=0)
