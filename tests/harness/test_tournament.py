"""Unit tests for the scheduler tournament aggregator."""

import json

import pytest

from repro.config import GPUConfig
from repro.harness.runner import ExperimentSetup, ResultCache
from repro.harness.tournament import (
    REFERENCE,
    TOURNAMENT_SCHEDULERS,
    TournamentResult,
    run_tournament,
)


def small_setup():
    return ExperimentSetup(config=GPUConfig.scaled(1), scale=0.05,
                           cache=ResultCache())


class TestRunTournament:
    def test_field_is_the_six_first_class_schedulers(self):
        assert TOURNAMENT_SCHEDULERS == ("lrr", "gto", "tl", "pro",
                                         "rlws", "wasp")
        assert REFERENCE in TOURNAMENT_SCHEDULERS

    def test_reference_must_be_in_the_field(self):
        with pytest.raises(ValueError, match=REFERENCE):
            run_tournament(small_setup(), kernels=("cenergy",),
                           schedulers=("gto", "pro"))

    def test_small_field_aggregates_and_ranks(self):
        result = run_tournament(
            small_setup(), kernels=("cenergy", "scalarProdGPU"),
            schedulers=("lrr", "pro"),
        )
        assert result.geomeans["lrr"] == pytest.approx(1.0)
        ranked = result.ranking()
        assert [s for s, _ in ranked] == sorted(
            ("lrr", "pro"), key=lambda s: -result.geomeans[s]
        )
        assert result.winner() == ranked[0][0]
        for s in ("lrr", "pro"):
            shares = result.stalls[s]
            assert set(shares) == {"pipeline", "idle", "scoreboard"}
            assert all(0.0 <= v <= 1.0 for v in shares.values())

    def test_json_round_trip_and_markdown(self):
        result = run_tournament(small_setup(), kernels=("cenergy",),
                                schedulers=("lrr", "gto"))
        data = json.loads(json.dumps(result.to_json()))
        again = TournamentResult.from_json(data)
        assert again.to_json() == result.to_json()
        md = again.render_markdown()
        assert md.startswith("### Scheduler tournament")
        assert "| `lrr` |" in md and "cenergy" in md
