"""Unit tests for warp state and launch-time resolution."""


from repro.isa.builder import ProgramBuilder
from repro.isa.patterns import Coalesced
from repro.simt.threadblock import ThreadBlock


def make_tb(prog, tb_index=0, num_scheds=2):
    tb = ThreadBlock(tb_index, prog)
    tb.materialize(sm_id=0, launch_seq=0, num_schedulers=num_scheds)
    return tb


def looped_program(trips=3, threads=64):
    b = ProgramBuilder("w", threads_per_tb=threads)
    with b.loop(times=trips):
        b.ialu(1)
    return b.build()


class TestLaunchResolution:
    def test_warp_count(self):
        tb = make_tb(looped_program(threads=96))
        assert tb.n_warps == 3
        assert len(tb.warps) == 3

    def test_partial_last_warp(self):
        tb = make_tb(looped_program(threads=40))
        assert tb.warps[0].n_threads == 32
        assert tb.warps[1].n_threads == 8

    def test_scheduler_partition(self):
        tb = make_tb(looped_program(threads=128), num_scheds=2)
        assert [w.sched_id for w in tb.warps] == [0, 1, 0, 1]

    def test_progress_starts_zero(self):
        tb = make_tb(looped_program())
        assert all(w.progress == 0 for w in tb.warps)
        assert tb.progress == 0

    def test_global_id_unique(self):
        a = make_tb(looped_program(), tb_index=0)
        b = make_tb(looped_program(), tb_index=1)
        ids = [w.global_id for w in a.warps + b.warps]
        assert len(set(ids)) == len(ids)


class TestBranchTake:
    def test_trips_consumed(self):
        prog = looped_program(trips=3)
        tb = make_tb(prog)
        w = tb.warps[0]
        bra_pc = next(i.pc for i in prog if i.op.value == "bra")
        # 3 loop passes = branch taken twice then fall through
        assert w.branch_take(bra_pc) is True
        assert w.branch_take(bra_pc) is True
        assert w.branch_take(bra_pc) is False

    def test_rearm_after_exhaustion(self):
        prog = looped_program(trips=2)
        w = make_tb(prog).warps[0]
        bra_pc = next(i.pc for i in prog if i.op.value == "bra")
        assert w.branch_take(bra_pc) is True
        assert w.branch_take(bra_pc) is False
        # re-armed (nested-loop semantics)
        assert w.branch_take(bra_pc) is True

    def test_per_warp_divergent_trips(self):
        b = ProgramBuilder("w", threads_per_tb=128)
        with b.loop(times=lambda tb, w: 1 + w):
            b.ialu(1)
        prog = b.build()
        tb = make_tb(prog)
        bra_pc = next(i.pc for i in prog if i.op.value == "bra")
        # warp 0: 1 pass -> never taken; warp 3: 4 passes -> taken 3x
        assert tb.warps[0].branch_take(bra_pc) is False
        takes = sum(tb.warps[3].branch_take(bra_pc) for _ in range(3))
        assert takes == 3


class TestActiveThreads:
    def test_default_full(self):
        w = make_tb(looped_program()).warps[0]
        assert w.active_threads(0) == 32

    def test_partial_warp_caps_active(self):
        tb = make_tb(looped_program(threads=40))
        assert tb.warps[1].active_threads(0) == 8

    def test_divergent_active(self):
        b = ProgramBuilder("w", threads_per_tb=64)
        b.ialu(1, active=lambda tb, w: 4 + w)
        prog = b.build()
        tb = make_tb(prog)
        assert tb.warps[0].active_threads(0) == 4
        assert tb.warps[1].active_threads(0) == 5


class TestMemIteration:
    def test_counts_up(self):
        b = ProgramBuilder("w", threads_per_tb=32)
        b.load_global(1, pattern=Coalesced())
        prog = b.build()
        w = make_tb(prog).warps[0]
        assert w.next_mem_iteration(0) == 0
        assert w.next_mem_iteration(0) == 1
        assert w.next_mem_iteration(0) == 2

    def test_independent_pcs(self):
        b = ProgramBuilder("w", threads_per_tb=32)
        b.load_global(1, pattern=Coalesced())
        b.load_global(2, pattern=Coalesced(base=1 << 20))
        prog = b.build()
        w = make_tb(prog).warps[0]
        w.next_mem_iteration(0)
        assert w.next_mem_iteration(1) == 0


class TestSchedulable:
    def test_fresh_warp_schedulable(self):
        w = make_tb(looped_program()).warps[0]
        assert w.schedulable

    def test_barrier_blocks(self):
        w = make_tb(looped_program()).warps[0]
        w.at_barrier = True
        assert not w.schedulable

    def test_finished_blocks(self):
        w = make_tb(looped_program()).warps[0]
        w.finished = True
        assert not w.schedulable


class TestTbCounters:
    def test_all_finished(self):
        tb = make_tb(looped_program(threads=64))
        assert not tb.all_finished
        tb.n_finished = tb.n_warps
        assert tb.all_finished

    def test_all_at_barrier_includes_finished(self):
        tb = make_tb(looped_program(threads=96))
        tb.n_finished = 1
        tb.n_at_barrier = 2
        assert tb.all_at_barrier

    def test_warps_for_scheduler(self):
        tb = make_tb(looped_program(threads=128))
        assert len(tb.warps_for_scheduler(0)) == 2
        assert all(w.sched_id == 0 for w in tb.warps_for_scheduler(0))
