"""MemorySubsystem — wires per-SM L1s + MSHRs to the shared L2 and DRAM.

One instance is shared by all SMs of a GPU. The entry point is
:meth:`MemorySubsystem.access`: given the coalesced line addresses of one
warp memory instruction, it walks each line through L1 -> MSHR -> L2 bank ->
DRAM, updates all stateful components, and returns when the *last* line's
data arrives (loads) — the cycle at which the warp's destination register
becomes ready.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence

from ..config import GPUConfig
from .cache import Cache, CacheStats
from .dram import Dram
from .mshr import Mshr


@dataclass(frozen=True)
class AccessResult:
    """Outcome of one warp memory instruction."""

    #: Cycle at which all requested lines are available (register release).
    completion: int
    #: Number of line transactions issued (LSU occupancy driver).
    transactions: int
    #: How many of the transactions hit in L1.
    l1_hits: int


class MemorySubsystem:
    """Shared memory hierarchy for one GPU instance."""

    __slots__ = ("cfg", "l1", "mshr", "l2_banks", "_l2_port_free",
                 "l2_port_cycles", "l2_tag_cycles", "dram",
                 "_l2_bank_count", "_line_shift", "bus")

    def __init__(self, cfg: GPUConfig) -> None:
        self.cfg = cfg
        #: Optional repro.obs.ProbeBus, attached by the GPU per run.
        self.bus = None
        mem = cfg.memory
        self.l1: List[Cache] = [
            Cache(
                mem.l1_size,
                mem.l1_ways,
                mem.line_size,
                write_allocate=False,
                name=f"L1[{i}]",
            )
            for i in range(cfg.num_sms)
        ]
        self.mshr: List[Mshr] = [
            Mshr(mem.mshr_entries, mem.mshr_merge) for _ in range(cfg.num_sms)
        ]
        bank_size = mem.l2_size // mem.l2_banks
        self.l2_banks: List[Cache] = [
            Cache(
                bank_size,
                mem.l2_ways,
                mem.line_size,
                write_allocate=True,
                name=f"L2[{b}]",
            )
            for b in range(mem.l2_banks)
        ]
        self._l2_port_free = [0] * mem.l2_banks
        #: Cycles one L2 bank port is busy per access (queueing source).
        self.l2_port_cycles = 2
        #: Tag-lookup time charged before a miss departs for DRAM — much
        #: shorter than the full hit latency (data array read + return).
        self.l2_tag_cycles = 24
        self.dram = Dram(mem, cfg.latency)
        self._l2_bank_count = mem.l2_banks
        self._line_shift = mem.line_size.bit_length() - 1

    # ------------------------------------------------------------------
    def access(
        self,
        sm_id: int,
        lines: Sequence[int],
        cycle: int,
        *,
        is_write: bool = False,
    ) -> AccessResult:
        """Process one warp memory instruction's line transactions.

        Loads: returns the completion cycle of the slowest line.
        Stores: write-through; the returned completion is when the last
        write drains (callers ignore it — stores have no destination — but
        the bandwidth consumed delays later loads).
        """
        lat = self.cfg.latency
        l1 = self.l1[sm_id]
        mshr = self.mshr[sm_id]
        bus = self.bus
        worst = cycle
        l1_hits = 0
        for line in lines:
            if not is_write:
                # The MSHR is checked alongside the L1 tags: a line whose
                # fill is still in flight cannot be hit early — the access
                # merges and completes with the original miss.
                merged = mshr.lookup(line, cycle)
                if merged is not None:
                    if bus is not None:
                        bus.mshr_merge(sm_id, line, cycle)
                    if merged > worst:
                        worst = merged
                    continue
            hit = l1.access(line, is_write)
            if bus is not None:
                bus.l1_access(sm_id, line, hit, is_write, cycle)
            if hit:
                # L1 hit: fixed load-to-use latency. (Write hits also update
                # the line and then write through below.)
                done = cycle + lat.l1_hit
                l1_hits += 1
                if not is_write:
                    if done > worst:
                        worst = done
                    continue
            elif not is_write:
                # Read miss: reserve an MSHR entry (back-pressure if full)
                # and fetch through L2/DRAM.
                start = mshr.earliest_start(cycle)
                done = self._l2_access(line, start + lat.noc, False) + lat.noc
                mshr.allocate(line, done)
                if done > worst:
                    worst = done
                continue
            # Writes (hit or miss) go through to L2/DRAM.
            done = self._l2_access(line, cycle + lat.noc, True) + lat.noc
            if done > worst:
                worst = done
        return AccessResult(completion=worst, transactions=len(lines), l1_hits=l1_hits)

    # ------------------------------------------------------------------
    def _l2_access(self, line: int, arrive: int, is_write: bool) -> int:
        """One line through the L2 bank (and DRAM on miss); returns done cycle."""
        lat = self.cfg.latency
        bank_idx = (line >> self._line_shift) % self._l2_bank_count
        port_free = self._l2_port_free[bank_idx]
        start = arrive if arrive > port_free else port_free
        self._l2_port_free[bank_idx] = start + self.l2_port_cycles
        hit = self.l2_banks[bank_idx].access(line, is_write)
        if self.bus is not None:
            self.bus.l2_access(bank_idx, line, hit, is_write, start)
        if hit:
            return start + lat.l2_hit
        if is_write:
            # Write-allocate at L2; the DRAM write drains in the background
            # but still consumes bank/bus time.
            return self.dram.service(line, start + self.l2_tag_cycles, True)
        return self.dram.service(line, start + self.l2_tag_cycles, False)

    # ------------------------------------------------------------------
    def l1_stats_total(self) -> CacheStats:
        """Aggregate L1 statistics across all SMs."""
        total = CacheStats()
        for c in self.l1:
            total.merge(c.stats)
        return total

    def l2_stats_total(self) -> CacheStats:
        """Aggregate L2 statistics across banks."""
        total = CacheStats()
        for c in self.l2_banks:
            total.merge(c.stats)
        return total

    # -- state serialization -------------------------------------------

    def snapshot(self) -> dict:
        """Serializable state of the whole hierarchy (L1s, MSHRs, L2
        banks, L2 ports, DRAM)."""
        return {
            "l1": [c.snapshot() for c in self.l1],
            "mshr": [m.snapshot() for m in self.mshr],
            "l2_banks": [c.snapshot() for c in self.l2_banks],
            "l2_port_free": list(self._l2_port_free),
            "dram": self.dram.snapshot(),
        }

    def restore(self, data: dict) -> None:
        """Apply a snapshotted hierarchy state (geometry must match the
        config this subsystem was built from)."""
        for cache, cdata in zip(self.l1, data["l1"]):
            cache.restore(cdata)
        for mshr, mdata in zip(self.mshr, data["mshr"]):
            mshr.restore(mdata)
        for bank, bdata in zip(self.l2_banks, data["l2_banks"]):
            bank.restore(bdata)
        self._l2_port_free = list(data["l2_port_free"])
        self.dram.restore(data["dram"])

    def reset(self) -> None:
        """Clear all cache/MSHR/DRAM state (between kernel launches)."""
        for c in self.l1:
            c.invalidate_all()
        for c in self.l2_banks:
            c.invalidate_all()
        mem = self.cfg.memory
        self.mshr = [
            Mshr(mem.mshr_entries, mem.mshr_merge) for _ in range(self.cfg.num_sms)
        ]
        self._l2_port_free = [0] * mem.l2_banks
        self.dram.reset()
