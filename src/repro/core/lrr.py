"""Loose Round Robin (LRR) — the GPU default baseline.

All warps get equal priority; each cycle the scan starts just after the
last warp that issued, skipping non-ready warps ("loose"). The paper's
motivating observation (§II-A): under LRR all warps make near-equal
progress and reach long-latency instructions together, draining the ready
pool at the same time and inflating Idle stalls.
"""

from __future__ import annotations

from typing import List, Sequence

from .scheduler import WarpScheduler, register_scheduler, simple_factory


class LrrScheduler(WarpScheduler):
    """Rotating-start round robin over this scheduler's warps."""

    name = "lrr"

    def __init__(self, sm, sched_id, cfg) -> None:
        super().__init__(sm, sched_id, cfg)
        self._start = 0

    def order(self, cycle: int) -> Sequence:
        warps = self.warps
        n = len(warps)
        if n == 0:
            return ()
        start = self._start % n
        if start == 0:
            return warps
        return warps[start:] + warps[:start]

    def note_issued(self, warp, cycle: int) -> None:
        # Next scan begins after the warp that just issued.
        try:
            self._start = self.warps.index(warp) + 1
        except ValueError:  # pragma: no cover - defensive
            self._start = 0

    def on_warp_finished(self, warp, cycle: int) -> None:
        if warp.sched_id != self.sched_id:
            return
        # Keep the rotation point stable across removals.
        idx = self.warps.index(warp)
        super().on_warp_finished(warp, cycle)
        if idx < self._start:
            self._start -= 1


register_scheduler("lrr", simple_factory(LrrScheduler))
