"""Tests for the ``pro-sim bench`` throughput harness."""

import json

import pytest

from repro.harness.bench import (
    BenchReport,
    CellTiming,
    SMOKE_KERNELS,
    SMOKE_SCHEDULERS,
    run_bench,
)
from repro.harness.cli import main


class TestRunBench:
    @pytest.fixture(scope="class")
    def smoke_report(self, tmp_path_factory):
        out = tmp_path_factory.mktemp("bench") / "bench.json"
        return run_bench(jobs=2, smoke=True, out_path=str(out))

    def test_micro_phase_covers_every_cell(self, smoke_report):
        have = {(c.kernel, c.scheduler) for c in smoke_report.micro}
        want = {(k, s) for k in SMOKE_KERNELS for s in SMOKE_SCHEDULERS}
        assert have == want
        for cell in smoke_report.micro:
            assert cell.cycles > 0
            assert cell.instructions > 0
            assert cell.wall_seconds > 0

    def test_aggregates(self, smoke_report):
        assert smoke_report.total_cycles == sum(
            c.cycles for c in smoke_report.micro
        )
        assert smoke_report.cycles_per_sec > 0
        assert smoke_report.instr_per_sec > 0
        assert smoke_report.matrix_seconds_serial > 0
        assert smoke_report.matrix_seconds_parallel > 0
        assert smoke_report.parallel_speedup > 0

    def test_json_written_and_valid(self, smoke_report):
        assert smoke_report.json_path is not None
        data = json.loads(open(smoke_report.json_path).read())
        assert data["schema"] == 1
        assert data["smoke"] is True
        assert data["jobs"] == 2
        assert len(data["micro"]) == len(smoke_report.micro)
        assert data["totals"]["cycles"] == smoke_report.total_cycles
        assert data["matrix"]["parallel_speedup"] == pytest.approx(
            smoke_report.parallel_speedup
        )

    def test_render_reports_speedup(self, smoke_report):
        text = smoke_report.render()
        assert "Cycles/s" in text
        assert "parallel speedup" in text
        assert "bench JSON" in text

    def test_default_filename_is_timestamped(self, tmp_path):
        report = run_bench(smoke=True, out_dir=str(tmp_path))
        produced = list(tmp_path.glob("BENCH_*.json"))
        assert len(produced) == 1
        assert report.json_path == str(produced[0])


class TestRenderFootnote:
    def _report(self, jobs, par, ser):
        report = BenchReport(sms=2, scale=0.15, jobs=jobs, smoke=True)
        report.micro.append(
            CellTiming("scalarProdGPU", "lrr", 100, 50, 0.01)
        )
        report.matrix_seconds_parallel = par
        report.matrix_seconds_serial = ser
        return report

    def test_low_speedup_footnote(self):
        text = self._report(jobs=4, par=1.0, ser=1.0).render()
        assert "too few CPU" in text

    def test_no_footnote_when_scaling(self):
        text = self._report(jobs=4, par=1.0, ser=2.0).render()
        assert "too few CPU" not in text


class TestCli:
    def test_bench_smoke(self, tmp_path, capsys):
        out = tmp_path / "b.json"
        code = main(["bench", "--smoke", "--jobs", "2",
                     "--bench-out", str(out)])
        assert code == 0
        assert out.exists()
        assert "parallel speedup" in capsys.readouterr().out

    def test_jobs_auto_accepted(self, tmp_path):
        out = tmp_path / "b.json"
        assert main(["bench", "--smoke", "--jobs", "auto",
                     "--bench-out", str(out)]) == 0

    @pytest.mark.parametrize("bad", ["0", "-1", "nope", "1.5"])
    def test_jobs_validation(self, bad, capsys):
        with pytest.raises(SystemExit) as exc:
            main(["fig4", "--jobs", bad])
        assert exc.value.code == 2
        assert "--jobs" in capsys.readouterr().err

    def test_smoke_outside_bench_rejected(self, capsys):
        with pytest.raises(SystemExit):
            main(["fig4", "--smoke"])
        assert "--smoke" in capsys.readouterr().err

    def test_bench_out_outside_bench_rejected(self, capsys):
        with pytest.raises(SystemExit):
            main(["fig4", "--bench-out", "x.json"])
        assert "--bench-out" in capsys.readouterr().err
