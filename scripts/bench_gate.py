#!/usr/bin/env python
"""Bench gate: fail CI when the parallel sweep stops beating serial.

Reads a ``BENCH_*.json`` written by ``pro-sim bench`` and checks
``matrix.parallel_speedup`` against ``--min-speedup`` (default 1.2).
The speedup is measured over warm workers (pool spawn excluded), so the
gate holds the *steady-state* number a long sweep sees.

The gate is honest about hardware: a machine with a single CPU core
cannot run two simulations concurrently, so a speedup above 1.0 is
physically impossible there and the check is reported as skipped
(exit 0) rather than failed. CI runners have multiple cores and always
enforce the real threshold.
"""

import argparse
import json
import os
import sys


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("bench_json", help="BENCH_*.json from pro-sim bench")
    parser.add_argument("--min-speedup", type=float, default=1.2,
                        help="minimum matrix.parallel_speedup (default 1.2)")
    args = parser.parse_args()

    with open(args.bench_json, encoding="utf-8") as f:
        report = json.load(f)
    matrix = report.get("matrix", {})
    jobs = int(report.get("jobs", 1))
    speedup = float(matrix.get("parallel_speedup", 0.0))
    spawn = float(matrix.get("seconds_spawn", 0.0))

    print(f"bench gate: jobs={jobs} parallel_speedup={speedup:.2f}x "
          f"(pool spawn {spawn:.2f}s, excluded) "
          f"threshold={args.min_speedup:.2f}x")

    if jobs < 2:
        print("SKIP: bench ran with jobs < 2; no parallel speedup to gate")
        return
    cores = os.cpu_count() or 1
    if cores < 2:
        print(f"SKIP: only {cores} CPU core available — parallel speedup "
              ">1.0 is physically impossible here; gate enforced on "
              "multi-core CI only")
        return
    if speedup < args.min_speedup:
        print(f"FAIL: parallel_speedup {speedup:.2f}x < "
              f"{args.min_speedup:.2f}x on a {cores}-core machine",
              file=sys.stderr)
        sys.exit(1)
    print("OK: parallel sweep beats serial at the gated margin")


if __name__ == "__main__":
    main()
