"""Benchmark: regenerate Fig. 5 (stall-cycle improvement of PRO).

Shape assertions come from the shared fidelity expectation data (the
Fig. 5 stall-ratio bounds in paper_expectations.json) so this suite and
``pro-sim fidelity`` gate on the same definition of reproduction.
"""

import pytest

from repro.fidelity import verdicts_for_stalls
from repro.harness.experiments import fig5_stall_improvement

from .conftest import fresh_setup, once

pytestmark = [pytest.mark.bench, pytest.mark.slow]


def test_fig5_stall_improvement(benchmark):
    result = once(benchmark, lambda: fig5_stall_improvement(fresh_setup()))
    assert len(result.ratios) == 15
    for b in ("tl", "lrr", "gto"):
        benchmark.extra_info[f"geomean_total_ratio_{b}"] = (
            result.geomeans[b]["total"]
        )
    # Paper shape (1.32x / 1.19x / 1.04x there; compressed but same
    # direction here), judged through the shared expectation bands.
    verdicts = verdicts_for_stalls(result)
    assert verdicts, "expected Fig. 5 shape expectations to apply"
    failures = [v for v in verdicts if v.status == "fail"]
    assert not failures, "\n".join(
        f"{v.expectation_id}: measured {v.measured:.3f} outside {v.band} "
        f"({v.anchor})" for v in failures
    )
    assert "Fig. 5" in result.render_fig5()
