"""Benchmark: regenerate Fig. 4 (the paper's headline result).

25 kernels x 4 schedulers; the extra_info carries the geomean speedups
so the JSON export records the reproduction outcome (paper: PRO 1.13x
over TL, 1.12x over LRR, 1.02x over GTO — we match the ordering and the
GTO-is-closest structure at smaller magnitudes; EXPERIMENTS.md, F4).
"""

from repro.harness.experiments import fig4_speedups

from .conftest import fresh_setup, once


def test_fig4_speedups(benchmark):
    result = once(benchmark, lambda: fig4_speedups(fresh_setup()))
    assert len(result.speedups) == 25
    benchmark.extra_info["geomean_pro_over_tl"] = result.geomeans["tl"]
    benchmark.extra_info["geomean_pro_over_lrr"] = result.geomeans["lrr"]
    benchmark.extra_info["geomean_pro_over_gto"] = result.geomeans["gto"]
    # Shape assertions (DESIGN.md §5): PRO wins on aggregate, GTO closest.
    assert result.geomeans["lrr"] > 1.0
    assert result.geomeans["tl"] > 1.0
    assert result.geomeans["gto"] < result.geomeans["lrr"] + 0.05
