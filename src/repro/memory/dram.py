"""Banked DRAM model with open-row timing ("FR-FCFS-lite").

The paper's GPGPU-Sim configuration uses an FR-FCFS DRAM scheduler. We model
the two effects of FR-FCFS that matter to warp scheduling studies:

* **row-buffer locality** — a request hitting the currently open row of its
  bank is serviced much faster than one that must precharge/activate, so
  streaming (coalesced) traffic is cheap and scattered traffic expensive;
* **bank/bus queueing** — concurrent requests to the same bank or channel
  serialize, so bursts of memory traffic (the LRR failure mode the paper
  describes) inflate latency for everyone.

Requests are serviced in arrival order per bank with row-state carried
between them, rather than reordered row-hits-first across the whole queue.
DESIGN.md §2 documents why this preserves the scheduler-visible behaviour:
the latency *variance* and *load dependence* are intact; only absolute
averages shift slightly.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..config import LatencyConfig, MemoryConfig


@dataclass
class DramStats:
    """DRAM event counters."""

    reads: int = 0
    writes: int = 0
    row_hits: int = 0
    row_misses: int = 0

    @property
    def accesses(self) -> int:
        return self.reads + self.writes

    @property
    def row_hit_rate(self) -> float:
        """Fraction of accesses that hit an open row (0.0 if unused)."""
        total = self.accesses
        return self.row_hits / total if total else 0.0


class Dram:
    """Channel/bank-partitioned DRAM with open-row timing.

    Address mapping (line index ``L``):

    * channel = ``L % channels`` — consecutive lines stripe across channels;
    * within a channel, groups of ``row_size/line_size`` consecutive local
      lines form a row, rows stripe across banks.

    So a coalesced streaming warp sees row hits, while scattered accesses
    thrash rows — matching real GPU address interleaving closely enough.
    """

    __slots__ = (
        "channels",
        "banks",
        "lines_per_row",
        "row_hit_lat",
        "row_miss_lat",
        "hit_occupancy",
        "miss_occupancy",
        "bus_cycles",
        "_line_shift",
        "_open_row",
        "_bank_free",
        "_bus_free",
        "stats",
        "bus",
    )

    def __init__(self, mem: MemoryConfig, lat: LatencyConfig) -> None:
        self.channels = mem.dram_channels
        self.banks = mem.dram_banks
        self.lines_per_row = max(1, mem.dram_row_size // mem.line_size)
        self.row_hit_lat = lat.dram_row_hit
        self.row_miss_lat = lat.dram_row_miss
        self.hit_occupancy = mem.dram_hit_occupancy
        self.miss_occupancy = mem.dram_miss_occupancy
        self.bus_cycles = mem.dram_bus_cycles
        self._line_shift = mem.line_size.bit_length() - 1
        n = self.channels * self.banks
        self._open_row = [-1] * n  # -1 = closed
        self._bank_free = [0] * n
        self._bus_free = [0] * self.channels
        self.stats = DramStats()
        #: Optional repro.obs.ProbeBus, attached by the GPU per run.
        self.bus = None

    # ------------------------------------------------------------------
    def service(self, line_addr: int, arrive: int, is_write: bool = False) -> int:
        """Service one line transaction arriving at cycle ``arrive``.

        Returns the cycle at which read data is available on the channel
        bus (for writes: when the write completes; callers typically ignore
        it but the bank/bus occupancy still throttles subsequent traffic).
        """
        line_idx = line_addr >> self._line_shift
        channel = line_idx % self.channels
        local = line_idx // self.channels
        row = local // self.lines_per_row
        bank_in_ch = row % self.banks
        bank = channel * self.banks + bank_in_ch
        bank_row = row // self.banks

        stats = self.stats
        if is_write:
            stats.writes += 1
        else:
            stats.reads += 1

        start = arrive if arrive > self._bank_free[bank] else self._bank_free[bank]
        if self._open_row[bank] == bank_row:
            stats.row_hits += 1
            ready = start + self.row_hit_lat
            occupancy = self.hit_occupancy
            row_hit = True
        else:
            stats.row_misses += 1
            self._open_row[bank] = bank_row
            ready = start + self.row_miss_lat
            occupancy = self.miss_occupancy
            row_hit = False
        if self.bus is not None:
            self.bus.dram_access(channel, bank_in_ch, row_hit, is_write,
                                 start)
        # Data transfer serializes on the channel bus.
        bus_free = self._bus_free[channel]
        xfer = ready if ready > bus_free else bus_free
        done = xfer + self.bus_cycles
        self._bus_free[channel] = done
        # Bank occupancy (tCCD / tRC) is far shorter than the end-to-end
        # latency: the bank pipelines the next request while this one's
        # data is still in flight.
        self._bank_free[bank] = start + occupancy
        return done

    def queue_snapshot(self, cycle: int) -> dict:
        """Bank/channel queue occupancy view for hang diagnostics."""
        return {
            "busy_banks": sum(1 for f in self._bank_free if f > cycle),
            "total_banks": len(self._bank_free),
            "busy_channels": sum(1 for f in self._bus_free if f > cycle),
            "total_channels": self.channels,
            "latest_bank_free": max(self._bank_free, default=0),
            "latest_bus_free": max(self._bus_free, default=0),
            "reads": self.stats.reads,
            "writes": self.stats.writes,
        }

    def reset(self) -> None:
        """Close all rows and clear timing state (between kernels)."""
        n = self.channels * self.banks
        self._open_row = [-1] * n
        self._bank_free = [0] * n
        self._bus_free = [0] * self.channels

    # -- state serialization -------------------------------------------

    def snapshot(self) -> dict:
        """Serializable row/bank/bus timing state and counters."""
        return {
            "open_row": list(self._open_row),
            "bank_free": list(self._bank_free),
            "bus_free": list(self._bus_free),
            "stats": {
                "reads": self.stats.reads,
                "writes": self.stats.writes,
                "row_hits": self.stats.row_hits,
                "row_misses": self.stats.row_misses,
            },
        }

    def restore(self, data: dict) -> None:
        """Apply a snapshotted DRAM state."""
        self._open_row = list(data["open_row"])
        self._bank_free = list(data["bank_free"])
        self._bus_free = list(data["bus_free"])
        self.stats = DramStats(**data["stats"])
