"""Structural checks: each kernel model exhibits the characteristics its
Table II original is known for (barriers, divergence, memory shape).

These pin the *modeling decisions* so a refactor cannot silently turn,
say, the barrier-ladder scalarProd into a barrier-free streaming kernel
without a test noticing.
"""

import pytest

from repro.isa.instructions import ExecUnit, Opcode
from repro.isa.patterns import Broadcast, Chase, Coalesced, Random, Strided
from repro.workloads import get_kernel

BARRIER_KERNELS = [
    "aesEncrypt128", "GPU_laplace3d", "sha1_overlap", "bpnn_layerforward",
    "calculate_temp", "dynproc_kernel", "convolutionRowsKernel",
    "convolutionColumnsKernel", "histogram64Kernel", "histogram256Kernel",
    "mergeHistogram64Kernel", "mergeHistogram256Kernel",
    "MonteCarloOneBlockPerOption", "scalarProdGPU",
]

BARRIER_FREE_KERNELS = [
    "bfs_kernel", "cenergy", "executeFirstLayer", "executeSecondLayer",
    "executeThirdLayer", "executeFourthLayer", "render",
    "bpnn_adjust_weights_cuda", "findRangeK", "findK", "inverseCNDKernel",
]


def ops(name):
    return [i.op for i in get_kernel(name).build_program()]


def patterns(name):
    return [i.pattern for i in get_kernel(name).build_program()
            if i.pattern is not None]


class TestBarrierPlacement:
    @pytest.mark.parametrize("name", BARRIER_KERNELS)
    def test_barrier_kernels_have_barriers(self, name):
        assert Opcode.BAR in ops(name), name

    @pytest.mark.parametrize("name", BARRIER_FREE_KERNELS)
    def test_barrier_free_kernels_have_none(self, name):
        assert Opcode.BAR not in ops(name), name

    def test_partition_is_complete(self):
        assert len(BARRIER_KERNELS) + len(BARRIER_FREE_KERNELS) == 25


class TestDivergenceStructure:
    @pytest.mark.parametrize("name", [
        "bfs_kernel", "render", "findRangeK", "findK", "scalarProdGPU",
    ])
    def test_warp_divergent_trip_counts(self, name):
        """These kernels model warp-level divergence: different warps of
        the same TB execute different dynamic instruction counts."""
        prog = get_kernel(name).build_program()
        counts = {prog.dynamic_count(0, w) for w in range(4)}
        assert len(counts) > 1, name

    @pytest.mark.parametrize("name", [
        "cenergy", "bpnn_adjust_weights_cuda", "inverseCNDKernel",
    ])
    def test_uniform_kernels_are_uniform(self, name):
        prog = get_kernel(name).build_program()
        counts = {prog.dynamic_count(t, w) for t in range(3)
                  for w in range(4)}
        assert len(counts) == 1, name

    @pytest.mark.parametrize("name", [
        "aesEncrypt128", "sha1_overlap", "MonteCarloOneBlockPerOption",
    ])
    def test_tb_skewed_kernels_vary_across_tbs(self, name):
        """Per-TB runtime skew (the §II-C residency driver): warps agree
        within a TB but TBs differ."""
        prog = get_kernel(name).build_program()
        within = {prog.dynamic_count(0, w) for w in range(4)}
        across = {prog.dynamic_count(t, 0) for t in range(8)}
        assert len(within) == 1, name
        assert len(across) > 1, name

    def test_hotspot_has_both_divergence_axes(self):
        """hotspot combines per-TB pyramid skew with intra-TB boundary
        divergence — both of PRO's §II motivations at once."""
        prog = get_kernel("calculate_temp").build_program()
        within = {prog.dynamic_count(0, w) for w in range(4)}
        across = {prog.dynamic_count(t, 0) for t in range(8)}
        assert len(within) > 1
        assert len(across) > 1


class TestMemoryShape:
    def test_bfs_uses_scattered_gathers(self):
        kinds = {type(p) for p in patterns("bfs_kernel")}
        assert Random in kinds

    def test_btree_uses_pointer_chase(self):
        for name in ("findK", "findRangeK"):
            assert Chase in {type(p) for p in patterns(name)}

    def test_nn_uses_broadcast_inputs(self):
        assert Broadcast in {type(p) for p in patterns("executeFirstLayer")}

    def test_conv_columns_strided_rows_not(self):
        assert Strided in {type(p) for p in patterns("convolutionColumnsKernel")}
        assert Strided not in {type(p) for p in patterns("convolutionRowsKernel")}

    def test_streaming_kernels_coalesced(self):
        for name in ("bpnn_adjust_weights_cuda", "scalarProdGPU"):
            kinds = {type(p) for p in patterns(name)}
            assert kinds == {Coalesced}, name


class TestComputeShape:
    @pytest.mark.parametrize("name,unit", [
        ("inverseCNDKernel", ExecUnit.SFU),   # SFU-heavy math
        ("render", ExecUnit.SFU),
        ("cenergy", ExecUnit.SFU),
    ])
    def test_sfu_usage(self, name, unit):
        prog = get_kernel(name).build_program()
        assert any(i.unit is unit for i in prog), name

    def test_sha1_is_integer_dominated(self):
        prog = get_kernel("sha1_overlap").build_program()
        n_ialu = sum(1 for i in prog if i.op is Opcode.IALU)
        n_f = sum(1 for i in prog if i.op in (Opcode.FMA, Opcode.FALU))
        assert n_ialu > n_f

    def test_histogram_counter_conflicts(self):
        prog = get_kernel("histogram256Kernel").build_program()
        conflict_ops = [i for i in prog
                        if i.op in (Opcode.LDS, Opcode.STS)
                        and i.conflict_ways > 1]
        assert conflict_ops, "histogram must model conflict-serialized counters"


class TestOccupancyDecisions:
    @pytest.mark.parametrize("name,expected", [
        ("sha1_overlap", 3),        # shared-memory limited
        ("scalarProdGPU", 3),       # shared-memory limited
        ("aesEncrypt128", 4),       # register limited
        ("cenergy", 8),             # full residency
    ])
    def test_resident_tbs(self, name, expected):
        from repro.config import GPUConfig
        from repro.simt.occupancy import max_resident_tbs

        prog = get_kernel(name).build_program()
        assert max_resident_tbs(prog, GPUConfig.gtx480()) == expected, name
