"""Unit tests for the GPU-level Thread Block Scheduler."""

from repro.config import GPUConfig
from repro.core.scheduler import build_schedulers
from repro.gpu.tb_scheduler import ThreadBlockScheduler
from repro.isa.builder import ProgramBuilder
from repro.memory.subsystem import MemorySubsystem
from repro.simt.sm import StreamingMultiprocessor
from repro.simt.threadblock import ThreadBlock


def make_sms(n, cfg=None):
    cfg = cfg or GPUConfig.scaled(2).with_(tb_launch_latency=0)
    memory = MemorySubsystem(cfg)
    sms = []
    for i in range(min(n, cfg.num_sms)):
        sm = StreamingMultiprocessor(i, cfg, memory, gpu=None)
        sm.attach_schedulers(build_schedulers("lrr", sm, cfg))
        sms.append(sm)
    return sms


def make_tbs(n, threads=256):
    prog = ProgramBuilder("p", threads_per_tb=threads).ialu(1).build()
    prog.finalize(GPUConfig.scaled(1).latency)
    return [ThreadBlock(i, prog) for i in range(n)]


class TestQueueState:
    def test_initial_state(self):
        s = ThreadBlockScheduler(make_tbs(5))
        assert s.has_pending()
        assert s.pending_count == 5
        assert s.total == 5
        assert not s.all_finished

    def test_empty_grid(self):
        s = ThreadBlockScheduler([])
        assert not s.has_pending()
        assert s.all_finished

    def test_finish_bookkeeping(self):
        s = ThreadBlockScheduler(make_tbs(2))
        s.note_tb_finished()
        assert s.finished_count == 1
        s.note_tb_finished()
        assert s.all_finished


class TestInitialFill:
    def test_round_robin_across_sms(self):
        sms = make_sms(2)
        s = ThreadBlockScheduler(make_tbs(4))
        placed = s.initial_fill(sms)
        assert placed == 4
        # dealt alternately: SM0 gets 0 and 2, SM1 gets 1 and 3
        assert [tb.tb_index for tb in sms[0].resident_tbs] == [0, 2]
        assert [tb.tb_index for tb in sms[1].resident_tbs] == [1, 3]

    def test_fill_stops_at_capacity(self):
        sms = make_sms(2)
        # 256 threads/TB -> 6 fit per SM (1536/256)
        s = ThreadBlockScheduler(make_tbs(40))
        placed = s.initial_fill(sms)
        assert placed == 12
        assert s.pending_count == 28

    def test_fill_drains_small_grid(self):
        sms = make_sms(2)
        s = ThreadBlockScheduler(make_tbs(3))
        assert s.initial_fill(sms) == 3
        assert not s.has_pending()


class TestRefill:
    def test_refill_after_finish(self):
        sms = make_sms(1)
        s = ThreadBlockScheduler(make_tbs(8, threads=1024))
        s.initial_fill(sms)  # only 1 fits (1536/1024)
        assert len(sms[0].resident_tbs) == 1
        # free it manually and refill
        tb = sms[0].resident_tbs[0]
        sms[0]._release_tb(tb, cycle=100)
        placed = s.refill(sms[0], cycle=100)
        assert placed == 1
        assert sms[0].resident_tbs[0].tb_index == 1

    def test_refill_respects_capacity(self):
        sms = make_sms(1)
        s = ThreadBlockScheduler(make_tbs(8, threads=1024))
        s.initial_fill(sms)
        assert s.refill(sms[0], cycle=5) == 0  # still full

    def test_fast_phase_predicate(self):
        sms = make_sms(2)
        s = ThreadBlockScheduler(make_tbs(4))
        assert s.has_pending()
        s.initial_fill(sms)
        assert not s.has_pending()  # slowTBPhase begins
