"""Exception hierarchy for the PRO reproduction library.

Every error raised intentionally by the simulator derives from
:class:`ReproError`, so callers can catch library failures without
accidentally swallowing genuine Python bugs (``TypeError`` etc.).
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the ``repro`` package."""


class ConfigError(ReproError):
    """An invalid or inconsistent :class:`repro.config.GPUConfig`."""


class ProgramError(ReproError):
    """A malformed SIMT program (bad branch target, missing EXIT, ...)."""


class LaunchError(ReproError):
    """A kernel launch that cannot run on the configured GPU.

    Raised e.g. when a single thread block needs more registers, threads or
    shared memory than one SM provides — the same situation in which a real
    CUDA launch would fail with ``cudaErrorInvalidConfiguration``.
    """


class SchedulerError(ReproError):
    """Unknown scheduler name or an internal scheduler invariant violation."""


class SimulationError(ReproError):
    """The simulator reached an impossible state (deadlock, lost warp, ...).

    Structured subclasses (:class:`DeadlockError`, :class:`SimulationHang`,
    :class:`CellTimeoutError`) carry a
    :class:`repro.robustness.diagnostics.DeadlockReport` snapshot of the
    machine state at failure time; ``str(error)`` renders it so a bare
    traceback already contains everything needed to debug the hang.
    """

    def __init__(self, message: str, *, report: object = None) -> None:
        super().__init__(message)
        self.message = message
        #: Optional DeadlockReport (duck-typed: anything with ``render()``).
        self.report = report

    def __str__(self) -> str:
        if self.report is not None:
            return f"{self.message}\n{self.report.render()}"
        return self.message

    @property
    def headline(self) -> str:
        """The one-line failure summary (without the attached report)."""
        return self.message


class DeadlockError(SimulationError):
    """No warp on any (or one) SM can ever make progress again.

    Raised when every wake-up source is exhausted: no pending writeback or
    memory-completion events, no port about to free, no refetch in flight —
    yet unfinished warps remain (e.g. stuck at a barrier that will never
    release).
    """


class SimulationHang(SimulationError):
    """The simulation is still ticking but no longer making forward progress.

    Raised by the forward-progress watchdog when zero instructions issue
    GPU-wide across a whole heartbeat window, or when the simulated clock
    exceeds ``GPUConfig.max_cycles``.
    """


class CellTimeoutError(SimulationError):
    """A harness cell exceeded its wall-clock budget (``--cell-timeout``)."""


class InjectedFault(SimulationError):
    """A deterministic fault injected by :class:`repro.robustness.FaultPlan`.

    Only ever raised when a test (or a chaos run) explicitly armed an
    injector; production runs never see it.
    """


class InvariantViolation(SimulationError):
    """A conservation law the simulator must uphold was broken mid-run.

    Raised by :class:`repro.robustness.sanitizer.InvariantSanitizer` when
    a windowed consistency check fails (scoreboard entry without a pending
    writeback, barrier arrival count out of range, resource accounting
    drift, ...). Carries the machine-state report plus the canonical
    ``name`` of the violated invariant, which the fault-injection
    acceptance tests match against.
    """

    def __init__(self, message: str, *, name: str = "unknown",
                 report: object = None) -> None:
        super().__init__(message, report=report)
        #: Canonical invariant name, e.g. ``"barrier-arrival-lost"``.
        self.name = name


class SimulationInterrupted(SimulationError):
    """A run was stopped cooperatively (SIGINT/SIGTERM via
    :meth:`repro.gpu.gpu.Gpu.request_stop`).

    When the run was configured with a snapshot path, ``snapshot_path``
    points at the cycle-consistent snapshot written just before raising,
    and ``cycle`` is the loop boundary it captures — resuming from it
    continues the simulation bit-identically.
    """

    def __init__(self, message: str, *, snapshot_path: object = None,
                 cycle: int = 0) -> None:
        super().__init__(message)
        self.snapshot_path = snapshot_path
        self.cycle = cycle


class WorkerPoolError(SimulationError):
    """The parallel sweep lost worker processes it could not recover.

    Raised by the legacy executor backend when the process pool breaks
    mid-sweep (a worker segfaulted, was OOM-killed, or ``os._exit``-ed):
    surviving results are kept in the parent cache, and ``lost_cells``
    names every ``(kernel, scheduler)`` cell whose worker died without
    returning. The supervised :class:`repro.harness.pool.WorkerPool`
    backend respawns workers instead, so it only raises this when its
    own recovery machinery is exhausted.
    """

    def __init__(self, message: str, *,
                 lost_cells: tuple = ()) -> None:
        super().__init__(message)
        #: ``(kernel, scheduler)`` cells in flight when the pool broke.
        self.lost_cells = tuple(lost_cells)


class PoisonCellError(SimulationError):
    """A run-matrix cell repeatedly destroyed the worker running it.

    Raised (and recorded as a :class:`repro.harness.runner.CellFailure`)
    when one cell kills, wedges or corrupts its worker
    ``max_cell_attempts`` times in a row. The cell is quarantined — the
    sweep continues under ``keep_going`` — and ``fault_kind`` names the
    last observed failure class (``worker-death``, ``deadline``,
    ``heartbeat-lost``, ``corrupt-payload``).
    """

    def __init__(self, message: str, *, fault_kind: str = "unknown",
                 attempts: int = 0) -> None:
        super().__init__(message)
        self.fault_kind = fault_kind
        self.attempts = attempts


class PayloadError(SimulationError):
    """A worker result payload failed schema or digest validation.

    A truncated or corrupt payload must become a *retryable* cell
    failure, never a poisoned checkpoint: the supervised pool redispatches
    the cell, and :func:`repro.robustness.checkpoint.result_from_json`
    raises this instead of a bare ``KeyError`` on malformed input.
    """


class SnapshotError(ReproError):
    """A simulator snapshot could not be written, read, or applied.

    Raised on schema-version mismatches, on resuming with a launch whose
    program structure differs from the snapshotted one, and on corrupt
    snapshot files.
    """


class WorkloadError(ReproError):
    """Unknown benchmark kernel or invalid workload parameters."""
