"""Unit tests for the MSHR table."""

import pytest

from repro.memory.mshr import Mshr


class TestAllocationAndMerge:
    def test_lookup_unknown_line(self):
        m = Mshr(4)
        assert m.lookup(0, 0) is None

    def test_merge_returns_completion(self):
        m = Mshr(4)
        m.allocate(0, 100)
        assert m.lookup(0, 10) == 100
        assert m.stats.merges == 1

    def test_merge_limit_exhausted(self):
        m = Mshr(4, merge_limit=2)
        m.allocate(0, 100)
        assert m.lookup(0, 1) == 100
        assert m.lookup(0, 2) == 100
        assert m.lookup(0, 3) is None  # merge fields exhausted

    def test_retirement_frees_entry(self):
        m = Mshr(1)
        m.allocate(0, 50)
        assert m.lookup(0, 51) is None  # retired at cycle 50
        assert m.in_flight == 0

    def test_in_flight_counts(self):
        m = Mshr(8)
        m.allocate(0, 100)
        m.allocate(128, 200)
        m.retire_until(0)
        assert m.in_flight == 2
        m.retire_until(150)
        assert m.in_flight == 1


class TestCapacity:
    def test_not_full_start_is_now(self):
        m = Mshr(2)
        m.allocate(0, 100)
        assert m.earliest_start(5) == 5

    def test_full_start_delayed_to_retirement(self):
        m = Mshr(2)
        m.allocate(0, 100)
        m.allocate(128, 200)
        assert m.earliest_start(10) == 100
        assert m.stats.stalls == 1

    def test_full_then_retire(self):
        m = Mshr(1)
        m.allocate(0, 100)
        assert m.earliest_start(150) == 150  # entry retired by 150

    def test_is_full(self):
        m = Mshr(2)
        assert not m.is_full(0)
        m.allocate(0, 100)
        m.allocate(128, 120)
        assert m.is_full(50)
        assert not m.is_full(101)

    def test_next_retirement(self):
        m = Mshr(4)
        assert m.next_retirement() is None
        m.allocate(0, 300)
        m.allocate(128, 100)
        assert m.next_retirement() == 100

    def test_next_retirement_skips_stale(self):
        m = Mshr(4)
        m.allocate(0, 100)
        m.retire_until(150)
        assert m.next_retirement() is None

    def test_invalid_geometry(self):
        with pytest.raises(ValueError):
            Mshr(0)
        with pytest.raises(ValueError):
            Mshr(4, merge_limit=0)

    def test_reallocation_after_retirement(self):
        m = Mshr(1)
        m.allocate(0, 100)
        m.retire_until(100)
        m.allocate(0, 300)
        assert m.lookup(0, 150) == 300
