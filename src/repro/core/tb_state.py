"""Thread-block state machine (paper Fig. 3).

PRO classifies each resident TB into one of six states. During the
*fastTBPhase* (TBs still waiting in the GPU-level Thread Block Scheduler):

* ``NO_WAIT`` — default; no warp is waiting on siblings.
* ``BARRIER_WAIT`` — at least one warp is waiting at a barrier.
* ``FINISH_WAIT`` — at least one warp has finished execution.

When the kernel enters the *slowTBPhase* (last TB dispatched):

* ``FINISH_NO_WAIT`` — merger of NO_WAIT and FINISH_WAIT.
* ``BARRIER_WAIT1`` — BARRIER_WAIT's slow-phase twin (exists so that the
  all-warps-arrived transition lands in FINISH_NO_WAIT).
* ``FINISH`` — terminal: every warp finished; the TB is deallocated.

:func:`transition` is the single source of truth for the diagram; the PRO
scheduler drives it and the property tests in ``tests/core/test_tb_state.py``
verify it structurally (reachability, terminality, phase consistency).
"""

from __future__ import annotations

import enum
from typing import Dict, FrozenSet, Tuple

from ..errors import SchedulerError


class TbState(enum.Enum):
    """PRO thread-block states (Fig. 3)."""

    NO_WAIT = "noWait"
    BARRIER_WAIT = "barrierWait"
    FINISH_WAIT = "finishWait"
    BARRIER_WAIT1 = "barrierWait1"
    FINISH_NO_WAIT = "finishNoWait"
    FINISH = "finish"


class TbEvent(enum.Enum):
    """Events that drive TB state transitions."""

    WARP_AT_BARRIER = "warpAtBarrier"  # first (or another) warp hits barrier
    ALL_AT_BARRIER = "allWarpsAtBarrier"  # barrier releases
    WARP_FINISHED = "warpFinished"
    ALL_FINISHED = "allWarpsFinished"
    PHASE_TO_SLOW = "fastToSlowPhase"  # last TB dispatched by the TB scheduler


#: States only valid during the slow phase (Fig. 3's red states).
SLOW_PHASE_STATES: FrozenSet[TbState] = frozenset(
    {TbState.BARRIER_WAIT1, TbState.FINISH_NO_WAIT}
)

#: States only valid during the fast phase.
FAST_PHASE_STATES: FrozenSet[TbState] = frozenset(
    {TbState.NO_WAIT, TbState.FINISH_WAIT}
)


def transition(state: TbState, event: TbEvent, fast_phase: bool) -> TbState:
    """Next state of a TB in ``state`` upon ``event``.

    ``fast_phase`` is the *current* phase when the event fires —
    Algorithm 1 re-reads ``TBsWaitingInThrdBlkSched()`` at each event, so
    e.g. a barrier entered in the fast phase but released in the slow
    phase lands in FINISH_NO_WAIT.
    """
    if state is TbState.FINISH:
        raise SchedulerError("FINISH is terminal; no transitions allowed")

    if event is TbEvent.ALL_FINISHED:
        return TbState.FINISH

    if event is TbEvent.PHASE_TO_SLOW:
        if state is TbState.NO_WAIT or state is TbState.FINISH_WAIT:
            return TbState.FINISH_NO_WAIT
        if state is TbState.BARRIER_WAIT:
            return TbState.BARRIER_WAIT1
        return state  # already a slow-phase state

    if event is TbEvent.WARP_AT_BARRIER:
        if state is TbState.NO_WAIT:
            return TbState.BARRIER_WAIT
        if state is TbState.FINISH_NO_WAIT:
            return TbState.BARRIER_WAIT1
        # Additional warps arriving keep the TB in its barrier state.
        if state in (TbState.BARRIER_WAIT, TbState.BARRIER_WAIT1):
            return state
        raise SchedulerError(
            f"warp reached a barrier while TB is in {state.value}; "
            "programs must not mix unreleased barriers with finished warps"
        )

    if event is TbEvent.ALL_AT_BARRIER:
        if state not in (TbState.BARRIER_WAIT, TbState.BARRIER_WAIT1):
            raise SchedulerError(
                f"barrier release in non-barrier state {state.value}"
            )
        return TbState.NO_WAIT if fast_phase else TbState.FINISH_NO_WAIT

    if event is TbEvent.WARP_FINISHED:
        if state is TbState.NO_WAIT:
            return TbState.FINISH_WAIT if fast_phase else TbState.FINISH_NO_WAIT
        if state in (TbState.FINISH_WAIT, TbState.FINISH_NO_WAIT):
            return state
        raise SchedulerError(
            f"warp finished while TB is in {state.value}; "
            "programs must not mix unreleased barriers with finished warps"
        )

    raise SchedulerError(f"unhandled event {event!r}")  # pragma: no cover


def allowed_transitions() -> Dict[Tuple[TbState, TbEvent, bool], TbState]:
    """Enumerate every legal (state, event, phase) -> state edge.

    Used by the property tests to check the machine against the paper's
    Fig. 3 exhaustively.
    """
    table: Dict[Tuple[TbState, TbEvent, bool], TbState] = {}
    for state in TbState:
        if state is TbState.FINISH:
            continue
        for event in TbEvent:
            for fast in (True, False):
                try:
                    table[(state, event, fast)] = transition(state, event, fast)
                except SchedulerError:
                    pass
    return table


def check_transition(state: TbState, event: TbEvent, fast_phase: bool) -> bool:
    """True when the edge is legal (no exception)."""
    try:
        transition(state, event, fast_phase)
        return True
    except SchedulerError:
        return False
