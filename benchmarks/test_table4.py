"""Benchmark: regenerate Table IV (PRO's sorted TB order over time)."""

import pytest

from repro.harness.experiments import table4_sort_trace

from .conftest import fresh_setup, once

pytestmark = pytest.mark.bench


def test_table4_sort_trace(benchmark):
    result = once(
        benchmark, lambda: table4_sort_trace(fresh_setup(), threshold=64)
    )
    assert result.rows, "expected sort-order snapshots"
    benchmark.extra_info["sort_periods"] = len(result.rows)
    benchmark.extra_info["order_changes"] = result.order_changes
    # Paper: the sorted order changes over the TBs' lifetime.
    assert result.order_changes >= 1
    assert "Table IV" in result.render()
