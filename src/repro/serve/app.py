"""Asyncio HTTP front-end of the job service (stdlib only).

A deliberately small HTTP/1.1 server over ``asyncio.start_server`` —
no framework, no threads per connection. Every response is JSON;
``Connection: close`` keeps the parser one-shot and race-free. The
blocking :class:`~repro.serve.queue.JobManager` calls are cheap
(lock-guarded dict work), so they run inline on the event loop; only
the long-poll of ``/status?watch=`` is pushed to the default executor.

Routes
------
=======  ==========================  ========================================
POST     /jobs                       submit a job (JSON body -> job record)
GET      /jobs                       list all jobs
GET      /jobs/<id>                  one job record
GET      /jobs/<id>/result           result payload (409 until terminal)
POST     /jobs/<id>/cancel           cancel (queued: instant; running:
                                     cooperative stop + snapshot)
GET      /status                     service + per-job progress snapshot
GET      /status?watch=<seconds>     NDJSON stream: a fresh snapshot per
                                     state change, for <seconds>
GET      /ledger                     parsed job ledger (``?tail=N``)
GET      /healthz                    liveness probe
=======  ==========================  ========================================

:meth:`ProSimService.start_background` runs the whole service (manager
thread + event loop) on a daemon thread and returns the bound address —
the shape the tests and the CI smoke script use. The CLI verb
(``pro-sim serve``) runs :meth:`ProSimService.run` in the foreground.
"""

from __future__ import annotations

import asyncio
import json
import threading
from typing import Optional, Tuple
from urllib.parse import parse_qs, urlsplit

from .jobs import JobSpecError, JobState
from .ledger import JobLedger
from .queue import JobManager, ServeConfig, ServeError

_MAX_BODY = 1 << 20  # 1 MiB of JSON is already an absurd submission


class ProSimService:
    """Binds a :class:`JobManager` to an asyncio HTTP server."""

    def __init__(self, config: ServeConfig, *,
                 manager: Optional[JobManager] = None) -> None:
        self.cfg = config
        self.manager = manager if manager is not None else JobManager(config)
        self.address: Optional[Tuple[str, int]] = None
        self._server: Optional[asyncio.base_events.Server] = None
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._stop_event: Optional[asyncio.Event] = None
        self._thread: Optional[threading.Thread] = None
        self._ready = threading.Event()
        self._startup_error: Optional[BaseException] = None

    @property
    def url(self) -> str:
        if self.address is None:
            raise ServeError("service is not listening yet")
        host, port = self.address
        return f"http://{host}:{port}"

    # -- lifecycle -----------------------------------------------------

    async def _amain(self) -> None:
        self._loop = asyncio.get_running_loop()
        self._stop_event = asyncio.Event()
        try:
            self.manager.start()
            self._server = await asyncio.start_server(
                self._handle, self.cfg.host, self.cfg.port
            )
            sock = self._server.sockets[0]
            self.address = sock.getsockname()[:2]
        except BaseException as err:
            self._startup_error = err
            self._ready.set()
            raise
        self._ready.set()
        try:
            await self._stop_event.wait()
        finally:
            self._server.close()
            await self._server.wait_closed()

    def run(self) -> None:
        """Foreground mode (the CLI): serve until Ctrl-C."""
        try:
            asyncio.run(self._amain())
        except KeyboardInterrupt:
            pass
        finally:
            self.manager.close()

    def start_background(self, timeout: float = 30.0) -> Tuple[str, int]:
        """Run the service on a daemon thread; returns (host, port)."""
        self._thread = threading.Thread(
            target=self._thread_main, name="serve-http", daemon=True
        )
        self._thread.start()
        if not self._ready.wait(timeout):
            raise ServeError("service failed to start listening in time")
        if self._startup_error is not None:
            raise ServeError(
                f"service failed to start: {self._startup_error}"
            )
        assert self.address is not None
        return self.address

    def _thread_main(self) -> None:
        try:
            asyncio.run(self._amain())
        except BaseException:  # noqa: BLE001 - recorded for start_background
            if not self._ready.is_set():
                self._ready.set()

    def stop(self) -> None:
        """Stop the HTTP server and the manager (idempotent)."""
        loop, event = self._loop, self._stop_event
        if loop is not None and event is not None and not loop.is_closed():
            try:
                loop.call_soon_threadsafe(event.set)
            except RuntimeError:  # pragma: no cover - loop just closed
                pass
        if self._thread is not None:
            self._thread.join(timeout=10.0)
        self.manager.close()

    # -- HTTP plumbing -------------------------------------------------

    async def _handle(self, reader: asyncio.StreamReader,
                      writer: asyncio.StreamWriter) -> None:
        try:
            request = await self._read_request(reader)
            if request is None:
                return
            method, path, query, body = request
            await self._route(writer, method, path, query, body)
        except (ConnectionError, asyncio.IncompleteReadError):
            pass  # client went away mid-request/mid-response
        except Exception as err:  # noqa: BLE001 - one bad request != crash
            try:
                await self._respond(writer, 500, {
                    "error": f"{type(err).__name__}: {err}"
                })
            except Exception:
                pass
        finally:
            try:
                writer.close()
                await writer.wait_closed()
            except Exception:
                pass

    async def _read_request(self, reader: asyncio.StreamReader):
        line = await reader.readline()
        if not line.strip():
            return None
        try:
            method, target, _version = line.decode("latin-1").split()
        except ValueError:
            return None
        headers = {}
        while True:
            raw = await reader.readline()
            if raw in (b"\r\n", b"\n", b""):
                break
            name, _, value = raw.decode("latin-1").partition(":")
            headers[name.strip().lower()] = value.strip()
        length = int(headers.get("content-length", "0") or "0")
        if length > _MAX_BODY:
            raise ServeError(f"request body too large ({length} bytes)")
        body = await reader.readexactly(length) if length else b""
        parts = urlsplit(target)
        query = {k: v[-1] for k, v in parse_qs(parts.query).items()}
        return method.upper(), parts.path.rstrip("/") or "/", query, body

    async def _respond(self, writer: asyncio.StreamWriter, status: int,
                       payload: dict) -> None:
        body = (json.dumps(payload, sort_keys=True) + "\n").encode()
        reason = {200: "OK", 400: "Bad Request", 404: "Not Found",
                  405: "Method Not Allowed", 409: "Conflict",
                  500: "Internal Server Error"}.get(status, "OK")
        writer.write(
            f"HTTP/1.1 {status} {reason}\r\n"
            f"Content-Type: application/json\r\n"
            f"Content-Length: {len(body)}\r\n"
            f"Connection: close\r\n\r\n".encode() + body
        )
        await writer.drain()

    # -- routing -------------------------------------------------------

    async def _route(self, writer, method: str, path: str, query: dict,
                     body: bytes) -> None:
        m = self.manager
        if path == "/healthz":
            await self._respond(writer, 200, {"ok": True})
            return
        if path == "/":
            await self._respond(writer, 200, {
                "service": "repro.serve",
                "endpoints": ["/jobs", "/jobs/<id>", "/jobs/<id>/result",
                              "/jobs/<id>/cancel", "/status", "/ledger",
                              "/healthz"],
            })
            return
        if path == "/jobs" and method == "POST":
            try:
                data = json.loads(body.decode() or "null")
                job = m.submit(data)
            except (json.JSONDecodeError, UnicodeDecodeError):
                await self._respond(writer, 400,
                                    {"error": "body must be valid JSON"})
                return
            except (JobSpecError, ServeError) as err:
                await self._respond(writer, 400, {"error": str(err)})
                return
            await self._respond(writer, 200, m.job_json(job))
            return
        if path == "/jobs" and method == "GET":
            await self._respond(writer, 200, {"jobs": m.jobs_json()})
            return
        if path == "/status" and method == "GET":
            watch = float(query.get("watch", 0) or 0)
            if watch > 0:
                await self._stream_status(writer, watch)
            else:
                await self._respond(writer, 200, m.status_json())
            return
        if path == "/ledger" and method == "GET":
            entries = JobLedger.load(m.ledger.path)
            tail = int(query.get("tail", 0) or 0)
            if tail > 0:
                entries = entries[-tail:]
            await self._respond(writer, 200, {"entries": entries})
            return
        if path.startswith("/jobs/"):
            await self._route_job(writer, method, path)
            return
        await self._respond(writer, 404, {"error": f"no route {path}"})

    async def _route_job(self, writer, method: str, path: str) -> None:
        m = self.manager
        parts = path.split("/")  # ['', 'jobs', '<id>', ...rest]
        job_id, rest = parts[2], parts[3:]
        job = m.get_job(job_id)
        if job is None:
            await self._respond(writer, 404,
                                {"error": f"unknown job {job_id!r}"})
            return
        if not rest and method == "GET":
            await self._respond(writer, 200, m.job_json(job))
            return
        if rest == ["result"] and method == "GET":
            if job.state == JobState.FAILED:
                await self._respond(writer, 409, {
                    "error": job.error or "job failed", "state": job.state,
                })
            elif job.result is None:
                await self._respond(writer, 409, {
                    "error": "job not finished", "state": job.state,
                })
            else:
                await self._respond(
                    writer, 200, m.job_json(job, include_result=True)
                )
            return
        if rest == ["cancel"] and method == "POST":
            cancelled = m.cancel(job_id)
            await self._respond(writer, 200, m.job_json(cancelled))
            return
        await self._respond(writer, 405 if rest in ([], ["result"],
                                                    ["cancel"]) else 404,
                            {"error": f"no route {method} {path}"})

    async def _stream_status(self, writer, duration: float) -> None:
        """NDJSON stream: one status snapshot per state change."""
        writer.write(
            b"HTTP/1.1 200 OK\r\n"
            b"Content-Type: application/x-ndjson\r\n"
            b"Connection: close\r\n\r\n"
        )
        loop = asyncio.get_running_loop()
        deadline = loop.time() + min(duration, 3600.0)
        last = -1
        while True:
            snapshot = self.manager.status_json()
            version = snapshot["service"]["version"]
            if version != last:
                last = version
                writer.write(
                    (json.dumps(snapshot, sort_keys=True) + "\n").encode()
                )
                await writer.drain()
            remaining = deadline - loop.time()
            if remaining <= 0:
                return
            # Long-poll the manager's version clock off the event loop.
            await loop.run_in_executor(
                None, self.manager.wait_version, last,
                min(remaining, 0.5),
            )
