"""Per-warp scoreboard: in-order issue register dependence tracking.

Each warp owns one scoreboard holding the set of destination registers with
results still in flight. An instruction may issue only when none of its
source registers *or* its destination register (WAW) is pending — the same
rule GPGPU-Sim's scoreboard enforces, and the source of the paper's
"Scoreboard" stall class.
"""

from __future__ import annotations

from typing import Iterable, Tuple


class Scoreboard:
    """Pending-register set for one warp."""

    __slots__ = ("_pending",)

    def __init__(self) -> None:
        self._pending: set[int] = set()

    def can_issue(self, dst: int | None, srcs: Tuple[int, ...]) -> bool:
        """True when no RAW/WAW hazard blocks the instruction."""
        pending = self._pending
        if not pending:
            return True
        if dst is not None and dst in pending:
            return False
        for s in srcs:
            if s in pending:
                return False
        return True

    def reserve(self, dst: int) -> None:
        """Mark ``dst`` in flight (called at issue of a writing op)."""
        self._pending.add(dst)

    def release(self, dst: int) -> None:
        """Clear ``dst`` (called by the writeback/memory completion event).

        Releasing a non-pending register is a simulator bug; fail loudly.
        """
        self._pending.remove(dst)

    def pending(self) -> frozenset[int]:
        """Snapshot of in-flight destination registers."""
        return frozenset(self._pending)

    @property
    def busy(self) -> bool:
        """True if any register is in flight."""
        return bool(self._pending)

    def release_all(self, regs: Iterable[int]) -> None:
        """Release several registers (used by tests/teardown)."""
        for r in regs:
            self.release(r)

    # -- state serialization -------------------------------------------

    def snapshot(self) -> list:
        """Serializable pending-register set (sorted for stable files)."""
        return sorted(self._pending)

    def restore(self, data: Iterable[int]) -> None:
        """Replace the pending set with a snapshotted one."""
        self._pending = set(data)

    def __len__(self) -> int:
        return len(self._pending)
