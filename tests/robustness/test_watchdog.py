"""Watchdog: progress-stall, wall-clock and max_cycles guard paths."""

import time

import pytest

from repro import Gpu, GPUConfig, KernelLaunch
from repro.errors import CellTimeoutError, SimulationError, SimulationHang
from repro.robustness import FaultPlan, ProgressWatchdog
from tests.conftest import tiny_program

CFG1 = GPUConfig.scaled(1)


class TestProgressWindow:
    def test_raises_after_window_without_issues(self):
        gpu = Gpu(CFG1)  # idle GPU: instruction counters never move
        wd = ProgressWatchdog(gpu, window=100)
        wd.beat(30)  # first check: no progress yet, but window not elapsed
        with pytest.raises(SimulationHang) as exc:
            wd.beat(150)
        assert "watchdog window 100" in exc.value.headline
        assert exc.value.report is not None

    def test_progress_resets_the_window(self):
        gpu = Gpu(CFG1)
        wd = ProgressWatchdog(gpu, window=100)
        wd.beat(30)
        gpu.sms[0].counters.instructions = 5  # forward progress
        wd.beat(150)  # would have tripped without the progress
        gpu.sms[0].counters.instructions = 9
        wd.beat(260)
        with pytest.raises(SimulationHang):
            wd.beat(500)  # 500 - 260 >= 100 with no further progress

    def test_window_zero_disables_the_check(self):
        gpu = Gpu(CFG1)
        wd = ProgressWatchdog(gpu, window=0)
        for cycle in (10, 10_000, 10_000_000):
            wd.beat(cycle)  # never raises

    def test_healthy_run_with_tight_window_completes(self):
        """A real kernel issues often enough for any sane window."""
        cfg = CFG1.with_(watchdog_window=5_000)
        res = Gpu(cfg, "lrr").run(KernelLaunch(tiny_program(), 2))
        assert res.counters.tbs_completed == 2


class TestWallClockDeadline:
    def test_expired_deadline_raises_cell_timeout(self):
        gpu = Gpu(CFG1)
        wd = ProgressWatchdog(gpu, deadline=time.monotonic() - 1.0)
        with pytest.raises(CellTimeoutError) as exc:
            wd.beat(0)  # first beat checks the wall clock
        assert "wall-clock" in exc.value.headline
        assert exc.value.report is not None

    def test_generous_deadline_does_not_fire(self):
        gpu = Gpu(CFG1, "lrr")
        res = gpu.run(KernelLaunch(tiny_program(), 2),
                      deadline=time.monotonic() + 3600)
        assert res.cycles > 0

    def test_run_deadline_in_the_past_fails_fast(self):
        gpu = Gpu(CFG1, "lrr")
        with pytest.raises(CellTimeoutError):
            gpu.run(KernelLaunch(tiny_program(), 2),
                    deadline=time.monotonic() - 1.0)


class TestMaxCyclesGuard:
    def test_clamped_max_cycles_raises_hang_with_report(self):
        gpu = Gpu(CFG1, "lrr")
        gpu.install_faults(FaultPlan().clamp_max_cycles(50))
        with pytest.raises(SimulationHang) as exc:
            gpu.run(KernelLaunch(tiny_program(), 2))
        assert "max_cycles=50" in exc.value.headline
        report = exc.value.report
        assert report is not None
        # the snapshot shows live, non-deadlocked machine state
        assert report.sms[0].resident_tbs > 0

    def test_hang_is_still_a_simulation_error(self):
        """Existing `except SimulationError` callers keep working."""
        cfg = CFG1.with_(max_cycles=10)
        gpu = Gpu(cfg, "lrr")
        with pytest.raises(SimulationError):
            gpu.run(KernelLaunch(tiny_program(), 2))
