"""repro — reproduction of "PRO: Progress Aware GPU Warp Scheduling Algorithm".

A pure-Python cycle-level SIMT GPU simulator (the GPGPU-Sim substitute)
plus the four warp schedulers the paper evaluates — LRR, TL, GTO and PRO —
synthetic models of its 25 benchmark kernels, and a harness regenerating
every table and figure of the evaluation (see DESIGN.md / EXPERIMENTS.md).

Quickstart::

    from repro import Gpu, GPUConfig, KernelLaunch
    from repro.workloads import get_kernel

    model = get_kernel("scalarProdGPU")
    launch = model.build_launch(scale=1.0)
    result = Gpu(GPUConfig.scaled(), scheduler="pro").run(launch)
    print(result.summary())
"""

from .config import GPUConfig, LatencyConfig, MemoryConfig, LINE_SIZE, WARP_SIZE
from .core import available_schedulers
from .errors import (
    ConfigError,
    LaunchError,
    ProgramError,
    ReproError,
    SchedulerError,
    SimulationError,
    WorkloadError,
)
from .gpu import Gpu, KernelLaunch, RunResult
from .isa import (
    Broadcast,
    Chase,
    Coalesced,
    Program,
    ProgramBuilder,
    Random,
    Strided,
)
from .simt.occupancy import max_resident_tbs, occupancy_report
from .stats import IssueTrace, SortTraceRecorder, TimelineRecorder

__version__ = "1.0.0"

__all__ = [
    "Broadcast",
    "Chase",
    "Coalesced",
    "ConfigError",
    "GPUConfig",
    "IssueTrace",
    "Gpu",
    "KernelLaunch",
    "LINE_SIZE",
    "LatencyConfig",
    "LaunchError",
    "MemoryConfig",
    "Program",
    "ProgramBuilder",
    "ProgramError",
    "Random",
    "ReproError",
    "RunResult",
    "SchedulerError",
    "SimulationError",
    "SortTraceRecorder",
    "Strided",
    "TimelineRecorder",
    "WARP_SIZE",
    "WorkloadError",
    "available_schedulers",
    "max_resident_tbs",
    "occupancy_report",
    "__version__",
]
