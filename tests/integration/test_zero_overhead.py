"""Zero-overhead guarantee: uninstrumented runs are bit-identical to the
pre-observability simulator.

``tests/golden/micro_cells.jsonl`` holds the full counter state of an
8-kernel x 4-scheduler micro matrix (2 SMs, scale 0.25) captured from the
simulator *before* the probe bus existed. Every cell re-simulated with
``probes=()`` must reproduce those counters exactly — any divergence means
instrumentation changed simulation behaviour, not just observed it.
"""

import json
import os
import time
from pathlib import Path

import pytest

from repro import GPUConfig
from repro.harness.runner import CellPolicy, ResultCache
from repro.robustness import CheckpointStore
from repro.robustness.checkpoint import cell_key, result_to_json

GOLDEN = Path(__file__).resolve().parent.parent / "golden"
CFG = GPUConfig.scaled(2)
SCALE = 0.25


def _golden_cells():
    records = [json.loads(line)
               for line in (GOLDEN / "micro_cells.jsonl").read_text().splitlines()]
    return {(r["kernel"], r["scheduler"]): r for r in records}

_CELLS = _golden_cells()


@pytest.mark.parametrize(
    ("kernel", "scheduler"), sorted(_CELLS),
    ids=[f"{k}-{s}" for k, s in sorted(_CELLS)],
)
def test_plain_run_bit_identical_to_pre_probe_golden(kernel, scheduler):
    record = _CELLS[(kernel, scheduler)]
    # The key hashes the full config tree: a mismatch means the test setup
    # drifted from the one the golden was captured under, not a real diff.
    assert cell_key(kernel, scheduler, CFG, SCALE) == record["key"], (
        "config/scale drift — regenerate tests/golden/micro_cells.jsonl"
    )
    result = ResultCache().run(kernel, scheduler, CFG, SCALE)
    assert result_to_json(result) == record["result"]


@pytest.mark.parametrize("scheduler", ["tl", "lrr", "gto", "pro"])
def test_snapshot_idle_path_bit_identical(tmp_path, scheduler):
    """``snapshot_every=None`` through the checkpointed cache path (which
    still arms the snapshot boundary for cooperative stops) must not
    perturb the simulation at all."""
    record = _CELLS[("cenergy", scheduler)]
    cache = ResultCache(checkpoint=CheckpointStore(tmp_path),
                        policy=CellPolicy(snapshot_every=None))
    result = cache.run("cenergy", scheduler, CFG, SCALE)
    assert result_to_json(result) == record["result"]
    assert cache.snapshot_resumes == 0


def test_snapshot_idle_overhead_within_bound(tmp_path):
    """The idle snapshot machinery costs one flag check per main-loop
    iteration. Against the PR 2 bench baseline this measured < 0.5 %;
    asserting that margin on shared CI runners would flake on scheduler
    noise, so the strict bound is opt-in (``REPRO_STRICT_PERF=1`` on the
    bench machine) and the default bound only catches a real hot-path
    regression."""
    strict = os.environ.get("REPRO_STRICT_PERF") == "1"
    bound = 1.005 if strict else 1.25
    rounds = 7 if strict else 3

    def timed(make_cache):
        best = float("inf")
        for i in range(rounds):
            cache = make_cache(i)
            t0 = time.perf_counter()
            cache.run("cenergy", "pro", CFG, SCALE)
            best = min(best, time.perf_counter() - t0)
        return best

    timed(lambda i: ResultCache())  # warm-up: imports, program caches
    plain = timed(lambda i: ResultCache())
    # A fresh checkpoint dir per round so every round really simulates
    # (a shared dir would answer later rounds from the checkpoint tier).
    idle = timed(lambda i: ResultCache(
        checkpoint=CheckpointStore(tmp_path / f"round{i}"),
        policy=CellPolicy(snapshot_every=None),
    ))
    assert idle <= plain * bound, (
        f"snapshot-idle run took {idle / plain:.3f}x the plain run "
        f"(bound {bound}x)"
    )


def test_golden_matrix_covers_expected_shape():
    kernels = {k for k, _ in _CELLS}
    schedulers = {s for _, s in _CELLS}
    assert len(kernels) == 8
    assert schedulers == {"tl", "lrr", "gto", "pro"}
    assert len(_CELLS) == 32
