"""Experiment harness: regenerates every table and figure of the paper.

See DESIGN.md §5 for the experiment index. Typical use::

    from repro.harness import ExperimentSetup, fig4_speedups
    setup = ExperimentSetup()          # 4-SM scaled config, scale 1.0
    result = fig4_speedups(setup)
    print(result.render())
"""

from .bench import BenchReport, run_bench
from .parallel import resolve_jobs, run_matrix_parallel
from .runner import (
    CellFailure,
    CellPolicy,
    ExperimentSetup,
    ResultCache,
    run_kernel,
)
from .experiments import (
    ablation_barrier_handling,
    ablation_progress_normalization,
    ablation_threshold,
    extra_scheduler_comparison,
    fig1_stall_breakdown,
    fig2_tb_timeline,
    fig4_speedups,
    fig5_stall_improvement,
    table1_config,
    table2_benchmarks,
    table3_stall_ratios,
    table4_sort_trace,
)

__all__ = [
    "BenchReport",
    "CellFailure",
    "CellPolicy",
    "ExperimentSetup",
    "ResultCache",
    "ablation_barrier_handling",
    "ablation_progress_normalization",
    "ablation_threshold",
    "extra_scheduler_comparison",
    "fig1_stall_breakdown",
    "fig2_tb_timeline",
    "fig4_speedups",
    "fig5_stall_improvement",
    "resolve_jobs",
    "run_bench",
    "run_kernel",
    "run_matrix_parallel",
    "table1_config",
    "table2_benchmarks",
    "table3_stall_ratios",
    "table4_sort_trace",
]
