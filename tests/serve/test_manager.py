"""JobManager: lifecycle, dedup, coalescing, preemption, recovery.

These tests drive the manager directly (no HTTP) — the front-end in
:mod:`repro.serve.app` is a thin adapter tested separately.
"""

import time

import pytest

from repro import GPUConfig, simulate
from repro.robustness.checkpoint import result_to_json
from repro.robustness.faults import FaultPlan
from repro.serve import JobManager, ServeConfig
from repro.serve.jobs import JobState

RUN = {"kind": "run", "kernel": "scalarProdGPU", "scheduler": "pro",
       "sms": 2, "scale": 0.25}
#: A cell long enough that preemption reliably lands mid-simulation.
LONG_RUN = {"kind": "run", "kernel": "aesEncrypt128", "scheduler": "pro",
            "sms": 2, "scale": 1.0}


def wait_for(predicate, timeout=180.0, poll=0.005):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if predicate():
            return
        time.sleep(poll)
    raise AssertionError("condition not reached in time")


def wait_terminal(job, timeout=180.0):
    wait_for(lambda: job.state in JobState.TERMINAL, timeout)
    return job.state


@pytest.fixture()
def manager(tmp_path):
    m = JobManager(ServeConfig(directory=str(tmp_path / "serve"))).start()
    yield m
    m.close()


def ledger_events(m):
    return [e["event"] for e in m.ledger.entries()]


class TestLifecycle:
    def test_submit_running_done(self, manager):
        job = manager.submit(RUN)
        assert job.state == JobState.QUEUED
        assert wait_terminal(job) == JobState.DONE
        assert job.result["kind"] == "run"
        assert job.result["result"]["cycles"] > 0
        assert job.started_at is not None
        assert job.finished_at >= job.started_at
        # Ledger saw the full transition chain, in order.
        events = ledger_events(manager)
        assert events[:3] == ["service-start", "submitted", "state"]
        states = [e["state"] for e in manager.ledger.entries()
                  if e["event"] == "state"]
        assert states == [JobState.RUNNING, JobState.DONE]

    def test_result_matches_direct_simulation(self, manager):
        job = manager.submit(RUN)
        wait_terminal(job)
        direct = simulate("scalarProdGPU", "pro",
                          cfg=GPUConfig.scaled(2), scale=0.25)
        assert job.result["result"] == result_to_json(direct)

    def test_invalid_submission_never_becomes_a_job(self, manager):
        from repro.serve.jobs import JobSpecError

        with pytest.raises(JobSpecError):
            manager.submit({"kind": "run", "kernel": "nope",
                            "scheduler": "pro"})
        assert manager.jobs_json() == []


class TestDedup:
    def test_identical_submission_is_one_simulation(self, manager):
        """The acceptance criterion: same (kernel, scheduler, config)
        twice -> exactly one simulation, ledger shows a cache hit."""
        first = manager.submit(RUN)
        wait_terminal(first)
        assert manager.cache.runs_executed == 1
        second = manager.submit(RUN)
        assert second.state == JobState.DONE  # instant, no queueing
        assert second.cache_hit is True
        assert second.result == first.result
        assert manager.cache.runs_executed == 1
        assert "cache-hit" in ledger_events(manager)

    def test_priority_is_not_part_of_the_content(self, manager):
        first = manager.submit(RUN)
        wait_terminal(first)
        second = manager.submit(dict(RUN, priority=7))
        assert second.cache_hit is True
        assert manager.cache.runs_executed == 1

    def test_concurrent_identical_jobs_coalesce(self, manager):
        primary = manager.submit(LONG_RUN)
        wait_for(lambda: primary.state == JobState.RUNNING)
        twin = manager.submit(LONG_RUN)
        assert twin.coalesced_with == primary.id
        wait_terminal(primary)
        wait_terminal(twin, timeout=10.0)
        assert twin.state == JobState.DONE
        assert twin.cache_hit is True
        assert twin.result == primary.result
        assert manager.cache.runs_executed == 1
        assert "coalesced" in ledger_events(manager)

    def test_dedup_survives_restart_via_checkpoint(self, tmp_path):
        directory = str(tmp_path / "serve")
        with JobManager(ServeConfig(directory=directory)) as first:
            job = first.submit(RUN)
            wait_terminal(job)
            payload = job.result
            assert first.cache.runs_executed == 1
        reborn = JobManager(
            ServeConfig(directory=directory, force=True)
        ).start()
        try:
            job = reborn.submit(RUN)
            assert job.state == JobState.DONE
            assert job.cache_hit is True
            assert job.result == payload
            assert reborn.cache.runs_executed == 0
            assert "cache-hit" in ledger_events(reborn)
        finally:
            reborn.close()


class TestPreemption:
    def test_preempted_job_resumes_bit_identically(self, manager):
        low = manager.submit(LONG_RUN)
        wait_for(lambda: low.state == JobState.RUNNING)
        high = manager.submit(dict(RUN, priority=5))
        wait_terminal(high)
        wait_terminal(low)
        assert low.state == JobState.DONE
        assert low.preemptions == 1
        assert low.attempts == 2
        assert manager.cache.snapshot_resumes == 1
        # High priority finished before the preempted job came back.
        assert high.finished_at <= low.finished_at
        events = ledger_events(manager)
        for expected in ("preempt-request", "preempted", "resumed"):
            assert expected in events
        # The acceptance criterion: counters (incl. per-SM) bit-identical
        # to an uninterrupted run of the same cell.
        direct = simulate("aesEncrypt128", "pro",
                          cfg=GPUConfig.scaled(2), scale=1.0)
        assert low.result["result"] == result_to_json(direct)

    def test_equal_priority_does_not_preempt(self, manager):
        low = manager.submit(LONG_RUN)
        wait_for(lambda: low.state == JobState.RUNNING)
        peer = manager.submit(RUN)  # same priority: waits its turn
        wait_terminal(low)
        wait_terminal(peer)
        assert low.preemptions == 0
        assert "preempt-request" not in ledger_events(manager)


class TestCancel:
    def test_cancel_queued_job(self, manager):
        running = manager.submit(LONG_RUN)
        wait_for(lambda: running.state == JobState.RUNNING)
        queued = manager.submit(RUN)
        cancelled = manager.cancel(queued.id)
        assert cancelled.state == JobState.CANCELLED
        wait_terminal(running)
        # The cancelled job never ran.
        assert queued.started_at is None
        assert queued.attempts == 0

    def test_cancel_running_job_keeps_its_snapshot(self, manager):
        job = manager.submit(LONG_RUN)
        wait_for(lambda: job.state == JobState.RUNNING)
        manager.cancel(job.id)
        wait_terminal(job)
        assert job.state == JobState.CANCELLED
        # Service keeps serving...
        after = manager.submit(RUN)
        assert wait_terminal(after) == JobState.DONE
        # ...and a re-submission of the cancelled cell resumes from the
        # snapshot the cancel left behind instead of restarting.
        retry = manager.submit(LONG_RUN)
        assert wait_terminal(retry) == JobState.DONE
        assert manager.cache.snapshot_resumes == 1
        direct = simulate("aesEncrypt128", "pro",
                          cfg=GPUConfig.scaled(2), scale=1.0)
        assert retry.result["result"] == result_to_json(direct)

    def test_cancel_unknown_job(self, manager):
        assert manager.cancel("j9999-missing") is None


class TestFailures:
    def test_injected_cell_failure_fails_the_job(self, tmp_path):
        plan = FaultPlan().fail_cell("scalarProdGPU", "pro", times=10)
        m = JobManager(ServeConfig(directory=str(tmp_path / "serve")),
                       fault_plan=plan).start()
        try:
            job = m.submit(RUN)
            assert wait_terminal(job) == JobState.FAILED
            assert "InjectedFault" in job.error
            assert job.result is None
            # The failure did not poison the service or the dedup map:
            # an unrelated cell still runs.
            ok = m.submit(dict(RUN, scheduler="lrr"))
            assert wait_terminal(ok) == JobState.DONE
        finally:
            m.close()


class TestSweepJobs:
    def test_sweep_recovers_from_worker_death(self, tmp_path):
        plan = FaultPlan().kill_worker("scalarProdGPU", "lrr")
        m = JobManager(ServeConfig(directory=str(tmp_path / "serve"),
                                   jobs=2), fault_plan=plan).start()
        try:
            job = m.submit({"kind": "sweep", "kernels": ["scalarProdGPU"],
                            "schedulers": ["lrr", "pro"],
                            "sms": 2, "scale": 0.25})
            assert wait_terminal(job) == JobState.DONE
            assert job.result["failures"] == []
            assert job.result["simulated"] == 2
            cells = job.result["cells"]
            assert cells["scalarProdGPU/lrr"]["cycles"] > 0
            # The pool's recovery telemetry reached the ledger and the
            # job's event feed.
            pool_kinds = [e["pool_kind"] for e in m.ledger.entries()
                          if e["event"] == "pool"]
            assert "worker-death" in pool_kinds
            assert "respawn" in pool_kinds
            assert any("worker-death" in line for line in job.events)
            assert job.progress["cells_done"] == 2
            # And the killed-then-redispatched cell's counters are the
            # true ones.
            direct = simulate("scalarProdGPU", "lrr",
                              cfg=GPUConfig.scaled(2), scale=0.25)
            assert cells["scalarProdGPU/lrr"] == result_to_json(direct)
        finally:
            m.close()

    def test_sweep_dedups_against_run_jobs(self, manager):
        run = manager.submit(RUN)
        wait_terminal(run)
        sweep = manager.submit({"kind": "sweep",
                                "kernels": ["scalarProdGPU"],
                                "schedulers": ["pro"],
                                "sms": 2, "scale": 0.25})
        assert wait_terminal(sweep) == JobState.DONE
        # The sweep's only cell was already simulated by the run job.
        assert manager.cache.runs_executed == 1
        assert sweep.result["simulated"] == 0
        assert sweep.cache_hit is True


class TestFidelityJobs:
    def test_smoke_profile_scores(self, manager):
        job = manager.submit({"kind": "fidelity", "profile": "smoke"})
        assert wait_terminal(job, timeout=600.0) == JobState.DONE
        assert job.result["kind"] == "fidelity"
        assert job.result["ok"] is True
        assert job.result["report"]["profile"]["name"] == "smoke"
