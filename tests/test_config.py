"""Validation tests for the configuration layer (paper Table I)."""

import dataclasses

import pytest

from repro.config import GPUConfig, LatencyConfig, MemoryConfig
from repro.errors import ConfigError


class TestGpuConfigDefaults:
    def test_table1_values(self):
        cfg = GPUConfig.gtx480()
        assert cfg.num_sms == 14
        assert cfg.max_tbs_per_sm == 8
        assert cfg.max_threads_per_sm == 1536
        assert cfg.shared_mem_per_sm == 48 * 1024
        assert cfg.memory.l1_size == 16 * 1024
        assert cfg.memory.l2_size == 768 * 1024
        assert cfg.registers_per_sm == 32768
        assert cfg.num_schedulers == 2

    def test_max_warps(self):
        assert GPUConfig.gtx480().max_warps_per_sm == 48

    def test_scaled_changes_only_sms(self):
        a, b = GPUConfig.gtx480(), GPUConfig.scaled(4)
        assert b.num_sms == 4
        assert b.max_threads_per_sm == a.max_threads_per_sm
        assert b.memory == a.memory

    def test_with_helper(self):
        cfg = GPUConfig.scaled(2).with_(sp_units=4)
        assert cfg.sp_units == 4
        assert cfg.num_sms == 2

    def test_frozen(self):
        with pytest.raises(dataclasses.FrozenInstanceError):
            GPUConfig.scaled(2).num_sms = 9

    def test_paper_pro_threshold(self):
        assert GPUConfig.gtx480().pro_sort_threshold == 1000

    def test_paper_tl_group_size(self):
        assert GPUConfig.gtx480().tl_fetch_group_size == 8


class TestGpuConfigValidation:
    @pytest.mark.parametrize("field,value", [
        ("num_sms", 0),
        ("max_tbs_per_sm", 0),
        ("max_threads_per_sm", 16),    # below one warp
        ("max_threads_per_sm", 100),   # not a warp multiple
        ("warp_size", 0),
        ("num_schedulers", 0),
        ("sp_units", 0),
        ("sfu_units", 0),
        ("lsu_units", 0),
        ("registers_per_sm", 0),
        ("shared_mem_per_sm", -1),
        ("pro_sort_threshold", 0),
        ("tl_fetch_group_size", 0),
        ("tb_launch_latency", -1),
        ("max_cycles", 0),
    ])
    def test_invalid_field_rejected(self, field, value):
        with pytest.raises(ConfigError):
            GPUConfig.scaled(2).with_(**{field: value})


class TestLatencyValidation:
    @pytest.mark.parametrize("field", [
        "alu", "mad", "sfu", "shared", "l1_hit", "l2_hit",
        "dram_row_hit", "dram_row_miss", "noc",
    ])
    def test_nonpositive_latency_rejected(self, field):
        with pytest.raises(ConfigError):
            dataclasses.replace(LatencyConfig(), **{field: 0}).validate()

    def test_negative_extras_rejected(self):
        with pytest.raises(ConfigError):
            dataclasses.replace(LatencyConfig(),
                                shared_conflict=-1).validate()
        with pytest.raises(ConfigError):
            dataclasses.replace(LatencyConfig(), branch_bubble=-1).validate()

    def test_defaults_valid(self):
        LatencyConfig().validate()


class TestMemoryValidation:
    def test_defaults_valid(self):
        MemoryConfig().validate()

    @pytest.mark.parametrize("kw", [
        dict(line_size=100),
        dict(line_size=0),
        dict(l1_size=0),
        dict(l1_size=1000),                 # not divisible
        dict(l2_size=1000),                 # not divisible by banks*ways*line
        dict(mshr_entries=0),
        dict(mshr_merge=0),
        dict(dram_channels=0),
        dict(dram_banks=0),
        dict(dram_row_size=64),             # < line size
        dict(dram_hit_occupancy=0),
        dict(dram_miss_occupancy=0),
        dict(dram_bus_cycles=0),
    ])
    def test_invalid_geometry_rejected(self, kw):
        with pytest.raises(ConfigError):
            dataclasses.replace(MemoryConfig(), **kw).validate()

    def test_config_validates_nested(self):
        bad_mem = dataclasses.replace(MemoryConfig(), mshr_entries=0)
        with pytest.raises(ConfigError):
            GPUConfig.scaled(2).with_(memory=bad_mem)


class TestErrorsHierarchy:
    def test_all_derive_from_repro_error(self):
        from repro import errors

        for name in ("ConfigError", "ProgramError", "LaunchError",
                     "SchedulerError", "SimulationError", "WorkloadError"):
            assert issubclass(getattr(errors, name), errors.ReproError)
