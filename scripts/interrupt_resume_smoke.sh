#!/usr/bin/env bash
# Interrupt-resume smoke test (run by CI, works locally from anywhere):
#
#   1. simulate one cell uninterrupted -> golden counters
#   2. start the same cell with --checkpoint/--snapshot-every, SIGTERM it
#      mid-run; the harness must snapshot the in-flight cell and exit 3
#   3. re-run the same command; it must resume the cell from the snapshot
#      (not restart it) and produce counters identical to the golden run
#   4. run a jobs=2 parallel sweep whose target cell kills its worker and
#      SIGTERM the sweep the instant the pool respawns; the harness must
#      exit 3 with every already-adopted cell checkpointed, and a re-run
#      must complete the sweep bit-identical to an uninterrupted one
set -euo pipefail
cd "$(dirname "$0")/.."
export PYTHONPATH=src

# Long enough (~4 s simulated work) that a signal 1.5 s in lands mid-run.
KERNEL=bfs_kernel SCHED=pro SMS=2 SCALE=6.0
WORK=$(mktemp -d)
trap 'rm -rf "$WORK"' EXIT

run() {
    python -m repro.harness.cli run "$KERNEL" --scheduler "$SCHED" \
        --sms "$SMS" --scale "$SCALE" "$@"
}

echo "== uninterrupted reference =="
run --json "$WORK/golden.json" >/dev/null

echo "== interrupted run (SIGTERM mid-cell) =="
# Background python itself (not a function wrapper) so $! is the PID the
# signal must reach.
python -m repro.harness.cli run "$KERNEL" --scheduler "$SCHED" \
    --sms "$SMS" --scale "$SCALE" \
    --checkpoint "$WORK/ckpt" --snapshot-every 50000 \
    >"$WORK/first.log" 2>&1 &
PID=$!
sleep 1.5
kill -TERM "$PID"
rc=0
wait "$PID" || rc=$?
cat "$WORK/first.log"
if [ "$rc" -ne 3 ]; then
    echo "FAIL: interrupted run exited $rc, expected 3" \
         "(did it finish before the signal?)" >&2
    exit 1
fi
SNAP=$(find "$WORK/ckpt/snapshots" -name '*.snap' 2>/dev/null | head -n1)
if [ -z "$SNAP" ]; then
    echo "FAIL: no mid-run snapshot under $WORK/ckpt/snapshots" >&2
    exit 1
fi
echo "snapshot written: $(basename "$SNAP")"

echo "== resumed run =="
run --checkpoint "$WORK/ckpt" --snapshot-every 50000 \
    --json "$WORK/resumed.json"

python - "$WORK/golden.json" "$WORK/resumed.json" <<'EOF'
import json, sys

golden, resumed = (json.load(open(p)) for p in sys.argv[1:3])
if golden != resumed:
    diff = {k for k in golden if golden[k] != resumed.get(k)}
    raise SystemExit(f"FAIL: resumed result differs from golden in {sorted(diff)}\n"
                     f"golden : {golden}\nresumed: {resumed}")
print(f"OK: resumed run is bit-identical to the uninterrupted run "
      f"({golden['cycles']} cycles, ipc {golden['ipc']:.3f})")
EOF

# ---------------------------------------------------------------------------
# Parallel-sweep leg: interrupt landing exactly mid-respawn.
# ---------------------------------------------------------------------------
cat > "$WORK/parallel_driver.py" <<'EOF'
"""Parallel leg of the interrupt-resume smoke.

Modes:
  golden <ckpt> <out>  clean jobs=2 sweep, dump per-cell counters
  chaos  <ckpt>        same sweep with kill_worker armed on the last
                       cell; a pool-event probe SIGTERMs this process
                       the moment the dead worker is respawned, so the
                       signal lands mid-respawn. Must exit 3.
  resume <ckpt> <out>  re-run over the same checkpoint; must finish.
"""
import json
import os
import signal
import sys

from repro.config import GPUConfig
from repro.errors import SimulationInterrupted
from repro.harness.parallel import run_matrix_parallel
from repro.harness.runner import ResultCache, graceful_interrupts
from repro.robustness.checkpoint import CheckpointStore, result_to_json
from repro.robustness.faults import FaultPlan

CELLS = [(k, s) for k in ("scalarProdGPU", "cenergy") for s in ("lrr", "pro")]
CONFIG = GPUConfig.scaled(2)
SCALE = 0.15

mode, ckpt = sys.argv[1], sys.argv[2]
out = sys.argv[3] if len(sys.argv) > 3 else None

faults = None
probes = []
if mode == "chaos":
    # The last cell only dispatches after earlier cells complete, so by
    # the time it kills its worker at least one cell is checkpointed.
    faults = FaultPlan().kill_worker(*CELLS[-1], times=1)

    class SigtermOnRespawn:
        def on_pool_event(self, event):
            if event.kind == "respawn":
                os.kill(os.getpid(), signal.SIGTERM)

    probes = [SigtermOnRespawn()]

cache = ResultCache(checkpoint=CheckpointStore(ckpt), faults=faults)
try:
    with graceful_interrupts(cache):
        results = run_matrix_parallel(cache, CELLS, CONFIG, SCALE, jobs=2,
                                      probes=probes)
except SimulationInterrupted as err:
    print(f"interrupted: {err}")
    sys.exit(3)

if out:
    payload = {f"{k}/{s}": result_to_json(r)
               for (k, s), r in sorted(results.items())}
    with open(out, "w", encoding="utf-8") as f:
        json.dump(payload, f, sort_keys=True)
print(f"completed {len(results)} cells (checkpoint hits "
      f"{cache.checkpoint_hits}, fresh runs {cache.runs_executed})")
EOF

echo "== parallel sweep: golden reference (jobs=2) =="
python "$WORK/parallel_driver.py" golden "$WORK/pgold-ckpt" "$WORK/pgold.json"

echo "== parallel sweep interrupted mid-respawn (SIGTERM) =="
rc=0
python "$WORK/parallel_driver.py" chaos "$WORK/pckpt" \
    >"$WORK/chaos.log" 2>&1 || rc=$?
cat "$WORK/chaos.log"
if [ "$rc" -ne 3 ]; then
    echo "FAIL: interrupted parallel sweep exited $rc, expected 3" >&2
    exit 1
fi
KEPT=$(wc -l < "$WORK/pckpt/cells.jsonl" 2>/dev/null || echo 0)
if [ "$KEPT" -lt 1 ]; then
    echo "FAIL: no checkpointed cells survived the parallel interrupt" >&2
    exit 1
fi
echo "checkpointed cells kept across the interrupt: $KEPT"

echo "== parallel sweep resumed =="
python "$WORK/parallel_driver.py" resume "$WORK/pckpt" "$WORK/presumed.json" \
    | tee "$WORK/presume.log"
if ! grep -q "checkpoint hits $KEPT" "$WORK/presume.log"; then
    echo "FAIL: resume did not reuse the $KEPT checkpointed cell(s)" >&2
    exit 1
fi

python - "$WORK/pgold.json" "$WORK/presumed.json" <<'EOF'
import json, sys

golden, resumed = (json.load(open(p)) for p in sys.argv[1:3])
if golden != resumed:
    diff = {k for k in golden if golden[k] != resumed.get(k)}
    raise SystemExit(
        f"FAIL: resumed parallel sweep differs from golden in {sorted(diff)}")
print(f"OK: resumed parallel sweep is bit-identical to the uninterrupted "
      f"one across {len(golden)} cells")
EOF
