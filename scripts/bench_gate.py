#!/usr/bin/env python
"""Bench gate: fail CI when the simulator gets slower.

Reads a ``BENCH_*.json`` written by ``pro-sim bench`` and enforces two
independent checks:

1. ``matrix.parallel_speedup`` against ``--min-speedup`` (default 1.2).
   The speedup is measured over warm workers (pool spawn excluded), so
   the gate holds the *steady-state* number a long sweep sees.
2. With ``--micro-reference REF.json``: the geomean micro cycles/sec of
   the fresh report must not regress more than ``--max-regression``
   (default 0.10 = 10%) below the committed reference report, over the
   (kernel, scheduler) cells the two reports share.

The gate is honest about hardware: a machine with a single CPU core
cannot run two simulations concurrently, so a parallel speedup above
1.0 is physically impossible there and that check is reported as
skipped (exit 0) rather than failed. Likewise, absolute cycles/sec on a
developer laptop is not comparable to the reference numbers measured on
CI runners, so the micro-throughput check only enforces when the ``CI``
environment variable is set — off-CI it prints the ratio and skips.
"""

import argparse
import json
import math
import os
import sys


def micro_geomean(report: dict, keys=None) -> float:
    """Geomean micro cycles/sec, optionally restricted to matched keys."""
    vals = [
        c["cycles_per_sec"] for c in report.get("micro", [])
        if c.get("cycles_per_sec")
        and (keys is None or (c["kernel"], c["scheduler"]) in keys)
    ]
    if not vals:
        return 0.0
    return math.exp(sum(math.log(v) for v in vals) / len(vals))


def gate_parallel(report: dict, min_speedup: float) -> bool:
    """Check the warm-worker parallel speedup; returns False on FAIL."""
    matrix = report.get("matrix", {})
    jobs = int(report.get("jobs", 1))
    speedup = float(matrix.get("parallel_speedup", 0.0))
    spawn = float(matrix.get("seconds_spawn", 0.0))

    print(f"bench gate: jobs={jobs} parallel_speedup={speedup:.2f}x "
          f"(pool spawn {spawn:.2f}s, excluded) "
          f"threshold={min_speedup:.2f}x")

    if jobs < 2:
        print("SKIP: bench ran with jobs < 2; no parallel speedup to gate")
        return True
    cores = os.cpu_count() or 1
    if cores < 2:
        print(f"SKIP: only {cores} CPU core available — parallel speedup "
              ">1.0 is physically impossible here; gate enforced on "
              "multi-core CI only")
        return True
    if speedup < min_speedup:
        print(f"FAIL: parallel_speedup {speedup:.2f}x < "
              f"{min_speedup:.2f}x on a {cores}-core machine",
              file=sys.stderr)
        return False
    print("OK: parallel sweep beats serial at the gated margin")
    return True


def gate_micro(report: dict, reference_path: str,
               max_regression: float) -> bool:
    """Check geomean micro throughput vs a reference bench JSON."""
    with open(reference_path, encoding="utf-8") as f:
        reference = json.load(f)
    shared = (
        {(c["kernel"], c["scheduler"]) for c in report.get("micro", [])}
        & {(c["kernel"], c["scheduler"]) for c in reference.get("micro", [])}
    )
    new = micro_geomean(report, shared)
    ref = micro_geomean(reference, shared)
    if not shared or not ref or not new:
        print("SKIP: no matched micro cells between the report and the "
              "reference; nothing to gate")
        return True
    ratio = new / ref
    floor = 1.0 - max_regression
    print(f"micro gate: geomean {new:,.0f} c/s vs reference {ref:,.0f} c/s "
          f"({report.get('backend', 'reference')} vs "
          f"{reference.get('backend', 'reference')}) over {len(shared)} "
          f"matched cells -> {ratio:.2f}x (floor {floor:.2f}x)")
    if not os.environ.get("CI"):
        print("SKIP: CI env var unset — absolute cycles/sec is not "
              "comparable across machines; micro gate enforced on CI only")
        return True
    if ratio < floor:
        print(f"FAIL: micro throughput regressed to {ratio:.2f}x of the "
              f"reference (allowed floor {floor:.2f}x)", file=sys.stderr)
        return False
    print("OK: micro throughput within the regression budget")
    return True


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("bench_json", help="BENCH_*.json from pro-sim bench")
    parser.add_argument("--min-speedup", type=float, default=1.2,
                        help="minimum matrix.parallel_speedup (default 1.2)")
    parser.add_argument("--micro-reference", default=None, metavar="REF.json",
                        help="committed reference BENCH JSON; when given, "
                             "gate geomean micro cycles/sec against it")
    parser.add_argument("--max-regression", type=float, default=0.10,
                        help="allowed fractional geomean regression vs the "
                             "micro reference (default 0.10 = 10%%)")
    args = parser.parse_args()

    with open(args.bench_json, encoding="utf-8") as f:
        report = json.load(f)

    ok = gate_parallel(report, args.min_speedup)
    if args.micro_reference is not None:
        ok = gate_micro(report, args.micro_reference,
                        args.max_regression) and ok
    if not ok:
        sys.exit(1)


if __name__ == "__main__":
    main()
