"""Shared fixtures for the benchmark harness.

Each ``test_fig*`` / ``test_table*`` benchmark regenerates one artifact of
the paper end to end (simulations included) and attaches the headline
numbers to ``benchmark.extra_info`` so a ``--benchmark-json`` export
carries the reproduction results alongside the timings.

Benchmarks run at a reduced scale (2 SMs, fractional grids) so the whole
suite completes in a few minutes; the full-scale artifacts are produced
by ``pro-sim`` (see EXPERIMENTS.md).
"""

from __future__ import annotations

import pytest

from repro.config import GPUConfig
from repro.harness.runner import ExperimentSetup

#: Scale used by the artifact benchmarks.
BENCH_SMS = 2
BENCH_SCALE = 0.35


def fresh_setup() -> ExperimentSetup:
    """A new setup with an empty cache (so timings measure real work)."""
    return ExperimentSetup(config=GPUConfig.scaled(BENCH_SMS),
                           scale=BENCH_SCALE)


@pytest.fixture(scope="session")
def shared_setup() -> ExperimentSetup:
    """Session-shared setup for benches that assert on results (cached)."""
    return fresh_setup()


def once(benchmark, fn):
    """Run an expensive artifact regeneration exactly once under timing."""
    return benchmark.pedantic(fn, rounds=1, iterations=1, warmup_rounds=0)
