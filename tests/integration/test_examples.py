"""The bundled examples must run end to end (they are part of the API
contract: anything they use is public)."""

import subprocess
import sys
from pathlib import Path


EXAMPLES = Path(__file__).resolve().parents[2] / "examples"


def run_example(name: str, *args: str, timeout: int = 420) -> str:
    proc = subprocess.run(
        [sys.executable, str(EXAMPLES / name), *args],
        capture_output=True,
        text=True,
        timeout=timeout,
    )
    assert proc.returncode == 0, proc.stderr[-2000:]
    return proc.stdout


class TestExamples:
    def test_quickstart(self):
        out = run_example("quickstart.py", "cenergy")
        assert "PRO speedup" in out
        assert "cenergy" in out

    def test_custom_kernel(self):
        out = run_example("custom_kernel.py")
        assert "smem/TB" in out
        assert "PRO speedup".lower() in out.lower()

    def test_timeline_visualization(self):
        out = run_example("timeline_visualization.py", "cenergy")
        assert "LRR" in out and "PRO" in out
        assert "#" in out  # gantt bars rendered

    def test_scheduler_comparison(self):
        out = run_example("scheduler_comparison.py", "cenergy",
                          "sha1_overlap")
        assert "GEOMEAN" in out

    def test_memory_hierarchy_study(self):
        out = run_example("memory_hierarchy_study.py")
        assert "pointer chase" in out
        assert "coalesced" in out

    def test_issue_trace_debugging(self):
        out = run_example("issue_trace_debugging.py")
        assert "Opcode histogram" in out
        assert "Issue-slot share" in out

    def test_sensitivity_sweeps(self):
        out = run_example("sensitivity_sweeps.py", "cenergy")
        assert "latency" in out.lower()
        assert "speedup" in out.lower()
