"""CI smoke test for ``pro-sim serve``.

Boots the real service as a subprocess, drives it over plain HTTP the
way an external client would, and checks the three serve guarantees
end to end:

1. a submitted run job completes with counters **equal to a direct
   in-process** ``repro.simulate()`` of the same cell;
2. re-submitting the same job is a ledger-audited cache hit — exactly
   one simulation happened service-wide;
3. a clean shutdown leaves a parseable JSONL ledger behind (uploaded as
   the CI artifact).

Exit 0 on success, 1 with a diagnostic on any violation.

Usage: PYTHONPATH=src python scripts/serve_smoke.py [--serve-dir DIR]
"""

import argparse
import json
import re
import select
import signal
import subprocess
import sys
import time
import urllib.request

SMOKE_JOB = {"kind": "run", "kernel": "scalarProdGPU",
             "scheduler": "pro", "sms": 2, "scale": 0.25}
BOOT_TIMEOUT = 60.0
JOB_TIMEOUT = 300.0


def fail(msg):
    print(f"serve-smoke: FAIL: {msg}", file=sys.stderr)
    sys.exit(1)


def http(method, url, body=None):
    data = json.dumps(body).encode() if body is not None else None
    req = urllib.request.Request(url, data=data, method=method)
    with urllib.request.urlopen(req, timeout=30) as resp:
        return json.loads(resp.read().decode())


def wait_for_banner(proc):
    """Read the child's stdout until it announces its listen address."""
    deadline = time.monotonic() + BOOT_TIMEOUT
    pattern = re.compile(r"listening on (http://\S+)")
    while time.monotonic() < deadline:
        if proc.poll() is not None:
            fail(f"service exited during startup (rc={proc.returncode})")
        ready, _, _ = select.select([proc.stdout], [], [], 1.0)
        if not ready:
            continue
        line = proc.stdout.readline()
        if not line:
            continue
        print(f"  [serve] {line.rstrip()}")
        match = pattern.search(line)
        if match:
            return match.group(1)
    fail("service did not announce its address in time")


def wait_terminal(base, job_id):
    deadline = time.monotonic() + JOB_TIMEOUT
    while time.monotonic() < deadline:
        job = http("GET", f"{base}/jobs/{job_id}")
        if job["state"] in ("done", "failed", "cancelled"):
            return job
        time.sleep(0.2)
    fail(f"job {job_id} did not finish within {JOB_TIMEOUT}s")


def main():
    parser = argparse.ArgumentParser()
    parser.add_argument("--serve-dir", default="serve-smoke")
    args = parser.parse_args()

    proc = subprocess.Popen(
        [sys.executable, "-m", "repro.harness.cli", "serve",
         "--port", "0", "--serve-dir", args.serve_dir],
        stdout=subprocess.PIPE, stderr=subprocess.STDOUT, text=True,
    )
    try:
        base = wait_for_banner(proc)
        if not http("GET", f"{base}/healthz").get("ok"):
            fail("/healthz not ok")

        print(f"serve-smoke: submitting {SMOKE_JOB} to {base}")
        job = http("POST", f"{base}/jobs", SMOKE_JOB)
        done = wait_terminal(base, job["id"])
        if done["state"] != "done":
            fail(f"job ended {done['state']}: {done.get('error')}")
        served = http("GET", f"{base}/jobs/{job['id']}/result")
        served_counters = served["result"]["result"]

        # Oracle: the same cell simulated directly, in this process.
        from repro import GPUConfig, simulate
        from repro.robustness.checkpoint import result_to_json

        direct = result_to_json(simulate(
            SMOKE_JOB["kernel"], SMOKE_JOB["scheduler"],
            cfg=GPUConfig.scaled(SMOKE_JOB["sms"]),
            scale=SMOKE_JOB["scale"],
        ))
        if served_counters != direct:
            fail("served counters differ from direct repro.simulate(): "
                 f"served cycles={served_counters.get('cycles')} "
                 f"direct cycles={direct.get('cycles')}")
        print(f"serve-smoke: counters match direct simulation "
              f"(cycles={direct['cycles']})")

        dup = http("POST", f"{base}/jobs", SMOKE_JOB)
        if not (dup["state"] == "done" and dup["cache_hit"]):
            fail(f"duplicate submission was not a cache hit: {dup}")
        status = http("GET", f"{base}/status")
        executed = status["service"]["cache"]["runs_executed"]
        if executed != 1:
            fail(f"expected exactly 1 simulation, saw {executed}")
        ledger = http("GET", f"{base}/ledger")["entries"]
        events = [e["event"] for e in ledger]
        if "cache-hit" not in events:
            fail(f"no cache-hit ledger entry; saw {events}")
        print("serve-smoke: dedup verified (1 simulation, "
              "ledger cache-hit recorded)")
    finally:
        if proc.poll() is None:
            proc.send_signal(signal.SIGINT)
            try:
                proc.wait(timeout=30)
            except subprocess.TimeoutExpired:
                proc.kill()

    # The shutdown path must leave a parseable ledger (the CI artifact).
    from repro.serve import JobLedger

    entries = JobLedger.load(f"{args.serve_dir}/ledger.jsonl")
    if not entries or entries[-1]["event"] != "service-stop":
        fail("ledger missing or not closed with service-stop")
    print(f"serve-smoke: OK ({len(entries)} ledger entries, "
          f"artifact at {args.serve_dir}/ledger.jsonl)")


if __name__ == "__main__":
    main()
