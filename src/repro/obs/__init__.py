"""repro.obs — unified observability: probes, event bus, metrics, exporters.

The one instrumentation story for the simulator (see
docs/observability.md):

* :class:`Probe` — the typed hook protocol third-party probes implement;
* :class:`ProbeBus` — dispatches simulator events to attached probes
  (built automatically by ``Gpu.run(probes=[...])``);
* :class:`MetricsSampler` — windowed per-SM IPC / occupancy / stall
  breakdown, exportable to JSONL and CSV;
* :class:`ChromeTraceProbe` — records a run as Chrome trace-event JSON,
  loadable in Perfetto / ``chrome://tracing``;
* the existing recorders (:class:`~repro.stats.timeline.TimelineRecorder`,
  :class:`~repro.stats.timeline.SortTraceRecorder`,
  :class:`~repro.stats.trace.IssueTrace`) are probes too — pass them in
  the same ``probes=`` list.
"""

from .bus import EVENTS, Probe, ProbeBus
from .export import ChromeTraceProbe, write_csv, write_jsonl
from .metrics import MetricsSampler, MetricsWindow

__all__ = [
    "EVENTS",
    "ChromeTraceProbe",
    "MetricsSampler",
    "MetricsWindow",
    "Probe",
    "ProbeBus",
    "write_csv",
    "write_jsonl",
]
