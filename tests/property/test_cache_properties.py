"""Property-based tests for the cache (hypothesis)."""

from hypothesis import given, settings, strategies as st

from repro.memory.cache import Cache

LINE = 128

addresses = st.lists(
    st.integers(min_value=0, max_value=1 << 22).map(lambda a: a & ~(LINE - 1)),
    min_size=1,
    max_size=200,
)


def make(ways=2, size=2 * 1024):
    return Cache(size, ways, LINE)


class TestCacheProperties:
    @given(addresses)
    @settings(max_examples=60)
    def test_capacity_never_exceeded(self, addrs):
        c = make()
        for a in addrs:
            c.access(a)
        assert c.resident_lines <= c.num_sets * c.ways

    @given(addresses)
    @settings(max_examples=60)
    def test_stats_sum_to_accesses(self, addrs):
        c = make()
        for a in addrs:
            c.access(a)
        assert c.stats.accesses == len(addrs)
        assert c.stats.read_hits + c.stats.read_misses == len(addrs)

    @given(addresses)
    @settings(max_examples=60)
    def test_immediate_reaccess_always_hits(self, addrs):
        c = make()
        for a in addrs:
            c.access(a)
            assert c.access(a) is True

    @given(addresses)
    @settings(max_examples=60)
    def test_probe_agrees_with_next_access(self, addrs):
        c = make()
        for a in addrs:
            expected = c.probe(a)
            assert c.access(a) is expected

    @given(addresses)
    @settings(max_examples=40)
    def test_working_set_within_one_way_never_evicts(self, addrs):
        """If at most `ways` distinct lines map to each set, everything
        stays resident (conflict-free working set)."""
        c = make(ways=4)
        # restrict the address stream to lines all mapping to set 0,
        # at most `ways` distinct
        distinct = sorted({a for a in addrs})[:4]
        stream = [d * c.num_sets for d in distinct] * 3
        for a in stream:
            c.access(a)
        assert c.stats.evictions == 0

    @given(addresses, addresses)
    @settings(max_examples=40)
    def test_deterministic(self, a1, a2):
        addrs = a1 + a2
        c1, c2 = make(), make()
        r1 = [c1.access(a) for a in addrs]
        r2 = [c2.access(a) for a in addrs]
        assert r1 == r2

    @given(addresses)
    @settings(max_examples=40)
    def test_invalidate_resets(self, addrs):
        c = make()
        for a in addrs:
            c.access(a)
        c.invalidate_all()
        assert c.resident_lines == 0
        assert all(not c.probe(a) for a in addrs)
