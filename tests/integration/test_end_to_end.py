"""Cross-module integration invariants over kernels x schedulers."""

import pytest

from repro import Gpu, GPUConfig, KernelLaunch
from repro.workloads import all_kernels, get_kernel
from tests.conftest import tiny_program

CFG = GPUConfig.scaled(2)
SCHEDULERS = ["lrr", "tl", "gto", "pro", "pro-nb", "pro-nf"]

#: A structurally diverse subset kept small enough for CI speed.
SAMPLE = ["aesEncrypt128", "bfs_kernel", "GPU_laplace3d", "sha1_overlap",
          "calculate_temp", "scalarProdGPU", "histogram64Kernel",
          "executeFirstLayer"]


class TestAllSchedulersAllSampleKernels:
    @pytest.mark.parametrize("kernel", SAMPLE)
    @pytest.mark.parametrize("sched", SCHEDULERS)
    def test_runs_to_completion_with_invariants(self, kernel, sched):
        m = get_kernel(kernel)
        launch = m.build_launch(0.2)
        res = Gpu(CFG, sched).run(launch)
        c = res.counters
        # every TB completed
        assert c.tbs_completed == launch.num_tbs
        # cycle conservation per SM
        for s in c.per_sm:
            assert s.active_cycles + s.stall_cycles == res.cycles
        # work conservation: same kernel executes the same instruction
        # stream under every scheduler
        assert c.instructions > 0
        assert 0.0 <= c.l1_miss_rate <= 1.0
        assert 0.0 <= c.dram_row_hit_rate <= 1.0

    @pytest.mark.parametrize("kernel", SAMPLE)
    def test_instruction_count_scheduler_invariant(self, kernel):
        """Schedulers reorder work; they must not change its amount."""
        m = get_kernel(kernel)
        counts = set()
        progress = set()
        for sched in ("lrr", "gto", "pro"):
            c = Gpu(CFG, sched).run(m.build_launch(0.2)).counters
            counts.add(c.instructions)
            progress.add(c.thread_instructions)
        assert len(counts) == 1
        assert len(progress) == 1


class TestFullSuiteSmoke:
    def test_every_kernel_runs_under_pro(self):
        """All 25 models complete at reduced scale under PRO."""
        for m in all_kernels():
            res = Gpu(CFG, "pro").run(m.build_launch(0.15))
            assert res.counters.tbs_completed == res.num_tbs, m.name


class TestBarrierKernelsSynchronize:
    @pytest.mark.parametrize("sched", SCHEDULERS)
    def test_barrier_program_completes(self, sched):
        prog = tiny_program(loops=3, barrier=True, threads_per_tb=128)
        res = Gpu(CFG, sched).run(KernelLaunch(prog, 10))
        assert res.counters.tbs_completed == 10


class TestOccupancyBoundsResidency:
    def test_low_occupancy_run(self):
        prog = tiny_program(shared_mem_per_tb=24 * 1024, threads_per_tb=256)
        res = Gpu(CFG, "pro").run(KernelLaunch(prog, 8))
        assert res.counters.tbs_completed == 8

    def test_single_warp_tbs(self):
        prog = tiny_program(threads_per_tb=32)
        res = Gpu(CFG, "pro").run(KernelLaunch(prog, 20))
        assert res.counters.tbs_completed == 20

    def test_partial_warp_tb(self):
        prog = tiny_program(threads_per_tb=48)  # 1.5 warps
        res = Gpu(CFG, "lrr").run(KernelLaunch(prog, 6))
        assert res.counters.tbs_completed == 6
