"""Parallel run-matrix execution: fan cells out to worker processes.

The paper's evaluation is a 25-kernel x 4-scheduler matrix of mutually
independent simulations — embarrassingly parallel work that the harness
previously ran strictly sequentially. :func:`run_matrix_parallel` fans
the missing cells of a matrix out to worker processes and streams
completed counters back into the parent's
:class:`~repro.harness.runner.ResultCache`:

* **Workers are pure.** Each worker process simulates one cell inside a
  private throwaway cache (honouring the parent's
  :class:`~repro.harness.runner.CellPolicy` retry/timeout budget) and
  returns a JSON-able payload — counters plus a content digest, or a
  fully serialized failure (diagnostic report included) — so parallel
  results and FAILURES sections are bit-identical to a sequential
  sweep's (asserted by ``tests/harness/test_parallel.py``).
* **The parent is the single checkpoint writer.** Completed cells are
  adopted into the parent cache (and its optional
  :class:`~repro.robustness.checkpoint.CheckpointStore`) as they stream
  in, so the on-disk checkpoint sees exactly one writer per file. (The
  store itself also supports per-writer shard files for the rare case of
  genuinely concurrent writer processes; see ``CheckpointStore(shard=)``.)
* **Failures aggregate.** A failed cell is recorded as a
  :class:`~repro.harness.runner.CellFailure` on the parent cache; under
  ``keep_going`` the sweep continues and the cell's slot is ``None``,
  otherwise the reconstructed :class:`~repro.errors.SimulationError`
  propagates after in-flight cells are drained.

Two backends implement the fan-out:

* ``backend="pool"`` (the default) — the supervised persistent
  :class:`~repro.harness.pool.WorkerPool`: warm workers reused across
  sweeps, heartbeat/deadline supervision, crash redispatch, poison-cell
  quarantine, and graceful degradation to the sequential path when the
  respawn budget runs out. Pass ``pool=`` to reuse one pool across many
  sweeps (the bench harness does), or ``pool_config=`` to tune
  supervision for a pool owned by this call.
* ``backend="executor"`` — the legacy one-shot
  ``concurrent.futures.ProcessPoolExecutor`` fan-out. Kept for A/B
  comparison and as the regression surface for the structured
  :class:`~repro.errors.WorkerPoolError` a broken pool now raises
  (instead of a raw ``BrokenProcessPool`` traceback). It has no
  supervision: a ``hang_worker`` injector hangs the sweep, which is
  precisely why the pool backend exists.

Fault plans with *simulator-level* injectors armed hold process-local
mutable budgets that cannot be shared with workers; such caches
transparently fall back to the sequential path. Purely *worker-level*
plans (``kill_worker`` / ``hang_worker`` / ``corrupt_payload``) run
parallel: their budgets are consumed parent-side at dispatch.
"""

from __future__ import annotations

import os
import time
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from ..config import GPUConfig
from ..errors import (
    PayloadError,
    SimulationError,
    SimulationInterrupted,
    WorkerPoolError,
)
from ..gpu.launch import RunResult
from ..robustness.checkpoint import payload_digest, result_from_json
from .pool import (
    KILL_EXIT_CODE,
    PoolConfig,
    WorkerPool,
    corrupt_cell_payload,
    rebuild_error,
    simulate_cell_payload,
)
from .runner import CellFailure, CellPolicy, ResultCache

#: (kernel, scheduler) -> RunResult (or None for a failed cell under
#: ``keep_going``).
MatrixResults = Dict[Tuple[str, str], Optional[RunResult]]


@dataclass(frozen=True)
class CellOutcome:
    """Wall-clock accounting of one simulated cell (bench reporting)."""

    kernel: str
    scheduler: str
    seconds: float
    from_cache: bool


def resolve_jobs(spec: object) -> int:
    """Parse a ``--jobs`` value: a positive integer or ``"auto"``.

    ``auto`` resolves to the machine's CPU count (at least 1). Raises
    :class:`ValueError` with a usage-style message otherwise.
    """
    if spec is None:
        return 1
    if isinstance(spec, int):
        jobs = spec
    else:
        text = str(spec).strip().lower()
        if text == "auto":
            return max(1, os.cpu_count() or 1)
        try:
            jobs = int(text)
        except ValueError:
            raise ValueError(
                f"jobs must be a positive integer or 'auto' (got {spec!r})"
            ) from None
    if jobs <= 0:
        raise ValueError(f"jobs must be a positive integer (got {jobs})")
    return jobs


# ---------------------------------------------------------------------------
# worker side (executor backend; the pool backend's worker loop lives in
# repro.harness.pool)


def _worker_cell(
    kernel: str,
    scheduler: str,
    config: GPUConfig,
    scale: float,
    policy: CellPolicy,
    inject: Optional[str] = None,
) -> dict:
    """Simulate one cell in an executor worker process.

    Returns the :func:`~repro.harness.pool.simulate_cell_payload` dict:
    counters + content digest on success, a serialized failure —
    diagnostic report included — otherwise. Exceptions never cross the
    process boundary as live objects. ``inject`` applies a worker-level
    fault the parent popped at submit time.
    """
    if inject == "kill_worker":
        os._exit(KILL_EXIT_CODE)
    if inject == "hang_worker":  # pragma: no cover - hangs the executor
        while True:
            time.sleep(60.0)
    payload = simulate_cell_payload(kernel, scheduler, config, scale,
                                    policy)
    if inject == "corrupt_payload":
        payload = corrupt_cell_payload(payload)
    return payload


def _rebuild_error(failure: dict) -> SimulationError:
    """Reconstruct a worker-side simulation error in the parent.

    Delegates to :func:`~repro.harness.pool.rebuild_error`: the error
    class is resolved by name and the serialized diagnostic report is
    rehydrated, so a parallel FAILURES section renders the same
    post-mortem a sequential sweep would have.
    """
    return rebuild_error(failure)


# ---------------------------------------------------------------------------
# parent side


def run_matrix_parallel(
    cache: ResultCache,
    cells: Sequence[Tuple[str, str]],
    config: GPUConfig,
    scale: float = 1.0,
    *,
    jobs: int = 1,
    keep_going: bool = False,
    outcomes: Optional[List[CellOutcome]] = None,
    backend: str = "pool",
    pool: Optional[WorkerPool] = None,
    pool_config: Optional[PoolConfig] = None,
    probes: Sequence[object] = (),
) -> MatrixResults:
    """Fill ``cache`` with every ``(kernel, scheduler)`` cell of a matrix.

    Cells already answered by the cache's memo or checkpoint tiers are
    never re-simulated; the rest fan out across ``jobs`` worker processes
    (sequentially in-process when ``jobs == 1`` or simulator-level fault
    injection is armed). Completed counters stream back into the parent
    cache — and its checkpoint, with the parent as the single writer —
    as they finish, so an interrupted parallel sweep resumes exactly
    like a sequential one.

    ``pool=`` reuses a caller-owned persistent
    :class:`~repro.harness.pool.WorkerPool` (kept warm across sweeps;
    the caller shuts it down); otherwise a pool is created and torn down
    around this sweep, configured by ``pool_config`` and forwarding
    ``probes`` for lifecycle telemetry. ``backend="executor"`` selects
    the legacy unsupervised fan-out.

    Returns the per-cell results. A failed cell raises the reconstructed
    error unless ``keep_going``, in which case it is recorded in
    ``cache.failures`` and mapped to ``None``. ``outcomes``, when given,
    receives one :class:`CellOutcome` per cell for bench reporting.
    Worker-pool infrastructure failures (the executor backend's broken
    pool) raise :class:`~repro.errors.WorkerPoolError` regardless of
    ``keep_going`` — losing workers is not a cell failure.
    """
    results: MatrixResults = {}
    missing: List[Tuple[str, str]] = []
    for kernel, scheduler in cells:
        key = (kernel, scheduler)
        if key in results:
            continue
        hit = cache.lookup(kernel, scheduler, config, scale)
        results[key] = hit
        if hit is None:
            missing.append(key)
        elif outcomes is not None:
            outcomes.append(CellOutcome(kernel, scheduler, 0.0, True))

    if not missing:
        return results
    faults = cache.faults
    # Conservative routing: any fault plan forces the sequential path
    # unless it is *purely* worker-level (those budgets are consumed
    # parent-side at dispatch). Simulator-level budgets — including any
    # duck-typed FaultPlan subclass, whose overridden hooks we cannot
    # see — are process-local mutable state that must not fork.
    faults_need_sequential = faults is not None and (
        faults.has_simulation_faults() or not faults.has_worker_faults()
    )
    if (jobs <= 1 and pool is None) or faults_need_sequential:
        _run_sequential(cache, missing, config, scale,
                        keep_going=keep_going, results=results,
                        outcomes=outcomes)
        return results

    if backend == "executor":
        return _run_executor(cache, missing, config, scale,
                             jobs=jobs, keep_going=keep_going,
                             results=results, outcomes=outcomes)
    if backend != "pool":
        raise ValueError(
            f"unknown parallel backend {backend!r} "
            "(expected 'pool' or 'executor')"
        )

    owned = pool is None
    worker_pool = pool if pool is not None else WorkerPool(
        min(jobs, len(missing)), pool_config=pool_config, probes=probes,
    )
    try:
        outcome = worker_pool.run_cells(cache, missing, config, scale,
                                        outcomes=outcomes)
    finally:
        if owned:
            worker_pool.shutdown()
    results.update(outcome.results)
    if outcome.leftover:
        # The pool degraded (respawn budget exhausted): finish the
        # remaining cells in-process rather than losing the sweep.
        _run_sequential(cache, outcome.leftover, config, scale,
                        keep_going=keep_going, results=results,
                        outcomes=outcomes)
    if outcome.first_error is not None and not keep_going:
        raise outcome.first_error
    return results


def _run_executor(
    cache: ResultCache,
    missing: Sequence[Tuple[str, str]],
    config: GPUConfig,
    scale: float,
    *,
    jobs: int,
    keep_going: bool,
    results: MatrixResults,
    outcomes: Optional[List[CellOutcome]],
) -> MatrixResults:
    """Legacy one-shot ``ProcessPoolExecutor`` fan-out (unsupervised)."""
    faults = cache.faults
    first_error: Optional[SimulationError] = None
    broken: Optional[WorkerPoolError] = None
    completed = 0
    interrupted = False

    def consume(key: Tuple[str, str], payload: dict) -> None:
        nonlocal first_error, completed
        kernel, scheduler = key
        seconds = float(payload.get("seconds") or 0.0)
        cache.runs_executed += 1
        completed += 1
        if outcomes is not None:
            outcomes.append(CellOutcome(kernel, scheduler, seconds, False))
        if payload.get("failure") is not None:
            err = _rebuild_error(payload["failure"])
            cache.failures.append(CellFailure(
                kernel=kernel, scheduler=scheduler, scale=scale,
                attempts=int(payload["failure"].get("attempts", 1)),
                error=err,
            ))
            results[key] = None
            if first_error is None:
                first_error = err
            return
        try:
            result = result_from_json(payload.get("result"))
            if payload.get("digest") != payload_digest(payload["result"]):
                raise PayloadError(
                    f"cell {kernel}/{scheduler}: payload digest mismatch "
                    "(truncated or corrupt worker result)"
                )
        except PayloadError as err:
            # The executor has no redispatch machinery: a corrupt payload
            # is a recorded cell failure, never a poisoned checkpoint.
            cache.failures.append(CellFailure(
                kernel=kernel, scheduler=scheduler, scale=scale,
                attempts=1, error=err,
            ))
            results[key] = None
            if first_error is None:
                first_error = err
            return
        cache.adopt(kernel, scheduler, config, scale, result,
                    seconds=seconds)
        results[key] = result

    with ProcessPoolExecutor(max_workers=min(jobs, len(missing))) as pool:
        futures = [
            pool.submit(
                _worker_cell, kernel, scheduler, config, scale,
                cache.policy,
                faults.pop_worker_fault(kernel, scheduler)
                if faults is not None else None,
            )
            for kernel, scheduler in missing
        ]
        try:
            for index, future in enumerate(futures):
                if getattr(cache, "interrupted", False):
                    # A graceful_interrupts handler fired: stop consuming
                    # and tear the pool down below.
                    interrupted = True
                    break
                try:
                    payload = future.result()
                except BrokenProcessPool:
                    # A worker died (segfault, OOM kill, os._exit): the
                    # executor poisons every pending future. Harvest the
                    # cells that finished before the crash, then report
                    # the lost ones structurally.
                    lost = [missing[index]]
                    for later in range(index + 1, len(futures)):
                        try:
                            survivor = futures[later].result(timeout=0)
                        except Exception:
                            lost.append(missing[later])
                            continue
                        consume(missing[later], survivor)
                    broken = WorkerPoolError(
                        f"worker pool broke mid-sweep: {len(lost)} "
                        "cell(s) lost ("
                        + ", ".join(f"{k}/{s}" for k, s in lost)
                        + "); completed cells were kept (checkpointed "
                        "when a store is attached) — re-run to retry "
                        "the lost cells, or use the supervised pool "
                        "backend, which survives worker loss",
                        lost_cells=lost,
                    )
                    break
                consume(missing[index], payload)
        except KeyboardInterrupt:
            # Raw Ctrl-C without the graceful handler (or a worker dying
            # of the same process-group SIGINT).
            interrupted = True
        if interrupted:
            # Cancel every not-yet-started cell; the `with` exit then
            # joins (reaps) the worker processes, waiting only for cells
            # already executing. Adopted cells stay checkpointed.
            for future in futures:
                future.cancel()
            pool.shutdown(wait=True, cancel_futures=True)
    if interrupted:
        raise SimulationInterrupted(
            f"parallel sweep interrupted: {completed}/{len(missing)} "
            "outstanding cell(s) completed (checkpointed cells are kept; "
            "re-run the same command to resume)"
        )
    if broken is not None:
        raise broken
    if first_error is not None and not keep_going:
        raise first_error
    return results


def _run_sequential(
    cache: ResultCache,
    missing: Sequence[Tuple[str, str]],
    config: GPUConfig,
    scale: float,
    *,
    keep_going: bool,
    results: MatrixResults,
    outcomes: Optional[List[CellOutcome]],
) -> None:
    """In-process fallback with the same keep-going semantics."""
    for kernel, scheduler in missing:
        t0 = time.perf_counter()
        try:
            result: Optional[RunResult] = cache.run(
                kernel, scheduler, config, scale
            )
        except SimulationInterrupted:
            raise  # an interrupt ends the sweep even under keep_going
        except SimulationError:
            if not keep_going:
                raise
            result = None
        results[(kernel, scheduler)] = result
        if outcomes is not None:
            outcomes.append(CellOutcome(
                kernel, scheduler, time.perf_counter() - t0, False
            ))
