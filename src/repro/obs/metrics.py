"""MetricsSampler — windowed per-SM performance metrics as a probe.

Attaching a :class:`MetricsSampler` to a run chops the simulated clock
into fixed-width windows and accumulates, per (window, SM):

* instructions issued and active cycles (windowed IPC / issue rate),
* distinct warps that issued (a liveness/occupancy signal),
* resident thread blocks (as of the window's last TB event),
* the stall breakdown (idle / scoreboard / pipeline cycles).

Stall spans arrive from the bus exactly when the SM counters credit
them, and the sampler splits each span across window boundaries without
losing a cycle — so per-window stall totals sum to the run's
:class:`~repro.stats.counters.SmCounters` totals *bit-exactly* (the
test suite asserts this). The one placement caveat: the post-run
"accounting gap" (cycles an SM sat empty between busy periods, credited
as Idle at finalization) is attributed to the tail of the run, where
most of it genuinely lives.

Example::

    from repro import simulate
    from repro.obs import MetricsSampler

    sampler = MetricsSampler(window=500)
    result = simulate("scalarProdGPU", "pro", probes=[sampler])
    for row in sampler.rows():
        print(row.start, row.sm_id, f"ipc={row.ipc:.2f}", row.stall_idle)
    sampler.write_jsonl("metrics.jsonl")
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Set, Tuple

from ..stats.counters import StallKind
from .bus import Probe


@dataclass
class MetricsWindow:
    """One (window, SM) row of sampled metrics."""

    #: Window index (``start // window_size``).
    index: int
    #: Window bounds in cycles; ``end`` is exclusive and the final
    #: window is clipped to the run length.
    start: int
    end: int
    sm_id: int
    instructions: int = 0
    #: Cycles in this window with >= 1 issue on this SM.
    active_cycles: int = 0
    #: Distinct (tb, warp) pairs that issued in this window.
    warps_issued: int = 0
    #: Resident TBs as of the window's last TB assign/finish event
    #: (-1 = no TB event fell in this window).
    tbs_resident: int = -1
    stall_idle: int = 0
    stall_scoreboard: int = 0
    stall_pipeline: int = 0

    @property
    def cycles(self) -> int:
        return self.end - self.start

    @property
    def ipc(self) -> float:
        """Warp instructions per cycle over this window on this SM."""
        n = self.cycles
        return self.instructions / n if n else 0.0

    @property
    def stall_cycles(self) -> int:
        return self.stall_idle + self.stall_scoreboard + self.stall_pipeline

    def to_dict(self) -> dict:
        """Flat JSON-able row (stable key order for the exporters)."""
        return {
            "window": self.index,
            "start": self.start,
            "end": self.end,
            "sm": self.sm_id,
            "instructions": self.instructions,
            "active_cycles": self.active_cycles,
            "warps_issued": self.warps_issued,
            "tbs_resident": self.tbs_resident,
            "stall_idle": self.stall_idle,
            "stall_scoreboard": self.stall_scoreboard,
            "stall_pipeline": self.stall_pipeline,
            "ipc": round(self.ipc, 6),
        }


class _Cell:
    """Mutable per-(window, SM) accumulator."""

    __slots__ = ("instructions", "active_cycles", "warps", "tbs_resident",
                 "stalls")

    def __init__(self) -> None:
        self.instructions = 0
        self.active_cycles = 0
        self.warps: Set[Tuple[int, int]] = set()
        self.tbs_resident = -1
        self.stalls = [0, 0, 0]  # indexed by StallKind value


class MetricsSampler(Probe):
    """Windowed per-SM IPC / occupancy / stall-breakdown probe.

    Parameters
    ----------
    window:
        Window width in cycles (default 500).
    """

    def __init__(self, window: int = 500) -> None:
        if window <= 0:
            raise ValueError("window must be positive")
        self.window = window
        self._cells: Dict[Tuple[int, int], _Cell] = {}
        self._last_issue: Dict[int, int] = {}
        self._resident: Dict[int, int] = {}
        #: Run length in cycles (set by on_run_end; clips the last window).
        self.total_cycles = 0
        #: The finished run's RunResult (set by on_run_end).
        self.result = None

    # -- bus hooks -------------------------------------------------------

    def _cell(self, sm_id: int, index: int) -> _Cell:
        key = (index, sm_id)
        cell = self._cells.get(key)
        if cell is None:
            cell = self._cells[key] = _Cell()
        return cell

    def on_issue(self, cycle, sm_id, tb_index, warp_in_tb, pc, opcode,
                 active) -> None:
        cell = self._cell(sm_id, cycle // self.window)
        cell.instructions += 1
        cell.warps.add((tb_index, warp_in_tb))
        # Two schedulers can issue in the same cycle; count the cycle once.
        if self._last_issue.get(sm_id) != cycle:
            self._last_issue[sm_id] = cycle
            cell.active_cycles += 1

    def on_stall(self, sm_id, start, end, kind) -> None:
        # Split the span across window boundaries, exactly.
        w = self.window
        k = int(kind)
        index = start // w
        while start < end:
            bound = (index + 1) * w
            span_end = end if end < bound else bound
            self._cell(sm_id, index).stalls[k] += span_end - start
            start = span_end
            index += 1

    def on_tb_start(self, sm_id, tb_index, cycle) -> None:
        n = self._resident.get(sm_id, 0) + 1
        self._resident[sm_id] = n
        self._cell(sm_id, cycle // self.window).tbs_resident = n

    def on_tb_finish(self, sm_id, tb_index, cycle) -> None:
        n = self._resident.get(sm_id, 0) - 1
        self._resident[sm_id] = n
        self._cell(sm_id, cycle // self.window).tbs_resident = n

    def on_run_end(self, result) -> None:
        self.total_cycles = result.cycles
        self.result = result

    # -- queries ---------------------------------------------------------

    def rows(self) -> List[MetricsWindow]:
        """All sampled windows, sorted by (window index, SM id).

        Windows in which nothing happened on an SM are omitted (the
        stream is sparse by construction).
        """
        w = self.window
        total = self.total_cycles
        out: List[MetricsWindow] = []
        for (index, sm_id), cell in sorted(self._cells.items()):
            end = (index + 1) * w
            if total and end > total:
                end = total
            out.append(MetricsWindow(
                index=index,
                start=index * w,
                end=end,
                sm_id=sm_id,
                instructions=cell.instructions,
                active_cycles=cell.active_cycles,
                warps_issued=len(cell.warps),
                tbs_resident=cell.tbs_resident,
                stall_idle=cell.stalls[StallKind.IDLE],
                stall_scoreboard=cell.stalls[StallKind.SCOREBOARD],
                stall_pipeline=cell.stalls[StallKind.PIPELINE],
            ))
        return out

    def stall_totals(self, sm_id: Optional[int] = None) -> Dict[str, int]:
        """Summed stall cycles across windows (one SM, or all)."""
        totals = {"idle": 0, "scoreboard": 0, "pipeline": 0}
        for (_, sid), cell in self._cells.items():
            if sm_id is not None and sid != sm_id:
                continue
            totals["idle"] += cell.stalls[StallKind.IDLE]
            totals["scoreboard"] += cell.stalls[StallKind.SCOREBOARD]
            totals["pipeline"] += cell.stalls[StallKind.PIPELINE]
        return totals

    def ipc_series(self, sm_id: Optional[int] = None) -> List[Tuple[int, float]]:
        """(window start, IPC) pairs — GPU-wide when ``sm_id`` is None."""
        if sm_id is not None:
            return [(r.start, r.ipc) for r in self.rows() if r.sm_id == sm_id]
        per_win: Dict[int, List[MetricsWindow]] = {}
        for r in self.rows():
            per_win.setdefault(r.index, []).append(r)
        out = []
        for index in sorted(per_win):
            rs = per_win[index]
            cycles = max(r.cycles for r in rs)
            instr = sum(r.instructions for r in rs)
            out.append((rs[0].start, instr / cycles if cycles else 0.0))
        return out

    # -- exports ---------------------------------------------------------

    def write_jsonl(self, path) -> None:
        """One JSON object per (window, SM) row."""
        from .export import write_jsonl

        write_jsonl((r.to_dict() for r in self.rows()), path)

    def write_csv(self, path) -> None:
        """CSV with a header row, same columns as the JSONL stream."""
        from .export import write_csv

        write_csv((r.to_dict() for r in self.rows()), path)

    def __len__(self) -> int:
        return len(self._cells)
