#!/usr/bin/env python
"""Chaos smoke: one worker-level fault injector against a jobs=2 sweep.

CI runs this once per injector (see .github/workflows/ci.yml). The
contract under test, per injector kind:

* ``kill_worker`` / ``hang_worker`` / ``corrupt_payload`` — a transient
  fault: the supervised pool must detect it, name it in its lifecycle
  telemetry, redispatch the cell, and finish the sweep with counters
  bit-identical to a clean sequential run. No cell quarantined, no
  failure recorded, no unhandled traceback.
* ``poison`` — a persistent fault (the cell kills its worker on every
  attempt): the pool must quarantine exactly that cell as a
  :class:`~repro.errors.PoisonCellError`, keep every healthy cell's
  counters bit-identical, and leave the sweep alive under keep_going.

Exit code 0 = contract held; 1 = any violation (with a diagnostic).
"""

import argparse
import sys

from repro.config import GPUConfig
from repro.errors import PoisonCellError
from repro.harness.parallel import run_matrix_parallel
from repro.harness.pool import PoolConfig, WorkerPool
from repro.harness.runner import ResultCache
from repro.robustness.checkpoint import result_to_json
from repro.robustness.faults import FaultPlan

CONFIG = GPUConfig.scaled(2)
SCALE = 0.15
CELLS = [
    (k, s)
    for k in ("scalarProdGPU", "cenergy")
    for s in ("lrr", "pro")
]
#: The cell every injector targets.
TARGET = ("cenergy", "pro")

#: Pool-event kind each injector must surface in telemetry.
EXPECTED_EVENT = {
    "kill_worker": "worker-death",
    "hang_worker": "deadline",
    "corrupt_payload": "corrupt-payload",
    "poison": "quarantine",
}


def fail(message: str) -> None:
    print(f"FAIL: {message}", file=sys.stderr)
    sys.exit(1)


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("injector", choices=sorted(EXPECTED_EVENT))
    args = parser.parse_args()

    print(f"== chaos smoke: {args.injector} on {TARGET[0]}/{TARGET[1]} ==")
    baseline = run_matrix_parallel(ResultCache(), CELLS, CONFIG, SCALE,
                                   jobs=1)

    plan = FaultPlan()
    if args.injector == "poison":
        plan.kill_worker(*TARGET, times=99)
    else:
        getattr(plan, args.injector)(*TARGET, times=1)
    cache = ResultCache(faults=plan)
    pool = WorkerPool(2, pool_config=PoolConfig(
        worker_deadline=15.0, max_respawns=8,
    ))
    with pool:
        results = run_matrix_parallel(cache, CELLS, CONFIG, SCALE, jobs=2,
                                      pool=pool, keep_going=True)

    kinds = [e.kind for e in pool.events]
    expected = EXPECTED_EVENT[args.injector]
    if expected not in kinds:
        fail(f"expected a {expected!r} pool event, saw {kinds}")
    print("telemetry:", *(e.describe() for e in pool.events
                          if e.kind not in ("dispatch", "spawn")),
          sep="\n  ")

    if args.injector == "poison":
        if results[TARGET] is not None:
            fail("poison cell produced a result instead of quarantine")
        if pool.quarantined != [TARGET]:
            fail(f"quarantined={pool.quarantined}, expected [{TARGET}]")
        if len(cache.failures) != 1 or not isinstance(
                cache.failures[0].error, PoisonCellError):
            fail(f"expected one PoisonCellError failure, got "
                 f"{[f.describe() for f in cache.failures]}")
        print("quarantine:", cache.failures[0].describe())
        healthy = [c for c in CELLS if c != TARGET]
    else:
        if cache.failures:
            fail("transient fault left recorded failures: "
                 + "; ".join(f.describe() for f in cache.failures))
        if not any(args.injector in entry for entry in plan.injected):
            fail(f"fault plan log never named {args.injector}: "
                 f"{plan.injected}")
        healthy = CELLS

    for cell in healthy:
        if results[cell] is None:
            fail(f"healthy cell {cell} produced no result")
        if result_to_json(results[cell]) != result_to_json(baseline[cell]):
            fail(f"cell {cell} diverged from the sequential baseline")
    print(f"OK: {args.injector} survived; {len(healthy)} healthy cell(s) "
          "bit-identical to sequential "
          f"(respawns={pool.respawns}, redispatches={pool.redispatches})")


if __name__ == "__main__":
    main()
