"""PRO — the Progress Aware warp scheduler (the paper's contribution).

Implements Algorithm 1 and the Fig. 3 state machine:

* **TB priority by state.** Fast phase: finishWait (High) > barrierWait
  (Medium) > noWait (Low). Slow phase: barrierWait(1) > finishNoWait.
* **Within-state TB order.** finishWait: more finished warps first (tie:
  more progress). barrierWait: more warps at the barrier first (tie: more
  progress). noWait (fast): *descending* progress — an SRTF approximation
  so leading TBs retire early and new TBs overlap the stragglers.
  finishNoWait (slow): *ascending* progress — no new TBs are coming, so
  help the laggards.
* **Warp order inside a TB.** noWait: descending progress (stagger arrival
  at long-latency ops). barrierWait/finishWait/finishNoWait: ascending
  progress (drag sibling stragglers to the barrier/exit).
* **Periodic re-sort.** noWait/finishNoWait TBs (and their warps) are
  re-sorted every ``THRESHOLD`` cycles (paper: 1000). finishWait and
  barrierWait lists are re-sorted event-driven, on each warp arrival.

Both of an SM's warp schedulers share one :class:`ProManager`, mirroring
the paper's hardware where the TB-level registers are per-SM, not
per-scheduler. The manager is the SM's TB-event listener.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, List, Optional, Sequence

from ..config import GPUConfig
from ..errors import SchedulerError
from .scheduler import WarpScheduler, register_scheduler
from .tb_state import TbEvent, TbState, transition

if TYPE_CHECKING:  # pragma: no cover
    from ..simt.sm import StreamingMultiprocessor
    from ..simt.threadblock import ThreadBlock
    from ..simt.warp import Warp


class _TbRecord:
    """Per-TB bookkeeping PRO maintains (state + per-scheduler warp order)."""

    __slots__ = ("tb", "state", "warp_order", "progress_cache",
                 "total_estimate", "warp_estimates")

    def __init__(
        self,
        tb: "ThreadBlock",
        state: TbState,
        num_scheds: int,
        *,
        normalize: bool = False,
    ) -> None:
        self.tb = tb
        self.state = state
        #: Live warps per owning scheduler, in current priority order.
        self.warp_order: List[List["Warp"]] = [
            tb.warps_for_scheduler(s) for s in range(num_scheds)
        ]
        #: Progress snapshot taken at the last sort that examined this TB.
        self.progress_cache = 0
        # Normalized-progress extension (paper §III-C.1 discusses this
        # alternative; §VI lists richer progress metrics as future work):
        # estimate each warp's total thread-instructions once at launch so
        # progress can be compared as a *fraction* across unequal TBs.
        self.warp_estimates: Dict[int, int] = {}
        self.total_estimate = 1
        if normalize:
            total = 0
            for w in tb.warps:
                est = max(1, tb.program.dynamic_count(tb.tb_index,
                                                      w.warp_in_tb)
                          * w.n_threads)
                self.warp_estimates[w.warp_in_tb] = est
                total += est
            self.total_estimate = max(1, total)

    def progress_key(self) -> float:
        """TB progress, normalized to a completion fraction when the
        manager runs in normalized mode (total_estimate > 1)."""
        if self.warp_estimates:
            return self.tb.progress / self.total_estimate
        return float(self.tb.progress)

    def _warp_key(self, w: "Warp") -> float:
        est = self.warp_estimates.get(w.warp_in_tb)
        return w.progress / est if est else float(w.progress)

    def sort_warps(self, descending: bool) -> None:
        """Re-sort each scheduler partition's warps by (possibly
        normalized) progress."""
        key = self._warp_key
        for lst in self.warp_order:
            if descending:
                lst.sort(key=lambda w: (-key(w), w.warp_in_tb))
            else:
                lst.sort(key=lambda w: (key(w), w.warp_in_tb))


#: Warp sort direction per TB state (True = descending progress).
_WARP_SORT_DESCENDING = {
    TbState.NO_WAIT: True,
    TbState.BARRIER_WAIT: False,
    TbState.BARRIER_WAIT1: False,
    TbState.FINISH_WAIT: False,
    TbState.FINISH_NO_WAIT: False,
}


class ProManager:
    """Shared per-SM TB-state manager implementing Algorithm 1.

    Parameters
    ----------
    sm:
        The owning SM (used to reach the GPU's Thread Block Scheduler for
        the fast/slow phase query).
    cfg:
        GPU configuration (sort THRESHOLD).
    handle_barrier / handle_finish:
        Ablation switches. With ``handle_barrier=False`` the scheduler
        ignores barrier arrivals for prioritization (the paper's §IV note:
        scalarProd improves ~11% with barrier handling disabled); with
        ``handle_finish=False`` it ignores warp-finish promotion.
    """

    def __init__(
        self,
        sm: "StreamingMultiprocessor",
        cfg: GPUConfig,
        *,
        handle_barrier: bool = True,
        handle_finish: bool = True,
        threshold: Optional[int] = None,
        normalize: bool = False,
    ) -> None:
        self.sm = sm
        self.cfg = cfg
        self.threshold = threshold if threshold is not None else cfg.pro_sort_threshold
        self.handle_barrier = handle_barrier
        self.handle_finish = handle_finish
        #: Normalized-progress extension: compare TBs/warps by completion
        #: fraction instead of raw thread-instruction counts.
        self.normalize = normalize
        self.fast_phase = True
        self.last_sort_cycle = 0
        self.records: Dict[int, _TbRecord] = {}  # tb_index -> record
        # State lists hold records in priority order (head = highest).
        self.finish_wait: List[_TbRecord] = []
        self.barrier_wait: List[_TbRecord] = []
        self.no_wait: List[_TbRecord] = []
        self.finish_no_wait: List[_TbRecord] = []

    # -- phase -----------------------------------------------------------

    def _poll_fast_phase(self) -> bool:
        gpu = self.sm.gpu
        if gpu is None:
            return self.fast_phase
        return gpu.tb_scheduler.has_pending()

    def _maybe_phase_transition(self, cycle: int) -> None:
        """Algorithm 1 lines 36-40: merge on the fast->slow edge."""
        if not self.fast_phase:
            return
        if self._poll_fast_phase():
            return
        self.fast_phase = False
        merged = self.finish_wait + self.no_wait
        self.finish_wait = []
        self.no_wait = []
        for rec in merged:
            rec.state = transition(rec.state, TbEvent.PHASE_TO_SLOW, False)
            rec.sort_warps(descending=False)
        self.finish_no_wait.extend(merged)
        self._sort_rem(self.finish_no_wait)
        for rec in self.barrier_wait:
            rec.state = transition(rec.state, TbEvent.PHASE_TO_SLOW, False)

    # -- sorting helpers ------------------------------------------------------

    def _sort_finish_wait(self) -> None:
        """finishWait: more finished warps, then more progress."""
        self.finish_wait.sort(
            key=lambda r: (-r.tb.n_finished, -r.progress_key(), r.tb.tb_index)
        )

    def _sort_barrier_wait(self) -> None:
        """barrierWait: more warps at the barrier, then more progress."""
        self.barrier_wait.sort(
            key=lambda r: (-r.tb.n_at_barrier, -r.progress_key(), r.tb.tb_index)
        )

    def _sort_rem(self, lst: List[_TbRecord]) -> None:
        """Sort the 'remaining' list: noWait descending, finishNoWait
        ascending (paper §III-C.1 vs §III-D)."""
        if lst is self.no_wait:
            lst.sort(key=lambda r: (-r.progress_key(), r.tb.tb_index))
        else:
            lst.sort(key=lambda r: (r.progress_key(), r.tb.tb_index))

    def _maybe_threshold_sort(self, cycle: int) -> None:
        """Algorithm 1 lines 57-61: periodic progress sort of remTBs."""
        if cycle - self.last_sort_cycle <= self.threshold:
            return
        self.last_sort_cycle = cycle
        rem = self.no_wait if self.no_wait else self.finish_no_wait
        self._sort_rem(rem)
        descending = self.fast_phase and rem is self.no_wait
        for rec in rem:
            rec.sort_warps(descending=descending)
        bus = self.sm.bus
        if bus is not None and bus.resort_subs:
            # Building the order list is itself O(TBs); skip it unless a
            # probe actually listens for resort events.
            bus.resort(self.sm.sm_id, cycle,
                       [r.tb.tb_index for r in self._priority_records()])

    # -- listener callbacks (SM events) ---------------------------------------

    def on_tb_assigned(self, tb: "ThreadBlock", cycle: int) -> None:
        state = TbState.NO_WAIT if self.fast_phase else TbState.FINISH_NO_WAIT
        rec = _TbRecord(tb, state, self.cfg.num_schedulers,
                        normalize=self.normalize)
        self.records[tb.tb_index] = rec
        if state is TbState.NO_WAIT:
            self.no_wait.append(rec)
            self._sort_rem(self.no_wait)
        else:
            self.finish_no_wait.append(rec)
            self._sort_rem(self.finish_no_wait)

    def on_tb_finished(self, tb: "ThreadBlock", cycle: int) -> None:
        rec = self.records.pop(tb.tb_index, None)
        if rec is None:  # pragma: no cover - defensive
            raise SchedulerError(f"PRO lost track of TB {tb.tb_index}")
        rec.state = TbState.FINISH
        for lst in (self.finish_wait, self.barrier_wait, self.no_wait,
                    self.finish_no_wait):
            if rec in lst:
                lst.remove(rec)

    def on_warp_barrier(self, warp: "Warp", cycle: int) -> None:
        """Algorithm 1, insertBarrierWarp (lines 17-33)."""
        if not self.handle_barrier:
            return
        rec = self.records[warp.tb.tb_index]
        self._maybe_phase_transition(cycle)
        if warp.tb.n_at_barrier == 1:
            old = rec.state
            rec.state = transition(old, TbEvent.WARP_AT_BARRIER, self.fast_phase)
            self._move(rec, old, rec.state)
            rec.sort_warps(descending=False)
        self._sort_barrier_wait()

    def on_barrier_release(self, tb: "ThreadBlock", cycle: int) -> None:
        if not self.handle_barrier:
            return
        rec = self.records[tb.tb_index]
        self._maybe_phase_transition(cycle)
        old = rec.state
        rec.state = transition(old, TbEvent.ALL_AT_BARRIER, self.fast_phase)
        self._move(rec, old, rec.state)
        rec.sort_warps(descending=_WARP_SORT_DESCENDING[rec.state])

    def on_warp_finished(self, warp: "Warp", cycle: int) -> None:
        """Algorithm 1, insertFinishWarp (lines 1-15)."""
        rec = self.records[warp.tb.tb_index]
        # Remove the finished warp from its scheduler's order list.
        lst = rec.warp_order[warp.sched_id]
        if warp in lst:
            lst.remove(warp)
        if not self.handle_finish:
            return
        if warp.tb.n_finished == 1 and not warp.tb.all_finished:
            self._maybe_phase_transition(cycle)
            old = rec.state
            rec.state = transition(old, TbEvent.WARP_FINISHED, self.fast_phase)
            self._move(rec, old, rec.state)
            rec.sort_warps(descending=False)
        self._sort_finish_wait()

    # -- list movement ------------------------------------------------------------

    def _list_for(self, state: TbState) -> List[_TbRecord]:
        if state is TbState.NO_WAIT:
            return self.no_wait
        if state is TbState.FINISH_WAIT:
            return self.finish_wait
        if state in (TbState.BARRIER_WAIT, TbState.BARRIER_WAIT1):
            return self.barrier_wait
        if state is TbState.FINISH_NO_WAIT:
            return self.finish_no_wait
        raise SchedulerError(f"no list for state {state}")  # pragma: no cover

    def _move(self, rec: _TbRecord, old: TbState, new: TbState) -> None:
        if old is new:
            return
        old_lst = self._list_for(old)
        if rec in old_lst:
            old_lst.remove(rec)
        new_lst = self._list_for(new)
        if rec not in new_lst:
            new_lst.append(rec)
        # Keep the destination list sorted by its rule.
        if new_lst is self.finish_wait:
            self._sort_finish_wait()
        elif new_lst is self.barrier_wait:
            self._sort_barrier_wait()
        else:
            self._sort_rem(new_lst)

    # -- scheduling -----------------------------------------------------------------

    def _priority_records(self) -> List[_TbRecord]:
        """All resident TBs in descending priority (Algorithm 1, lines 41-62)."""
        out: List[_TbRecord] = []
        out.extend(self.finish_wait)
        out.extend(self.barrier_wait)
        if self.no_wait:
            out.extend(self.no_wait)
        else:
            out.extend(self.finish_no_wait)
        return out

    def order(self, sched_id: int, cycle: int) -> List["Warp"]:
        """Priority-ordered warps owned by scheduler ``sched_id``.

        Same concatenation as :meth:`_priority_records`, but built in one
        pass — this runs once per scheduler per cycle, so the intermediate
        record list is worth skipping.
        """
        self._maybe_phase_transition(cycle)
        self._maybe_threshold_sort(cycle)
        out: List["Warp"] = []
        ext = out.extend
        for rec in self.finish_wait:
            ext(rec.warp_order[sched_id])
        for rec in self.barrier_wait:
            ext(rec.warp_order[sched_id])
        for rec in (self.no_wait if self.no_wait else self.finish_no_wait):
            ext(rec.warp_order[sched_id])
        return out

    # -- state serialization -------------------------------------------

    def snapshot(self) -> dict:
        """Serializable manager state.

        Records are keyed by ``tb_index``; the four state lists store
        ``tb_index`` in their exact priority order. Warp order is stored
        as ``warp_in_tb`` lists per scheduler partition (all warps of a
        record belong to its TB).
        """
        return {
            "fast_phase": self.fast_phase,
            "last_sort_cycle": self.last_sort_cycle,
            "records": [
                {
                    "tb_index": idx,
                    "state": rec.state.value,
                    "progress_cache": rec.progress_cache,
                    "warp_order": [
                        [w.warp_in_tb for w in lst] for lst in rec.warp_order
                    ],
                }
                for idx, rec in sorted(self.records.items())
            ],
            "finish_wait": [r.tb.tb_index for r in self.finish_wait],
            "barrier_wait": [r.tb.tb_index for r in self.barrier_wait],
            "no_wait": [r.tb.tb_index for r in self.no_wait],
            "finish_no_wait": [r.tb.tb_index for r in self.finish_no_wait],
        }

    def restore(self, data: dict, warp_map: Dict[tuple, "Warp"]) -> None:
        """Rebuild records against the restoring SM's TBs.

        Does NOT fire listener callbacks (``on_tb_assigned`` would
        re-sort and corrupt the snapshotted priority order). Estimates
        (normalized mode) are recomputed deterministically from the
        program; everything order-dependent comes from the snapshot.
        """
        self.fast_phase = data["fast_phase"]
        self.last_sort_cycle = data["last_sort_cycle"]
        tb_map = {w.tb.tb_index: w.tb for w in warp_map.values()}
        self.records = {}
        for rdata in data["records"]:
            tb = tb_map[rdata["tb_index"]]
            rec = _TbRecord(
                tb,
                TbState(rdata["state"]),
                self.cfg.num_schedulers,
                normalize=self.normalize,
            )
            rec.progress_cache = rdata["progress_cache"]
            rec.warp_order = [
                [warp_map[(tb.tb_index, wid)] for wid in lst]
                for lst in rdata["warp_order"]
            ]
            self.records[tb.tb_index] = rec
        recs = self.records
        self.finish_wait = [recs[i] for i in data["finish_wait"]]
        self.barrier_wait = [recs[i] for i in data["barrier_wait"]]
        self.no_wait = [recs[i] for i in data["no_wait"]]
        self.finish_no_wait = [recs[i] for i in data["finish_no_wait"]]


class ProScheduler(WarpScheduler):
    """Thin per-scheduler view over the shared :class:`ProManager`."""

    name = "pro"

    def __init__(self, sm, sched_id, cfg, manager: ProManager) -> None:
        super().__init__(sm, sched_id, cfg)
        self.manager = manager

    @property
    def listener(self) -> object:
        # TB-level events must reach the shared manager exactly once.
        return self.manager

    def order(self, cycle: int) -> Sequence:
        return self.manager.order(self.sched_id, cycle)

    def note_issued(self, warp, cycle: int) -> None:
        # PRO re-evaluates priorities every cycle; nothing sticky to record.
        pass


def make_pro_factory(
    *,
    handle_barrier: bool = True,
    handle_finish: bool = True,
    threshold: Optional[int] = None,
    normalize: bool = False,
):
    """Build a registry factory for PRO or one of its ablation variants."""

    def factory(sm: "StreamingMultiprocessor", cfg: GPUConfig):
        manager = ProManager(
            sm,
            cfg,
            handle_barrier=handle_barrier,
            handle_finish=handle_finish,
            threshold=threshold,
            normalize=normalize,
        )
        return [ProScheduler(sm, i, cfg, manager) for i in range(cfg.num_schedulers)]

    return factory


register_scheduler("pro", make_pro_factory())
