"""Legacy setup shim.

The offline build environment lacks the ``wheel`` package, so PEP-517
editable installs fail with ``invalid command 'bdist_wheel'``. This shim
enables ``pip install -e . --no-build-isolation --no-use-pep517``.
All metadata lives in pyproject.toml.
"""

from setuptools import setup

setup()
