"""Exporters: JSONL / CSV row streams and Chrome trace-event JSON.

:func:`write_jsonl` and :func:`write_csv` serialize any iterable of flat
dict rows (the :class:`~repro.obs.metrics.MetricsSampler` produces
them). :class:`ChromeTraceProbe` records a run directly into the Chrome
trace-event format, loadable in `Perfetto <https://ui.perfetto.dev>`_ or
``chrome://tracing``:

* each SM is a *process* (``pid`` = SM id, named "SM <i>");
* thread 0 carries thread-block slices (one ``X`` slice per TB
  residency interval, barrier releases as instant events);
* thread 1 carries stall slices (idle / scoreboard / pipeline);
* thread 2 carries scheduler re-sort instants;
* an ``instructions`` counter track per SM plots windowed issue counts.

Timestamps are simulated cycles written as microseconds (1 cycle = 1 us)
— trace viewers require a time unit, and this keeps cycle numbers
readable verbatim in the UI.
"""

from __future__ import annotations

import csv
import json
from pathlib import Path
from typing import Dict, Iterable, List, Tuple

from .bus import Probe

#: Per-SM thread (track) ids in the exported trace.
TID_TB = 0
TID_STALL = 1
TID_SCHED = 2

_STALL_NAMES = ("idle", "scoreboard", "pipeline")


def write_jsonl(rows: Iterable[dict], path) -> None:
    """Write one JSON object per row, newline-delimited."""
    with open(path, "w", encoding="utf-8") as f:
        for row in rows:
            f.write(json.dumps(row, sort_keys=False) + "\n")


def write_csv(rows: Iterable[dict], path) -> None:
    """Write rows as CSV; the header comes from the first row's keys."""
    it = iter(rows)
    try:
        first = next(it)
    except StopIteration:
        Path(path).write_text("", encoding="utf-8")
        return
    with open(path, "w", encoding="utf-8", newline="") as f:
        writer = csv.DictWriter(f, fieldnames=list(first.keys()))
        writer.writeheader()
        writer.writerow(first)
        for row in it:
            writer.writerow(row)


class ChromeTraceProbe(Probe):
    """Records a run as Chrome trace events (Perfetto-loadable JSON).

    Parameters
    ----------
    window:
        Width in cycles of the ``instructions`` counter-track buckets.
    """

    def __init__(self, window: int = 500) -> None:
        if window <= 0:
            raise ValueError("window must be positive")
        self.window = window
        self.events: List[dict] = []
        self._tb_open: Dict[Tuple[int, int], int] = {}
        self._issue_counts: Dict[Tuple[int, int], int] = {}
        self._sms_seen: set = set()
        self._meta: dict = {}

    # -- bus hooks -------------------------------------------------------

    def on_run_start(self, gpu, launch) -> None:
        self._meta = {
            "kernel": launch.program.name,
            "scheduler": gpu.scheduler_name,
            "num_tbs": launch.num_tbs,
            "num_sms": gpu.cfg.num_sms,
        }

    def on_tb_start(self, sm_id, tb_index, cycle) -> None:
        self._sms_seen.add(sm_id)
        self._tb_open[(sm_id, tb_index)] = cycle

    def on_tb_finish(self, sm_id, tb_index, cycle) -> None:
        start = self._tb_open.pop((sm_id, tb_index), 0)
        self.events.append({
            "name": f"TB {tb_index}",
            "cat": "tb",
            "ph": "X",
            "ts": start,
            "dur": cycle - start,
            "pid": sm_id,
            "tid": TID_TB,
        })

    def on_stall(self, sm_id, start, end, kind) -> None:
        self._sms_seen.add(sm_id)
        self.events.append({
            "name": _STALL_NAMES[int(kind)],
            "cat": "stall",
            "ph": "X",
            "ts": start,
            "dur": end - start,
            "pid": sm_id,
            "tid": TID_STALL,
        })

    def on_barrier_release(self, sm_id, tb_index, cycle) -> None:
        self.events.append({
            "name": f"barrier TB {tb_index}",
            "cat": "barrier",
            "ph": "i",
            "s": "t",
            "ts": cycle,
            "pid": sm_id,
            "tid": TID_TB,
        })

    def on_resort(self, sm_id, cycle, order) -> None:
        self.events.append({
            "name": "resort",
            "cat": "scheduler",
            "ph": "i",
            "s": "t",
            "ts": cycle,
            "pid": sm_id,
            "tid": TID_SCHED,
            "args": {"order": list(order)},
        })

    def on_issue(self, cycle, sm_id, tb_index, warp_in_tb, pc, opcode,
                 active) -> None:
        key = (sm_id, cycle // self.window)
        self._issue_counts[key] = self._issue_counts.get(key, 0) + 1

    def on_run_end(self, result) -> None:
        self._meta["cycles"] = result.cycles

    # -- export ----------------------------------------------------------

    def trace_events(self) -> List[dict]:
        """The complete event list: metadata + slices + counters."""
        out: List[dict] = []
        for sm_id in sorted(self._sms_seen):
            out.append({
                "name": "process_name", "ph": "M", "pid": sm_id,
                "args": {"name": f"SM {sm_id}"},
            })
            for tid, label in ((TID_TB, "thread blocks"),
                               (TID_STALL, "stalls"),
                               (TID_SCHED, "scheduler")):
                out.append({
                    "name": "thread_name", "ph": "M", "pid": sm_id,
                    "tid": tid, "args": {"name": label},
                })
        out.extend(self.events)
        for (sm_id, index), count in sorted(self._issue_counts.items()):
            out.append({
                "name": "instructions", "cat": "ipc", "ph": "C",
                "ts": index * self.window, "pid": sm_id,
                "args": {"instructions": count},
            })
        return out

    def to_json(self) -> dict:
        """The full trace document (``traceEvents`` + run metadata)."""
        return {
            "traceEvents": self.trace_events(),
            "displayTimeUnit": "ms",
            "otherData": dict(self._meta),
        }

    def write(self, path) -> None:
        """Write the trace JSON; open the file in Perfetto to view it."""
        with open(path, "w", encoding="utf-8") as f:
            json.dump(self.to_json(), f, indent=None, separators=(",", ":"))

    def __len__(self) -> int:
        return len(self.events)
