"""The scheduler tournament (``pro-sim tournament``).

Races every first-class scheduler — the three paper baselines, PRO, and
the post-2015 frontier entries (RLWS, WaSP) — over the Table II kernel
matrix and produces one comparison artifact: per-kernel cycle counts,
speedups normalized to LRR, geomean speedups, and per-scheduler stall
breakdowns. The result renders both as a monospace report (terminal) and
as GitHub-flavored markdown (CI step summaries, README).

This is deliberately *not* a fidelity experiment: the paper never ran
RLWS or WaSP, so there are no paper-numeric targets here — the fidelity
layer carries only shape-band expectations for the frontier schedulers.
The tournament is the arena view: which policy wins where, and by what
stall profile.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from ..stats.report import geomean, render_table
from ..workloads import all_kernels
from .runner import ExperimentSetup

#: The six first-class schedulers, in presentation order.
TOURNAMENT_SCHEDULERS = ("lrr", "gto", "tl", "pro", "rlws", "wasp")

#: Speedups are normalized to this scheduler (the paper's Fig. 4 anchor
#: is per-baseline; the tournament needs one common denominator).
REFERENCE = "lrr"

#: Stall kinds, in the paper's Table III column order.
STALL_KINDS = ("pipeline", "idle", "scoreboard")


@dataclass
class TournamentResult:
    """Full cross product of kernels x schedulers plus aggregates."""

    schedulers: Tuple[str, ...]
    kernels: Tuple[str, ...]
    sms: int
    scale: float
    #: kernel -> scheduler -> end-to-end cycles.
    cycles: Dict[str, Dict[str, int]] = field(default_factory=dict)
    #: kernel -> scheduler -> warp-instructions per cycle.
    ipc: Dict[str, Dict[str, float]] = field(default_factory=dict)
    #: kernel -> scheduler -> REFERENCE cycles / scheduler cycles.
    speedups: Dict[str, Dict[str, float]] = field(default_factory=dict)
    #: scheduler -> geomean speedup over REFERENCE across kernels.
    geomeans: Dict[str, float] = field(default_factory=dict)
    #: scheduler -> stall kind -> mean fraction of stall cycles.
    stalls: Dict[str, Dict[str, float]] = field(default_factory=dict)

    def ranking(self) -> List[Tuple[str, float]]:
        """Schedulers by geomean speedup, fastest first."""
        return sorted(self.geomeans.items(), key=lambda kv: -kv[1])

    def winner(self) -> str:
        return self.ranking()[0][0]

    def render(self) -> str:
        parts = [render_table(
            ("Rank", "Scheduler", f"Geomean vs {REFERENCE.upper()}",
             "Pipe", "Idle", "SB"),
            [
                (i + 1, s.upper(), g,
                 self.stalls[s]["pipeline"], self.stalls[s]["idle"],
                 self.stalls[s]["scoreboard"])
                for i, (s, g) in enumerate(self.ranking())
            ],
            title=(f"Scheduler tournament — {len(self.kernels)} kernels, "
                   f"{self.sms} SMs, scale {self.scale}"),
        )]
        parts.append(render_table(
            ("Kernel",) + tuple(s.upper() for s in self.schedulers),
            [
                (k,) + tuple(self.speedups[k][s] for s in self.schedulers)
                for k in self.kernels
            ],
            title=f"Per-kernel speedup vs {REFERENCE.upper()}",
        ))
        return "\n\n".join(parts)

    def render_markdown(self) -> str:
        """GitHub-flavored markdown (CI step summary / README)."""
        lines = [
            f"### Scheduler tournament — {len(self.kernels)} kernels, "
            f"{self.sms} SMs, scale {self.scale}",
            "",
            f"| Rank | Scheduler | Geomean vs {REFERENCE.upper()} "
            "| Pipe | Idle | SB |",
            "|---:|---|---:|---:|---:|---:|",
        ]
        for i, (s, g) in enumerate(self.ranking()):
            st = self.stalls[s]
            lines.append(
                f"| {i + 1} | `{s}` | {g:.3f}x | {st['pipeline']:.3f} "
                f"| {st['idle']:.3f} | {st['scoreboard']:.3f} |"
            )
        lines += [
            "",
            "| Kernel | " + " | ".join(f"`{s}`" for s in self.schedulers)
            + " |",
            "|---|" + "---:|" * len(self.schedulers),
        ]
        for k in self.kernels:
            cells = " | ".join(
                f"{self.speedups[k][s]:.3f}" for s in self.schedulers
            )
            lines.append(f"| {k} | {cells} |")
        return "\n".join(lines) + "\n"

    @classmethod
    def from_json(cls, data: dict) -> "TournamentResult":
        """Rehydrate from :meth:`to_json` output (README generation
        re-renders the committed smoke artifact without re-simulating)."""
        result = cls(
            schedulers=tuple(data["schedulers"]),
            kernels=tuple(data["kernels"]),
            sms=data["sms"],
            scale=data["scale"],
            cycles=data["cycles"],
            ipc=data["ipc"],
            speedups=data["speedups"],
            geomeans=data["geomeans"],
            stalls=data["stalls"],
        )
        return result

    def to_json(self) -> dict:
        return {
            "schedulers": list(self.schedulers),
            "kernels": list(self.kernels),
            "sms": self.sms,
            "scale": self.scale,
            "reference": REFERENCE,
            "cycles": {k: dict(v) for k, v in self.cycles.items()},
            "ipc": {k: dict(v) for k, v in self.ipc.items()},
            "speedups": {k: dict(v) for k, v in self.speedups.items()},
            "geomeans": dict(self.geomeans),
            "stalls": {s: dict(v) for s, v in self.stalls.items()},
            "ranking": [[s, g] for s, g in self.ranking()],
        }


def run_tournament(
    setup: ExperimentSetup,
    *,
    kernels: Optional[Sequence[str]] = None,
    schedulers: Sequence[str] = TOURNAMENT_SCHEDULERS,
    keep_going: bool = False,
) -> TournamentResult:
    """Race ``schedulers`` over ``kernels`` (default: full Table II).

    Runs through the setup's shared cache — with ``jobs > 1`` the matrix
    is prewarmed by the supervised worker pool, then aggregated from
    cache; sequential runs produce the identical result (workers are
    bit-exact with the in-process path).
    """
    names = tuple(kernels) if kernels else tuple(
        m.name for m in all_kernels()
    )
    if REFERENCE not in schedulers:
        raise ValueError(f"tournament needs reference scheduler "
                         f"{REFERENCE!r} in the field")
    setup.prewarm(list(names), tuple(schedulers), keep_going=keep_going)
    result = TournamentResult(
        schedulers=tuple(schedulers),
        kernels=names,
        sms=setup.config.num_sms,
        scale=setup.scale,
    )
    # scheduler -> stall kind -> per-kernel fractions (averaged below).
    stall_acc: Dict[str, Dict[str, List[float]]] = {
        s: {kind: [] for kind in STALL_KINDS} for s in schedulers
    }
    for k in names:
        ref = setup.run(k, REFERENCE)
        result.cycles[k] = {}
        result.ipc[k] = {}
        result.speedups[k] = {}
        for s in schedulers:
            r = setup.run(k, s)
            result.cycles[k][s] = r.cycles
            result.ipc[k][s] = r.counters.ipc
            result.speedups[k][s] = ref.cycles / r.cycles
            breakdown = r.counters.stall_breakdown()
            for kind in STALL_KINDS:
                stall_acc[s][kind].append(breakdown[kind])
    for s in schedulers:
        result.geomeans[s] = geomean(
            result.speedups[k][s] for k in names
        )
        result.stalls[s] = {
            kind: sum(vals) / len(vals)
            for kind, vals in stall_acc[s].items()
        }
    return result
