#!/usr/bin/env python
"""Regenerate the README scheduler-tournament table.

Reads the committed smoke-profile tournament artifact
(``benchmarks/TOURNAMENT_smoke.json``, written by ``pro-sim tournament
--smoke --json``) and splices its markdown rendering between the
``<!-- tournament:begin -->`` / ``<!-- tournament:end -->`` markers in
README.md — the README table is generated, never hand-edited.

Usage::

    python scripts/readme_tournament.py           # rewrite README.md
    python scripts/readme_tournament.py --check   # exit 1 if stale (CI)
"""

import argparse
import json
import os
import sys

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

from repro.harness.tournament import TournamentResult  # noqa: E402

BEGIN = "<!-- tournament:begin -->"
END = "<!-- tournament:end -->"


def splice(readme: str, markdown: str) -> str:
    try:
        head, rest = readme.split(BEGIN, 1)
        _, tail = rest.split(END, 1)
    except ValueError:
        raise SystemExit(
            f"README.md is missing the {BEGIN} / {END} markers"
        )
    return f"{head}{BEGIN}\n{markdown}{END}{tail}"


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--artifact",
                        default="benchmarks/TOURNAMENT_smoke.json")
    parser.add_argument("--readme", default="README.md")
    parser.add_argument("--check", action="store_true",
                        help="verify the README is current; do not write")
    args = parser.parse_args()

    with open(args.artifact) as f:
        result = TournamentResult.from_json(json.load(f))
    with open(args.readme) as f:
        readme = f.read()
    updated = splice(readme, result.render_markdown())
    if args.check:
        if updated != readme:
            print(f"STALE: {args.readme} tournament table does not match "
                  f"{args.artifact}; run scripts/readme_tournament.py")
            return 1
        print(f"OK: {args.readme} tournament table is current")
        return 0
    if updated == readme:
        print(f"{args.readme}: already current")
        return 0
    with open(args.readme, "w") as f:
        f.write(updated)
    print(f"{args.readme}: tournament table regenerated from "
          f"{args.artifact}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
