"""Shared fixtures and program factories for the test suite."""

from __future__ import annotations

import pytest

from repro import (
    Coalesced,
    GPUConfig,
    Gpu,
    KernelLaunch,
    ProgramBuilder,
)
from repro.memory.subsystem import MemorySubsystem
from repro.simt.sm import StreamingMultiprocessor


@pytest.fixture
def cfg():
    """Small, fast configuration: 2 SMs, default Fermi per-SM parameters."""
    return GPUConfig.scaled(2)


@pytest.fixture
def cfg1():
    """Single-SM configuration for SM-level unit tests."""
    return GPUConfig.scaled(1)


def tiny_program(name="tiny", *, threads_per_tb=64, loops=2, barrier=False,
                 regs_per_thread=8, shared_mem_per_tb=0, mem=True):
    """A minimal well-formed kernel: short loop, optional barrier, store."""
    b = ProgramBuilder(
        name,
        threads_per_tb=threads_per_tb,
        regs_per_thread=regs_per_thread,
        shared_mem_per_tb=shared_mem_per_tb,
    )
    with b.loop(times=loops):
        if mem:
            b.load_global(1, pattern=Coalesced(base=0, iter_stride=128,
                                               warp_region=2048))
        b.ialu(2, (1, 2) if mem else (2,))
    if barrier:
        b.barrier()
        b.ialu(2, (2,))
    b.store_global((2,), pattern=Coalesced(base=1 << 30))
    return b.build()


def compute_program(name="compute", *, threads_per_tb=64, chain=6):
    """A pure-ALU kernel (no memory) for pipeline/latency tests."""
    b = ProgramBuilder(name, threads_per_tb=threads_per_tb, regs_per_thread=8)
    b.alu_chain(chain, dst=1)
    return b.build()


def run_tiny(cfg, scheduler="lrr", num_tbs=6, **prog_kwargs):
    """Build + run a tiny kernel end to end; returns the RunResult."""
    prog = tiny_program(**prog_kwargs)
    return Gpu(cfg, scheduler=scheduler).run(KernelLaunch(prog, num_tbs))


def bare_sm(cfg, scheduler="lrr"):
    """A standalone SM (no GPU) with schedulers attached, for unit tests."""
    from repro.core.scheduler import build_schedulers

    memory = MemorySubsystem(cfg)
    sm = StreamingMultiprocessor(0, cfg, memory, gpu=None)
    sm.attach_schedulers(build_schedulers(scheduler, sm, cfg))
    return sm
