"""Tests for the runner / result cache."""

import pytest

from repro.config import GPUConfig
from repro.errors import InjectedFault
from repro.harness.runner import (
    CellPolicy,
    ExperimentSetup,
    ResultCache,
    id_of,
    run_kernel,
)
from repro.robustness import FaultPlan
from repro.workloads import get_kernel


CFG = GPUConfig.scaled(2)


class TestResultCache:
    def test_cache_hit_returns_same_object(self):
        cache = ResultCache()
        a = cache.run("cenergy", "lrr", CFG, 0.1)
        b = cache.run("cenergy", "lrr", CFG, 0.1)
        assert a is b
        assert len(cache) == 1

    def test_distinct_schedulers_distinct_entries(self):
        cache = ResultCache()
        cache.run("cenergy", "lrr", CFG, 0.1)
        cache.run("cenergy", "pro", CFG, 0.1)
        assert len(cache) == 2

    def test_distinct_scale_distinct_entries(self):
        cache = ResultCache()
        cache.run("cenergy", "lrr", CFG, 0.1)
        cache.run("cenergy", "lrr", CFG, 0.2)
        assert len(cache) == 2

    def test_recorder_runs_cached_separately(self):
        cache = ResultCache()
        plain = cache.run("cenergy", "pro", CFG, 0.1)
        traced = cache.run("cenergy", "pro", CFG, 0.1, with_timeline=True)
        assert plain is not traced
        assert plain.timeline is None
        assert traced.timeline is not None

    def test_model_object_and_name_equivalent(self):
        cache = ResultCache()
        a = cache.run("cenergy", "lrr", CFG, 0.1)
        b = cache.run(get_kernel("cenergy"), "lrr", CFG, 0.1)
        assert a is b


class TestExperimentSetup:
    def test_defaults(self):
        s = ExperimentSetup()
        assert s.config.num_sms == 4
        assert s.scale == 1.0

    def test_run_uses_cache(self):
        s = ExperimentSetup(config=CFG, scale=0.1)
        a = s.run("cenergy", "lrr")
        b = s.run("cenergy", "lrr")
        assert a is b


class TestIdOf:
    def test_equal_configs_share_an_identity(self):
        assert id_of(CFG) == id_of(GPUConfig.scaled(2))

    def test_identity_is_content_sensitive(self):
        assert id_of(CFG) != id_of(GPUConfig.scaled(4))
        assert id_of(CFG) != id_of(CFG.with_(max_cycles=CFG.max_cycles + 1))

    def test_identity_is_a_stable_hex_string(self):
        digest = id_of(CFG)
        assert isinstance(digest, str)
        assert digest == id_of(CFG)
        int(digest, 16)  # pure hex, safe for filenames / cache keys


class TestCellPolicy:
    def test_retry_recovers_a_transiently_failing_cell(self):
        faults = FaultPlan().fail_cell("cenergy", "lrr", times=1)
        cache = ResultCache(policy=CellPolicy(retries=1), faults=faults)
        result = cache.run("cenergy", "lrr", CFG, 0.1)
        assert result.cycles > 0
        assert cache.failures == []

    def test_exhausted_retries_record_a_failure_and_raise(self):
        faults = FaultPlan().fail_cell("cenergy", "lrr", times=5)
        cache = ResultCache(policy=CellPolicy(retries=1), faults=faults)
        with pytest.raises(InjectedFault):
            cache.run("cenergy", "lrr", CFG, 0.1)
        assert len(cache.failures) == 1
        failure = cache.failures[0]
        assert (failure.kernel, failure.scheduler) == ("cenergy", "lrr")
        assert failure.attempts == 2
        assert "injected failure" in failure.headline
        assert "cenergy/lrr" in failure.describe()

    def test_no_retries_by_default(self):
        faults = FaultPlan().fail_cell("cenergy", "lrr", times=1)
        cache = ResultCache(faults=faults)
        with pytest.raises(InjectedFault):
            cache.run("cenergy", "lrr", CFG, 0.1)
        assert cache.failures[0].attempts == 1

    def test_failed_cell_is_not_memoized(self):
        """A failure must not poison the cache: the next call re-runs."""
        faults = FaultPlan().fail_cell("cenergy", "lrr", times=1)
        cache = ResultCache(faults=faults)
        with pytest.raises(InjectedFault):
            cache.run("cenergy", "lrr", CFG, 0.1)
        result = cache.run("cenergy", "lrr", CFG, 0.1)  # budget consumed
        assert result.cycles > 0
        assert len(cache) == 1


class TestRunKernel:
    def test_one_shot(self):
        r = run_kernel("cenergy", "pro", CFG, 0.1)
        assert r.kernel_name == "cenergy"
        assert r.scheduler == "pro"
        assert r.cycles > 0

    def test_default_config(self):
        r = run_kernel("mergeHistogram64Kernel", scale=0.2)
        assert r.counters.tbs_completed == r.num_tbs
