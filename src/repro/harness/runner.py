"""Simulation runner with cross-experiment result caching + checkpointing.

Fig. 4, Fig. 5 and Table III all consume the same 25-kernel x 4-scheduler
run matrix; :class:`ResultCache` memoizes runs per (kernel, scheduler,
config, scale) so a full `all` harness invocation simulates each cell
exactly once. Two reliability tiers sit under the memo dict:

* a :class:`~repro.robustness.checkpoint.CheckpointStore` persists each
  plain cell's counters to disk, so an interrupted sweep resumes with
  only the missing cells re-simulated (``pro-sim ... --checkpoint DIR``);
* a :class:`CellPolicy` wraps every simulation attempt with a wall-clock
  budget and a retry loop; cells that still fail are recorded as
  :class:`CellFailure` entries (the CLI's FAILURES section) before the
  error propagates.
"""

from __future__ import annotations

import contextlib
import signal
import threading
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..config import GPUConfig
from ..errors import SimulationError, SimulationInterrupted, SnapshotError
from ..gpu.gpu import Gpu
from ..gpu.launch import RunResult
from ..robustness.checkpoint import CheckpointStore, cell_key, config_digest
from ..robustness.faults import FaultPlan
from ..stats.timeline import SortTraceRecorder, TimelineRecorder
from ..workloads import KernelModel, get_kernel

#: The scheduler set of the paper's evaluation.
PAPER_SCHEDULERS = ("tl", "lrr", "gto", "pro")


@dataclass(frozen=True)
class CellPolicy:
    """Per-cell execution budget for one harness session.

    ``retries`` extra attempts are made after a failed simulation (fault
    injectors with consumed budgets make retried cells succeed, modeling
    transient faults); ``cell_timeout`` is a wall-clock budget in seconds
    enforced by the GPU main loop's watchdog (None = unbounded);
    ``snapshot_every`` arms periodic cycle-level snapshots on every
    checkpointed plain cell, so even a hard kill loses at most that many
    simulated cycles of the in-flight cell (a graceful SIGINT/SIGTERM
    snapshots the exact stop cycle regardless); ``backend`` selects the
    simulation core (``"reference"`` or ``"vector"``) for every cell the
    session runs — counters are bit-identical either way, so cache keys
    and checkpoint digests deliberately ignore it.
    """

    retries: int = 0
    cell_timeout: Optional[float] = None
    snapshot_every: Optional[int] = None
    backend: str = "reference"


@dataclass
class CellFailure:
    """One run-matrix cell that failed all its attempts."""

    kernel: str
    scheduler: str
    scale: float
    attempts: int
    error: SimulationError

    @property
    def headline(self) -> str:
        """One-line summary (error message without the attached report)."""
        msg = getattr(self.error, "headline", None) or str(self.error)
        return msg.splitlines()[0]

    def describe(self) -> str:
        return (
            f"{self.kernel}/{self.scheduler} scale={self.scale} "
            f"({self.attempts} attempt(s)): "
            f"{type(self.error).__name__}: {self.headline}"
        )


@dataclass
class ExperimentSetup:
    """Shared configuration of one harness session.

    The default is the scaled 4-SM configuration (DESIGN.md §2); pass
    ``config=GPUConfig.gtx480()`` and a larger ``scale`` for a
    paper-faithful (but much slower) run. For long sweeps, construct the
    cache with a checkpoint store and cell policy::

        cache = ResultCache(checkpoint=CheckpointStore("ckpt/"),
                            policy=CellPolicy(retries=1, cell_timeout=600))
        setup = ExperimentSetup(config=GPUConfig.gtx480(), cache=cache)
    """

    config: GPUConfig = field(default_factory=lambda: GPUConfig.scaled(4))
    #: Workload grid-size multiplier (1.0 = the models' scaled defaults).
    scale: float = 1.0
    cache: "ResultCache" = field(default_factory=lambda: ResultCache())
    #: Worker processes for matrix prewarming (1 = fully sequential).
    jobs: int = 1
    #: Optional :class:`repro.harness.pool.PoolConfig` tuning the
    #: supervised worker pool prewarming uses (typed loosely to avoid an
    #: import cycle; None = pool defaults).
    pool_config: Optional[object] = None

    def run(self, kernel: str | KernelModel, scheduler: str,
            **kwargs) -> RunResult:
        """Run (or fetch from cache) one kernel under one scheduler."""
        return self.cache.run(kernel, scheduler, self.config, self.scale,
                              **kwargs)

    def prewarm(
        self,
        kernels: Optional[List[str]] = None,
        schedulers: Tuple[str, ...] = PAPER_SCHEDULERS,
        *,
        keep_going: bool = False,
        pool: Optional[object] = None,
    ):
        """Populate the cache with a (kernels x schedulers) matrix using
        ``self.jobs`` worker processes.

        Experiments then answer every plain cell from the memo. Defaults
        to the full paper matrix. ``pool`` reuses a caller-owned
        persistent :class:`repro.harness.pool.WorkerPool` (warm workers
        across repeated prewarms — the bench harness does this);
        otherwise one is created for the sweep, configured by
        :attr:`pool_config`. Returns the per-cell results dict of
        :func:`repro.harness.parallel.run_matrix_parallel`.
        """
        # Local import: parallel imports this module.
        from ..workloads import all_kernels
        from .parallel import run_matrix_parallel

        names = (
            kernels if kernels is not None
            else [m.name for m in all_kernels()]
        )
        cells = [(k, s) for k in names for s in schedulers]
        return run_matrix_parallel(
            self.cache, cells, self.config, self.scale,
            jobs=self.jobs, keep_going=keep_going,
            pool=pool, pool_config=self.pool_config,
        )


class ResultCache:
    """Memoizes RunResults keyed by (kernel, scheduler, config, scale).

    Runs requesting recorders (timeline / sort trace) are cached under a
    distinct key so plain runs never pay recording overhead, and runs
    carrying caller-supplied ``probes`` (see :mod:`repro.obs`) bypass the
    cache entirely — the probes must observe a real simulation. Recorder
    runs are memory-only; plain runs additionally hit the optional disk
    ``checkpoint`` tier (read before simulating, write after), keyed by
    the same content hash :func:`repro.robustness.checkpoint.cell_key`
    uses, so checkpoints are valid across processes and config changes
    invalidate exactly the cells they affect.
    """

    def __init__(
        self,
        checkpoint: Optional[CheckpointStore] = None,
        policy: Optional[CellPolicy] = None,
        faults: Optional[FaultPlan] = None,
    ) -> None:
        self._results: Dict[Tuple, RunResult] = {}
        self.checkpoint = checkpoint
        self.policy = policy or CellPolicy()
        #: Fault plan installed on every GPU this cache builds (tests).
        self.faults = faults
        #: Cells answered from the disk checkpoint without simulating.
        self.checkpoint_hits = 0
        #: Actual Gpu.run invocations (attempts), for resume verification.
        self.runs_executed = 0
        #: Cells continued from a mid-run snapshot instead of restarting.
        self.snapshot_resumes = 0
        #: Set by :meth:`request_stop`; the active and all future cells
        #: raise :class:`~repro.errors.SimulationInterrupted`.
        self.interrupted = False
        #: Cells that exhausted every attempt (kept for the FAILURES
        #: section even though the error also propagates).
        self.failures: List[CellFailure] = []
        self._active_gpu: Optional[Gpu] = None

    def request_stop(self) -> None:
        """Cooperatively stop the in-flight cell (signal-handler safe).

        The active simulation stops at its next cycle boundary — writing
        a resumable snapshot when the cell is checkpointed — and every
        subsequent :meth:`run` raises immediately, so the sweep unwinds.
        """
        self.interrupted = True
        gpu = self._active_gpu
        if gpu is not None:
            gpu.request_stop()

    def _register_gpu(self, gpu: Gpu) -> None:
        self._active_gpu = gpu
        if self.interrupted:  # signal landed before the gpu existed
            gpu.request_stop()

    def run(
        self,
        kernel: str | KernelModel,
        scheduler: str,
        config: GPUConfig,
        scale: float = 1.0,
        *,
        with_timeline: bool = False,
        with_sort_trace: bool = False,
        trace_sm: int = 0,
        probes: Tuple = (),
    ) -> RunResult:
        model = kernel if isinstance(kernel, KernelModel) else get_kernel(kernel)
        if probes:
            # Probe-carrying runs bypass both cache tiers: the caller's
            # probe objects must observe an actual simulation, and a
            # memoized result would leave them silently empty.
            return self._simulate(model, scheduler, config, scale,
                                  with_timeline, with_sort_trace, trace_sm,
                                  probes)
        ckey = cell_key(model.name, scheduler, config, scale)
        key = (ckey, with_timeline, with_sort_trace, trace_sm)
        hit = self._results.get(key)
        if hit is not None:
            return hit
        plain = not (with_timeline or with_sort_trace)
        if plain and self.checkpoint is not None:
            cached = self.checkpoint.get(ckey)
            if cached is not None:
                self.checkpoint_hits += 1
                self._results[key] = cached
                return cached
        t0 = time.perf_counter()
        result = self._simulate(model, scheduler, config, scale,
                                with_timeline, with_sort_trace, trace_sm)
        self._results[key] = result
        if plain and self.checkpoint is not None:
            self.checkpoint.put(ckey, model.name, scheduler, scale, result)
            # Feed the durations sidecar so parallel sweeps can order
            # cells longest-first even after a purely sequential warmup.
            self.checkpoint.record_seconds(model.name, scheduler,
                                           time.perf_counter() - t0)
        return result

    def lookup(
        self,
        kernel: str | KernelModel,
        scheduler: str,
        config: GPUConfig,
        scale: float = 1.0,
    ) -> Optional[RunResult]:
        """Answer a plain cell from the memo or checkpoint tiers only.

        Never simulates. Used by the parallel executor to decide which
        cells actually need a worker.
        """
        model = kernel if isinstance(kernel, KernelModel) else get_kernel(kernel)
        ckey = cell_key(model.name, scheduler, config, scale)
        key = (ckey, False, False, 0)
        hit = self._results.get(key)
        if hit is not None:
            return hit
        if self.checkpoint is not None:
            cached = self.checkpoint.get(ckey)
            if cached is not None:
                self.checkpoint_hits += 1
                self._results[key] = cached
                return cached
        return None

    def adopt(
        self,
        kernel: str | KernelModel,
        scheduler: str,
        config: GPUConfig,
        scale: float,
        result: RunResult,
        seconds: Optional[float] = None,
    ) -> None:
        """Insert an externally simulated plain result (a parallel
        worker's counters) into the memo and checkpoint tiers.

        The adopting process is the only checkpoint writer, keeping the
        on-disk file single-writer even under ``--jobs N``. ``seconds``
        (the worker-observed wall-clock time) feeds the checkpoint's
        durations sidecar, which orders future parallel sweeps
        longest-cell-first.
        """
        model = kernel if isinstance(kernel, KernelModel) else get_kernel(kernel)
        ckey = cell_key(model.name, scheduler, config, scale)
        self._results[(ckey, False, False, 0)] = result
        if self.checkpoint is not None:
            self.checkpoint.put(ckey, model.name, scheduler, scale, result)
            if seconds is not None:
                self.checkpoint.record_seconds(model.name, scheduler,
                                               seconds)

    # ------------------------------------------------------------------
    def _simulate(
        self,
        model: KernelModel,
        scheduler: str,
        config: GPUConfig,
        scale: float,
        with_timeline: bool,
        with_sort_trace: bool,
        trace_sm: int,
        probes: Tuple = (),
    ) -> RunResult:
        """One cell through the retry/timeout policy; raises after the
        last failed attempt (with the failure recorded).

        Checkpointed plain cells get the mid-run snapshot tier: an
        interrupted cell's snapshot (written by :meth:`request_stop` or
        a periodic ``CellPolicy.snapshot_every`` schedule) is resumed
        bit-identically instead of restarting the cell from cycle 0; a
        stale or mismatched snapshot is discarded and the cell restarts.
        """
        policy = self.policy
        attempts = policy.retries + 1
        # Snapshots only apply to plain checkpointed cells: recorder or
        # probe runs carry state a snapshot file cannot represent.
        snap_path = None
        if (self.checkpoint is not None and not probes
                and not (with_timeline or with_sort_trace)):
            snap_path = self.checkpoint.snapshot_path(
                cell_key(model.name, scheduler, config, scale)
            )
        last_err: Optional[SimulationError] = None
        for _ in range(attempts):
            if self.interrupted:
                raise SimulationInterrupted(
                    f"sweep interrupted before {model.name}/{scheduler}"
                )
            try:
                if self.faults is not None:
                    self.faults.check_cell(model.name, scheduler)
                probe_list = list(probes)
                if with_timeline:
                    probe_list.append(TimelineRecorder())
                if with_sort_trace:
                    probe_list.append(SortTraceRecorder(sm_id=trace_sm))
                deadline = (
                    time.monotonic() + policy.cell_timeout
                    if policy.cell_timeout is not None else None
                )
                try:
                    if snap_path is not None and snap_path.exists():
                        try:
                            self.runs_executed += 1
                            self.snapshot_resumes += 1
                            return Gpu.resume(
                                snap_path,
                                probes=probe_list,
                                deadline=deadline,
                                snapshot_every=policy.snapshot_every,
                                snapshot_path=snap_path,
                                register=self._register_gpu,
                                backend=policy.backend,
                            )
                        except SnapshotError:
                            # Stale (schema/config/program drift): drop
                            # it and restart the cell from cycle 0.
                            self.snapshot_resumes -= 1
                            self.runs_executed -= 1
                            snap_path.unlink(missing_ok=True)
                    gpu = Gpu(config, scheduler=scheduler,
                              backend=policy.backend)
                    if self.faults is not None:
                        gpu.install_faults(self.faults)
                    self._register_gpu(gpu)
                    self.runs_executed += 1
                    return gpu.run(
                        model.build_launch(scale),
                        probes=probe_list,
                        deadline=deadline,
                        snapshot_every=(
                            policy.snapshot_every if snap_path is not None
                            else None
                        ),
                        snapshot_path=snap_path,
                        launch_ref=(
                            {"kernel": model.name, "scale": scale}
                            if snap_path is not None else None
                        ),
                    )
                finally:
                    self._active_gpu = None
            except SimulationInterrupted:
                # Not a failure: never retried, never recorded. The
                # snapshot (if any) was already written at the stop
                # cycle; the next checkpointed invocation resumes it.
                raise
            except SimulationError as err:
                last_err = err
        assert last_err is not None
        self.failures.append(CellFailure(
            kernel=model.name,
            scheduler=scheduler,
            scale=scale,
            attempts=attempts,
            error=last_err,
        ))
        raise last_err

    def __len__(self) -> int:
        return len(self._results)


@contextlib.contextmanager
def graceful_interrupts(cache: ResultCache):
    """Turn SIGINT/SIGTERM into a cooperative, snapshotting stop.

    While active, the first signal calls :meth:`ResultCache.request_stop`:
    the in-flight cell stops at its next cycle boundary (writing a
    resumable snapshot when checkpointed) and the sweep unwinds with
    :class:`~repro.errors.SimulationInterrupted` instead of dying
    mid-write. The original handlers are restored immediately, so a
    *second* signal kills the process the ordinary way (escape hatch for
    a wedged run). No-op outside the main thread, where Python forbids
    installing signal handlers.
    """
    if threading.current_thread() is not threading.main_thread():
        yield cache
        return
    originals = {}

    def _handler(signum, frame):
        cache.request_stop()
        for sig, old in originals.items():
            signal.signal(sig, old)

    for sig in (signal.SIGINT, signal.SIGTERM):
        originals[sig] = signal.signal(sig, _handler)
    try:
        yield cache
    finally:
        for sig, old in originals.items():
            # Only restore what we still own (a first signal already did).
            if signal.getsignal(sig) is _handler:
                signal.signal(sig, old)


def id_of(config: GPUConfig) -> str:
    """Stable content-hash identity of a config.

    The same digest :func:`repro.robustness.checkpoint.cell_key` folds
    into checkpoint keys: two configs share an identity iff every field
    (including nested latency/memory geometry) is equal, and the digest
    is stable across processes — unlike ``hash()``, which is salted.
    """
    return config_digest(config)


def run_kernel(
    kernel: str | KernelModel,
    scheduler: str = "pro",
    config: Optional[GPUConfig] = None,
    scale: float = 1.0,
    **kwargs,
) -> RunResult:
    """One-shot convenience runner.

    Builds a private, throwaway :class:`ResultCache` for the single run —
    nothing is shared with (or leaked into) any other cache, but the run
    itself goes through the exact same cell machinery as harness runs.
    """
    cache = ResultCache()
    return cache.run(kernel, scheduler, config or GPUConfig.scaled(4),
                     scale, **kwargs)
