"""Deterministic fault injection for robustness testing.

A :class:`FaultPlan` arms a small set of injectors modeled on the real
failure shapes the watchdog/diagnostics layer exists to catch:

* :meth:`drop_barrier_arrival` — the Nth barrier arrival GPU-wide is
  swallowed: the warp parks at the barrier but the TB's arrival counter
  never increments, so the barrier never releases (a classic lost-event
  deadlock);
* :meth:`swallow_mshr_fill` — the Nth global-load writeback event is
  dropped after the destination register is reserved: the fill never
  lands and the warp scoreboard-blocks forever;
* :meth:`clamp_max_cycles` — overrides ``GPUConfig.max_cycles`` downward,
  forcing the runaway-workload guard to fire on an otherwise healthy run;
* :meth:`fail_cell` — makes the harness-level simulation of one
  (kernel, scheduler) cell raise :class:`~repro.errors.InjectedFault` for
  its first N attempts, exercising the retry / ``--keep-going`` paths.

A second injector family targets the *worker pool* rather than the
simulator (the acceptance oracle of
:class:`repro.harness.pool.WorkerPool` supervision):

* :meth:`kill_worker` — the worker dispatched the cell ``os._exit``\\ s
  immediately (models a segfault / OOM kill);
* :meth:`hang_worker` — the worker wedges forever on the cell (models a
  livelocked or D-state worker; only the parent's deadline can catch it);
* :meth:`corrupt_payload` — the worker simulates normally but mangles the
  result payload before returning it (models truncation at the process
  boundary).

Worker-fault budgets are consumed **parent-side at dispatch time** (the
pool calls :meth:`pop_worker_fault`), never inside the worker — a worker
that kills itself cannot persist a decremented budget, so parent-side
accounting is what makes the transient-fault retry story deterministic.

Injection is *deterministic*: Nth-occurrence counters fire exactly once at
a reproducible point. Probabilistic modes (``probability=``) draw from a
``random.Random(seed)`` owned by the plan, so a given seed always injects
the same faults. Counters are plan-global (not reset between launches),
which is what makes the transient-fault story work: a cell that deadlocks
on its first attempt because injector N fired will succeed on retry, since
the injector has already been consumed.

Hooks are only consulted when an SM's ``faults`` attribute is non-None,
so production runs pay nothing.
"""

from __future__ import annotations

import random
from typing import TYPE_CHECKING, Dict, List, Optional, Tuple

from ..errors import InjectedFault

if TYPE_CHECKING:  # pragma: no cover
    from ..simt.warp import Warp


class FaultPlan:
    """A seeded, deterministic set of armed fault injectors."""

    def __init__(self, seed: int = 0) -> None:
        self.seed = seed
        self.rng = random.Random(seed)
        #: Human-readable log of every fault that actually fired.
        self.injected: List[str] = []
        self._barrier_nth: Optional[int] = None
        self._barrier_prob = 0.0
        self._barrier_seen = 0
        self._fill_nth: Optional[int] = None
        self._fill_prob = 0.0
        self._fill_seen = 0
        #: Optional override lowering GPUConfig.max_cycles for the run.
        self.max_cycles_clamp: Optional[int] = None
        self._cell_failures: Dict[Tuple[str, str], int] = {}
        #: Per-cell FIFO of armed worker-level injector kinds.
        self._worker_faults: Dict[Tuple[str, str], List[str]] = {}
        self._worker_armed = False

    # -- arming --------------------------------------------------------------

    def drop_barrier_arrival(self, nth: int = 1,
                             probability: float = 0.0) -> "FaultPlan":
        """Swallow the ``nth`` barrier arrival (and/or each with
        ``probability``); the TB's barrier can then never release."""
        self._barrier_nth = nth
        self._barrier_prob = probability
        return self

    def swallow_mshr_fill(self, nth: int = 1,
                          probability: float = 0.0) -> "FaultPlan":
        """Drop the ``nth`` global-load fill completion event; the loading
        warp blocks on its scoreboard forever."""
        self._fill_nth = nth
        self._fill_prob = probability
        return self

    def clamp_max_cycles(self, cycles: int) -> "FaultPlan":
        """Lower the run's ``max_cycles`` guard to ``cycles``."""
        self.max_cycles_clamp = cycles
        return self

    def fail_cell(self, kernel: str, scheduler: str,
                  times: int = 1) -> "FaultPlan":
        """Make the first ``times`` simulation attempts of one harness cell
        raise :class:`~repro.errors.InjectedFault` (then succeed)."""
        self._cell_failures[(kernel, scheduler)] = times
        return self

    def _arm_worker_fault(self, kind: str, kernel: str, scheduler: str,
                          times: int) -> "FaultPlan":
        queue = self._worker_faults.setdefault((kernel, scheduler), [])
        queue.extend([kind] * times)
        self._worker_armed = True
        return self

    def kill_worker(self, kernel: str, scheduler: str,
                    times: int = 1) -> "FaultPlan":
        """The worker dispatched this cell dies instantly (``os._exit``)
        for its first ``times`` dispatches — then the cell succeeds."""
        return self._arm_worker_fault("kill_worker", kernel, scheduler,
                                      times)

    def hang_worker(self, kernel: str, scheduler: str,
                    times: int = 1) -> "FaultPlan":
        """The worker dispatched this cell wedges forever for its first
        ``times`` dispatches; only the pool's worker deadline frees it."""
        return self._arm_worker_fault("hang_worker", kernel, scheduler,
                                      times)

    def corrupt_payload(self, kernel: str, scheduler: str,
                        times: int = 1) -> "FaultPlan":
        """The worker simulates this cell normally but returns a mangled
        result payload for its first ``times`` dispatches."""
        return self._arm_worker_fault("corrupt_payload", kernel, scheduler,
                                      times)

    # -- hooks (consulted by the worker pool) --------------------------------

    def pop_worker_fault(self, kernel: str,
                         scheduler: str) -> Optional[str]:
        """Pool dispatch hook: consume and return the next armed worker
        fault for this cell (None = dispatch cleanly).

        The budget lives in the parent, so a redispatched cell whose
        injector was already consumed runs clean — the transient-fault
        retry story.
        """
        queue = self._worker_faults.get((kernel, scheduler))
        if not queue:
            return None
        kind = queue.pop(0)
        self.injected.append(
            f"worker fault injected: {kind} for ({kernel}, {scheduler}), "
            f"{len(queue)} remaining"
        )
        return kind

    def has_worker_faults(self) -> bool:
        """True if any worker-level injector was ever armed."""
        return self._worker_armed

    def has_simulation_faults(self) -> bool:
        """True if any *simulator-level* injector is armed.

        These hold process-local mutable budgets (consumed as faults
        fire) that cannot be mirrored into workers, so sweeps carrying
        them must run in-process; worker-level injectors alone are fine
        — their budgets are consumed parent-side at dispatch.
        """
        return (
            self._barrier_nth is not None
            or self._barrier_prob > 0.0
            or self._fill_nth is not None
            or self._fill_prob > 0.0
            or self.max_cycles_clamp is not None
            or bool(self._cell_failures)
        )

    # -- hooks (consulted by the simulator) ----------------------------------

    def should_drop_barrier(self, sm_id: int, warp: "Warp",
                            cycle: int) -> bool:
        """SM hook: True to swallow this barrier arrival."""
        if self._barrier_nth is None and not self._barrier_prob:
            return False
        self._barrier_seen += 1
        hit = self._barrier_seen == self._barrier_nth or (
            self._barrier_prob > 0.0
            and self.rng.random() < self._barrier_prob
        )
        if hit:
            self.injected.append(
                f"barrier arrival dropped: sm{sm_id} "
                f"tb{warp.tb.tb_index}.w{warp.warp_in_tb} @ cycle {cycle}"
            )
        return hit

    def should_swallow_fill(self, sm_id: int, warp: "Warp",
                            cycle: int) -> bool:
        """SM hook: True to drop this load's writeback completion event."""
        if self._fill_nth is None and not self._fill_prob:
            return False
        self._fill_seen += 1
        hit = self._fill_seen == self._fill_nth or (
            self._fill_prob > 0.0 and self.rng.random() < self._fill_prob
        )
        if hit:
            self.injected.append(
                f"mshr fill swallowed: sm{sm_id} "
                f"tb{warp.tb.tb_index}.w{warp.warp_in_tb} @ cycle {cycle}"
            )
        return hit

    def effective_max_cycles(self, max_cycles: int) -> int:
        """Apply the max_cycles clamp (identity when unarmed)."""
        if self.max_cycles_clamp is not None:
            return min(max_cycles, self.max_cycles_clamp)
        return max_cycles

    def check_cell(self, kernel: str, scheduler: str) -> None:
        """Harness hook: raise while the cell's failure budget lasts."""
        left = self._cell_failures.get((kernel, scheduler), 0)
        if left > 0:
            self._cell_failures[(kernel, scheduler)] = left - 1
            self.injected.append(
                f"cell failure injected: ({kernel}, {scheduler}), "
                f"{left - 1} remaining"
            )
            raise InjectedFault(
                f"injected failure for cell ({kernel}, {scheduler})"
            )
