"""Top-level GPU: global clock, thread block scheduler, kernel launches."""

from .gpu import Gpu
from .launch import KernelLaunch, RunResult
from .tb_scheduler import ThreadBlockScheduler

__all__ = ["Gpu", "KernelLaunch", "RunResult", "ThreadBlockScheduler"]
