"""Analysis utilities: parameter sweeps and sensitivity studies.

The paper evaluates one hardware point (GTX480). This package provides
the sweep machinery to ask the follow-on questions a scheduling study
needs: how does the PRO-vs-baseline gap move with memory latency, SM
count, occupancy, or grid size?

    from repro.analysis import latency_sweep, Sweep
    result = latency_sweep("scalarProdGPU", factors=(0.5, 1.0, 2.0))
    print(result.render())
"""

from .sweeps import (
    Sweep,
    SweepResult,
    grid_sweep,
    latency_sweep,
    occupancy_sweep,
    sm_count_sweep,
)

__all__ = [
    "Sweep",
    "SweepResult",
    "grid_sweep",
    "latency_sweep",
    "occupancy_sweep",
    "sm_count_sweep",
]
