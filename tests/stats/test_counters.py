"""Unit tests for counters and stall classification accounting."""

import pytest

from repro.stats.counters import GpuCounters, SmCounters, StallKind


class TestSmCounters:
    def test_add_stall_by_kind(self):
        c = SmCounters()
        c.add_stall(StallKind.IDLE, 3)
        c.add_stall(StallKind.SCOREBOARD, 5)
        c.add_stall(StallKind.PIPELINE)
        assert c.stall_idle == 3
        assert c.stall_scoreboard == 5
        assert c.stall_pipeline == 1
        assert c.stall_cycles == 9

    def test_busy_cycles(self):
        c = SmCounters(active_cycles=10)
        c.add_stall(StallKind.IDLE, 5)
        assert c.busy_cycles == 15

    def test_breakdown_sums_to_one(self):
        c = SmCounters()
        c.add_stall(StallKind.IDLE, 1)
        c.add_stall(StallKind.SCOREBOARD, 2)
        c.add_stall(StallKind.PIPELINE, 1)
        b = c.stall_breakdown()
        assert sum(b.values()) == pytest.approx(1.0)
        assert b["scoreboard"] == pytest.approx(0.5)

    def test_breakdown_empty(self):
        b = SmCounters().stall_breakdown()
        assert b == {"idle": 0.0, "scoreboard": 0.0, "pipeline": 0.0}


class TestGpuCounters:
    def make(self):
        a = SmCounters(sm_id=0, active_cycles=10, instructions=20,
                       thread_instructions=600, tbs_completed=2)
        a.add_stall(StallKind.IDLE, 4)
        b = SmCounters(sm_id=1, active_cycles=6, instructions=12,
                       thread_instructions=300, tbs_completed=1)
        b.add_stall(StallKind.SCOREBOARD, 8)
        return GpuCounters(total_cycles=100, per_sm=[a, b])

    def test_aggregates(self):
        g = self.make()
        assert g.stall_idle == 4
        assert g.stall_scoreboard == 8
        assert g.stall_pipeline == 0
        assert g.stall_cycles == 12
        assert g.active_cycles == 16
        assert g.instructions == 32
        assert g.thread_instructions == 900
        assert g.tbs_completed == 3

    def test_ipc(self):
        g = self.make()
        assert g.ipc == pytest.approx(32 / 100)

    def test_ipc_zero_cycles(self):
        assert GpuCounters().ipc == 0.0

    def test_breakdown(self):
        g = self.make()
        b = g.stall_breakdown()
        assert b["idle"] == pytest.approx(4 / 12)
        assert b["scoreboard"] == pytest.approx(8 / 12)

    def test_breakdown_no_stalls(self):
        g = GpuCounters(total_cycles=5, per_sm=[SmCounters()])
        assert g.stall_breakdown()["idle"] == 0.0
