"""Unit tests for execution-port tracking."""

from repro.config import GPUConfig
from repro.isa.instructions import ExecUnit
from repro.simt.exec_units import ExecUnitPool


def pool(**kw):
    return ExecUnitPool(GPUConfig.scaled(1).with_(**kw))


class TestAvailability:
    def test_fresh_pool_all_free(self):
        p = pool()
        for unit in (ExecUnit.SP, ExecUnit.SFU, ExecUnit.LSU):
            assert p.port_available(unit, 0)

    def test_none_unit_always_available(self):
        p = pool()
        assert p.port_available(ExecUnit.NONE, 0)

    def test_occupy_blocks_port(self):
        p = pool(lsu_units=1)
        p.occupy(ExecUnit.LSU, 0, 4)
        assert not p.port_available(ExecUnit.LSU, 3)
        assert p.port_available(ExecUnit.LSU, 4)

    def test_second_sp_port(self):
        p = pool(sp_units=2)
        p.occupy(ExecUnit.SP, 0, 10)
        assert p.port_available(ExecUnit.SP, 0)  # second port
        p.occupy(ExecUnit.SP, 0, 10)
        assert not p.port_available(ExecUnit.SP, 5)

    def test_occupy_none_is_noop(self):
        p = pool()
        p.occupy(ExecUnit.NONE, 0, 100)
        assert p.port_available(ExecUnit.SP, 0)

    def test_minimum_interval_one(self):
        p = pool(lsu_units=1)
        p.occupy(ExecUnit.LSU, 5, 0)
        assert not p.port_available(ExecUnit.LSU, 5)
        assert p.port_available(ExecUnit.LSU, 6)


class TestInitiationInterval:
    def test_sp_single_cycle(self):
        assert pool().initiation_interval(ExecUnit.SP) == 1

    def test_sfu_quarter_rate(self):
        assert pool().initiation_interval(ExecUnit.SFU) == 4

    def test_lsu_scales_with_transactions(self):
        p = pool()
        assert p.initiation_interval(ExecUnit.LSU, 1) == 1
        assert p.initiation_interval(ExecUnit.LSU, 8) == 8
        assert p.initiation_interval(ExecUnit.LSU, 0) == 1


class TestNextFree:
    def test_all_free_returns_none(self):
        assert pool().next_free(0) is None

    def test_earliest_busy_port(self):
        p = pool()
        p.occupy(ExecUnit.SP, 0, 7)
        p.occupy(ExecUnit.LSU, 0, 3)
        assert p.next_free(0) == 3

    def test_past_ports_ignored(self):
        p = pool()
        p.occupy(ExecUnit.SP, 0, 3)
        assert p.next_free(10) is None


class TestReset:
    def test_reset_frees_all(self):
        p = pool()
        p.occupy(ExecUnit.SP, 0, 100)
        p.occupy(ExecUnit.SFU, 0, 100)
        p.reset()
        assert p.port_available(ExecUnit.SP, 0)
        assert p.port_available(ExecUnit.SFU, 0)
        assert p.next_free(0) is None
