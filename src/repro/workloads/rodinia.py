"""Rodinia benchmark suite models (Table II rows 11-16).

backprop (2 kernels), b+tree (2 kernels), hotspot, pathfinder.
"""

from __future__ import annotations

from ..isa.builder import ProgramBuilder
from ..isa.patterns import Chase, Coalesced, Strided
from .base import (
    KernelModel,
    divergent_active,
    divergent_trips,
    register_kernel,
    stream,
    tb_skewed_trips,
)

MB = 1 << 20


def _build_bpnn_layerforward():
    """backprop bpnn_layerforward: input-to-hidden with shared reduction.

    Real kernel: stages inputs/weights in shared memory, multiplies, then
    a log-step __syncthreads reduction ladder. Barrier-dense tail after a
    memory-heavy head; the paper sees one of PRO's larger stall wins here
    (8.15x fewer Idle stalls vs TL).
    """
    b = ProgramBuilder(
        "bpnn_layerforward", threads_per_tb=256, regs_per_thread=18,
        shared_mem_per_tb=9 * 1024,
    )
    b.load_global(1, pattern=Coalesced(base=0))
    b.load_global(2, pattern=Coalesced(base=16 * MB))
    b.store_shared((1,))
    b.store_shared((2,))
    b.barrier()
    # k-loop of the tile multiply: shared loads + FMA accumulation. Per-TB
    # trip skew models the input-dependent tile sizes of the 4096-TB grid.
    with b.loop(times=tb_skewed_trips(10, 6, seed=52)):
        b.load_shared(3, conflict_ways=1)
        b.fma(4, (3, 4))
        b.fma(4, (4,))
    b.store_shared((4,))
    for _ in range(3):  # log-step reduction ladder
        b.barrier()
        b.load_shared(5, conflict_ways=2,
                      active=divergent_active(16, 32, seed=51))
        b.fma(4, (4, 5))
        b.fma(4, (4,))
        b.store_shared((4,))
    b.barrier()
    b.store_global((4,), pattern=Coalesced(base=64 * MB))
    return b.build()


register_kernel(KernelModel(
    name="bpnn_layerforward", app="backprop", suite="rodinia",
    paper_tbs=4096, model_tbs=144, builder=_build_bpnn_layerforward,
    notes="Stage + multiply + 4-step barrier reduction; huge grid (4096 "
          "TBs) gives a long fastTBPhase with continuous TB turnover.",
))


def _build_bpnn_adjust():
    """backprop bpnn_adjust_weights: streaming weight update.

    Real kernel: pure streaming — coalesced loads of weights/deltas, a
    couple of FMAs, coalesced stores back. No barriers, no divergence;
    DRAM bandwidth bound.
    """
    b = ProgramBuilder(
        "bpnn_adjust_weights_cuda", threads_per_tb=256, regs_per_thread=14,
        shared_mem_per_tb=0,
    )
    with b.loop(times=4):
        b.load_global(1, pattern=stream(0, 4))
        b.load_global(2, pattern=stream(32 * MB, 4))
        b.fma(3, (1, 2))
        b.falu(3, (3,))
        b.store_global((3,), pattern=stream(64 * MB, 4))
    return b.build()


register_kernel(KernelModel(
    name="bpnn_adjust_weights_cuda", app="backprop", suite="rodinia",
    paper_tbs=4096, model_tbs=144, builder=_build_bpnn_adjust,
    notes="Streaming read-modify-write, no synchronization; bandwidth "
          "bound, so scheduler choice matters mostly at the grid tail.",
))


def _btree_kernel(name: str, paper_tbs: int, model_tbs: int, depth_base: int,
                  depth_spread: int, notes: str):
    """b+tree lookups: serial pointer chases through node levels.

    Real kernels (findK / findRangeK): each thread walks the tree root to
    leaf — one dependent uncoalesced load per level, key-comparison ALU in
    between, no barriers. Query-dependent depth/fan-out gives warp-level
    divergence; the dependent-load chain is unhideable per warp, so
    scheduling lives off having *other* warps ready.
    """

    def build():
        b = ProgramBuilder(
            name, threads_per_tb=256, regs_per_thread=16,
            shared_mem_per_tb=0,
        )
        b.load_global(1, pattern=Coalesced(base=0))  # keys
        with b.loop(times=divergent_trips(depth_base, depth_spread, seed=61)):
            b.load_global(2, pattern=Chase(4 * MB, seed=19, base=16 * MB),
                          srcs=(1,))  # node fetch depends on previous
            b.ialu(3, (2, 1))
            b.ialu(1, (3,))
        b.store_global((1,), pattern=Coalesced(base=64 * MB))
        return b.build()

    register_kernel(KernelModel(
        name=name, app="b+tree", suite="rodinia",
        paper_tbs=paper_tbs, model_tbs=model_tbs, builder=build, notes=notes,
    ))


_btree_kernel("findRangeK", 6000, 160, 4, 4,
              "Range queries: deeper, more divergent walks (6000 TBs).")
_btree_kernel("findK", 10000, 192, 4, 3,
              "Point queries: slightly shallower walks; largest grid in "
              "the suite after convolutionRows (10000 TBs).")


def _build_hotspot():
    """hotspot calculate_temp: pyramidal 2D stencil in shared memory.

    Real kernel: loads a tile (with halo) to shared memory, then several
    barrier-separated relaxation steps where the active tile shrinks each
    step (boundary threads drop out -> intra-warp divergence), then one
    coalesced store. The paper's biggest total-stall win vs both TL
    (2.18x) and LRR (2.13x).
    """
    b = ProgramBuilder(
        "calculate_temp", threads_per_tb=256, regs_per_thread=24,
        shared_mem_per_tb=12 * 1024,
    )
    b.load_global(1, pattern=Coalesced(base=0))
    b.load_global(2, pattern=Strided(base=32 * MB, stride=16),
                  active=divergent_active(20, 32, seed=71))  # halo rows
    b.store_shared((1,))
    b.store_shared((2,))
    with b.loop(times=tb_skewed_trips(4, 3, seed=73)):  # pyramid steps
        b.barrier()
        b.load_shared(3, conflict_ways=1, active=divergent_active(16, 32, seed=74))
        b.load_shared(4, conflict_ways=2, active=divergent_active(16, 32, seed=75))
        # 5-point stencil arithmetic between syncs (divergent trip counts:
        # border warps do less relaxation work than interior warps).
        with b.loop(times=divergent_trips(2, 4, seed=76)):
            b.fma(5, (3, 4))
            b.fma(5, (5, 1))
            b.fma(5, (5,))
            b.falu(1, (5,))
        b.store_shared((1,))
    b.barrier()
    b.store_global((1,), pattern=Coalesced(base=64 * MB))
    return b.build()


register_kernel(KernelModel(
    name="calculate_temp", app="hotspot", suite="rodinia",
    paper_tbs=1849, model_tbs=120, builder=_build_hotspot,
    notes="Barrier ladder with shrinking active masks and per-TB step-"
          "count skew; the strongest barrierWait + finishWait test case.",
))


def _build_pathfinder():
    """pathfinder dynproc_kernel: wavefront dynamic programming.

    Real kernel: iterates rows of a DP table; each iteration reads
    neighbours from shared memory, relaxes, and synchronizes. Boundary
    columns retire early (divergence); one barrier per iteration.
    """
    b = ProgramBuilder(
        "dynproc_kernel", threads_per_tb=256, regs_per_thread=18,
        shared_mem_per_tb=8 * 1024,
    )
    b.load_global(1, pattern=Coalesced(base=0))
    b.store_shared((1,))
    with b.loop(times=6):  # DP rows per kernel call
        b.barrier()
        b.load_shared(2, conflict_ways=1,
                      active=divergent_active(20, 32, seed=81))
        b.load_shared(3, conflict_ways=1,
                      active=divergent_active(20, 32, seed=82))
        # min/relax arithmetic; boundary warps iterate fewer times.
        with b.loop(times=divergent_trips(2, 3, seed=83)):
            b.ialu(4, (2, 3))
            b.ialu(4, (4,))
            b.ialu(1, (4, 1))
        b.store_shared((1,))
    b.barrier()
    b.load_global(5, pattern=Coalesced(base=32 * MB))
    b.ialu(1, (1, 5))
    b.store_global((1,), pattern=Coalesced(base=64 * MB))
    return b.build()


register_kernel(KernelModel(
    name="dynproc_kernel", app="pathfinder", suite="rodinia",
    paper_tbs=463, model_tbs=96, builder=_build_pathfinder,
    notes="One barrier per DP row with boundary divergence; medium grid.",
))
