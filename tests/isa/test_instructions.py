"""Unit tests for Instruction construction and launch-time resolution."""

import pytest

from repro.errors import ProgramError
from repro.isa.instructions import (
    ExecUnit,
    Instruction,
    MEMORY_OPCODES,
    OPCODE_UNIT,
    Opcode,
    WRITING_OPCODES,
)
from repro.isa.patterns import Coalesced


class TestConstruction:
    def test_alu_requires_dst(self):
        with pytest.raises(ProgramError):
            Instruction(Opcode.IALU)

    def test_alu_with_dst_ok(self):
        i = Instruction(Opcode.IALU, dst=3, srcs=(1, 2))
        assert i.dst == 3
        assert i.srcs == (1, 2)
        assert i.unit is ExecUnit.SP

    def test_store_cannot_write_register(self):
        with pytest.raises(ProgramError):
            Instruction(Opcode.STG, dst=1, pattern=Coalesced())

    def test_barrier_has_no_operands(self):
        i = Instruction(Opcode.BAR)
        assert i.dst is None
        assert i.unit is ExecUnit.NONE

    def test_exit_has_no_unit(self):
        assert Instruction(Opcode.EXIT).unit is ExecUnit.NONE

    def test_ldg_requires_pattern(self):
        with pytest.raises(ProgramError):
            Instruction(Opcode.LDG, dst=1)

    def test_stg_requires_pattern(self):
        with pytest.raises(ProgramError):
            Instruction(Opcode.STG, srcs=(1,))

    def test_alu_rejects_pattern(self):
        with pytest.raises(ProgramError):
            Instruction(Opcode.IALU, dst=1, pattern=Coalesced())

    def test_bra_requires_target_and_trips(self):
        with pytest.raises(ProgramError):
            Instruction(Opcode.BRA, target=0)
        with pytest.raises(ProgramError):
            Instruction(Opcode.BRA, trips=3)

    def test_bra_ok(self):
        i = Instruction(Opcode.BRA, target=0, trips=3)
        assert i.target == 0

    def test_non_branch_rejects_branch_fields(self):
        with pytest.raises(ProgramError):
            Instruction(Opcode.IALU, dst=1, target=0)

    def test_negative_register_rejected(self):
        with pytest.raises(ProgramError):
            Instruction(Opcode.IALU, dst=-1)
        with pytest.raises(ProgramError):
            Instruction(Opcode.IALU, dst=1, srcs=(-2,))

    def test_lds_conflict_ways_validated(self):
        with pytest.raises(ProgramError):
            Instruction(Opcode.LDS, dst=1, conflict_ways=0)

    def test_constant_active_must_be_positive(self):
        with pytest.raises(ProgramError):
            Instruction(Opcode.IALU, dst=1, active=0)


class TestOpcodeTables:
    def test_every_opcode_has_a_unit(self):
        for op in Opcode:
            assert op in OPCODE_UNIT

    def test_memory_opcodes(self):
        assert MEMORY_OPCODES == {Opcode.LDG, Opcode.STG, Opcode.LDS, Opcode.STS}

    def test_writing_opcodes_write(self):
        for op in WRITING_OPCODES:
            assert op in (Opcode.IALU, Opcode.FALU, Opcode.FMA, Opcode.SFU,
                          Opcode.LDG, Opcode.LDS)

    def test_unit_classes(self):
        assert OPCODE_UNIT[Opcode.SFU] is ExecUnit.SFU
        assert OPCODE_UNIT[Opcode.LDG] is ExecUnit.LSU
        assert OPCODE_UNIT[Opcode.LDS] is ExecUnit.LSU
        assert OPCODE_UNIT[Opcode.BRA] is ExecUnit.SP


class TestResolution:
    def test_resolve_constant_trips(self):
        i = Instruction(Opcode.BRA, target=0, trips=5)
        assert i.resolve_trips(0, 0) == 5
        assert i.resolve_trips(9, 3) == 5

    def test_resolve_callable_trips(self):
        i = Instruction(Opcode.BRA, target=0, trips=lambda tb, w: tb + w)
        assert i.resolve_trips(2, 3) == 5

    def test_negative_trips_rejected(self):
        i = Instruction(Opcode.BRA, target=0, trips=lambda tb, w: -1)
        with pytest.raises(ProgramError):
            i.resolve_trips(0, 0)

    def test_default_active_is_full_warp(self):
        i = Instruction(Opcode.IALU, dst=1)
        assert i.resolve_active(0, 0, 32) == 32

    def test_constant_active(self):
        i = Instruction(Opcode.IALU, dst=1, active=7)
        assert i.resolve_active(4, 2, 32) == 7

    def test_callable_active(self):
        i = Instruction(Opcode.IALU, dst=1, active=lambda tb, w: 1 + w)
        assert i.resolve_active(0, 3, 32) == 4

    def test_active_out_of_range_rejected(self):
        i = Instruction(Opcode.IALU, dst=1, active=lambda tb, w: 40)
        with pytest.raises(ProgramError):
            i.resolve_active(0, 0, 32)
        j = Instruction(Opcode.IALU, dst=1, active=lambda tb, w: 0)
        with pytest.raises(ProgramError):
            j.resolve_active(0, 0, 32)

    def test_properties(self):
        ldg = Instruction(Opcode.LDG, dst=1, pattern=Coalesced())
        assert ldg.is_memory and ldg.writes_register
        bar = Instruction(Opcode.BAR)
        assert not bar.is_memory and not bar.writes_register
