"""Tests for the IssueTrace recorder."""

import pytest

from repro import Gpu, GPUConfig, IssueTrace, KernelLaunch
from tests.conftest import tiny_program

CFG = GPUConfig.scaled(2)


class TestRecorder:
    def test_invalid_limit(self):
        with pytest.raises(ValueError):
            IssueTrace(limit=0)

    def test_record_and_query(self):
        t = IssueTrace(limit=10)
        t.record(5, 0, 1, 2, 3, "ialu", 32)
        assert len(t) == 1
        ev = t.events[0]
        assert (ev.cycle, ev.sm_id, ev.tb_index, ev.warp_in_tb, ev.pc,
                ev.opcode, ev.active) == (5, 0, 1, 2, 3, "ialu", 32)

    def test_limit_enforced(self):
        t = IssueTrace(limit=3)
        for i in range(10):
            t.record(i, 0, 0, 0, 0, "ialu", 32)
        assert len(t) == 3 and t.full

    def test_sm_filter(self):
        t = IssueTrace(sm_id=1)
        t.record(0, 0, 0, 0, 0, "ialu", 32)
        t.record(0, 1, 0, 0, 0, "ialu", 32)
        assert len(t) == 1
        assert t.events[0].sm_id == 1

    def test_opcode_histogram(self):
        t = IssueTrace()
        for op in ("ialu", "ialu", "ldg"):
            t.record(0, 0, 0, 0, 0, op, 32)
        assert t.opcode_histogram() == {"ialu": 2, "ldg": 1}

    def test_warp_slice_and_gaps(self):
        t = IssueTrace()
        for c in (10, 14, 30):
            t.record(c, 0, 2, 1, 0, "ialu", 32)
        t.record(12, 0, 3, 1, 0, "ialu", 32)  # different warp
        assert len(t.warp_slice(2, 1)) == 3
        assert t.issue_gaps(2, 1) == [4, 16]

    def test_winners_per_cycle(self):
        t = IssueTrace()
        t.record(7, 0, 0, 0, 0, "ialu", 32)
        t.record(7, 0, 1, 2, 0, "ialu", 32)
        winners = t.winners_per_cycle()
        assert winners[(7, 0)] == [(0, 0), (1, 2)]


class TestSimulationIntegration:
    def test_trace_attached_to_run(self):
        t = IssueTrace(limit=100)
        res = Gpu(CFG, "lrr").run(KernelLaunch(tiny_program(), 4), probes=[t])
        assert 0 < len(t) <= 100
        # all events within the run's window and monotone non-decreasing
        cycles = [ev.cycle for ev in t.events]
        assert cycles == sorted(cycles)
        assert cycles[-1] <= res.cycles

    def test_trace_contains_program_opcodes(self):
        t = IssueTrace()
        Gpu(CFG, "pro").run(KernelLaunch(tiny_program(), 4), probes=[t])
        hist = t.opcode_histogram()
        assert "ldg" in hist and "exit" in hist and "bra" in hist

    def test_exit_count_matches_warps(self):
        t = IssueTrace()
        prog = tiny_program(threads_per_tb=96)  # 3 warps
        Gpu(CFG, "lrr").run(KernelLaunch(prog, 5), probes=[t])
        assert t.opcode_histogram()["exit"] == 5 * 3

    def test_dual_scheduler_dual_issue_visible(self):
        t = IssueTrace()
        prog = tiny_program(threads_per_tb=128, mem=False)
        Gpu(CFG, "lrr").run(KernelLaunch(prog, 4), probes=[t])
        winners = t.winners_per_cycle()
        assert any(len(v) == 2 for v in winners.values())

    def test_untraced_run_unaffected(self):
        a = Gpu(CFG, "pro").run(KernelLaunch(tiny_program(), 4))
        t = IssueTrace()
        b = Gpu(CFG, "pro").run(KernelLaunch(tiny_program(), 4), probes=[t])
        assert a.cycles == b.cycles
