"""Offline training loop for the RLWS scheduler (``pro-sim train-rlws``).

RLWS learns offline, the way the paper trains per-application policies:

1. **Episodes (sequential, in-process).** Each epoch runs every training
   kernel once under a *learning* RLWS instance — all SMs and all
   episodes share one mutable :class:`~repro.core.rlws.QTable`, updated
   by TD(0) backups at every scheduling quantum with epsilon-greedy
   exploration (epsilon decays per epoch). Episodes run on a bare
   :class:`~repro.gpu.gpu.Gpu` — deliberately outside the
   :class:`~repro.harness.runner.ResultCache`, whose memo would
   otherwise answer every epoch after the first from cache.
2. **Evaluation (the existing parallel sweep).** After each epoch the
   candidate table is frozen to a temporary artifact, exported through
   the ``REPRO_RLWS_QTABLE`` environment variable (worker processes
   inherit it, so the frozen candidate rides the ordinary worker-payload
   machinery), and raced against the LRR/GTO baselines with
   :func:`~repro.harness.parallel.run_matrix_parallel` — geomean
   speedups are the epoch's report card, exactly the IPC reward the
   learner optimizes.

The resulting artifact is versioned with a content digest and loads at
scheduler construction (see :func:`repro.core.rlws.load_default_table`);
the packaged default at ``repro/core/data/rlws_qtable.json`` was
produced by this loop.
"""

from __future__ import annotations

import hashlib
import json
import os
import tempfile
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple

from ..config import GPUConfig
from .rlws import ENV_TABLE, QTable, make_rlws_factory
from .scheduler import register_scheduler

#: Transient registry name episodes run under (learning enabled).
TRAIN_SCHEDULER = "rlws!train"
#: Default training kernel set: the fidelity smoke subset — one
#: single-kernel application per behavior class (barrier-heavy,
#: divergent, compute-regular, ray-divergent, stall-heavy, headline).
DEFAULT_KERNELS = (
    "aesEncrypt128", "bfs_kernel", "cenergy", "sha1_overlap",
    "calculate_temp", "scalarProdGPU",
)
#: Baselines each epoch's frozen candidate is raced against.
EVAL_BASELINES = ("lrr", "gto")


def _geomean(values: Sequence[float]) -> float:
    vals = [v for v in values if v > 0]
    if not vals:
        return 0.0
    prod = 1.0
    for v in vals:
        prod *= v
    return prod ** (1.0 / len(vals))


@dataclass
class Episode:
    """One training run of one kernel."""

    kernel: str
    cycles: int
    ipc: float


@dataclass
class Epoch:
    """One pass over the training kernels plus its evaluation."""

    index: int
    epsilon: float
    episodes: List[Episode] = field(default_factory=list)
    #: baseline -> geomean(baseline cycles / rlws cycles) over the
    #: evaluation kernels (>1 = the learned policy is faster).
    eval_speedups: Dict[str, float] = field(default_factory=dict)


@dataclass
class TrainingResult:
    """The trained table and its per-epoch history."""

    table: QTable
    epochs: List[Epoch]
    kernels: Tuple[str, ...]
    sms: int
    scale: float

    def render(self) -> str:
        lines = [
            f"RLWS offline training: {len(self.epochs)} epoch(s) x "
            f"{len(self.kernels)} kernel(s), {self.sms} SMs, "
            f"scale {self.scale}",
            f"Q-table: {len(self.table.q)} visited state(s), "
            f"version {self.table.version}",
        ]
        for ep in self.epochs:
            evals = " ".join(
                f"vs-{b}={s:.4f}x" for b, s in ep.eval_speedups.items()
            ) or "(not evaluated)"
            lines.append(
                f"  epoch {ep.index}: epsilon={ep.epsilon:.4f} "
                f"episodes={len(ep.episodes)} {evals}"
            )
        return "\n".join(lines)

    def to_json(self) -> dict:
        return {
            "kernels": list(self.kernels),
            "sms": self.sms,
            "scale": self.scale,
            "epochs": [
                {
                    "index": ep.index,
                    "epsilon": ep.epsilon,
                    "episodes": [
                        {"kernel": e.kernel, "cycles": e.cycles,
                         "ipc": e.ipc}
                        for e in ep.episodes
                    ],
                    "eval_speedups": dict(ep.eval_speedups),
                }
                for ep in self.epochs
            ],
            "qtable_version": self.table.version,
            "visited_states": len(self.table.q),
        }


def table_digest(table: QTable) -> str:
    """Content digest versioning a trained artifact."""
    payload = json.dumps(
        {"q": {k: list(v) for k, v in sorted(table.q.items())},
         "default_q": table.default_q, "quantum": table.quantum},
        sort_keys=True,
    )
    return hashlib.sha256(payload.encode()).hexdigest()[:12]


def evaluate(
    table: QTable,
    kernels: Sequence[str],
    config: GPUConfig,
    scale: float,
    *,
    jobs: int = 1,
    baselines: Sequence[str] = EVAL_BASELINES,
) -> Dict[str, float]:
    """Race a frozen candidate table against the baselines.

    The table is written to a temporary artifact and exported via
    ``REPRO_RLWS_QTABLE`` so both this process and any worker processes
    construct ``rlws`` from the candidate; the cells run through the
    ordinary (optionally parallel) sweep machinery on a private cache.
    """
    from ..harness.parallel import run_matrix_parallel
    from ..harness.runner import ResultCache

    schedulers = ("rlws",) + tuple(baselines)
    cells = [(k, s) for k in kernels for s in schedulers]
    prev = os.environ.get(ENV_TABLE)
    fd, tmp = tempfile.mkstemp(prefix="rlws-candidate-", suffix=".json")
    os.close(fd)
    try:
        table.save(tmp)
        os.environ[ENV_TABLE] = tmp
        cache = ResultCache()
        results = run_matrix_parallel(cache, cells, config, scale,
                                      jobs=jobs)
    finally:
        if prev is None:
            os.environ.pop(ENV_TABLE, None)
        else:
            os.environ[ENV_TABLE] = prev
        os.unlink(tmp)
    return {
        b: _geomean(
            results[(k, b)].cycles / results[(k, "rlws")].cycles
            for k in kernels
        )
        for b in baselines
    }


def train(
    *,
    kernels: Sequence[str] = DEFAULT_KERNELS,
    epochs: int = 4,
    sms: int = 2,
    scale: float = 0.25,
    jobs: int = 1,
    epsilon_decay: float = 0.6,
    seed_table: Optional[QTable] = None,
    evaluate_epochs: bool = True,
) -> TrainingResult:
    """Run the offline training loop; returns the trained table.

    Deterministic end to end: exploration uses the scheduler's
    counter-hashed epsilon-greedy draw, so the same arguments always
    produce the same artifact. When epochs are evaluated, the returned
    table is the *best* frozen candidate by geomean-vs-LRR (early
    stopping by selection — late epochs can regress as epsilon decays).
    """
    table = seed_table if seed_table is not None else QTable()
    epsilon0 = table.epsilon
    config = GPUConfig.scaled(sms)
    register_scheduler(TRAIN_SCHEDULER,
                       make_rlws_factory(table=table, learn=True))
    from ..gpu.gpu import Gpu
    from ..workloads import get_kernel

    history: List[Epoch] = []
    best: Optional[Tuple[float, QTable]] = None
    for index in range(epochs):
        table.epsilon = epsilon0 * (epsilon_decay ** index)
        epoch = Epoch(index=index, epsilon=table.epsilon)
        for name in kernels:
            model = get_kernel(name)
            result = Gpu(config, TRAIN_SCHEDULER).run(
                model.build_launch(scale)
            )
            epoch.episodes.append(
                Episode(kernel=name, cycles=result.cycles, ipc=result.ipc)
            )
        if evaluate_epochs:
            frozen = QTable.from_json(table.to_json(), source="<candidate>")
            frozen.epsilon = epsilon0
            epoch.eval_speedups = evaluate(frozen, kernels, config, scale,
                                           jobs=jobs)
            score = epoch.eval_speedups.get("lrr", 0.0)
            if best is None or score > best[0]:
                best = (score, frozen)
        history.append(epoch)
    # Freeze the best evaluated candidate (or the final table when epoch
    # evaluation is off), restore the artifact epsilon (inference
    # ignores it, but the artifact should not encode the last epoch's
    # decayed schedule) and stamp the content-digest version.
    final = best[1] if best is not None else table
    final.epsilon = epsilon0
    final.version = f"trained-{table_digest(final)}"
    return TrainingResult(table=final, epochs=history,
                          kernels=tuple(kernels), sms=sms, scale=scale)


def save_artifact(result: TrainingResult, path: str | Path) -> Path:
    """Write the trained, versioned Q-table artifact."""
    return result.table.save(path)
