"""InvariantSanitizer: fault injectors as the detection oracle.

Every armed FaultPlan injector must be *detected and named* by the
sanitizer (or, for injectors that surface as exceptions, by
``classify_failure``); a clean run must report zero violations.
"""

import pytest

from repro import Gpu, GPUConfig, KernelLaunch
from repro.errors import (
    CellTimeoutError,
    DeadlockError,
    InjectedFault,
    InvariantViolation,
    SimulationError,
    SimulationHang,
)
from repro.obs.bus import Probe
from repro.robustness import FaultPlan, InvariantSanitizer, classify_failure
from tests.conftest import tiny_program

CFG = GPUConfig.scaled(2)


def _run_faulted(plan, *, barrier=True, window=5, num_tbs=6, cfg=CFG,
                 scheduler="lrr"):
    """Run a faulted kernel under the sanitizer; return its failure name."""
    san = InvariantSanitizer(window=window)
    gpu = Gpu(cfg, scheduler=scheduler)
    gpu.install_faults(plan)
    prog = tiny_program(barrier=barrier, loops=3)
    try:
        gpu.run(KernelLaunch(prog, num_tbs), probes=[san])
    except SimulationError as err:
        return san.classify(err)
    return None


class TestCleanRuns:
    @pytest.mark.parametrize("sched", ["lrr", "tl", "gto", "pro"])
    def test_zero_violations_on_healthy_runs(self, sched):
        san = InvariantSanitizer(window=50)
        res = Gpu(CFG, sched).run(
            KernelLaunch(tiny_program(barrier=True, loops=3), 8),
            probes=[san],
        )
        assert res.counters.tbs_completed == 8
        assert san.violations == []
        # windowed checks plus the final run-end check actually ran
        assert san.checks_run > 1
        assert san.issues_seen == res.counters.instructions

    def test_window_must_be_positive(self):
        with pytest.raises(ValueError):
            InvariantSanitizer(window=0)


class TestInjectorOracle:
    def test_dropped_barrier_arrival_is_named(self):
        plan = FaultPlan().drop_barrier_arrival(nth=1)
        assert _run_faulted(plan) == "barrier-arrival-lost"

    def test_swallowed_mshr_fill_is_named(self):
        plan = FaultPlan().swallow_mshr_fill(nth=2)
        assert _run_faulted(plan, barrier=False) == "mshr-fill-lost"

    def test_max_cycles_clamp_is_named(self):
        plan = FaultPlan().clamp_max_cycles(40)
        assert _run_faulted(plan) == "max-cycles-clamped"

    def test_injected_cell_failure_is_named(self):
        plan = FaultPlan().fail_cell("tiny", "lrr", times=1)
        with pytest.raises(InjectedFault) as exc:
            plan.check_cell("tiny", "lrr")
        assert classify_failure(exc.value) == "injected-cell-failure"

    @pytest.mark.parametrize("sched", ["lrr", "tl", "gto", "pro"])
    def test_barrier_fault_detected_under_every_scheduler(self, sched):
        plan = FaultPlan().drop_barrier_arrival(nth=1)
        assert _run_faulted(plan, scheduler=sched) == "barrier-arrival-lost"

    def test_violation_carries_machine_report(self):
        san = InvariantSanitizer(window=5)
        gpu = Gpu(CFG, "lrr")
        gpu.install_faults(FaultPlan().drop_barrier_arrival(nth=1))
        with pytest.raises(InvariantViolation) as exc:
            gpu.run(KernelLaunch(tiny_program(barrier=True), 6),
                    probes=[san])
        assert exc.value.name == "barrier-arrival-lost"
        assert exc.value.report is not None
        assert "barrier-arrival-lost" in str(exc.value)
        assert san.violations == ["barrier-arrival-lost"]


class _Corrupter(Probe):
    """Applies a state mutation once, at the Nth issue event."""

    def __init__(self, at_issue, mutate):
        self.at_issue = at_issue
        self.mutate = mutate
        self.gpu = None
        self._n = 0

    def on_run_start(self, gpu, launch):
        self.gpu = gpu

    def on_issue(self, cycle, sm_id, tb_index, warp_in_tb, pc, opcode,
                 active):
        self._n += 1
        if self._n == self.at_issue:
            self.mutate(self.gpu)


def _run_corrupted(mutate):
    san = InvariantSanitizer(window=5)
    gpu = Gpu(CFG, "lrr")
    with pytest.raises(InvariantViolation) as exc:
        # corrupter subscribes first, so it mutates before the check runs
        gpu.run(KernelLaunch(tiny_program(barrier=True, loops=3), 6),
                probes=[_Corrupter(20, mutate), san])
    return exc.value.name


class TestWhiteBoxChecks:
    def test_resource_accounting_drift_detected(self):
        def leak_threads(gpu):
            gpu.sms[0].used_threads += 32

        assert _run_corrupted(leak_threads) == "sm-resource-accounting"

    def test_instruction_counter_drift_detected(self):
        def pad_counter(gpu):
            gpu.sms[0].counters.instructions += 7

        assert _run_corrupted(pad_counter) == "instruction-accounting"

    def test_tb_conservation_drift_detected(self):
        def phantom_finish(gpu):
            gpu.tb_scheduler.note_tb_finished()

        assert _run_corrupted(phantom_finish) == "tb-accounting"


class TestClassifyFailure:
    def test_invariant_violation_uses_its_own_name(self):
        err = InvariantViolation("x", name="mshr-fill-lost")
        assert classify_failure(err) == "mshr-fill-lost"

    def test_hang_without_clamp_is_a_real_hang(self):
        assert classify_failure(SimulationHang("h")) == "simulation-hang"

    def test_hang_under_clamp_is_the_injector(self):
        plan = FaultPlan().clamp_max_cycles(10)
        assert classify_failure(SimulationHang("h"), plan) == \
            "max-cycles-clamped"

    def test_other_classes(self):
        assert classify_failure(DeadlockError("d")) == "deadlock"
        assert classify_failure(CellTimeoutError("t")) == "cell-timeout"
        assert classify_failure(ValueError("v")) == "unclassified"
