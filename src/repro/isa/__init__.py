"""SIMT instruction set for the PRO reproduction simulator.

A *program* is a linear list of :class:`~repro.isa.instructions.Instruction`
objects executed in order by every warp of a kernel, with backward branches
(loops), barriers and an explicit EXIT. Memory instructions carry an
:class:`~repro.isa.patterns.AccessPattern` that deterministically generates
the cache-line addresses each dynamic execution touches, which is what the
memory hierarchy simulates.

Programs are most conveniently written with the
:class:`~repro.isa.builder.ProgramBuilder` DSL::

    b = ProgramBuilder("saxpy")
    b.load_global(dst=1, pattern=Coalesced(base=0x1000_0000))
    b.load_global(dst=2, pattern=Coalesced(base=0x2000_0000))
    b.fma(dst=3, srcs=(1, 2))
    b.store_global(srcs=(3,), pattern=Coalesced(base=0x3000_0000))
    program = b.exit().build()
"""

from .instructions import ExecUnit, Instruction, Opcode
from .patterns import (
    AccessContext,
    AccessPattern,
    Broadcast,
    Chase,
    Coalesced,
    Random,
    Strided,
)
from .program import Program
from .builder import ProgramBuilder

__all__ = [
    "AccessContext",
    "AccessPattern",
    "Broadcast",
    "Chase",
    "Coalesced",
    "ExecUnit",
    "Instruction",
    "Opcode",
    "Program",
    "ProgramBuilder",
    "Random",
    "Strided",
]
