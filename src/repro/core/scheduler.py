"""Warp scheduler interface and registry.

An SM owns ``cfg.num_schedulers`` scheduler instances; warps are statically
partitioned among them by warp index (Fermi behaviour). Every cycle the SM
walks each scheduler's :meth:`WarpScheduler.order` — warps in descending
priority — and issues the first issuable one.

Schedulers receive *listener* callbacks for the TB-level events PRO needs
(barrier arrival/release, warp/TB finish, TB assignment). For the simple
baselines the scheduler itself is the listener; PRO exposes one shared
per-SM manager so TB-level state is kept once, not once per scheduler
(see :mod:`repro.core.pro`).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable, Dict, List, Sequence

from ..config import GPUConfig
from ..errors import SchedulerError

if TYPE_CHECKING:  # pragma: no cover
    from ..simt.sm import StreamingMultiprocessor
    from ..simt.threadblock import ThreadBlock
    from ..simt.warp import Warp


class WarpScheduler:
    """Base class: maintains this scheduler's live warp pool.

    Subclasses implement :meth:`order` (priority order of this
    scheduler's warps) and may override :meth:`note_issued` and the
    listener callbacks. The base keeps ``self.warps`` = live (unfinished)
    warps owned by this scheduler instance, in assignment order.
    """

    #: Registry name; set by subclasses.
    name: str = "base"

    def __init__(self, sm: "StreamingMultiprocessor", sched_id: int, cfg: GPUConfig) -> None:
        self.sm = sm
        self.sched_id = sched_id
        self.cfg = cfg
        self.warps: List["Warp"] = []

    # -- listener plumbing -------------------------------------------------

    @property
    def listener(self) -> object:
        """The object receiving TB-level callbacks (default: self)."""
        return self

    def on_tb_assigned(self, tb: "ThreadBlock", cycle: int) -> None:
        """A TB landed on this SM; adopt the warps this scheduler owns."""
        self.warps.extend(w for w in tb.warps if w.sched_id == self.sched_id)

    def on_tb_finished(self, tb: "ThreadBlock", cycle: int) -> None:
        """A TB completed; its warps were already removed on finish."""

    def on_warp_finished(self, warp: "Warp", cycle: int) -> None:
        """A warp executed EXIT; drop it from the pool if it is ours."""
        if warp.sched_id == self.sched_id:
            try:
                self.warps.remove(warp)
            except ValueError:  # pragma: no cover - defensive
                raise SchedulerError(
                    f"{self.name}: finished warp {warp!r} not in pool"
                )

    def on_warp_barrier(self, warp: "Warp", cycle: int) -> None:
        """A warp arrived at a barrier (stays in the pool, unschedulable)."""

    def on_barrier_release(self, tb: "ThreadBlock", cycle: int) -> None:
        """All warps of ``tb`` crossed the barrier."""

    # -- scheduling ------------------------------------------------------------

    def order(self, cycle: int) -> Sequence["Warp"]:
        """This scheduler's warps in descending priority for this cycle."""
        raise NotImplementedError

    def note_issued(self, warp: "Warp", cycle: int) -> None:
        """Called when ``warp`` (from this scheduler) issued at ``cycle``."""

    # -- state serialization -------------------------------------------

    @staticmethod
    def warp_ref(warp: "Warp") -> list:
        """Stable cross-snapshot warp identity: ``[tb_index, warp_in_tb]``."""
        return [warp.tb.tb_index, warp.warp_in_tb]

    def snapshot(self) -> dict:
        """Serializable scheduler state. Warps are encoded as
        ``[tb_index, warp_in_tb]`` references resolved on restore against
        the rebuilt resident TBs."""
        return {"warps": [self.warp_ref(w) for w in self.warps]}

    def restore(self, data: dict, warp_map: Dict[tuple, "Warp"]) -> None:
        """Apply snapshotted state without firing listener callbacks.

        ``warp_map`` maps ``(tb_index, warp_in_tb)`` to the rebuilt Warp
        objects of the restoring SM.
        """
        self.warps = [warp_map[(t, w)] for t, w in data["warps"]]


# ---------------------------------------------------------------------------
# Registry

#: name -> factory(sm, cfg) -> list[WarpScheduler] (one per SM scheduler).
_REGISTRY: Dict[str, Callable[["StreamingMultiprocessor", GPUConfig], List[WarpScheduler]]] = {}


def register_scheduler(
    name: str,
    factory: Callable[["StreamingMultiprocessor", GPUConfig], List[WarpScheduler]] = None,
):
    """Register a scheduler factory under ``name``.

    Two spellings (overwrites allowed for user experimentation, but the
    built-in names are claimed at import):

    Direct call with a factory::

        register_scheduler("pro", make_pro_factory())

    Decorator on a :class:`WarpScheduler` subclass (wrapped in
    :func:`simple_factory`) or on a factory function::

        @register_scheduler("mine")
        class MyScheduler(WarpScheduler):
            def order(self, cycle):
                ...

    The decorator returns the decorated object unchanged, so the class
    stays importable under its own name.
    """
    if factory is not None:
        _REGISTRY[name] = factory
        return factory

    def decorate(obj):
        if isinstance(obj, type) and issubclass(obj, WarpScheduler):
            _REGISTRY[name] = simple_factory(obj)
        else:
            _REGISTRY[name] = obj
        return obj

    return decorate


def simple_factory(cls) -> Callable:
    """Factory for schedulers with no shared per-SM state."""

    def make(sm: "StreamingMultiprocessor", cfg: GPUConfig) -> List[WarpScheduler]:
        return [cls(sm, i, cfg) for i in range(cfg.num_schedulers)]

    return make


def available_schedulers() -> List[str]:
    """Sorted names of all registered schedulers."""
    return sorted(_REGISTRY)


def build_schedulers(
    name: str, sm: "StreamingMultiprocessor", cfg: GPUConfig
) -> List[WarpScheduler]:
    """Instantiate the named scheduler's per-SM instances."""
    try:
        factory = _REGISTRY[name]
    except KeyError:
        raise SchedulerError(
            f"unknown scheduler {name!r}; available: {available_schedulers()}"
        ) from None
    return factory(sm, cfg)
