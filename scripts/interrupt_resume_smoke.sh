#!/usr/bin/env bash
# Interrupt-resume smoke test (run by CI, works locally from anywhere):
#
#   1. simulate one cell uninterrupted -> golden counters
#   2. start the same cell with --checkpoint/--snapshot-every, SIGTERM it
#      mid-run; the harness must snapshot the in-flight cell and exit 3
#   3. re-run the same command; it must resume the cell from the snapshot
#      (not restart it) and produce counters identical to the golden run
set -euo pipefail
cd "$(dirname "$0")/.."
export PYTHONPATH=src

# Long enough (~4 s simulated work) that a signal 1.5 s in lands mid-run.
KERNEL=bfs_kernel SCHED=pro SMS=2 SCALE=6.0
WORK=$(mktemp -d)
trap 'rm -rf "$WORK"' EXIT

run() {
    python -m repro.harness.cli run "$KERNEL" --scheduler "$SCHED" \
        --sms "$SMS" --scale "$SCALE" "$@"
}

echo "== uninterrupted reference =="
run --json "$WORK/golden.json" >/dev/null

echo "== interrupted run (SIGTERM mid-cell) =="
# Background python itself (not a function wrapper) so $! is the PID the
# signal must reach.
python -m repro.harness.cli run "$KERNEL" --scheduler "$SCHED" \
    --sms "$SMS" --scale "$SCALE" \
    --checkpoint "$WORK/ckpt" --snapshot-every 50000 \
    >"$WORK/first.log" 2>&1 &
PID=$!
sleep 1.5
kill -TERM "$PID"
rc=0
wait "$PID" || rc=$?
cat "$WORK/first.log"
if [ "$rc" -ne 3 ]; then
    echo "FAIL: interrupted run exited $rc, expected 3" \
         "(did it finish before the signal?)" >&2
    exit 1
fi
SNAP=$(find "$WORK/ckpt/snapshots" -name '*.snap' 2>/dev/null | head -n1)
if [ -z "$SNAP" ]; then
    echo "FAIL: no mid-run snapshot under $WORK/ckpt/snapshots" >&2
    exit 1
fi
echo "snapshot written: $(basename "$SNAP")"

echo "== resumed run =="
run --checkpoint "$WORK/ckpt" --snapshot-every 50000 \
    --json "$WORK/resumed.json"

python - "$WORK/golden.json" "$WORK/resumed.json" <<'EOF'
import json, sys

golden, resumed = (json.load(open(p)) for p in sys.argv[1:3])
if golden != resumed:
    diff = {k for k in golden if golden[k] != resumed.get(k)}
    raise SystemExit(f"FAIL: resumed result differs from golden in {sorted(diff)}\n"
                     f"golden : {golden}\nresumed: {resumed}")
print(f"OK: resumed run is bit-identical to the uninterrupted run "
      f"({golden['cycles']} cycles, ipc {golden['ipc']:.3f})")
EOF
