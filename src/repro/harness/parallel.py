"""Parallel run-matrix execution: fan cells out to worker processes.

The paper's evaluation is a 25-kernel x 4-scheduler matrix of mutually
independent simulations — embarrassingly parallel work that the harness
previously ran strictly sequentially. :func:`run_matrix_parallel` fans
the missing cells of a matrix out to a ``concurrent.futures`` process
pool and streams completed counters back into the parent's
:class:`~repro.harness.runner.ResultCache`:

* **Workers are pure.** Each worker process simulates one cell inside a
  private throwaway cache (honouring the parent's
  :class:`~repro.harness.runner.CellPolicy` retry/timeout budget) and
  returns the flattened counters of
  :func:`repro.robustness.checkpoint.result_to_json` — no shared state,
  no ordering sensitivity, so parallel results are bit-identical to a
  sequential sweep (asserted by ``tests/harness/test_parallel.py``).
* **The parent is the single checkpoint writer.** Completed cells are
  adopted into the parent cache (and its optional
  :class:`~repro.robustness.checkpoint.CheckpointStore`) as they stream
  in, so the on-disk checkpoint sees exactly one writer per file. (The
  store itself also supports per-writer shard files for the rare case of
  genuinely concurrent writer processes; see ``CheckpointStore(shard=)``.)
* **Failures aggregate.** A failed cell is recorded as a
  :class:`~repro.harness.runner.CellFailure` on the parent cache; under
  ``keep_going`` the sweep continues and the cell's slot is ``None``,
  otherwise the reconstructed :class:`~repro.errors.SimulationError`
  propagates after in-flight cells are drained.

Fault injection (``ResultCache.faults``) holds process-local mutable
budgets that cannot be shared with workers; such caches transparently
fall back to the sequential path.
"""

from __future__ import annotations

import os
import time
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from .. import errors as _errors
from ..config import GPUConfig
from ..errors import SimulationError, SimulationInterrupted
from ..gpu.launch import RunResult
from ..robustness.checkpoint import result_from_json, result_to_json
from .runner import CellFailure, CellPolicy, ResultCache

#: (kernel, scheduler) -> RunResult (or None for a failed cell under
#: ``keep_going``).
MatrixResults = Dict[Tuple[str, str], Optional[RunResult]]


@dataclass(frozen=True)
class CellOutcome:
    """Wall-clock accounting of one simulated cell (bench reporting)."""

    kernel: str
    scheduler: str
    seconds: float
    from_cache: bool


def resolve_jobs(spec: object) -> int:
    """Parse a ``--jobs`` value: a positive integer or ``"auto"``.

    ``auto`` resolves to the machine's CPU count (at least 1). Raises
    :class:`ValueError` with a usage-style message otherwise.
    """
    if spec is None:
        return 1
    if isinstance(spec, int):
        jobs = spec
    else:
        text = str(spec).strip().lower()
        if text == "auto":
            return max(1, os.cpu_count() or 1)
        try:
            jobs = int(text)
        except ValueError:
            raise ValueError(
                f"jobs must be a positive integer or 'auto' (got {spec!r})"
            ) from None
    if jobs <= 0:
        raise ValueError(f"jobs must be a positive integer (got {jobs})")
    return jobs


# ---------------------------------------------------------------------------
# worker side


def _ensure_scheduler_registered(scheduler: str) -> None:
    """Make dynamically-registered scheduler names resolvable in a fresh
    worker process.

    Static variants (``pro-nb``/``pro-nf``/``pro-norm``) register on
    import; threshold variants (``pro-t<N>``) are registered lazily by
    the parent and must be re-registered here.
    """
    from ..core import variants

    if scheduler.startswith("pro-t"):
        try:
            variants.pro_with_threshold(int(scheduler[len("pro-t"):]))
        except ValueError:
            pass  # not a threshold variant; let the registry reject it


def _worker_cell(
    kernel: str,
    scheduler: str,
    config: GPUConfig,
    scale: float,
    policy: CellPolicy,
) -> Tuple[str, str, Optional[dict], Optional[Tuple[str, str, int]], float]:
    """Simulate one cell in a worker process.

    Returns ``(kernel, scheduler, result_json | None,
    (error_type, headline, attempts) | None, wall_seconds)``. Exceptions
    never cross the process boundary as live objects — diagnostic reports
    attached to simulation errors are not reliably picklable.
    """
    _ensure_scheduler_registered(scheduler)
    cache = ResultCache(policy=policy)
    t0 = time.perf_counter()
    try:
        result = cache.run(kernel, scheduler, config, scale)
    except SimulationError as err:
        attempts = (
            cache.failures[-1].attempts if cache.failures
            else policy.retries + 1
        )
        return (
            kernel, scheduler, None,
            (type(err).__name__, err.headline, attempts),
            time.perf_counter() - t0,
        )
    return (
        kernel, scheduler, result_to_json(result), None,
        time.perf_counter() - t0,
    )


def _rebuild_error(error_type: str, headline: str) -> SimulationError:
    """Reconstruct a worker-side simulation error in the parent.

    The diagnostic report is lost at the process boundary; the error type
    and headline survive, which is what the FAILURES section renders.
    """
    cls = getattr(_errors, error_type, SimulationError)
    if not (isinstance(cls, type) and issubclass(cls, SimulationError)):
        cls = SimulationError
    return cls(headline)


# ---------------------------------------------------------------------------
# parent side


def run_matrix_parallel(
    cache: ResultCache,
    cells: Sequence[Tuple[str, str]],
    config: GPUConfig,
    scale: float = 1.0,
    *,
    jobs: int = 1,
    keep_going: bool = False,
    outcomes: Optional[List[CellOutcome]] = None,
) -> MatrixResults:
    """Fill ``cache`` with every ``(kernel, scheduler)`` cell of a matrix.

    Cells already answered by the cache's memo or checkpoint tiers are
    never re-simulated; the rest fan out across ``jobs`` worker processes
    (sequentially in-process when ``jobs == 1`` or fault injection is
    armed). Completed counters stream back into the parent cache — and
    its checkpoint, with the parent as the single writer — as they
    finish, so an interrupted parallel sweep resumes exactly like a
    sequential one.

    Returns the per-cell results. A failed cell raises the reconstructed
    error unless ``keep_going``, in which case it is recorded in
    ``cache.failures`` and mapped to ``None``. ``outcomes``, when given,
    receives one :class:`CellOutcome` per cell for bench reporting.
    """
    results: MatrixResults = {}
    missing: List[Tuple[str, str]] = []
    for kernel, scheduler in cells:
        key = (kernel, scheduler)
        if key in results:
            continue
        hit = cache.lookup(kernel, scheduler, config, scale)
        results[key] = hit
        if hit is None:
            missing.append(key)
        elif outcomes is not None:
            outcomes.append(CellOutcome(kernel, scheduler, 0.0, True))

    if not missing:
        return results
    if jobs <= 1 or cache.faults is not None:
        # Fault plans hold process-local mutable budgets (consumed as
        # faults fire) that cannot be mirrored across workers.
        _run_sequential(cache, missing, config, scale,
                        keep_going=keep_going, results=results,
                        outcomes=outcomes)
        return results

    first_error: Optional[SimulationError] = None
    completed = 0
    interrupted = False
    with ProcessPoolExecutor(max_workers=min(jobs, len(missing))) as pool:
        futures = [
            pool.submit(_worker_cell, kernel, scheduler, config, scale,
                        cache.policy)
            for kernel, scheduler in missing
        ]
        try:
            for future in futures:
                if getattr(cache, "interrupted", False):
                    # A graceful_interrupts handler fired: stop consuming
                    # and tear the pool down below.
                    interrupted = True
                    break
                kernel, scheduler, payload, failure, seconds = (
                    future.result()
                )
                cache.runs_executed += 1
                completed += 1
                if outcomes is not None:
                    outcomes.append(
                        CellOutcome(kernel, scheduler, seconds, False)
                    )
                if failure is not None:
                    error_type, headline, attempts = failure
                    err = _rebuild_error(error_type, headline)
                    cache.failures.append(CellFailure(
                        kernel=kernel, scheduler=scheduler, scale=scale,
                        attempts=attempts, error=err,
                    ))
                    results[(kernel, scheduler)] = None
                    if first_error is None:
                        first_error = err
                    continue
                result = result_from_json(payload)
                cache.adopt(kernel, scheduler, config, scale, result)
                results[(kernel, scheduler)] = result
        except KeyboardInterrupt:
            # Raw Ctrl-C without the graceful handler (or a worker dying
            # of the same process-group SIGINT).
            interrupted = True
        if interrupted:
            # Cancel every not-yet-started cell; the `with` exit then
            # joins (reaps) the worker processes, waiting only for cells
            # already executing. Adopted cells stay checkpointed.
            for future in futures:
                future.cancel()
            pool.shutdown(wait=True, cancel_futures=True)
    if interrupted:
        raise SimulationInterrupted(
            f"parallel sweep interrupted: {completed}/{len(missing)} "
            "outstanding cell(s) completed (checkpointed cells are kept; "
            "re-run the same command to resume)"
        )
    if first_error is not None and not keep_going:
        raise first_error
    return results


def _run_sequential(
    cache: ResultCache,
    missing: Sequence[Tuple[str, str]],
    config: GPUConfig,
    scale: float,
    *,
    keep_going: bool,
    results: MatrixResults,
    outcomes: Optional[List[CellOutcome]],
) -> None:
    """In-process fallback with the same keep-going semantics."""
    for kernel, scheduler in missing:
        t0 = time.perf_counter()
        try:
            result: Optional[RunResult] = cache.run(
                kernel, scheduler, config, scale
            )
        except SimulationInterrupted:
            raise  # an interrupt ends the sweep even under keep_going
        except SimulationError:
            if not keep_going:
                raise
            result = None
        results[(kernel, scheduler)] = result
        if outcomes is not None:
            outcomes.append(CellOutcome(
                kernel, scheduler, time.perf_counter() - t0, False
            ))
