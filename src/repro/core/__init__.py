"""Warp scheduling algorithms: LRR, GTO, TL baselines and PRO (the paper).

Schedulers are looked up by name via :func:`available_schedulers` /
:func:`build_schedulers`:

========== ==========================================================
``lrr``    Loose Round Robin (equal priority, rotating start point)
``gto``    Greedy Then Oldest (stick with one warp, fall back to oldest)
``tl``     Two-Level (Narasiman et al., MICRO-2011 fetch groups)
``pro``    Progress-aware scheduler (this paper, Algorithm 1 + Fig. 3)
``pro-nb`` PRO ablation: barrierWait prioritization disabled (§IV note)
``pro-nf`` PRO ablation: finishWait prioritization disabled
``pro-norm`` PRO extension: normalized (fractional) progress (§III-C.1/§VI)
``of``     Oldest-First reference (GTO without the greedy component)
``rand``   Deterministic pseudo-random priority (policy floor)
``rlws``   RL-based warp scheduler (Anantpur et al., arXiv:1712.04303):
           tabular Q-learner over ready/stall/memory features
``wasp``   Scout-warp prefetch mimicking (Joseph et al., arXiv:2404.06156)
========== ==========================================================

The post-2015 frontier entries (``rlws``/``wasp``) make the repo a
scheduler arena: ``pro-sim tournament`` races all six first-class
policies over the Table II kernel matrix.
"""

from .scheduler import (
    WarpScheduler,
    available_schedulers,
    build_schedulers,
    register_scheduler,
)
from .tb_state import TbState, allowed_transitions, check_transition
from .lrr import LrrScheduler
from .gto import GtoScheduler
from .tl import TwoLevelScheduler
from .pro import ProManager, ProScheduler
from . import variants as _variants  # noqa: F401  (registers pro-nb / pro-nf / pro-norm)
from . import extra as _extra  # noqa: F401  (registers of / rand)
from .rlws import QTable, RlwsScheduler
from .wasp import WaspScheduler

__all__ = [
    "GtoScheduler",
    "LrrScheduler",
    "ProManager",
    "ProScheduler",
    "QTable",
    "RlwsScheduler",
    "TbState",
    "TwoLevelScheduler",
    "WarpScheduler",
    "WaspScheduler",
    "allowed_transitions",
    "available_schedulers",
    "build_schedulers",
    "check_transition",
    "register_scheduler",
]
