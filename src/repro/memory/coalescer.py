"""Per-warp memory access coalescing.

Fermi-style coalescing: the 32 per-lane byte addresses of a warp memory
instruction are reduced to the set of distinct 128-byte cache-line
transactions. :mod:`repro.isa.patterns` generators emit line addresses
directly for speed; this module provides the reference implementation used
by tests, custom patterns and examples, and documents the contract the
patterns must obey.
"""

from __future__ import annotations

from typing import Iterable, List

from ..config import LINE_SIZE


def coalesce_addresses(addresses: Iterable[int], line_size: int = LINE_SIZE) -> List[int]:
    """Collapse per-lane byte addresses into ordered distinct line addresses.

    Parameters
    ----------
    addresses:
        Byte addresses of the active lanes (inactive lanes excluded).
    line_size:
        Transaction granularity (must be a power of two).

    Returns
    -------
    list[int]
        Distinct line-aligned addresses, in first-touch order — one memory
        transaction each. An empty input yields an empty list (a fully
        predicated-off access issues no transactions).
    """
    if line_size <= 0 or line_size & (line_size - 1):
        raise ValueError("line_size must be a positive power of two")
    mask = ~(line_size - 1)
    seen: set[int] = set()
    out: List[int] = []
    for addr in addresses:
        if addr < 0:
            raise ValueError("addresses must be non-negative")
        line = addr & mask
        if line not in seen:
            seen.add(line)
            out.append(line)
    return out
