"""Unit tests for the timeline and sort-trace recorders."""

from repro.stats.timeline import SortTraceRecorder, TimelineRecorder


class TestTimelineRecorder:
    def test_interval_recorded(self):
        t = TimelineRecorder()
        t.tb_started(0, 7, 100)
        t.tb_finished(0, 7, 250)
        (iv,) = t.intervals
        assert (iv.sm_id, iv.tb_index, iv.start_cycle, iv.finish_cycle) == \
            (0, 7, 100, 250)
        assert iv.duration == 150

    def test_for_sm_filters_and_sorts(self):
        t = TimelineRecorder()
        t.tb_started(0, 1, 50)
        t.tb_started(1, 2, 0)
        t.tb_started(0, 3, 10)
        t.tb_finished(0, 1, 100)
        t.tb_finished(1, 2, 90)
        t.tb_finished(0, 3, 95)
        sm0 = t.for_sm(0)
        assert [iv.tb_index for iv in sm0] == [3, 1]

    def test_overlap_score(self):
        t = TimelineRecorder()
        for i, start in enumerate((0, 100, 300)):
            t.tb_started(0, i, start)
            t.tb_finished(0, i, start + 50)
        assert t.overlap_score(0) == 150.0  # mean of (100, 200)

    def test_overlap_score_single_tb(self):
        t = TimelineRecorder()
        t.tb_started(0, 0, 0)
        t.tb_finished(0, 0, 10)
        assert t.overlap_score(0) == 0.0

    def test_finish_without_start_defaults_to_zero(self):
        t = TimelineRecorder()
        t.tb_finished(0, 9, 42)
        assert t.intervals[0].start_cycle == 0


class TestSortTraceRecorder:
    def test_records_only_traced_sm(self):
        s = SortTraceRecorder(sm_id=1)
        s.record(0, 100, [1, 2])
        s.record(1, 100, [3, 4])
        assert len(s.snapshots) == 1
        assert s.snapshots[0].order == (3, 4)

    def test_limit(self):
        s = SortTraceRecorder(sm_id=0, limit=2)
        for i in range(5):
            s.record(0, i, [i])
        assert len(s.snapshots) == 2

    def test_order_changes(self):
        s = SortTraceRecorder(sm_id=0)
        s.record(0, 0, [1, 2, 3])
        s.record(0, 1, [1, 2, 3])
        s.record(0, 2, [2, 1, 3])
        s.record(0, 3, [2, 1, 3])
        assert s.order_changes() == 1

    def test_first_batch_table_uses_first_snapshot(self):
        s = SortTraceRecorder(sm_id=0)
        s.record(0, 0, [0, 4, 8])
        s.record(0, 1, [8, 0, 4])
        s.record(0, 2, [8, 4])          # one TB finished: row dropped
        s.record(0, 3, [8, 4, 16])      # replacement TB: still dropped
        rows = s.first_batch_table()
        assert rows == [(0, (0, 4, 8)), (1, (8, 0, 4))]

    def test_first_batch_table_restriction(self):
        s = SortTraceRecorder(sm_id=0)
        s.record(0, 0, [0, 4, 8, 12])
        s.record(0, 5, [12, 8, 4, 0])
        rows = s.first_batch_table(n_tbs=2)
        assert rows == [(0, (0, 4)), (5, (4, 0))]

    def test_empty_trace(self):
        s = SortTraceRecorder()
        assert s.first_batch_table() == []
        assert s.order_changes() == 0
