"""Tests for the supervised persistent worker pool.

The load-bearing properties: bit-identical equivalence with the
sequential path, deterministic survival of every worker-level fault
injector, poison-cell quarantine instead of sweep abortion, graceful
degradation when the respawn budget runs out, and interrupt semantics
that leave a resumable checkpoint even when the interrupt lands during
a respawn.
"""

import pytest

from repro.config import GPUConfig
from repro.errors import PoisonCellError, SimulationInterrupted
from repro.harness.parallel import run_matrix_parallel
from repro.harness.pool import (
    PoolConfig,
    PoolEvent,
    WorkerPool,
    corrupt_cell_payload,
    rebuild_error,
)
from repro.harness.runner import ResultCache
from repro.robustness.checkpoint import CheckpointStore, result_to_json
from repro.robustness.faults import FaultPlan

CONFIG = GPUConfig.scaled(2)
SCALE = 0.1
CELLS = [
    (k, s)
    for k in ("scalarProdGPU", "cenergy")
    for s in ("lrr", "pro")
]


def _flatten(results):
    return {k: result_to_json(v) for k, v in results.items() if v is not None}


@pytest.fixture(scope="module")
def baseline():
    """Sequential ground truth for the test matrix."""
    return run_matrix_parallel(ResultCache(), CELLS, CONFIG, SCALE, jobs=1)


class TestPoolEquivalence:
    def test_pool_matches_sequential_bit_for_bit(self, baseline):
        par = run_matrix_parallel(ResultCache(), CELLS, CONFIG, SCALE,
                                  jobs=2)
        assert _flatten(par) == _flatten(baseline)
        for key in CELLS:
            assert (par[key].counters.stall_breakdown()
                    == baseline[key].counters.stall_breakdown())

    def test_persistent_pool_serves_multiple_sweeps(self, baseline):
        with WorkerPool(2) as pool:
            first = run_matrix_parallel(ResultCache(), CELLS, CONFIG, SCALE,
                                        jobs=2, pool=pool)
            second = run_matrix_parallel(ResultCache(), CELLS, CONFIG,
                                         SCALE, jobs=2, pool=pool)
            # Same warm workers, no respawns: the pool never lost one.
            assert pool.respawns == 0
            spawns = [e for e in pool.events if e.kind == "spawn"]
            assert len(spawns) == 2
        assert _flatten(first) == _flatten(baseline)
        assert _flatten(second) == _flatten(baseline)

    def test_pool_adopts_into_checkpoint(self, tmp_path, baseline):
        store = CheckpointStore(tmp_path)
        cache = ResultCache(checkpoint=store)
        run_matrix_parallel(cache, CELLS, CONFIG, SCALE, jobs=2)
        resumed = ResultCache(checkpoint=CheckpointStore(tmp_path))
        run_matrix_parallel(resumed, CELLS, CONFIG, SCALE, jobs=2)
        assert resumed.runs_executed == 0
        assert resumed.checkpoint_hits == len(CELLS)

    def test_durations_sidecar_feeds_longest_first_ordering(self, tmp_path):
        store = CheckpointStore(tmp_path)
        cache = ResultCache(checkpoint=store)
        run_matrix_parallel(cache, CELLS, CONFIG, SCALE, jobs=2)
        # Every adopted cell recorded its wall-clock time.
        for kernel, scheduler in CELLS:
            assert store.estimate_seconds(kernel, scheduler) is not None
        # A fresh pool over a fresh store orders by those estimates:
        # verify via the internal estimator (inf = unknown ranks first).
        pool = WorkerPool(1)
        fresh = ResultCache(checkpoint=CheckpointStore(tmp_path))
        from repro.harness.pool import _Task

        known = pool._estimate(fresh, _Task(0, *CELLS[0]))
        unknown = pool._estimate(fresh, _Task(1, "mri-q", "tl"))
        assert known < unknown == float("inf")


class TestWorkerFaultInjectors:
    def test_kill_worker_is_survived_and_named(self, baseline):
        plan = FaultPlan().kill_worker("cenergy", "pro", times=1)
        cache = ResultCache(faults=plan)
        pool = WorkerPool(2)
        with pool:
            res = run_matrix_parallel(cache, CELLS, CONFIG, SCALE, jobs=2,
                                      pool=pool)
        assert _flatten(res) == _flatten(baseline)
        assert not cache.failures  # transient: survived, not recorded
        assert pool.respawns == 1
        assert pool.redispatches == 1
        kinds = [e.kind for e in pool.events]
        assert "inject" in kinds and "worker-death" in kinds
        assert any("kill_worker" in entry for entry in plan.injected)

    def test_hang_worker_caught_by_deadline(self, baseline):
        plan = FaultPlan().hang_worker("scalarProdGPU", "lrr", times=1)
        cache = ResultCache(faults=plan)
        pool = WorkerPool(2, pool_config=PoolConfig(worker_deadline=2.0))
        with pool:
            res = run_matrix_parallel(cache, CELLS, CONFIG, SCALE, jobs=2,
                                      pool=pool)
        assert _flatten(res) == _flatten(baseline)
        assert any(e.kind == "deadline" for e in pool.events)
        assert pool.respawns == 1

    def test_corrupt_payload_redispatched_never_adopted(
            self, tmp_path, baseline):
        plan = FaultPlan().corrupt_payload("cenergy", "lrr", times=1)
        store = CheckpointStore(tmp_path)
        cache = ResultCache(checkpoint=store, faults=plan)
        pool = WorkerPool(2)
        with pool:
            res = run_matrix_parallel(cache, CELLS, CONFIG, SCALE, jobs=2,
                                      pool=pool)
        assert _flatten(res) == _flatten(baseline)
        assert any(e.kind == "corrupt-payload" for e in pool.events)
        # The checkpoint holds only clean counters: reload and compare.
        resumed = ResultCache(checkpoint=CheckpointStore(tmp_path))
        for key in CELLS:
            hit = resumed.lookup(*key, CONFIG, SCALE)
            assert result_to_json(hit) == result_to_json(baseline[key])

    def test_worker_only_plans_run_parallel(self):
        plan = FaultPlan().kill_worker("cenergy", "pro")
        assert plan.has_worker_faults()
        assert not plan.has_simulation_faults()
        mixed = FaultPlan().kill_worker("cenergy", "pro").clamp_max_cycles(5)
        assert mixed.has_simulation_faults()


class TestQuarantineAndDegrade:
    def test_poison_cell_quarantined_sweep_continues(self, baseline):
        plan = FaultPlan().kill_worker("cenergy", "pro", times=99)
        cache = ResultCache(faults=plan)
        pool = WorkerPool(2, pool_config=PoolConfig(max_respawns=10,
                                                    max_cell_attempts=3))
        with pool:
            res = run_matrix_parallel(cache, CELLS, CONFIG, SCALE, jobs=2,
                                      pool=pool, keep_going=True)
        assert res[("cenergy", "pro")] is None
        healthy = [k for k in CELLS if k != ("cenergy", "pro")]
        for key in healthy:
            assert result_to_json(res[key]) == result_to_json(baseline[key])
        assert pool.quarantined == [("cenergy", "pro")]
        assert len(cache.failures) == 1
        failure = cache.failures[0]
        assert isinstance(failure.error, PoisonCellError)
        assert failure.error.fault_kind == "worker-death"
        assert failure.attempts == 3

    def test_poison_cell_raises_without_keep_going(self):
        plan = FaultPlan().kill_worker("cenergy", "pro", times=99)
        cache = ResultCache(faults=plan)
        with pytest.raises(PoisonCellError):
            run_matrix_parallel(cache, CELLS, CONFIG, SCALE, jobs=2,
                                pool_config=PoolConfig(max_respawns=10))

    def test_respawn_exhaustion_degrades_to_sequential(self, baseline):
        plan = FaultPlan()
        for kernel, scheduler in CELLS:
            plan.kill_worker(kernel, scheduler, times=1)
        cache = ResultCache(faults=plan)
        pool = WorkerPool(2, pool_config=PoolConfig(max_respawns=0))
        with pool:
            res = run_matrix_parallel(cache, CELLS, CONFIG, SCALE, jobs=2,
                                      pool=pool)
        # Both workers died, no respawn budget: every remaining cell
        # still completed (in-process) and matches the baseline.
        assert _flatten(res) == _flatten(baseline)
        assert any(e.kind == "degrade" for e in pool.events)
        assert pool.respawns == 0


class TestPoolInterrupt:
    def test_interrupt_during_respawn_is_resumable(self, tmp_path,
                                                   baseline):
        """An interrupt landing exactly on a respawn event unwinds as
        SimulationInterrupted; checkpointed cells survive and the re-run
        completes bit-identically."""
        store = CheckpointStore(tmp_path)
        plan = FaultPlan().kill_worker("cenergy", "pro", times=1)
        cache = ResultCache(checkpoint=store, faults=plan)

        class StopOnRespawn:
            def __init__(self, cache):
                self.cache = cache

            def on_pool_event(self, event):
                if event.kind == "respawn":
                    self.cache.request_stop()

        with pytest.raises(SimulationInterrupted) as exc:
            run_matrix_parallel(cache, CELLS, CONFIG, SCALE, jobs=2,
                                probes=[StopOnRespawn(cache)])
        assert "re-run the same command to resume" in str(exc.value)

        resumed = ResultCache(checkpoint=CheckpointStore(tmp_path))
        res = run_matrix_parallel(resumed, CELLS, CONFIG, SCALE, jobs=2)
        assert _flatten(res) == _flatten(baseline)
        # At least the cells adopted before the interrupt came from disk.
        assert resumed.checkpoint_hits + resumed.runs_executed == len(CELLS)

    def test_preinterrupted_cache_raises_immediately(self):
        cache = ResultCache()
        cache.interrupted = True
        with pytest.raises(SimulationInterrupted):
            run_matrix_parallel(cache, CELLS, CONFIG, SCALE, jobs=2)


class TestPoolTelemetry:
    def test_lifecycle_events_reach_probes(self):
        seen = []

        class Recorder:
            def on_pool_event(self, event):
                seen.append(event)

        cache = ResultCache()
        run_matrix_parallel(cache, CELLS[:2], CONFIG, SCALE, jobs=2,
                            probes=[Recorder()])
        kinds = [e.kind for e in seen]
        assert kinds.count("spawn") == 2
        assert kinds.count("dispatch") == 2
        assert kinds[-1] == "shutdown"
        assert all(isinstance(e, PoolEvent) for e in seen)

    def test_event_describe_is_readable(self):
        event = PoolEvent(kind="quarantine", worker_id=3, kernel="cenergy",
                          scheduler="pro", detail="after 3 attempt(s)")
        text = event.describe()
        assert "quarantine" in text and "cenergy/pro" in text
        assert "worker 3" in text


class TestPayloadHelpers:
    def test_corrupt_cell_payload_breaks_digest(self):
        from repro.harness.pool import simulate_cell_payload
        from repro.harness.runner import CellPolicy
        from repro.robustness.checkpoint import payload_digest

        payload = simulate_cell_payload("scalarProdGPU", "lrr", CONFIG,
                                        SCALE, CellPolicy())
        assert payload["digest"] == payload_digest(payload["result"])
        bad = corrupt_cell_payload(payload)
        assert bad["digest"] != payload_digest(bad["result"]) or (
            "per_sm" not in bad["result"]["counters"]
        )

    def test_rebuild_error_unknown_type_degrades_to_base(self):
        from repro.errors import SimulationError

        err = rebuild_error({"type": "NoSuchError", "headline": "boom"})
        assert type(err) is SimulationError
        assert err.headline == "boom"
