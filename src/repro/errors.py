"""Exception hierarchy for the PRO reproduction library.

Every error raised intentionally by the simulator derives from
:class:`ReproError`, so callers can catch library failures without
accidentally swallowing genuine Python bugs (``TypeError`` etc.).
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the ``repro`` package."""


class ConfigError(ReproError):
    """An invalid or inconsistent :class:`repro.config.GPUConfig`."""


class ProgramError(ReproError):
    """A malformed SIMT program (bad branch target, missing EXIT, ...)."""


class LaunchError(ReproError):
    """A kernel launch that cannot run on the configured GPU.

    Raised e.g. when a single thread block needs more registers, threads or
    shared memory than one SM provides — the same situation in which a real
    CUDA launch would fail with ``cudaErrorInvalidConfiguration``.
    """


class SchedulerError(ReproError):
    """Unknown scheduler name or an internal scheduler invariant violation."""


class SimulationError(ReproError):
    """The simulator reached an impossible state (deadlock, lost warp, ...)."""


class WorkloadError(ReproError):
    """Unknown benchmark kernel or invalid workload parameters."""
