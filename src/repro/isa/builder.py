"""ProgramBuilder — an ergonomic DSL for authoring SIMT programs.

Workload models (``repro.workloads``) and user code build programs with
this fluent builder rather than hand-writing instruction lists::

    b = ProgramBuilder("dot", threads_per_tb=256, shared_mem_per_tb=1024)
    with b.loop(times=16):
        b.load_global(1, pattern=Coalesced(iter_stride=4096))
        b.load_global(2, pattern=Coalesced(base=1 << 30, iter_stride=4096))
        b.fma(3, (1, 2, 3))
    b.store_shared((3,))
    b.barrier()
    program = b.exit().build()

Loops nest; ``times`` may be a constant or a per-warp callable
``(tb_index, warp_in_tb) -> int`` (>= 1), which is how workloads model
warp-level divergence.
"""

from __future__ import annotations

import contextlib
from typing import Iterator, Optional, Tuple

from ..errors import ProgramError
from .instructions import ActiveCount, Instruction, Opcode, TripCount
from .patterns import AccessPattern
from .program import Program


class ProgramBuilder:
    """Incrementally builds a validated :class:`~repro.isa.program.Program`."""

    def __init__(
        self,
        name: str,
        *,
        threads_per_tb: int = 256,
        regs_per_thread: int = 16,
        shared_mem_per_tb: int = 0,
    ) -> None:
        self.name = name
        self.threads_per_tb = threads_per_tb
        self.regs_per_thread = regs_per_thread
        self.shared_mem_per_tb = shared_mem_per_tb
        self._instrs: list[Instruction] = []
        self._open_loops = 0
        self._built = False

    # -- compute ----------------------------------------------------------

    def ialu(self, dst: int, srcs: Tuple[int, ...] = (), *, active: Optional[ActiveCount] = None) -> "ProgramBuilder":
        """Append an integer ALU op (short latency, SP unit)."""
        return self._append(Instruction(Opcode.IALU, dst, srcs, active=active))

    def falu(self, dst: int, srcs: Tuple[int, ...] = (), *, active: Optional[ActiveCount] = None) -> "ProgramBuilder":
        """Append a float add/mul (short latency, SP unit)."""
        return self._append(Instruction(Opcode.FALU, dst, srcs, active=active))

    def fma(self, dst: int, srcs: Tuple[int, ...] = (), *, active: Optional[ActiveCount] = None) -> "ProgramBuilder":
        """Append a fused multiply-add (medium latency, SP unit)."""
        return self._append(Instruction(Opcode.FMA, dst, srcs, active=active))

    def sfu(self, dst: int, srcs: Tuple[int, ...] = (), *, active: Optional[ActiveCount] = None) -> "ProgramBuilder":
        """Append a special-function op (long latency, SFU unit)."""
        return self._append(Instruction(Opcode.SFU, dst, srcs, active=active))

    def alu_chain(self, n: int, *, dst: int = 0, dep: bool = True) -> "ProgramBuilder":
        """Append *n* ALU ops; ``dep=True`` makes each depend on the previous.

        A dependent chain exposes ALU latency (scoreboard stalls); an
        independent chain is pure issue-bandwidth work. Convenience for
        workload modeling.
        """
        if n < 0:
            raise ProgramError("alu_chain length must be >= 0")
        for _ in range(n):
            self.ialu(dst, (dst,) if dep else ())
        return self

    # -- memory -------------------------------------------------------------

    def load_global(
        self,
        dst: int,
        *,
        pattern: AccessPattern,
        srcs: Tuple[int, ...] = (),
        active: Optional[ActiveCount] = None,
    ) -> "ProgramBuilder":
        """Append a global load writing ``dst`` (long, dynamic latency)."""
        return self._append(
            Instruction(Opcode.LDG, dst, srcs, pattern=pattern, active=active)
        )

    def store_global(
        self,
        srcs: Tuple[int, ...],
        *,
        pattern: AccessPattern,
        active: Optional[ActiveCount] = None,
    ) -> "ProgramBuilder":
        """Append a global store (fire-and-forget, consumes LSU + DRAM bw)."""
        return self._append(
            Instruction(Opcode.STG, None, srcs, pattern=pattern, active=active)
        )

    def load_shared(
        self,
        dst: int,
        *,
        srcs: Tuple[int, ...] = (),
        conflict_ways: int = 1,
        active: Optional[ActiveCount] = None,
    ) -> "ProgramBuilder":
        """Append a shared-memory load (fixed latency + bank conflicts)."""
        return self._append(
            Instruction(
                Opcode.LDS, dst, srcs, conflict_ways=conflict_ways, active=active
            )
        )

    def store_shared(
        self,
        srcs: Tuple[int, ...],
        *,
        conflict_ways: int = 1,
        active: Optional[ActiveCount] = None,
    ) -> "ProgramBuilder":
        """Append a shared-memory store."""
        return self._append(
            Instruction(
                Opcode.STS, None, srcs, conflict_ways=conflict_ways, active=active
            )
        )

    # -- control ------------------------------------------------------------

    def barrier(self) -> "ProgramBuilder":
        """Append a thread-block barrier (``__syncthreads``)."""
        return self._append(Instruction(Opcode.BAR))

    @contextlib.contextmanager
    def loop(self, times: TripCount) -> Iterator[None]:
        """Context manager: the body executes ``times`` times per warp.

        ``times`` may be an int (>= 1) or a callable
        ``(tb_index, warp_in_tb) -> int`` evaluated per warp at launch
        (must resolve >= 1). Implemented as a backward branch at loop end
        taken ``times - 1`` times.
        """
        if isinstance(times, int) and times < 1:
            raise ProgramError("loop times must be >= 1")
        start_pc = len(self._instrs)
        self._open_loops += 1
        try:
            yield
        finally:
            self._open_loops -= 1
        if len(self._instrs) == start_pc:
            raise ProgramError("loop body cannot be empty")
        if callable(times):
            fn = times

            def trips(tb: int, w: int, _fn=fn) -> int:
                n = _fn(tb, w)
                if n < 1:
                    raise ProgramError(
                        f"loop trip callable resolved to {n}; must be >= 1"
                    )
                return n - 1

        else:
            trips = times - 1
        self._append(Instruction(Opcode.BRA, target=start_pc, trips=trips))

    def exit(self) -> "ProgramBuilder":
        """Append the terminating EXIT instruction."""
        return self._append(Instruction(Opcode.EXIT))

    # -- finalization ---------------------------------------------------------

    def build(self) -> Program:
        """Validate and return the finished program.

        Appends EXIT automatically if the caller did not. The builder is
        single-use; ``build`` may only be called once.
        """
        if self._built:
            raise ProgramError("ProgramBuilder.build() may only be called once")
        if self._open_loops:
            raise ProgramError("build() called inside an open loop")
        if not self._instrs or self._instrs[-1].op is not Opcode.EXIT:
            self.exit()
        self._built = True
        return Program(
            self.name,
            self._instrs,
            threads_per_tb=self.threads_per_tb,
            regs_per_thread=self.regs_per_thread,
            shared_mem_per_tb=self.shared_mem_per_tb,
        )

    # -- internals -------------------------------------------------------------

    def _append(self, instr: Instruction) -> "ProgramBuilder":
        if self._built:
            raise ProgramError("cannot append to a built program")
        self._instrs.append(instr)
        return self

    def __len__(self) -> int:
        return len(self._instrs)
