"""Unit tests for the WaSP scout-warp scheduler."""

import json

from repro.config import GPUConfig
from repro.core.scheduler import available_schedulers
from repro.core.wasp import CHECK_PERIOD, SCOUT_LEAD, WaspScheduler
from repro.isa.builder import ProgramBuilder
from repro.simt.threadblock import ThreadBlock

CFG = GPUConfig.scaled(1).with_(num_schedulers=1)


def make_tb(idx, n_warps=4):
    prog = ProgramBuilder("p", threads_per_tb=32 * n_warps).ialu(1).build()
    tb = ThreadBlock(idx, prog)
    tb.materialize(sm_id=0, launch_seq=idx, num_schedulers=1)
    return tb


def make_sched():
    return WaspScheduler(sm=None, sched_id=0, cfg=CFG)


def give_lead(scout, followers, lead_warp_instructions):
    """Put the scout ``lead_warp_instructions`` ahead of every follower."""
    scout.progress = lead_warp_instructions * scout.n_threads
    for w in followers:
        w.progress = 0


class TestPhases:
    def test_registered(self):
        assert "wasp" in available_schedulers()

    def test_scout_is_oldest_and_leads_initially(self):
        s = make_sched()
        tb = make_tb(0)
        s.on_tb_assigned(tb, 0)
        order = list(s.order(0))
        assert s._scout is tb.warps[0]
        assert order[0] is tb.warps[0]
        assert len(order) == 4

    def test_scout_deprioritized_once_lead_builds(self):
        s = make_sched()
        tb = make_tb(0)
        s.on_tb_assigned(tb, 0)
        s.order(0)
        give_lead(tb.warps[0], tb.warps[1:], SCOUT_LEAD)
        order = list(s.order(CHECK_PERIOD))
        assert order[-1] is tb.warps[0], "scout must drop to the back"
        assert order[:3] == tb.warps[1:]

    def test_phase_checks_are_periodic_not_per_cycle(self):
        s = make_sched()
        tb = make_tb(0)
        s.on_tb_assigned(tb, 0)
        s.order(0)
        s.order(1)  # first check (lead 0): anchors next_check = 1 + period
        give_lead(tb.warps[0], tb.warps[1:], SCOUT_LEAD)
        # Before the next check boundary the cached SCOUT order persists.
        assert list(s.order(CHECK_PERIOD))[0] is tb.warps[0]
        assert list(s.order(CHECK_PERIOD + 1))[0] is not tb.warps[0]

    def test_hysteresis_and_follower_rotation(self):
        s = make_sched()
        tb = make_tb(0)
        s.on_tb_assigned(tb, 0)
        s.order(0)
        give_lead(tb.warps[0], tb.warps[1:], SCOUT_LEAD)
        s.order(CHECK_PERIOD)  # -> FOLLOW
        # Lead decays to half: scout returns out front and the follower
        # order rotates (the warp-reordering phase).
        give_lead(tb.warps[0], tb.warps[1:], SCOUT_LEAD // 2)
        order = list(s.order(2 * CHECK_PERIOD))
        assert order[0] is tb.warps[0]
        assert s._rotation == 1
        assert order[1:] == [tb.warps[2], tb.warps[3], tb.warps[1]]

    def test_lead_above_half_keeps_follow_phase(self):
        s = make_sched()
        tb = make_tb(0)
        s.on_tb_assigned(tb, 0)
        s.order(0)
        give_lead(tb.warps[0], tb.warps[1:], SCOUT_LEAD)
        s.order(CHECK_PERIOD)
        give_lead(tb.warps[0], tb.warps[1:], SCOUT_LEAD // 2 + 1)
        assert list(s.order(2 * CHECK_PERIOD))[-1] is tb.warps[0]

    def test_finished_scout_is_lazily_reelected(self):
        s = make_sched()
        tb = make_tb(0)
        s.on_tb_assigned(tb, 0)
        s.order(0)
        tb.warps[0].finished = True
        s.on_warp_finished(tb.warps[0], 5)
        order = list(s.order(6))
        assert s._scout is tb.warps[1]
        assert order[0] is tb.warps[1]
        assert tb.warps[0] not in order

    def test_empty_pool(self):
        s = make_sched()
        assert list(s.order(0)) == []


class TestSnapshot:
    def test_round_trip_restores_every_field(self):
        s = make_sched()
        tb = make_tb(0)
        s.on_tb_assigned(tb, 0)
        s.order(0)
        give_lead(tb.warps[0], tb.warps[1:], SCOUT_LEAD)
        s.order(CHECK_PERIOD)  # FOLLOW phase, non-trivial state
        snap = json.loads(json.dumps(s.snapshot()))  # must be JSON-safe

        warp_map = {(0, w.warp_in_tb): w for w in tb.warps}
        fresh = make_sched()
        fresh.restore(snap, warp_map)
        assert fresh._scout is s._scout
        assert fresh._phase == s._phase
        assert fresh._rotation == s._rotation
        assert fresh._next_check == s._next_check
        assert fresh._order == s._order
        assert fresh._dirty == s._dirty

    def test_finished_scout_snapshots_as_none(self):
        s = make_sched()
        tb = make_tb(0)
        s.on_tb_assigned(tb, 0)
        s.order(0)
        tb.warps[0].finished = True
        snap = s.snapshot()
        assert snap["scout"] is None
