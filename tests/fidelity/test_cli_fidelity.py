"""End-to-end CLI tests for ``pro-sim fidelity`` / ``diff-baseline``.

These run real smoke-profile simulations (~3 s each), so the number of
full CLI invocations is kept small; flag-validation paths exit before
any simulation and are cheap.
"""

import json
from pathlib import Path

import pytest

from repro.harness.cli import EXIT_FAILURE, EXIT_OK, main

DATA = (Path(__file__).parents[2]
        / "src/repro/fidelity/data/paper_expectations.json")


class TestFidelityVerb:
    def test_smoke_accept_json_and_step_summary(self, tmp_path, capsys,
                                                monkeypatch):
        """One real smoke run covering: exit 0, --accept-baseline
        promotion, --json export, and the step-summary append."""
        summary = tmp_path / "summary.md"
        monkeypatch.setenv("GITHUB_STEP_SUMMARY", str(summary))
        json_out = tmp_path / "report.json"
        code = main(["fidelity", "--smoke", "--accept-baseline",
                     "--baseline", str(tmp_path / "goldens"),
                     "--json", str(json_out)])
        out = capsys.readouterr().out
        assert code == EXIT_OK
        assert "baseline promoted:" in out
        assert "Fidelity report" in out

        report = json.loads(json_out.read_text())
        assert report["ok"] is True
        assert report["profile"]["name"] == "smoke"
        assert report["counts"]["fail"] == 0
        # promotion happened before scoring, so the baseline is clean
        assert report["baseline"]["status"] == "pass"
        goldens = list((tmp_path / "goldens").glob("smoke-*.json"))
        assert len(goldens) == 1

        assert summary.exists()
        assert "## Paper fidelity" in summary.read_text()

    def test_perturbed_expectation_fails(self, tmp_path, capsys):
        """Acceptance criterion: a seeded expectation perturbed outside
        its tolerance band makes the smoke run exit non-zero."""
        data = json.loads(DATA.read_text())
        for rec in data["expectations"]:
            if rec["id"] == "fig4.geomean.lrr":
                rec["profiles"]["smoke"]["target"] = 2.0  # way off
        perturbed = tmp_path / "perturbed.json"
        perturbed.write_text(json.dumps(data))
        code = main(["fidelity", "--smoke",
                     "--baseline", str(tmp_path / "none"),
                     "--expectations", str(perturbed)])
        out = capsys.readouterr().out
        assert code == EXIT_FAILURE
        assert "FAIL" in out
        assert "fig4.geomean.lrr" in out


class TestOverwriteGuard:
    def test_fidelity_json_refuses_overwrite(self, tmp_path, capsys):
        target = tmp_path / "report.json"
        target.write_text("{}")
        with pytest.raises(SystemExit) as exc:
            main(["fidelity", "--smoke", "--json", str(target)])
        assert exc.value.code == 2
        assert "--force" in capsys.readouterr().err

    def test_bench_out_refuses_overwrite(self, tmp_path, capsys):
        target = tmp_path / "bench.json"
        target.write_text("{}")
        with pytest.raises(SystemExit) as exc:
            main(["bench", "--smoke", "--bench-out", str(target)])
        assert exc.value.code == 2
        assert "--force" in capsys.readouterr().err

    def test_missing_target_passes_guard(self, tmp_path):
        """The guard only fires on existing files (parse-time check:
        verified through the validator, not a full run)."""
        import argparse

        from repro.harness.cli import _guard_overwrite, build_parser

        parser = build_parser()
        args = parser.parse_args(["fidelity", "--json",
                                  str(tmp_path / "new.json")])
        _guard_overwrite(parser, args)  # no SystemExit

        args = parser.parse_args(["fidelity", "--force", "--json",
                                  str(tmp_path / "new.json")])
        (tmp_path / "new.json").write_text("{}")
        _guard_overwrite(parser, args)  # --force bypasses
        assert isinstance(args, argparse.Namespace)


class TestFlagValidation:
    @pytest.mark.parametrize("argv", [
        ["fidelity", "--smoke", "--full"],
        ["fig4", "--full"],
        ["fig4", "--accept-baseline"],
        ["fig4", "--expectations", "x.json"],
        ["diff-baseline", "only-one"],
        ["diff-baseline"],
    ])
    def test_usage_errors(self, argv, capsys):
        with pytest.raises(SystemExit) as exc:
            main(argv)
        assert exc.value.code == 2
        capsys.readouterr()

    def test_fidelity_defaults_to_profile_geometry(self):
        from repro.harness.cli import _validate_args, build_parser

        parser = build_parser()
        args = parser.parse_args(["fidelity", "--smoke"])
        _validate_args(parser, args)
        assert (args.sms, args.scale) == (2, 0.25)

        args = parser.parse_args(["fidelity", "--full"])
        _validate_args(parser, args)
        assert (args.sms, args.scale) == (4, 1.0)

        args = parser.parse_args(["fig4"])
        _validate_args(parser, args)
        assert (args.sms, args.scale) == (4, 1.0)


class TestDiffBaselineVerb:
    def test_diff_two_stores(self, tmp_path, capsys):
        from repro.fidelity import BaselineStore

        from .test_scorer import toy_measurement

        BaselineStore(tmp_path / "a").accept(toy_measurement())
        BaselineStore(tmp_path / "b").accept(toy_measurement())
        code = main(["diff-baseline", str(tmp_path / "a"),
                     str(tmp_path / "b")])
        assert code == EXIT_OK
        assert "identical cells" in capsys.readouterr().out
