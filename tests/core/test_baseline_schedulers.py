"""Unit tests for the LRR, GTO and TL baseline schedulers.

These drive the scheduler objects directly (no simulation) through the
listener API, checking the orderings each policy promises.
"""

import pytest

from repro.config import GPUConfig
from repro.core.gto import GtoScheduler
from repro.core.lrr import LrrScheduler
from repro.core.scheduler import (
    SchedulerError,
    available_schedulers,
    build_schedulers,
)
from repro.core.tl import TwoLevelScheduler
from repro.isa.builder import ProgramBuilder
from repro.simt.threadblock import ThreadBlock

CFG = GPUConfig.scaled(1).with_(num_schedulers=1)


def make_tb(idx, n_warps=4, launch_seq=None):
    prog = ProgramBuilder("p", threads_per_tb=32 * n_warps).ialu(1).build()
    tb = ThreadBlock(idx, prog)
    tb.materialize(sm_id=0, launch_seq=launch_seq if launch_seq is not None
                   else idx, num_schedulers=1)
    return tb


def make_sched(cls):
    return cls(sm=None, sched_id=0, cfg=CFG)


class TestRegistry:
    def test_builtins_registered(self):
        names = available_schedulers()
        for name in ("lrr", "gto", "tl", "pro", "pro-nb", "pro-nf"):
            assert name in names

    def test_unknown_scheduler_raises(self):
        with pytest.raises(SchedulerError):
            build_schedulers("nope", None, CFG)

    def test_build_creates_per_scheduler_instances(self):
        cfg = GPUConfig.scaled(1)
        scheds = build_schedulers("lrr", None, cfg)
        assert len(scheds) == cfg.num_schedulers


class TestLrr:
    def test_initial_order_is_assignment_order(self):
        s = make_sched(LrrScheduler)
        tb = make_tb(0)
        s.on_tb_assigned(tb, 0)
        assert list(s.order(0)) == tb.warps

    def test_rotation_after_issue(self):
        s = make_sched(LrrScheduler)
        tb = make_tb(0)
        s.on_tb_assigned(tb, 0)
        s.note_issued(tb.warps[1], 0)
        order = list(s.order(1))
        assert order[0] is tb.warps[2]
        assert order[-1] is tb.warps[1]

    def test_wraparound(self):
        s = make_sched(LrrScheduler)
        tb = make_tb(0)
        s.on_tb_assigned(tb, 0)
        s.note_issued(tb.warps[-1], 0)
        assert list(s.order(1))[0] is tb.warps[0]

    def test_finished_warp_removed(self):
        s = make_sched(LrrScheduler)
        tb = make_tb(0)
        s.on_tb_assigned(tb, 0)
        s.on_warp_finished(tb.warps[2], 5)
        assert tb.warps[2] not in s.order(6)
        assert len(s.warps) == 3

    def test_rotation_point_stable_across_removal(self):
        s = make_sched(LrrScheduler)
        tb = make_tb(0)
        s.on_tb_assigned(tb, 0)
        s.note_issued(tb.warps[3], 0)  # start -> index 4 (wraps to 0)
        s.on_warp_finished(tb.warps[0], 1)
        order = list(s.order(1))
        assert order  # no crash, warps intact
        assert len(order) == 3

    def test_empty_order(self):
        s = make_sched(LrrScheduler)
        assert list(s.order(0)) == []


class TestGto:
    def test_default_is_oldest_first(self):
        s = make_sched(GtoScheduler)
        a, b = make_tb(0, launch_seq=0), make_tb(1, launch_seq=1)
        s.on_tb_assigned(a, 0)
        s.on_tb_assigned(b, 0)
        order = list(s.order(0))
        assert order[:4] == a.warps

    def test_greedy_warp_first(self):
        s = make_sched(GtoScheduler)
        a = make_tb(0)
        s.on_tb_assigned(a, 0)
        s.note_issued(a.warps[2], 0)
        assert list(s.order(1))[0] is a.warps[2]

    def test_greedy_does_not_duplicate(self):
        s = make_sched(GtoScheduler)
        a = make_tb(0)
        s.on_tb_assigned(a, 0)
        s.note_issued(a.warps[2], 0)
        order = list(s.order(1))
        assert len(order) == len(a.warps)
        assert len(set(id(w) for w in order)) == len(order)

    def test_greedy_cleared_on_finish(self):
        s = make_sched(GtoScheduler)
        a = make_tb(0)
        s.on_tb_assigned(a, 0)
        s.note_issued(a.warps[2], 0)
        a.warps[2].finished = True
        s.on_warp_finished(a.warps[2], 1)
        order = list(s.order(2))
        assert order[0] is a.warps[0]
        assert a.warps[2] not in order

    def test_greedy_already_oldest(self):
        s = make_sched(GtoScheduler)
        a = make_tb(0)
        s.on_tb_assigned(a, 0)
        s.note_issued(a.warps[0], 0)
        assert list(s.order(1)) == a.warps


class TestTwoLevel:
    def make(self, group_size=2):
        cfg = CFG.with_(tl_fetch_group_size=group_size)
        return TwoLevelScheduler(sm=None, sched_id=0, cfg=cfg)

    def test_groups_formed_by_size(self):
        s = self.make(group_size=2)
        tb = make_tb(0, n_warps=5)
        s.on_tb_assigned(tb, 0)
        assert [len(g.warps) for g in s._groups] == [2, 2, 1]

    def test_order_concatenates_groups(self):
        s = self.make(group_size=2)
        tb = make_tb(0, n_warps=4)
        s.on_tb_assigned(tb, 0)
        assert list(s.order(0)) == tb.warps

    def test_group_rotation_on_lower_group_issue(self):
        s = self.make(group_size=2)
        tb = make_tb(0, n_warps=4)
        s.on_tb_assigned(tb, 0)
        # a warp from group 1 issued -> group 0 rotates behind
        s.note_issued(tb.warps[2], 0)
        order = list(s.order(1))
        assert order[0] is tb.warps[3]  # group1 continues (rr after w2)
        assert tb.warps[0] in order[2:]

    def test_intragroup_round_robin(self):
        s = self.make(group_size=4)
        tb = make_tb(0, n_warps=4)
        s.on_tb_assigned(tb, 0)
        s.note_issued(tb.warps[1], 0)
        assert list(s.order(1))[0] is tb.warps[2]

    def test_finished_warp_removed_and_groups_compacted(self):
        s = self.make(group_size=2)
        tb = make_tb(0, n_warps=4)
        s.on_tb_assigned(tb, 0)
        for w in tb.warps[:2]:
            w.finished = True
            s.on_warp_finished(w, 1)
        assert len(s._groups) == 1
        assert list(s.order(2)) == tb.warps[2:]

    def test_new_tb_fills_partial_group(self):
        s = self.make(group_size=4)
        a = make_tb(0, n_warps=2)
        b = make_tb(1, n_warps=2, launch_seq=1)
        s.on_tb_assigned(a, 0)
        s.on_tb_assigned(b, 0)
        assert len(s._groups) == 1
        assert len(s._groups[0].warps) == 4
