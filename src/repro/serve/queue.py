"""JobManager: the service core — queue, dedup, preemption, execution.

The manager is deliberately HTTP-free (tests drive it directly; the
asyncio front-end in :mod:`repro.serve.app` is a thin adapter). One
runner thread executes jobs strictly one at a time against a shared
:class:`~repro.harness.runner.ResultCache` whose checkpoint tier lives
in the serve directory:

* **Dedup** is three-tiered. At submission, a job whose content key is
  already answered (in-memory result memo, or the cache's
  memo/checkpoint tiers for plain run jobs) completes instantly as a
  ledger ``cache-hit``; a job identical to one currently queued/running
  *coalesces* onto it and shares its eventual result; everything else
  queues. The checkpoint tier makes tier one durable across restarts.
* **Priority preemption**: a strictly higher-priority submission calls
  ``cache.request_stop()``; the running simulation stops at its next
  cycle boundary, writes a snapshot keyed by the cell's content hash,
  and the job goes back to ``queued``. When re-picked it resumes from
  the snapshot *bit-identically* (PR-4 contract) instead of restarting.
* **Sweeps** ride :func:`~repro.harness.parallel.run_matrix_parallel`
  and — with ``jobs > 1`` — a persistent supervised
  :class:`~repro.harness.pool.WorkerPool`, so worker death, deadlines
  and poison-cell quarantine are inherited, and pool lifecycle events
  stream into the job's event feed and the ledger.
* **Instrumented runs** (``metrics_window``) go through the public
  :func:`repro.simulate` facade with a
  :class:`~repro.obs.MetricsSampler` attached; they bypass the result
  cache by design (a probe must observe a real simulation) and are not
  preemptible (the facade GPU is not registered with the cache).

Thread-safety: one lock guards all queue/job state; the ledger has its
own lock; the runner executes simulations outside the lock.
"""

from __future__ import annotations

import threading
import time
from collections import Counter
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Dict, List, Optional

from ..config import GPUConfig
from ..errors import ReproError, SimulationError, SimulationInterrupted
from ..harness.runner import CellPolicy, ResultCache
from ..robustness.checkpoint import CheckpointStore, result_to_json

from .jobs import Job, JobKind, JobSpec, JobState
from .ledger import JobLedger

#: Pool event kinds too routine to ledger (still fed to the job's
#: event feed); everything else — worker-death, respawn, quarantine,
#: deadline, degrade... — is an auditable incident.
_ROUTINE_POOL_EVENTS = frozenset({"dispatch"})


class ServeError(ReproError):
    """A service-level request error (shutting down, bad transition)."""


@dataclass
class ServeConfig:
    """Everything one service instance needs to run."""

    host: str = "127.0.0.1"
    #: 0 = let the OS pick (the bound port is reported after start).
    port: int = 0
    #: Service state directory: ledger.jsonl + checkpoint/ live here.
    directory: str = "serve-data"
    #: Worker processes for sweep jobs (1 = in-process sequential).
    jobs: int = 1
    #: Periodic snapshot cadence armed on every checkpointed cell, so a
    #: preemption (or crash) never loses more than this many cycles.
    snapshot_every: int = 2000
    #: Simulation core for cached runs ("reference" or "vector").
    backend: str = "reference"
    #: Overwrite an existing ledger (restart over old service state).
    force: bool = False
    #: Geometry defaults applied to submissions that omit sms/scale.
    default_sms: int = 4
    default_scale: float = 1.0
    #: Optional fidelity baseline directory (trend scoring).
    baseline_dir: Optional[str] = None


class _PoolRelay:
    """Routes WorkerPool telemetry to the currently running sweep job."""

    def __init__(self, manager: "JobManager") -> None:
        self._manager = manager
        self.job: Optional[Job] = None

    def on_pool_event(self, event) -> None:
        job = self.job
        if job is None:
            return
        line = event.describe()
        job.record_event(line)
        job.progress["pool_events"] = job.progress.get("pool_events", 0) + 1
        if event.kind not in _ROUTINE_POOL_EVENTS:
            self._manager.ledger.record("pool", job=job, detail=line,
                                        pool_kind=event.kind)


class JobManager:
    """Owns all jobs, the queue, the shared cache and the runner thread."""

    def __init__(self, config: ServeConfig, *,
                 fault_plan: Optional[object] = None) -> None:
        self.cfg = config
        self.directory = Path(config.directory)
        self.directory.mkdir(parents=True, exist_ok=True)
        self.ledger = JobLedger(self.directory / "ledger.jsonl",
                                force=config.force, flag="serve ledger")
        self.checkpoint = CheckpointStore(self.directory / "checkpoint")
        self.cache = ResultCache(
            checkpoint=self.checkpoint,
            policy=CellPolicy(snapshot_every=config.snapshot_every,
                              backend=config.backend),
            faults=fault_plan,
        )
        self._pool = None
        self._pool_relay = _PoolRelay(self)
        self._lock = threading.RLock()
        self._wake = threading.Condition(self._lock)
        self._jobs: Dict[str, Job] = {}
        self._queue: List[str] = []
        #: content key -> id of the queued/running job computing it.
        self._primary: Dict[str, str] = {}
        #: primary job id -> ids coalesced onto it.
        self._followers: Dict[str, List[str]] = {}
        #: content key -> finished result payload (tier-one dedup).
        self._results: Dict[str, dict] = {}
        #: live per-job scratch read by /status (runner-thread owned).
        self._live_outcomes: Dict[str, list] = {}
        self._samplers: Dict[str, Any] = {}
        self._seq = 0
        self._version = 0
        self._running_id: Optional[str] = None
        self._stopping = False
        self._closed = False
        self._started_at = time.time()
        self._thread = threading.Thread(target=self._run_loop,
                                        name="serve-runner", daemon=True)
        self.ledger.record("service-start", directory=str(self.directory),
                           jobs=config.jobs, backend=config.backend,
                           checkpoint_cells=len(self.checkpoint))

    # -- lifecycle -----------------------------------------------------

    def start(self) -> "JobManager":
        if not self._thread.is_alive() and not self._closed:
            self._thread.start()
        return self

    def close(self) -> None:
        """Stop the runner (snapshotting any in-flight job) and the pool."""
        with self._lock:
            if self._closed:
                return
            self._closed = True
            self._stopping = True
            self.cache.request_stop()
            self._wake.notify_all()
        if self._thread.is_alive():
            self._thread.join(timeout=30.0)
        if self._pool is not None:
            self._pool.shutdown()
            self._pool = None
        self.ledger.record("service-stop")
        self.ledger.close()

    def __enter__(self) -> "JobManager":
        return self.start()

    def __exit__(self, *exc) -> None:
        self.close()

    # -- client surface ------------------------------------------------

    def submit(self, data: Any) -> Job:
        """Validate, dedup/coalesce, or enqueue one submission."""
        spec = JobSpec.from_json(data, default_sms=self.cfg.default_sms,
                                 default_scale=self.cfg.default_scale)
        key = spec.content_key()
        with self._lock:
            if self._closed:
                raise ServeError("service is shutting down")
            self._seq += 1
            job = Job(id=f"j{self._seq:04d}-{key[:8]}", spec=spec, key=key,
                      seq=self._seq)
            self._jobs[job.id] = job
            self.ledger.record("submitted", job=job,
                               priority=spec.priority)
            payload = self._cached_payload_locked(spec, key)
            if payload is not None:
                job.result = payload
                job.cache_hit = True
                self.ledger.record("cache-hit", job=job,
                                   detail="answered from result cache")
                self._transition_locked(job, JobState.DONE,
                                        detail="cache hit")
                return job
            primary_id = self._primary.get(key)
            if primary_id is not None:
                job.coalesced_with = primary_id
                self._followers.setdefault(primary_id, []).append(job.id)
                self.ledger.record("coalesced", job=job,
                                   detail=f"onto in-flight {primary_id}")
                self._touch_locked()
                return job
            self._primary[key] = job.id
            self._queue.append(job.id)
            self._touch_locked()
            self._maybe_preempt_locked(job)
            self._wake.notify_all()
            return job

    def cancel(self, job_id: str) -> Optional[Job]:
        """Cancel a job. Queued jobs cancel immediately; the running job
        is stopped cooperatively (its cell snapshot is kept — a future
        identical submission resumes it). Terminal jobs are left as-is
        (the caller inspects ``state``). Returns None for unknown ids.
        """
        with self._lock:
            job = self._jobs.get(job_id)
            if job is None or job.state in JobState.TERMINAL:
                return job
            if job.state == JobState.QUEUED:
                if job.coalesced_with is not None:
                    peers = self._followers.get(job.coalesced_with, [])
                    if job.id in peers:
                        peers.remove(job.id)
                else:
                    self._queue.remove(job.id)
                    self._primary.pop(job.key, None)
                    self._promote_followers_locked(job)
                self._transition_locked(job, JobState.CANCELLED)
                return job
            # running
            job.cancel_requested = True
            self.ledger.record("cancel-request", job=job)
            if self._preemptible(job):
                self.cache.request_stop()
            self._touch_locked()
            return job

    def get_job(self, job_id: str) -> Optional[Job]:
        with self._lock:
            return self._jobs.get(job_id)

    def jobs_json(self) -> List[dict]:
        with self._lock:
            return [self._job_json_locked(j) for j in self._jobs.values()]

    def job_json(self, job: Job, *, include_result: bool = False) -> dict:
        with self._lock:
            return self._job_json_locked(job, include_result=include_result)

    def status_json(self) -> dict:
        """One /status snapshot: service counters + every job."""
        with self._lock:
            counts = Counter(j.state for j in self._jobs.values())
            return {
                "service": {
                    "uptime": round(time.time() - self._started_at, 3),
                    "version": self._version,
                    "queue_depth": len(self._queue),
                    "running": self._running_id,
                    "stopping": self._stopping,
                    "jobs": {
                        state: counts.get(state, 0)
                        for state in (JobState.QUEUED, JobState.RUNNING,
                                      JobState.DONE, JobState.FAILED,
                                      JobState.CANCELLED)
                    },
                    "cache": {
                        "memo_cells": len(self.cache),
                        "checkpoint_cells": len(self.checkpoint),
                        "checkpoint_hits": self.cache.checkpoint_hits,
                        "runs_executed": self.cache.runs_executed,
                        "snapshot_resumes": self.cache.snapshot_resumes,
                    },
                },
                "jobs": [self._job_json_locked(j)
                         for j in self._jobs.values()],
            }

    def wait_version(self, last: int, timeout: float = 1.0) -> int:
        """Block until job state changes past ``last`` (or timeout);
        returns the current version. Drives /status?watch streaming."""
        with self._lock:
            self._wake.wait_for(
                lambda: self._version != last or self._closed, timeout
            )
            return self._version

    # -- locked helpers ------------------------------------------------

    def _touch_locked(self) -> None:
        self._version += 1
        self._wake.notify_all()

    def _transition_locked(self, job: Job, state: str, *,
                           detail: str = "") -> None:
        job.state = state
        now = time.time()
        if state == JobState.RUNNING:
            job.started_at = now
        if state in JobState.TERMINAL:
            job.finished_at = now
        self.ledger.record("state", job=job, state=state, detail=detail)
        self._touch_locked()

    def _cached_payload_locked(self, spec: JobSpec,
                               key: str) -> Optional[dict]:
        payload = self._results.get(key)
        if payload is not None:
            return payload
        if spec.kind == JobKind.RUN and not spec.metrics_window:
            hit = self.cache.lookup(spec.kernel, spec.scheduler,
                                    spec.gpu_config(), spec.scale)
            if hit is not None:
                payload = {"kind": "run", "result": result_to_json(hit)}
                self._results[key] = payload
                return payload
        return None

    @staticmethod
    def _preemptible(job: Job) -> bool:
        # Instrumented facade runs are not registered with the cache,
        # so request_stop() cannot reach their GPU.
        return not (job.spec.kind == JobKind.RUN
                    and job.spec.metrics_window)

    def _maybe_preempt_locked(self, challenger: Job) -> None:
        rid = self._running_id
        if rid is None:
            return
        running = self._jobs[rid]
        if challenger.spec.priority <= running.spec.priority:
            return
        if running.preempt_requested or running.cancel_requested:
            return
        if not self._preemptible(running):
            return
        running.preempt_requested = True
        self.ledger.record(
            "preempt-request", job=running,
            detail=(f"preempted by {challenger.id} (priority "
                    f"{challenger.spec.priority} > "
                    f"{running.spec.priority})"),
        )
        self.cache.request_stop()

    def _promote_followers_locked(self, primary: Job) -> None:
        """Re-queue the followers of a cancelled primary (their clients
        did not cancel; the first follower becomes the new primary)."""
        followers = self._followers.pop(primary.id, [])
        live = [fid for fid in followers
                if self._jobs[fid].state == JobState.QUEUED]
        if not live:
            return
        head = self._jobs[live[0]]
        head.coalesced_with = None
        self._primary[head.key] = head.id
        self._queue.append(head.id)
        self.ledger.record("promoted", job=head,
                           detail=f"primary {primary.id} cancelled")
        for fid in live[1:]:
            self._jobs[fid].coalesced_with = head.id
        if live[1:]:
            self._followers[head.id] = live[1:]
        self._wake.notify_all()

    def _job_json_locked(self, job: Job, *,
                         include_result: bool = False) -> dict:
        out = job.to_json(include_result=include_result)
        outcomes = self._live_outcomes.get(job.id)
        if outcomes is not None:
            out["progress"]["cells_done"] = len(outcomes)
        sampler = self._samplers.get(job.id)
        if sampler is not None:
            try:
                out["progress"]["windows_sampled"] = len(sampler.rows())
            except RuntimeError:  # pragma: no cover - racing the run
                pass
        return out

    # -- the runner thread ---------------------------------------------

    def _pick_locked(self) -> Job:
        best = max(
            self._queue,
            key=lambda jid: (self._jobs[jid].spec.priority,
                             -self._jobs[jid].seq),
        )
        self._queue.remove(best)
        return self._jobs[best]

    def _run_loop(self) -> None:
        while True:
            with self._lock:
                while not self._stopping and not self._queue:
                    self._wake.wait(0.5)
                if self._stopping:
                    return
                job = self._pick_locked()
                job.attempts += 1
                job.preempt_requested = False
                self._running_id = job.id
                # A stale stop request (the target finished before the
                # signal landed) must not kill this job.
                self.cache.interrupted = False
                self._transition_locked(job, JobState.RUNNING,
                                        detail=f"attempt {job.attempts}")
            try:
                payload = self._execute(job)
            except SimulationInterrupted as err:
                self._handle_interrupt(job, err)
            except SimulationError as err:
                self._finish_error(job, f"{type(err).__name__}: {err}")
            except Exception as err:  # noqa: BLE001 - service must survive
                self._finish_error(job, f"{type(err).__name__}: {err}")
            else:
                self._finish_done(job, payload)

    def _handle_interrupt(self, job: Job,
                          err: SimulationInterrupted) -> None:
        with self._lock:
            self.cache.interrupted = False
            self._running_id = None
            if job.cancel_requested:
                self._primary.pop(job.key, None)
                self._promote_followers_locked(job)
                self._transition_locked(job, JobState.CANCELLED,
                                        detail="cancelled while running")
                return
            job.preemptions += 1
            job.preempt_requested = False
            snap = getattr(err, "snapshot_path", None)
            self.ledger.record(
                "preempted", job=job,
                detail=(f"snapshot {snap}" if snap
                        else "stopped at cycle boundary"),
            )
            self._queue.append(job.id)
            self._transition_locked(
                job, JobState.QUEUED,
                detail=("service stopping" if self._stopping
                        else "requeued after preemption"),
            )

    def _finish_done(self, job: Job, payload: dict) -> None:
        with self._lock:
            self._running_id = None
            job.result = payload
            self._results[job.key] = payload
            self._primary.pop(job.key, None)
            followers = self._followers.pop(job.id, [])
            if job.cancel_requested:
                # The cancel landed after the simulation finished; the
                # paid-for result stays in the dedup tiers (and feeds
                # the followers, whose clients did not cancel).
                self._transition_locked(job, JobState.CANCELLED,
                                        detail="completed before cancel "
                                               "took effect")
            else:
                self._transition_locked(job, JobState.DONE)
            for fid in followers:
                follower = self._jobs[fid]
                if follower.state != JobState.QUEUED:
                    continue
                follower.result = payload
                follower.cache_hit = True
                self.ledger.record("cache-hit", job=follower,
                                   detail=f"coalesced result of {job.id}")
                self._transition_locked(follower, JobState.DONE,
                                        detail=f"via {job.id}")

    def _finish_error(self, job: Job, message: str) -> None:
        with self._lock:
            self._running_id = None
            self.cache.interrupted = False
            job.error = message
            self._primary.pop(job.key, None)
            followers = self._followers.pop(job.id, [])
            self._transition_locked(job, JobState.FAILED, detail=message)
            for fid in followers:
                follower = self._jobs[fid]
                if follower.state != JobState.QUEUED:
                    continue
                follower.error = f"coalesced job {job.id} failed: {message}"
                self._transition_locked(follower, JobState.FAILED,
                                        detail=f"via {job.id}")

    # -- execution (runner thread, no lock held) -----------------------

    def _execute(self, job: Job) -> dict:
        if job.spec.kind == JobKind.RUN:
            return self._execute_run(job)
        if job.spec.kind == JobKind.SWEEP:
            return self._execute_sweep(job)
        return self._execute_fidelity(job)

    def _execute_run(self, job: Job) -> dict:
        spec = job.spec
        config = spec.gpu_config()
        if spec.metrics_window:
            # Instrumented run through the public facade: the sampler
            # must observe a real simulation, so no cache tier applies.
            from ..api import simulate
            from ..obs import MetricsSampler

            sampler = MetricsSampler(window=spec.metrics_window)
            self._samplers[job.id] = sampler
            try:
                result = simulate(
                    spec.kernel, spec.scheduler, cfg=config,
                    scale=spec.scale, probes=[sampler],
                    backend=self.cfg.backend,
                )
            finally:
                self._samplers.pop(job.id, None)
            rows = sampler.rows()
            job.record_event(f"[metrics] {len(rows)} windows sampled")
            return {
                "kind": "run",
                "result": result_to_json(result),
                "metrics": {
                    "window": spec.metrics_window,
                    "windows_sampled": len(rows),
                    "stall_totals": sampler.stall_totals(),
                },
            }
        resumes_before = self.cache.snapshot_resumes
        runs_before = self.cache.runs_executed
        result = self.cache.run(spec.kernel, spec.scheduler, config,
                                spec.scale)
        if self.cache.snapshot_resumes > resumes_before:
            self.ledger.record("resumed", job=job,
                               detail="continued from preemption snapshot")
            job.record_event("[snapshot] resumed bit-identically")
        elif self.cache.runs_executed == runs_before:
            # Answered by a cache tier between submission and pickup.
            job.cache_hit = True
            self.ledger.record("cache-hit", job=job,
                               detail="answered at execution time")
        return {"kind": "run", "result": result_to_json(result)}

    def _execute_sweep(self, job: Job) -> dict:
        from ..harness.parallel import run_matrix_parallel

        spec = job.spec
        cells = spec.cells()
        config = spec.gpu_config()
        outcomes: list = []
        job.progress.update(cells_total=len(cells), cells_done=0)
        self._live_outcomes[job.id] = outcomes
        failures_before = len(self.cache.failures)
        self._pool_relay.job = job
        try:
            results = run_matrix_parallel(
                self.cache, cells, config, spec.scale,
                jobs=self.cfg.jobs, keep_going=True, outcomes=outcomes,
                pool=self._ensure_pool() if self.cfg.jobs > 1 else None,
            )
        finally:
            self._pool_relay.job = None
            self._live_outcomes.pop(job.id, None)
            job.progress["cells_done"] = len(outcomes)
        failures = self.cache.failures[failures_before:]
        simulated = sum(1 for o in outcomes if not o.from_cache)
        if simulated == 0 and not failures:
            job.cache_hit = True
            self.ledger.record("cache-hit", job=job,
                               detail="every cell answered from cache")
        return {
            "kind": "sweep",
            "cells": {
                f"{k}/{s}": (result_to_json(r) if r is not None else None)
                for (k, s), r in sorted(results.items())
            },
            "failures": [
                {"kernel": f.kernel, "scheduler": f.scheduler,
                 "attempts": f.attempts, "error": f.describe()}
                for f in failures
            ],
            "simulated": simulated,
        }

    def _execute_fidelity(self, job: Job) -> dict:
        from ..fidelity import (
            BaselineStore,
            load_expectations,
            measure,
            resolve_profile,
            score,
        )
        from ..harness.runner import ExperimentSetup

        profile = resolve_profile(job.spec.profile)
        cells_total = len(profile.kernels) * len(profile.schedulers)
        job.progress.update(profile=profile.name, cells_total=cells_total)
        setup = ExperimentSetup(config=GPUConfig.scaled(profile.sms),
                                scale=profile.scale, cache=self.cache,
                                jobs=1)
        measurement = measure(profile, setup=setup)
        baseline = (BaselineStore(self.cfg.baseline_dir)
                    if self.cfg.baseline_dir else None)
        report = score(measurement, load_expectations(None),
                       baseline=baseline)
        job.record_event(f"[fidelity] {profile.name}: {report.status}")
        return {
            "kind": "fidelity",
            "ok": report.ok,
            "status": report.status,
            "report": report.to_json(),
        }

    def _ensure_pool(self):
        from ..harness.pool import WorkerPool

        if self._pool is None:
            self._pool = WorkerPool(self.cfg.jobs,
                                    probes=(self._pool_relay,))
        return self._pool
