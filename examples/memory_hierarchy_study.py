#!/usr/bin/env python
"""Study how memory access patterns move a kernel across bottlenecks.

Builds four variants of the same loop body — coalesced, strided,
random-divergent and pointer-chasing — and shows how cache hit rates,
DRAM row locality and the stall composition shift, and with them the
gap between warp schedulers. This is the substrate-level view of why
the paper's BFS/b+tree rows behave so differently from NN/convSep.
"""

from repro import (
    Chase,
    Coalesced,
    Gpu,
    GPUConfig,
    KernelLaunch,
    ProgramBuilder,
    Random,
    Strided,
)
from repro.stats.report import render_table

MB = 1 << 20


def build(name, pattern):
    b = ProgramBuilder(name, threads_per_tb=256, regs_per_thread=18)
    with b.loop(times=6):
        b.load_global(1, pattern=pattern)
        b.fma(2, (1, 2))
        b.fma(2, (2,))
    b.store_global((2,), pattern=Coalesced(base=1 << 30))
    return b.build()


VARIANTS = {
    "coalesced (1 txn)": Coalesced(base=0, iter_stride=128, warp_region=2048),
    "strided (4 txns)": Strided(base=0, stride=16, iter_stride=2048),
    "random (16 txns)": Random(8 * MB, txns=16, seed=5),
    "pointer chase": Chase(8 * MB, seed=7),
}


def main() -> None:
    cfg = GPUConfig.scaled(4)
    rows = []
    for label, pattern in VARIANTS.items():
        prog = build("mem_study", pattern)
        per_sched = {}
        stats = None
        for sched in ("lrr", "pro"):
            r = Gpu(cfg, scheduler=sched).run(KernelLaunch(prog, num_tbs=64))
            per_sched[sched] = r.cycles
            stats = r.counters
        b = stats.stall_breakdown()
        rows.append((
            label,
            per_sched["lrr"],
            per_sched["pro"],
            per_sched["lrr"] / per_sched["pro"],
            f"{stats.l1_miss_rate:.2f}",
            f"{stats.dram_row_hit_rate:.2f}",
            f"{b['idle']:.0%}/{b['scoreboard']:.0%}/{b['pipeline']:.0%}",
        ))
    print(render_table(
        ("Pattern", "LRR cycles", "PRO cycles", "PRO speedup",
         "L1 miss", "DRAM row hit", "stalls i/s/p (PRO)"),
        rows,
        title="Memory pattern study (same compute, different access shape)",
    ))
    print("\nCoalesced streams are row-buffer friendly and latency-bound "
          "(scoreboard);\nscattered patterns saturate the LSU/MSHRs and "
          "become pipeline-bound,\nshrinking what any warp scheduler can "
          "recover — as in the paper's BFS row.")


if __name__ == "__main__":
    main()
