#!/usr/bin/env python
"""Compare all warp schedulers (including PRO's ablations) across a
workload sample, reporting speedups and stall compositions.

A compact version of the paper's Fig. 4 + Fig. 5 on a chosen subset; use
the full harness (``pro-sim fig4``) for all 25 kernels.

Usage::

    python examples/scheduler_comparison.py [kernel ...]
"""

import sys

from repro import Gpu, GPUConfig
from repro.stats.report import geomean, render_table
from repro.workloads import get_kernel

DEFAULT_SAMPLE = (
    "aesEncrypt128",      # compute + shared-memory rounds
    "sha1_overlap",       # low-occupancy dependent ALU chains
    "calculate_temp",     # barrier-ladder stencil
    "scalarProdGPU",      # divergent accumulate + reduction
    "findK",              # pointer-chase latency bound
)

SCHEDULERS = ("lrr", "tl", "gto", "pro", "pro-nb", "pro-nf")


def main() -> None:
    kernels = sys.argv[1:] or list(DEFAULT_SAMPLE)
    cfg = GPUConfig.scaled(4)

    cycles: dict[str, dict[str, int]] = {}
    for name in kernels:
        model = get_kernel(name)
        cycles[name] = {}
        for sched in SCHEDULERS:
            r = Gpu(cfg, scheduler=sched).run(model.build_launch())
            cycles[name][sched] = r.cycles

    rows = []
    for name, per in cycles.items():
        rows.append((name, *[per[s] for s in SCHEDULERS]))
    print(render_table(("Kernel",) + SCHEDULERS, rows,
                       title="Simulation cycles per scheduler"))

    rows = []
    for name, per in cycles.items():
        rows.append((name, *[per[s] / per["pro"] for s in SCHEDULERS]))
    gmean = ["GEOMEAN"] + [
        geomean(cycles[k][s] / cycles[k]["pro"] for k in cycles)
        for s in SCHEDULERS
    ]
    rows.append(tuple(gmean))
    print()
    print(render_table(("Kernel",) + tuple(f"{s}/pro" for s in SCHEDULERS),
                       rows,
                       title="Speedup of PRO (values > 1: PRO is faster)"))


if __name__ == "__main__":
    main()
