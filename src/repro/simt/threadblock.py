"""Thread block (CTA): the unit of work allocation to an SM.

A TB is assigned to exactly one SM, holds its warps, and tracks the
aggregate counters PRO schedules on: TB progress (sum of warp progress),
warps waiting at the current barrier (``n_at_barrier``) and warps that have
finished (``n_finished``). Resources (threads/registers/shared memory) are
held until *all* warps finish — the paper's "SM residency" effect.
"""

from __future__ import annotations

from typing import List

from ..config import WARP_SIZE
from ..isa.program import Program
from .warp import Warp


class ThreadBlock:
    """One thread block resident on (or destined for) an SM."""

    __slots__ = (
        "tb_index",
        "program",
        "n_warps",
        "warps",
        "sm_id",
        "launch_seq",
        "n_at_barrier",
        "n_finished",
        "start_cycle",
        "finish_cycle",
    )

    def __init__(self, tb_index: int, program: Program) -> None:
        self.tb_index = tb_index
        self.program = program
        threads = program.threads_per_tb
        self.n_warps = (threads + WARP_SIZE - 1) // WARP_SIZE
        self.warps: List[Warp] = []
        self.sm_id: int = -1
        #: Order in which the TB was assigned to its SM (GTO "oldest" key).
        self.launch_seq: int = -1
        self.n_at_barrier = 0
        self.n_finished = 0
        self.start_cycle: int = -1
        self.finish_cycle: int = -1

    # ------------------------------------------------------------------
    def materialize(self, sm_id: int, launch_seq: int, num_schedulers: int) -> None:
        """Create the warps when the TB is assigned to an SM.

        Warps are statically partitioned across the SM's warp schedulers
        by index parity (Fermi behaviour the paper footnotes: "warps of a
        TB are divided between the two warp schedulers").
        """
        self.sm_id = sm_id
        self.launch_seq = launch_seq
        threads_left = self.program.threads_per_tb
        self.warps = []
        for w in range(self.n_warps):
            n_threads = min(WARP_SIZE, threads_left)
            threads_left -= n_threads
            self.warps.append(
                Warp(
                    self,
                    w,
                    self.program,
                    n_threads=n_threads,
                    sched_id=w % num_schedulers,
                )
            )

    # ------------------------------------------------------------------
    @property
    def progress(self) -> int:
        """TB progress = sum of constituent warp progress (paper §III)."""
        return sum(w.progress for w in self.warps)

    @property
    def all_finished(self) -> bool:
        return self.n_finished == self.n_warps

    @property
    def all_at_barrier(self) -> bool:
        """True when every *live* warp has reached the current barrier.

        Programs in this simulator never mix EXIT with an unreleased
        barrier (as in well-formed CUDA), so live warps == all warps here;
        the finished term keeps the check robust for hand-built tests.
        """
        return self.n_at_barrier + self.n_finished == self.n_warps

    def warps_for_scheduler(self, sched_id: int) -> List[Warp]:
        """This TB's warps owned by one warp scheduler."""
        return [w for w in self.warps if w.sched_id == sched_id]

    # -- state serialization -------------------------------------------

    def snapshot(self) -> dict:
        """Serializable state of a resident TB (warps included)."""
        return {
            "tb_index": self.tb_index,
            "launch_seq": self.launch_seq,
            "n_at_barrier": self.n_at_barrier,
            "n_finished": self.n_finished,
            "start_cycle": self.start_cycle,
            "finish_cycle": self.finish_cycle,
            "warps": [w.snapshot() for w in self.warps],
        }

    def restore(self, data: dict, sm_id: int, num_schedulers: int) -> None:
        """Rebuild warps via :meth:`materialize`, then apply their state.

        The program must already be attached (the TB is constructed from
        the launch's program before restore).
        """
        self.materialize(sm_id, data["launch_seq"], num_schedulers)
        self.n_at_barrier = data["n_at_barrier"]
        self.n_finished = data["n_finished"]
        self.start_cycle = data["start_cycle"]
        self.finish_cycle = data["finish_cycle"]
        for warp, wdata in zip(self.warps, data["warps"]):
            warp.restore(wdata)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<TB {self.tb_index} sm={self.sm_id} warps={self.n_warps} "
            f"fin={self.n_finished} bar={self.n_at_barrier}>"
        )
