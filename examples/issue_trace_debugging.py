#!/usr/bin/env python
"""Debug scheduler decisions with the IssueTrace probe.

Attaches an IssueTrace to LRR and PRO runs of the same kernel (via the
``probes=`` list of :func:`repro.simulate`) and shows:
  * the opcode mix the SM actually issued,
  * per-warp issue gaps (where a warp's time went),
  * how differently the two schedulers distribute early issue slots
    across thread blocks — LRR spreads them evenly, PRO concentrates on
    the leading TB (its SRTF-style noWait policy).
"""

from collections import Counter

import repro
from repro import GPUConfig, IssueTrace
from repro.workloads import get_kernel


def slot_distribution(trace, first_n=400):
    """Issue-slot share per TB over the first N events."""
    counts = Counter(ev.tb_index for ev in trace.events[:first_n])
    total = sum(counts.values())
    return {tb: n / total for tb, n in sorted(counts.items())}


def main() -> None:
    model = get_kernel("aesEncrypt128")
    cfg = GPUConfig.scaled(2)

    traces = {}
    for sched in ("lrr", "pro"):
        trace = IssueTrace(limit=5000, sm_id=0)
        repro.simulate(model, sched, cfg=cfg, probes=[trace], scale=0.5)
        traces[sched] = trace

    print("Opcode histogram (SM 0, first 5000 issues, PRO):")
    for op, n in sorted(traces["pro"].opcode_histogram().items()):
        print(f"  {op:5s} {n:5d}")

    print("\nIssue-slot share per TB over the first 400 issues:")
    for sched, trace in traces.items():
        dist = slot_distribution(trace)
        top = max(dist.values())
        shares = "  ".join(f"tb{tb}:{share:.0%}" for tb, share in dist.items())
        print(f"  {sched:4s} {shares}   (max share {top:.0%})")

    print("\nIssue gaps of warp (tb=0, w=0) under PRO — long gaps are "
          "memory latency or lost arbitration:")
    gaps = traces["pro"].issue_gaps(0, 0)
    print(f"  first 20 gaps: {gaps[:20]}")
    big = [g for g in gaps if g > 50]
    print(f"  gaps > 50 cycles: {len(big)} (max {max(gaps) if gaps else 0})")


if __name__ == "__main__":
    main()
