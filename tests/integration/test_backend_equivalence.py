"""Cross-backend equivalence: the vectorized core is bit-identical.

``backend="vector"`` replaces the per-warp interpreter with a
struct-of-arrays stepping core (``repro.simt.vector``). Its contract is
that it is *observationally indistinguishable* from the reference
interpreter: every cell of the golden micro matrix must reproduce the
committed counters exactly, a snapshot taken under one backend must
resume bit-identically under the other, and attaching a probe bus must
fall back to reference stepping without changing a single counter.
"""

import dataclasses
import json
from pathlib import Path

import pytest

from repro import Gpu, GPUConfig, KernelLaunch
from repro.harness.runner import CellPolicy, ResultCache
from repro.obs.bus import Probe
from repro.robustness.checkpoint import result_to_json
from repro.simt.sm import StreamingMultiprocessor
from repro.simt.vector import VectorSM
from repro.workloads import get_kernel
from tests.conftest import tiny_program

GOLDEN = Path(__file__).resolve().parent.parent / "golden"
CFG = GPUConfig.scaled(2)
SCALE = 0.25

_CELLS = {
    (r["kernel"], r["scheduler"]): r
    for r in (json.loads(line) for line in
              (GOLDEN / "micro_cells.jsonl").read_text().splitlines())
}


def _counters(result):
    return dataclasses.asdict(result.counters)


def _assert_vector_active(gpu):
    assert all(type(sm) is VectorSM for sm in gpu.sms), (
        "vector backend silently fell back to reference stepping — the "
        "equivalence below would be vacuous"
    )


@pytest.mark.parametrize(
    ("kernel", "scheduler"), sorted(_CELLS),
    ids=[f"{k}-{s}" for k, s in sorted(_CELLS)],
)
def test_vector_run_bit_identical_to_golden(kernel, scheduler):
    """All 8 kernels x 4 schedulers against the pre-probe golden store."""
    record = _CELLS[(kernel, scheduler)]
    gpu = Gpu(CFG, scheduler=scheduler, backend="vector")
    launch = get_kernel(kernel).build_launch(SCALE)
    result = gpu.run(launch)
    _assert_vector_active(gpu)
    assert result_to_json(result) == record["result"]


def test_vector_backend_threads_through_the_cell_cache():
    """CellPolicy.backend reaches the Gpu built inside ResultCache — the
    same path worker processes take, so a parallel sweep with
    ``--backend vector`` runs the chosen backend."""
    record = _CELLS[("cenergy", "pro")]
    cache = ResultCache(policy=CellPolicy(backend="vector"))
    result = cache.run("cenergy", "pro", CFG, SCALE)
    assert result_to_json(result) == record["result"]


class TestSnapshotCrossBackend:
    """A snapshot is backend-agnostic state: either backend resumes it."""

    @pytest.mark.parametrize("src,dst", [("reference", "vector"),
                                         ("vector", "reference")])
    def test_resume_on_the_other_backend(self, tmp_path, src, dst):
        model = get_kernel("cenergy")
        baseline = Gpu(CFG, "pro").run(model.build_launch(0.1))
        snap = tmp_path / f"{src}.snap"
        gpu = Gpu(CFG, "pro", backend=src)
        snapped = gpu.run(model.build_launch(0.1),
                          snapshot_every=max(1, baseline.cycles // 3),
                          snapshot_path=snap)
        assert _counters(snapped) == _counters(baseline)
        resumed = Gpu.resume(snap, launch=model.build_launch(0.1),
                             backend=dst)
        assert resumed.cycles == baseline.cycles
        assert _counters(resumed) == _counters(baseline)

    @pytest.mark.parametrize("sched", ["lrr", "tl", "gto", "pro",
                                       "rlws", "wasp"])
    def test_mid_run_snapshot_every_scheduler(self, tmp_path, sched):
        launch = KernelLaunch(tiny_program(barrier=True, loops=3), 6)
        baseline = Gpu(CFG, sched).run(launch)
        snap = tmp_path / "cell.snap"
        gpu = Gpu(CFG, sched, backend="vector")
        gpu.run(KernelLaunch(tiny_program(barrier=True, loops=3), 6),
                snapshot_every=max(1, baseline.cycles // 3),
                snapshot_path=snap)
        if sched not in ("rlws", "wasp"):  # frontier pair routes to reference
            _assert_vector_active(gpu)
        resumed = Gpu.resume(snap,
                             launch=KernelLaunch(
                                 tiny_program(barrier=True, loops=3), 6))
        assert _counters(resumed) == _counters(baseline)


class TestFallback:
    """The vector path only engages when it can be bit-exact; otherwise
    the Gpu silently builds reference SMs."""

    class _Null(Probe):
        pass

    def test_probe_bus_forces_reference_stepping(self):
        model = get_kernel("cenergy")
        plain = Gpu(CFG, "pro").run(model.build_launch(0.1))
        gpu = Gpu(CFG, "pro", backend="vector")
        observed = gpu.run(model.build_launch(0.1), probes=[self._Null()])
        assert all(type(sm) is StreamingMultiprocessor for sm in gpu.sms)
        assert _counters(observed) == _counters(plain)

    def test_unknown_backend_rejected(self):
        with pytest.raises(Exception):
            Gpu(CFG, "pro", backend="simd")

    @pytest.mark.parametrize("sched", ["rlws", "wasp"])
    def test_frontier_schedulers_route_to_reference(self, sched):
        """rlws/wasp have no vector selector: ``backend="vector"`` must
        silently build reference SMs and match a reference run exactly."""
        model = get_kernel("cenergy")
        plain = Gpu(CFG, sched).run(model.build_launch(0.1))
        gpu = Gpu(CFG, sched, backend="vector")
        result = gpu.run(model.build_launch(0.1))
        assert all(type(sm) is StreamingMultiprocessor for sm in gpu.sms)
        assert _counters(result) == _counters(plain)

    def test_registered_custom_scheduler_routes_to_reference(self):
        """Any register_scheduler() policy outside the four inlined ones
        falls back — even a subclass of an inlined policy, since the
        selector match is exact-type on purpose."""
        from repro.core.lrr import LrrScheduler
        from repro.core.scheduler import (
            _REGISTRY,
            register_scheduler,
            simple_factory,
        )

        class _Custom(LrrScheduler):
            pass

        register_scheduler("custom!fallback-test", simple_factory(_Custom))
        try:
            model = get_kernel("cenergy")
            plain = Gpu(CFG, "lrr").run(model.build_launch(0.1))
            gpu = Gpu(CFG, "custom!fallback-test", backend="vector")
            result = gpu.run(model.build_launch(0.1))
            assert all(
                type(sm) is StreamingMultiprocessor for sm in gpu.sms
            )
            assert _counters(result) == _counters(plain)
        finally:
            _REGISTRY.pop("custom!fallback-test", None)

    def test_inlined_policy_still_gets_vector_sms(self):
        gpu = Gpu(CFG, "pro", backend="vector")
        gpu.run(get_kernel("cenergy").build_launch(0.1))
        _assert_vector_active(gpu)
