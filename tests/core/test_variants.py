"""Tests for PRO variants (pro-norm, thresholds) and extra schedulers."""

import pytest

from repro import Gpu, GPUConfig, KernelLaunch, ProgramBuilder
from repro.core import available_schedulers
from repro.core.scheduler import build_schedulers
from repro.core.variants import pro_with_threshold
from repro.memory.subsystem import MemorySubsystem
from repro.simt.sm import StreamingMultiprocessor
from repro.simt.threadblock import ThreadBlock

CFG = GPUConfig.scaled(2)


def divergent_prog():
    b = ProgramBuilder("div", threads_per_tb=128, regs_per_thread=10)
    with b.loop(times=lambda tb, w: 2 + 5 * (w % 3)):
        b.ialu(1)
        b.ialu(1, (1,))
    return b.build()


class TestProNorm:
    def test_registered(self):
        assert "pro-norm" in available_schedulers()

    def test_runs_to_completion(self):
        res = Gpu(CFG, "pro-norm").run(KernelLaunch(divergent_prog(), 10))
        assert res.counters.tbs_completed == 10

    def test_same_work_as_pro(self):
        a = Gpu(CFG, "pro").run(KernelLaunch(divergent_prog(), 10))
        b = Gpu(CFG, "pro-norm").run(KernelLaunch(divergent_prog(), 10))
        assert a.counters.instructions == b.counters.instructions

    def test_estimates_computed(self):
        cfg = GPUConfig.scaled(1).with_(tb_launch_latency=0)
        sm = StreamingMultiprocessor(0, cfg, MemorySubsystem(cfg), gpu=None)
        sm.attach_schedulers(build_schedulers("pro-norm", sm, cfg))
        prog = divergent_prog()
        prog.finalize(cfg.latency)
        tb = ThreadBlock(0, prog)
        sm.assign_tb(tb, 0)
        mgr = sm.schedulers[0].manager
        rec = mgr.records[0]
        assert mgr.normalize is True
        assert rec.total_estimate > 1
        # warp 1 does more loop trips than warp 0 -> larger estimate
        assert rec.warp_estimates[1] > rec.warp_estimates[0]

    def test_normalized_key_is_fraction(self):
        cfg = GPUConfig.scaled(1).with_(tb_launch_latency=0)
        sm = StreamingMultiprocessor(0, cfg, MemorySubsystem(cfg), gpu=None)
        sm.attach_schedulers(build_schedulers("pro-norm", sm, cfg))
        prog = divergent_prog()
        prog.finalize(cfg.latency)
        tb = ThreadBlock(0, prog)
        sm.assign_tb(tb, 0)
        rec = sm.schedulers[0].manager.records[0]
        assert rec.progress_key() == 0.0
        tb.warps[0].progress = rec.warp_estimates[0]
        assert 0.0 < rec.progress_key() <= 1.0

    def test_plain_pro_key_is_raw(self):
        cfg = GPUConfig.scaled(1).with_(tb_launch_latency=0)
        sm = StreamingMultiprocessor(0, cfg, MemorySubsystem(cfg), gpu=None)
        sm.attach_schedulers(build_schedulers("pro", sm, cfg))
        prog = divergent_prog()
        prog.finalize(cfg.latency)
        tb = ThreadBlock(0, prog)
        sm.assign_tb(tb, 0)
        rec = sm.schedulers[0].manager.records[0]
        tb.warps[0].progress = 77
        assert rec.progress_key() == 77.0


class TestThresholdVariants:
    def test_idempotent_registration(self):
        a = pro_with_threshold(777)
        b = pro_with_threshold(777)
        assert a == b == "pro-t777"

    def test_variant_runs(self):
        res = Gpu(CFG, pro_with_threshold(250)).run(
            KernelLaunch(divergent_prog(), 6)
        )
        assert res.counters.tbs_completed == 6


class TestExtraSchedulers:
    @pytest.mark.parametrize("sched", ["of", "rand"])
    def test_registered_and_runs(self, sched):
        res = Gpu(CFG, sched).run(KernelLaunch(divergent_prog(), 8))
        assert res.counters.tbs_completed == 8

    @pytest.mark.parametrize("sched", ["of", "rand"])
    def test_deterministic(self, sched):
        r1 = Gpu(CFG, sched).run(KernelLaunch(divergent_prog(), 8))
        r2 = Gpu(CFG, sched).run(KernelLaunch(divergent_prog(), 8))
        assert r1.cycles == r2.cycles

    def test_of_is_strict_age_order(self):
        from repro.core.extra import OldestFirstScheduler

        cfg = GPUConfig.scaled(1).with_(num_schedulers=1,
                                        tb_launch_latency=0)
        s = OldestFirstScheduler(sm=None, sched_id=0, cfg=cfg)
        prog = ProgramBuilder("p", threads_per_tb=64).ialu(1).build()
        a, b = ThreadBlock(0, prog), ThreadBlock(1, prog)
        a.materialize(0, 0, 1)
        b.materialize(0, 1, 1)
        s.on_tb_assigned(a, 0)
        s.on_tb_assigned(b, 0)
        order = list(s.order(0))
        assert order == a.warps + b.warps
        # issuing does not reorder (no greedy component)
        s.note_issued(b.warps[0], 0)
        assert list(s.order(1)) == a.warps + b.warps

    def test_rand_order_is_permutation(self):
        from repro.core.extra import RandomScheduler

        cfg = GPUConfig.scaled(1).with_(num_schedulers=1,
                                        tb_launch_latency=0)
        s = RandomScheduler(sm=None, sched_id=0, cfg=cfg)
        prog = ProgramBuilder("p", threads_per_tb=256).ialu(1).build()
        tb = ThreadBlock(0, prog)
        tb.materialize(0, 0, 1)
        s.on_tb_assigned(tb, 0)
        orders = set()
        for cycle in range(16):
            order = list(s.order(cycle))
            assert sorted(id(w) for w in order) == \
                sorted(id(w) for w in tb.warps)
            orders.add(tuple(w.warp_in_tb for w in order))
        assert len(orders) > 1  # the order actually varies by cycle
