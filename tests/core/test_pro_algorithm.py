"""Algorithm 1 conformance: PRO's full priority order, observed end to end.

These tests drive real simulations with an IssueTrace attached and check
that the issue stream is consistent with the algorithm's promises —
complementing the manager-level unit tests in test_pro.py.
"""

from repro import Gpu, GPUConfig, IssueTrace, KernelLaunch, ProgramBuilder
from repro.core.pro import ProManager
from repro.core.scheduler import build_schedulers
from repro.core.tb_state import TbState
from repro.memory.subsystem import MemorySubsystem
from repro.simt.sm import StreamingMultiprocessor
from repro.simt.threadblock import ThreadBlock

CFG1 = GPUConfig.scaled(1).with_(tb_launch_latency=0)


def make_sm(scheduler="pro", cfg=CFG1):
    sm = StreamingMultiprocessor(0, cfg, MemorySubsystem(cfg), gpu=None)
    sm.attach_schedulers(build_schedulers(scheduler, sm, cfg))
    return sm


def assign(sm, prog, idx):
    prog.finalize(sm.cfg.latency)
    tb = ThreadBlock(idx, prog)
    sm.assign_tb(tb, 0)
    return tb


def compute_prog(n=20, threads=64):
    b = ProgramBuilder("c", threads_per_tb=threads)
    for _ in range(n):
        b.ialu(1)
    return b.build()


class TestPriorityOrderInOrderList:
    """The concatenation order of Algorithm 1 lines 41-62."""

    def test_finish_wait_before_barrier_wait_before_no_wait(self):
        sm = make_sm()
        mgr: ProManager = sm.schedulers[0].manager
        for i in (0, 1, 2):
            assign(sm, compute_prog(), i)
        ra, rb, rc = (mgr.records[i] for i in (0, 1, 2))
        # Force states directly (unit-style) and check concatenation.
        mgr.no_wait.remove(ra)
        ra.state = TbState.FINISH_WAIT
        mgr.finish_wait.append(ra)
        mgr.no_wait.remove(rb)
        rb.state = TbState.BARRIER_WAIT
        mgr.barrier_wait.append(rb)
        order = mgr.order(0, cycle=1)
        tb_sequence = [w.tb.tb_index for w in order]
        # all of a's warps, then b's, then c's
        first_a = tb_sequence.index(0)
        first_b = tb_sequence.index(1)
        first_c = tb_sequence.index(2)
        assert first_a < first_b < first_c

    def test_slow_phase_uses_finish_no_wait_when_no_wait_empty(self):
        sm = make_sm()
        mgr = sm.schedulers[0].manager
        assign(sm, compute_prog(), 0)
        rec = mgr.records[0]
        mgr.no_wait.remove(rec)
        rec.state = TbState.FINISH_NO_WAIT
        mgr.finish_no_wait.append(rec)
        order = mgr.order(0, cycle=1)
        assert order, "finishNoWait TBs must be schedulable"


class TestWarpOrderDirections:
    def test_no_wait_descending(self):
        sm = make_sm()
        mgr = sm.schedulers[0].manager
        tb = assign(sm, compute_prog(threads=128), 0)
        for i, w in enumerate(tb.warps):
            w.progress = 10 * (i + 1)
        rec = mgr.records[0]
        rec.sort_warps(descending=True)
        for lst in rec.warp_order:
            progresses = [w.progress for w in lst]
            assert progresses == sorted(progresses, reverse=True)

    def test_barrier_wait_ascending(self):
        sm = make_sm()
        mgr = sm.schedulers[0].manager
        tb = assign(sm, compute_prog(threads=128), 0)
        for i, w in enumerate(tb.warps):
            w.progress = 10 * (i + 1)
        rec = mgr.records[0]
        rec.sort_warps(descending=False)
        for lst in rec.warp_order:
            progresses = [w.progress for w in lst]
            assert progresses == sorted(progresses)


class TestSrtfBehaviourEndToEnd:
    def test_pro_concentrates_early_slots_on_leading_tb(self):
        """PRO's noWait policy is SRTF-like: once progress diverges, the
        leading TB should win a larger share of issue slots than under
        LRR (observed via IssueTrace)."""
        cfg = GPUConfig.scaled(1)
        b = ProgramBuilder("w", threads_per_tb=256, regs_per_thread=32)
        with b.loop(times=20):
            b.ialu(1)
            b.ialu(2)
        prog = b.build()  # register-limited to 4 TBs

        def max_share(sched):
            trace = IssueTrace(limit=1500, sm_id=0)
            Gpu(cfg, sched).run(KernelLaunch(prog, 8), probes=[trace])
            from collections import Counter

            counts = Counter(ev.tb_index for ev in trace.events[200:1200])
            total = sum(counts.values())
            return max(counts.values()) / total

        assert max_share("pro") > max_share("lrr")

    def test_finish_divergent_tb_completes_early_under_pro(self):
        """finishWait promotion: a TB with one finished warp gets High
        priority, so its remaining warps finish sooner than the same TB
        does under LRR (measured by TB 0 finish order)."""
        from repro import TimelineRecorder

        cfg = GPUConfig.scaled(1)
        b = ProgramBuilder("d", threads_per_tb=256, regs_per_thread=32)
        with b.loop(times=lambda tb, w: 2 + 6 * (w % 8)):
            b.ialu(1)
            b.ialu(2)
        prog = b.build()

        def finish_rank(sched):
            tl = TimelineRecorder()
            Gpu(cfg, sched).run(KernelLaunch(prog, 8), probes=[tl])
            ordered = sorted(tl.intervals, key=lambda iv: iv.finish_cycle)
            return [iv.tb_index for iv in ordered].index(0)

        # not asserting a strict inequality (workload-dependent), but PRO
        # must not leave TB 0 finishing last
        assert finish_rank("pro") < 7


class TestSortTraceHook:
    def test_manager_records_via_hook(self):
        from repro.obs import ProbeBus
        from repro.stats.timeline import SortTraceRecorder

        cfg = GPUConfig.scaled(1).with_(pro_sort_threshold=50)
        sm = make_sm(cfg=cfg.with_(tb_launch_latency=0))
        mgr = sm.schedulers[0].manager
        mgr.threshold = 50
        trace = SortTraceRecorder(sm_id=0)
        sm.bus = ProbeBus([trace])
        assign(sm, compute_prog(), 0)
        assign(sm, compute_prog(), 1)
        mgr.order(0, cycle=100)
        assert len(trace.snapshots) == 1
        assert set(trace.snapshots[0].order) == {0, 1}
