"""Two-Level (TL) warp scheduler — Narasiman et al., MICRO-2011.

Warps are partitioned into fixed-size *fetch groups*. Groups are held in a
priority list; the scheduler serves the highest-priority group that has a
ready warp (round robin within the group). When the head group cannot
supply a warp — its warps stalled on long-latency operations — it is
rotated to the back, letting the next group run ahead. The staggered
group progress hides long latencies better than LRR; the paper's §II-A
describes exactly this mechanism (and §III its limitation: groups still
march in round-robin lockstep compared to PRO's progress-driven order).
"""

from __future__ import annotations

from typing import List, Sequence

from .scheduler import WarpScheduler, register_scheduler, simple_factory


class _FetchGroup:
    """One fetch group: a warp list plus a round-robin pointer."""

    __slots__ = ("warps", "rr")

    def __init__(self) -> None:
        self.warps: List = []
        self.rr = 0

    def ordered(self) -> List:
        n = len(self.warps)
        if n == 0:
            return []
        start = self.rr % n
        if start == 0:
            return list(self.warps)
        return self.warps[start:] + self.warps[:start]


class TwoLevelScheduler(WarpScheduler):
    """Fetch-group two-level round robin."""

    name = "tl"

    def __init__(self, sm, sched_id, cfg) -> None:
        super().__init__(sm, sched_id, cfg)
        self.group_size = cfg.tl_fetch_group_size
        #: Groups in priority order (head = active group).
        self._groups: List[_FetchGroup] = []

    # -- pool maintenance ---------------------------------------------------

    def on_tb_assigned(self, tb, cycle: int) -> None:
        super().on_tb_assigned(tb, cycle)
        for w in tb.warps:
            if w.sched_id != self.sched_id:
                continue
            if self._groups and len(self._groups[-1].warps) < self.group_size:
                self._groups[-1].warps.append(w)
            else:
                g = _FetchGroup()
                g.warps.append(w)
                self._groups.append(g)

    def on_warp_finished(self, warp, cycle: int) -> None:
        if warp.sched_id != self.sched_id:
            return
        super().on_warp_finished(warp, cycle)
        for g in self._groups:
            if warp in g.warps:
                idx = g.warps.index(warp)
                g.warps.remove(warp)
                if idx < g.rr:
                    g.rr -= 1
                break
        self._groups = [g for g in self._groups if g.warps]

    # -- scheduling -------------------------------------------------------------

    def order(self, cycle: int) -> Sequence:
        out: List = []
        for g in self._groups:
            out.extend(g.ordered())
        return out

    def note_issued(self, warp, cycle: int) -> None:
        groups = self._groups
        for gi, g in enumerate(groups):
            if warp in g.warps:
                g.rr = g.warps.index(warp) + 1
                if gi > 0:
                    # Every higher-priority group failed to supply a ready
                    # warp this cycle: they stalled on long latencies, so
                    # rotate them behind (the TL group switch).
                    self._groups = groups[gi:] + groups[:gi]
                return

    # -- state serialization -------------------------------------------

    def snapshot(self) -> dict:
        data = super().snapshot()
        data["groups"] = [
            {"warps": [self.warp_ref(w) for w in g.warps], "rr": g.rr}
            for g in self._groups
        ]
        return data

    def restore(self, data: dict, warp_map) -> None:
        super().restore(data, warp_map)
        self._groups = []
        for gdata in data["groups"]:
            g = _FetchGroup()
            g.warps = [warp_map[tuple(r)] for r in gdata["warps"]]
            g.rr = gdata["rr"]
            self._groups.append(g)


register_scheduler("tl", simple_factory(TwoLevelScheduler))
