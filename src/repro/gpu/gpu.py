"""Gpu — the top-level simulator object.

Owns the SMs, the shared memory subsystem and the Thread Block Scheduler,
and drives the global clock. The main loop advances time to the earliest
cycle at which *any* SM can make progress (each SM maintains its own
``sleep_until``, see :mod:`repro.simt.sm`), steps every due SM in id order
(determinism), and finishes when the last TB completes.

For wide configurations the next-wake instant comes from a
lazily-invalidated min-heap of ``(sleep_until, sm_id)`` entries rather
than an O(num_SMs) scan per loop iteration. Entries whose SM has since
been re-scheduled (its ``sleep_until`` no longer matches) or drained are
discarded on pop; ties pop in ``sm_id`` order, preserving the sequential
stepping order exactly. Below :data:`HEAP_MIN_SMS` SMs the plain scan is
measurably cheaper than heap maintenance and is used instead — both
paths step the same SMs at the same instants in the same order.

Typical use::

    gpu = Gpu(GPUConfig.scaled(), scheduler="pro")
    result = gpu.run(KernelLaunch(program, num_tbs=96))
    print(result.cycles, result.counters.stall_breakdown())

A ``Gpu`` may run several kernels sequentially; caches and DRAM state are
reset between launches (cold-start semantics, matching how the paper
simulates each kernel independently).
"""

from __future__ import annotations

import heapq
from typing import List, Optional, Sequence

from ..config import GPUConfig
from ..core.scheduler import build_schedulers
from ..errors import (
    DeadlockError,
    SimulationHang,
    SimulationInterrupted,
    SnapshotError,
)
from ..memory.subsystem import MemorySubsystem
from ..obs.bus import ProbeBus
from ..robustness.diagnostics import snapshot_gpu
from ..robustness.watchdog import ProgressWatchdog
from ..simt.occupancy import max_resident_tbs
from ..simt.sm import NEVER, StreamingMultiprocessor
from ..simt.threadblock import ThreadBlock
from ..stats.counters import GpuCounters
from ..stats.timeline import SortTraceRecorder, TimelineRecorder
from .launch import KernelLaunch, RunResult
from .tb_scheduler import ThreadBlockScheduler

#: SM count at which the wake min-heap beats the linear min-scan. Small
#: configurations (unit tests, scaled-down sweeps) scan a handful of SMs
#: faster than they can maintain a heap; the paper's 14-SM Table I config
#: and anything wider benefits from O(log n) wake-ups.
HEAP_MIN_SMS = 8


def _first_of(probes: Sequence[object], cls: type):
    """First probe of the given recorder type (fills RunResult shortcuts)."""
    for p in probes:
        if isinstance(p, cls):
            return p
    return None


#: Recognized simulation backends: the per-warp object interpreter and
#: the struct-of-arrays core (see :mod:`repro.simt.vector`).
BACKENDS = ("reference", "vector")

#: Recorder kwargs Gpu.run accepted through the PR-3 deprecation cycle,
#: mapped to the probe class that replaces each. Passing one now raises
#: TypeError with a one-line migration hint.
_RETIRED_RUN_KWARGS = {
    "timeline": "TimelineRecorder",
    "sort_trace": "SortTraceRecorder",
    "trace": "IssueTrace",
}


def _reject_retired_kwargs(kwargs: dict) -> None:
    """Raise the migration-hint TypeError for retired Gpu.run kwargs."""
    for name in kwargs:
        probe_cls = _RETIRED_RUN_KWARGS.get(name)
        if probe_cls is not None:
            raise TypeError(
                f"Gpu.run({name}=...) was removed; pass the recorder as a "
                f"probe instead: Gpu.run(probes=[{probe_cls}(...)])"
            )
    name = next(iter(kwargs))
    raise TypeError(
        f"Gpu.run() got an unexpected keyword argument {name!r}"
    )


class Gpu:
    """A configured GPU with a chosen warp scheduling algorithm."""

    def __init__(
        self,
        cfg: GPUConfig,
        scheduler: str = "lrr",
        backend: str = "reference",
    ) -> None:
        if backend not in BACKENDS:
            raise ValueError(
                f"unknown backend {backend!r}; expected one of {BACKENDS}"
            )
        self.cfg = cfg
        self.scheduler_name = scheduler
        self.backend = backend
        self.memory = MemorySubsystem(cfg)
        self.sms: List[StreamingMultiprocessor] = [
            StreamingMultiprocessor(i, cfg, self.memory, gpu=self)
            for i in range(cfg.num_sms)
        ]
        for sm in self.sms:
            sm.attach_schedulers(build_schedulers(scheduler, sm, cfg))
        self.tb_scheduler: ThreadBlockScheduler = ThreadBlockScheduler([])
        self._cycle = 0
        #: Optional repro.robustness.FaultPlan (tests / chaos runs only).
        self.faults = None
        # Cooperative-stop flag: set (signal-safely) by request_stop(),
        # honoured at the next main-loop cycle boundary.
        self._stop_requested = False

    # ------------------------------------------------------------------
    def request_stop(self) -> None:
        """Stop the running simulation at the next cycle boundary.

        Safe to call from a signal handler: it only sets a flag. The main
        loop then writes a snapshot (when one is configured) and raises
        :class:`~repro.errors.SimulationInterrupted`.
        """
        self._stop_requested = True

    # ------------------------------------------------------------------
    def install_faults(self, plan) -> None:
        """Arm a :class:`repro.robustness.FaultPlan` on this GPU.

        The plan survives launch resets: ``_reset_for_launch`` re-applies
        it to the freshly built SMs.
        """
        self.faults = plan
        for sm in self.sms:
            sm.faults = plan

    # ------------------------------------------------------------------
    def on_tb_finished(self, sm: StreamingMultiprocessor, cycle: int) -> None:
        """SM callback: a TB completed; refill that SM from the queue."""
        self.tb_scheduler.note_tb_finished()
        self.tb_scheduler.refill(sm, cycle)

    # ------------------------------------------------------------------
    def run(
        self,
        launch: KernelLaunch,
        *,
        probes: Sequence[object] = (),
        deadline: Optional[float] = None,
        snapshot_every: Optional[int] = None,
        snapshot_path: Optional[str] = None,
        launch_ref: Optional[dict] = None,
        **retired,
    ) -> RunResult:
        """Simulate one kernel launch to completion.

        ``probes`` is the single instrumentation entry point: any objects
        implementing (a subset of) the :class:`repro.obs.Probe` protocol —
        recorders such as :class:`~repro.stats.timeline.TimelineRecorder`,
        a :class:`~repro.obs.MetricsSampler`, exporters, or your own. They
        are attached to a :class:`~repro.obs.ProbeBus` for exactly this
        run and detached afterwards; untraced runs pay nothing (every
        emit site is guarded by one ``bus is None`` check).

        The pre-probes recorder kwargs (``timeline=`` / ``sort_trace=`` /
        ``trace=``) completed their deprecation cycle and now raise
        :class:`TypeError` naming the equivalent probe.

        ``deadline`` is an absolute ``time.monotonic()`` wall-clock budget
        (the harness's ``--cell-timeout``); exceeding it raises
        :class:`~repro.errors.CellTimeoutError` with a diagnostic report.
        Hangs and deadlocks raise :class:`~repro.errors.SimulationHang` /
        :class:`~repro.errors.DeadlockError`, both carrying a
        :class:`~repro.robustness.diagnostics.DeadlockReport` snapshot.

        ``snapshot_every`` / ``snapshot_path`` enable cycle-level state
        snapshots: every ``snapshot_every`` simulated cycles (and on a
        :meth:`request_stop`) the full simulator state is atomically
        written to ``snapshot_path``, from which :meth:`Gpu.resume`
        continues bit-identically. ``launch_ref`` (e.g. ``{"kernel":
        "hotspot", "scale": 0.25}``) is stored in the snapshot so resume
        can rebuild the launch from the workload registry; without it,
        resume requires an explicit ``launch=``. ``snapshot_every=None``
        with no path leaves the run entirely uninstrumented.
        """
        if retired:
            _reject_retired_kwargs(retired)
        probe_list = list(probes)
        bus = ProbeBus(probe_list) if probe_list else None

        cfg = self.cfg
        program = launch.program
        program.finalize(cfg.latency)
        # Raises LaunchError if a single TB cannot fit.
        max_resident_tbs(program, cfg)

        ctl = None
        if snapshot_path is not None or snapshot_every is not None:
            from ..robustness.snapshot import SnapshotControl

            ctl = SnapshotControl(
                snapshot_path,
                every=snapshot_every,
                program=program,
                num_tbs=launch.num_tbs,
                launch_ref=launch_ref,
            )

        self._reset_for_launch(bus, program)
        try:
            tbs = [ThreadBlock(i, program) for i in range(launch.num_tbs)]
            self.tb_scheduler = ThreadBlockScheduler(tbs)
            if bus is not None:
                bus.run_start(self, launch)
            self.tb_scheduler.initial_fill(self.sms, cycle=0)
            return self._drive(
                program, launch.num_tbs, probe_list, bus, deadline, ctl
            )
        finally:
            # Detach unconditionally so a reused Gpu (or one abandoned
            # mid-exception) never leaks this run's probes into the next
            # launch — the regression tests run launches back-to-back.
            if bus is not None:
                self._detach_probes()

    # ------------------------------------------------------------------
    def _drive(
        self,
        program,
        num_tbs: int,
        probe_list: List[object],
        bus: Optional[ProbeBus],
        deadline: Optional[float],
        ctl,
    ) -> RunResult:
        """Run the main loop to completion and package the result.

        Shared tail of :meth:`run` and :meth:`resume`: both bring the
        machine to a consistent cycle boundary (fresh launch after
        ``initial_fill``, or restored snapshot state) and then drive it
        identically from there.
        """
        cfg = self.cfg
        sms = self.sms
        max_cycles = cfg.max_cycles
        if self.faults is not None:
            max_cycles = self.faults.effective_max_cycles(max_cycles)
        watchdog = ProgressWatchdog(self, window=cfg.watchdog_window,
                                    deadline=deadline)
        if len(sms) >= HEAP_MIN_SMS:
            cycle = self._run_loop_heap(sms, max_cycles, watchdog, ctl)
        else:
            cycle = self._run_loop_scan(sms, max_cycles, watchdog, ctl)
        # Cycles are 0-indexed step instants; the elapsed duration
        # includes the final instant, so every SM's accounting sums
        # exactly to it.
        duration = cycle + 1
        self._cycle = duration

        counters = self._collect_counters(duration)
        result = RunResult(
            kernel_name=program.name,
            scheduler=self.scheduler_name,
            num_tbs=num_tbs,
            cycles=duration,
            counters=counters,
            timeline=_first_of(probe_list, TimelineRecorder),
            sort_trace=_first_of(probe_list, SortTraceRecorder),
            probes=tuple(probe_list),
        )
        if bus is not None:
            bus.run_end(result)
        return result

    # ------------------------------------------------------------------
    @classmethod
    def resume(
        cls,
        path,
        *,
        launch: Optional[KernelLaunch] = None,
        probes: Sequence[object] = (),
        deadline: Optional[float] = None,
        snapshot_every: Optional[int] = None,
        snapshot_path: Optional[str] = None,
        register=None,
        backend: str = "reference",
    ) -> RunResult:
        """Rebuild a Gpu from a snapshot file and run it to completion.

        The returned :class:`RunResult` is bit-identical (cycles and every
        counter) to the one the uninterrupted run would have produced.
        ``backend`` selects the stepping engine for the resumed portion;
        snapshots are backend-agnostic, so a run snapshotted on one
        backend resumes bit-identically on the other.

        ``launch`` may be omitted when the snapshot carries a
        ``launch_ref`` (kernel name + scale): the launch is then rebuilt
        from the workload registry. Either way the program's structural
        digest must match the snapshotted one, otherwise
        :class:`~repro.errors.SnapshotError` is raised.

        ``snapshot_every`` re-arms periodic snapshotting on the resumed
        run; ``snapshot_path`` defaults to overwriting ``path`` itself.
        ``register``, when given, is called with the rebuilt Gpu before
        driving, so a harness can reach :meth:`request_stop` on it.
        """
        from ..robustness.snapshot import (
            SnapshotControl,
            config_from_snapshot,
            load_snapshot,
            program_digest,
        )

        data = load_snapshot(path)
        cfg = config_from_snapshot(data)
        gpu = cls(cfg, scheduler=data["scheduler"], backend=backend)
        if launch is None:
            ref = data.get("launch_ref")
            if not ref:
                raise SnapshotError(
                    f"snapshot {path} carries no launch_ref; pass launch= "
                    "with the original program to resume"
                )
            from ..workloads.base import get_kernel

            launch = get_kernel(ref["kernel"]).build_launch(ref["scale"])
        if launch.num_tbs != data["num_tbs"]:
            raise SnapshotError(
                f"launch has {launch.num_tbs} TBs but the snapshot was "
                f"taken with {data['num_tbs']}"
            )
        program = launch.program
        program.finalize(cfg.latency)
        if program_digest(program) != data["program_digest"]:
            raise SnapshotError(
                "program structure differs from the snapshotted run; "
                "resuming would not be bit-identical"
            )

        probe_list = list(probes)
        bus = ProbeBus(probe_list) if probe_list else None
        ctl = None
        if snapshot_path is not None or snapshot_every is not None:
            ctl = SnapshotControl(
                snapshot_path if snapshot_path is not None else path,
                every=snapshot_every,
                program=program,
                num_tbs=data["num_tbs"],
                launch_ref=data.get("launch_ref"),
                start_cycle=data["cycle"],
            )
        gpu._reset_for_launch(bus, program)
        try:
            gpu.tb_scheduler = ThreadBlockScheduler([])
            gpu.tb_scheduler.restore(data["tb_scheduler"], program)
            gpu.memory.restore(data["memory"])
            for sm, smdata in zip(gpu.sms, data["sms"]):
                sm.restore(smdata, program)
            gpu._cycle = data["cycle"]
            if register is not None:
                register(gpu)
            if bus is not None:
                bus.run_start(gpu, launch)
            return gpu._drive(
                program, data["num_tbs"], probe_list, bus, deadline, ctl
            )
        finally:
            if bus is not None:
                gpu._detach_probes()

    # ------------------------------------------------------------------
    def _snapshot_boundary(self, ctl, nxt: int) -> None:
        """Cycle-boundary snapshot/stop hook (both loop variants).

        Called before any SM steps at ``nxt``, so a snapshot taken here
        captures a state from which resume recomputes the same ``nxt``
        and proceeds bit-identically. Only invoked when a SnapshotControl
        is armed or a stop was requested — uninstrumented runs pay a
        single comparison per loop iteration.
        """
        if self._stop_requested:
            if ctl is None:
                raise SimulationInterrupted(
                    "simulation stopped on request (no snapshot configured)",
                    cycle=nxt,
                )
            path = ctl.write(self, nxt)
            raise SimulationInterrupted(
                f"simulation stopped on request at cycle {nxt}; "
                f"snapshot written to {path}",
                snapshot_path=str(path),
                cycle=nxt,
            )
        if ctl.next_at is not None and nxt >= ctl.next_at:
            ctl.write(self, nxt)
            ctl.next_at = nxt + ctl.every

    # ------------------------------------------------------------------
    def _run_loop_scan(
        self,
        sms: List[StreamingMultiprocessor],
        max_cycles: int,
        watchdog: ProgressWatchdog,
        ctl=None,
    ) -> int:
        """Main loop, linear min-scan variant (cheapest for few SMs)."""
        tb_scheduler = self.tb_scheduler
        cycle = 0
        while not tb_scheduler.all_finished:
            # Next cycle at which any SM can act.
            nxt = NEVER
            for sm in sms:
                su = sm.sleep_until
                if su < nxt and sm.resident_tbs:
                    nxt = su
            if nxt >= NEVER:
                self._raise_deadlock(cycle)
            if nxt > max_cycles:
                self._raise_hang(cycle, nxt, max_cycles)
            if ctl is not None or self._stop_requested:
                self._snapshot_boundary(ctl, nxt)
            watchdog.beat(nxt)
            cycle = nxt
            for sm in sms:
                if sm.sleep_until <= cycle and sm.resident_tbs:
                    sm.step(cycle)
        return cycle

    def _run_loop_heap(
        self,
        sms: List[StreamingMultiprocessor],
        max_cycles: int,
        watchdog: ProgressWatchdog,
        ctl=None,
    ) -> int:
        """Main loop, lazily-invalidated wake-heap variant.

        One ``(sleep_until, sm_id)`` entry per pending wake-up. Invariant:
        every SM with resident TBs and a finite sleep_until has a current
        entry; stale entries are dropped lazily on pop. During the loop
        only the SM being stepped can change its own sleep_until /
        residency (the TB scheduler refills exactly the SM that finished a
        TB), so re-pushing after each step suffices.
        """
        tb_scheduler = self.tb_scheduler
        heappush, heappop = heapq.heappush, heapq.heappop
        wake = [
            (sm.sleep_until, sm.sm_id)
            for sm in sms
            if sm.resident_tbs and sm.sleep_until < NEVER
        ]
        heapq.heapify(wake)
        due: List[StreamingMultiprocessor] = []
        cycle = 0
        while not tb_scheduler.all_finished:
            # Discard stale entries until the top is a live wake-up.
            while wake:
                nxt, sid = wake[0]
                sm = sms[sid]
                if sm.resident_tbs and sm.sleep_until == nxt:
                    break
                heappop(wake)
            if not wake:
                self._raise_deadlock(cycle)
            if nxt > max_cycles:
                self._raise_hang(cycle, nxt, max_cycles)
            if ctl is not None or self._stop_requested:
                self._snapshot_boundary(ctl, nxt)
            watchdog.beat(nxt)
            cycle = nxt
            # Collect every SM due at this instant. Equal-cycle entries pop
            # in sm_id order (tuple comparison), matching the sequential
            # id-order scan; duplicates of one SM pop adjacently.
            due.clear()
            while wake and wake[0][0] == cycle:
                _, sid = heappop(wake)
                sm = sms[sid]
                if sm.sleep_until == cycle and sm.resident_tbs and (
                    not due or due[-1] is not sm
                ):
                    due.append(sm)
            for sm in due:
                sm.step(cycle)
                su = sm.sleep_until
                if su < NEVER and sm.resident_tbs:
                    heappush(wake, (su, sm.sm_id))
        return cycle

    def _raise_deadlock(self, cycle: int) -> None:
        unfinished = self.tb_scheduler.total - self.tb_scheduler.finished_count
        raise DeadlockError(
            f"global deadlock at cycle {cycle}: {unfinished} "
            "TB(s) unfinished but no SM can progress",
            report=snapshot_gpu(
                self, cycle,
                f"{unfinished} TB(s) unfinished, every SM asleep forever",
            ),
        )

    def _raise_hang(self, cycle: int, nxt: int, max_cycles: int) -> None:
        raise SimulationHang(
            f"exceeded max_cycles={max_cycles}; "
            "likely runaway workload configuration",
            report=snapshot_gpu(
                self, cycle,
                f"simulated clock would advance to {nxt}, past "
                f"max_cycles={max_cycles}",
            ),
        )

    # ------------------------------------------------------------------
    def _reset_for_launch(
        self, bus: Optional[ProbeBus], program=None
    ) -> None:
        cfg = self.cfg
        self._stop_requested = False
        self.memory.reset()
        # The bus is (re)assigned unconditionally — including to None —
        # so probes from an earlier launch can never leak into this one.
        self.memory.bus = bus
        self.memory.dram.bus = bus
        # Vector backend gating: the SoA core forgoes ProbeBus emit sites
        # and fault-injection branches on its fast path, packs scoreboards
        # into int64 lanes, and only carries selectors for the stock
        # scheduler types — outside that envelope the run silently uses
        # the (bit-identical) reference interpreter instead.
        if (
            self.backend == "vector"
            and bus is None
            and self.faults is None
            and program is not None
            and program.max_register() <= 62
        ):
            from ..simt.vector import VectorSM

            sms = []
            for i in range(cfg.num_sms):
                sm = VectorSM(i, cfg, self.memory, gpu=self, program=program)
                schedulers = build_schedulers(self.scheduler_name, sm, cfg)
                if not VectorSM.supports(schedulers):
                    break
                sm.attach_schedulers(schedulers)
                sm.bus = bus
                sm.faults = self.faults
                sms.append(sm)
            else:
                self.sms = sms
                return
        self.sms = [
            StreamingMultiprocessor(i, cfg, self.memory, gpu=self)
            for i in range(cfg.num_sms)
        ]
        for sm in self.sms:
            sm.attach_schedulers(build_schedulers(self.scheduler_name, sm, cfg))
            sm.bus = bus
            sm.faults = self.faults

    def _detach_probes(self) -> None:
        """Drop every component's bus reference (end of a probed run)."""
        self.memory.bus = None
        self.memory.dram.bus = None
        for sm in self.sms:
            sm.bus = None

    def _collect_counters(self, cycle: int) -> GpuCounters:
        for sm in self.sms:
            sm.finalize_accounting(cycle)
        counters = GpuCounters(
            total_cycles=cycle,
            per_sm=[sm.counters for sm in self.sms],
        )
        l1 = self.memory.l1_stats_total()
        l2 = self.memory.l2_stats_total()
        counters.l1_miss_rate = l1.miss_rate
        counters.l2_miss_rate = l2.miss_rate
        counters.dram_row_hit_rate = self.memory.dram.stats.row_hit_rate
        return counters
