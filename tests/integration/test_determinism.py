"""Determinism: identical inputs must produce bit-identical simulations.

Reproducibility is a hard requirement for a simulator used in scheduling
studies — any hidden nondeterminism would make Fig. 4-style comparisons
meaningless.
"""

import dataclasses

import pytest

from repro import Gpu, GPUConfig, KernelLaunch
from repro.workloads import get_kernel
from tests.conftest import tiny_program

CFG = GPUConfig.scaled(2)

SAMPLE_KERNELS = ["scalarProdGPU", "bfs_kernel", "calculate_temp",
                  "sha1_overlap"]


def snapshot(res):
    c = res.counters
    return (
        res.cycles,
        c.active_cycles,
        c.stall_idle,
        c.stall_scoreboard,
        c.stall_pipeline,
        c.instructions,
        c.thread_instructions,
        c.l1_miss_rate,
        c.l2_miss_rate,
        c.dram_row_hit_rate,
        tuple((s.active_cycles, s.stall_cycles, s.instructions)
              for s in c.per_sm),
    )


class TestDeterminism:
    @pytest.mark.parametrize("sched", ["lrr", "tl", "gto", "pro"])
    def test_repeat_run_identical(self, sched):
        r1 = Gpu(CFG, sched).run(KernelLaunch(tiny_program(barrier=True), 8))
        r2 = Gpu(CFG, sched).run(KernelLaunch(tiny_program(barrier=True), 8))
        assert snapshot(r1) == snapshot(r2)

    @pytest.mark.parametrize("kernel", SAMPLE_KERNELS)
    def test_workload_models_deterministic(self, kernel):
        m = get_kernel(kernel)
        r1 = Gpu(CFG, "pro").run(m.build_launch(0.25))
        r2 = Gpu(CFG, "pro").run(m.build_launch(0.25))
        assert snapshot(r1) == snapshot(r2)

    def test_fresh_gpu_equals_reused_gpu(self):
        gpu = Gpu(CFG, "gto")
        launch = KernelLaunch(tiny_program(), 6)
        r1 = gpu.run(launch)
        r2 = gpu.run(KernelLaunch(tiny_program(), 6))
        r3 = Gpu(CFG, "gto").run(KernelLaunch(tiny_program(), 6))
        assert snapshot(r1) == snapshot(r2) == snapshot(r3)

    def test_timeline_deterministic(self):
        from repro import TimelineRecorder

        out = []
        for _ in range(2):
            tl = TimelineRecorder()
            Gpu(CFG, "pro").run(KernelLaunch(tiny_program(), 8), probes=[tl])
            out.append([dataclasses.astuple(iv) for iv in tl.intervals])
        assert out[0] == out[1]
