"""Registry-integrity tests: the invariants the fidelity layer leans on.

The paper expectations (src/repro/fidelity/data/paper_expectations.json)
anchor to kernels by Table II name and aggregate stalls per application,
so the registry must stay a clean partition of uniquely-named, launchable
kernels. ``validate_registry`` checks this programmatically; the tests
here pin each invariant individually so a violation names itself.
"""

import dataclasses

import pytest

from repro.config import GPUConfig
from repro.simt.occupancy import max_resident_tbs
from repro.workloads import (
    all_kernels,
    applications,
    get_kernel,
    kernels_of_app,
    validate_registry,
)
from repro.workloads.base import FERMI_MAX_THREADS_PER_TB, KernelModel


class TestValidateRegistry:
    def test_registry_is_healthy(self):
        assert validate_registry() == []

    def test_detects_broken_entry(self):
        """A corrupted registry entry is reported, not silently accepted."""
        from repro.workloads import base

        bad = dataclasses.replace(
            get_kernel("scalarProdGPU"), name="scalarProdGPU",
            paper_tbs=0,
        )
        original = base._REGISTRY["scalarProdGPU"]
        base._REGISTRY["scalarProdGPU"] = bad
        try:
            problems = validate_registry()
        finally:
            base._REGISTRY["scalarProdGPU"] = original
        assert any("grid sizes" in p for p in problems)

    def test_detects_key_name_mismatch(self):
        from repro.workloads import base

        model = get_kernel("cenergy")
        base._REGISTRY["__alias__"] = model
        try:
            problems = validate_registry()
        finally:
            del base._REGISTRY["__alias__"]
        assert any("__alias__" in p for p in problems)


class TestNamesResolvable:
    def test_every_kernel_resolvable_by_name(self):
        for m in all_kernels():
            assert get_kernel(m.name) is m

    def test_names_unique(self):
        names = [m.name for m in all_kernels()]
        assert len(names) == len(set(names)) == 25


class TestAppPartition:
    def test_apps_partition_all_kernels(self):
        """kernels_of_app over applications() covers every kernel exactly
        once (the fidelity stall aggregation sums per app)."""
        seen = []
        for app in applications():
            seen.extend(m.name for m in kernels_of_app(app))
        assert sorted(seen) == sorted(m.name for m in all_kernels())
        assert len(seen) == len(set(seen))

    def test_kernels_of_app_consistent_with_metadata(self):
        for app in applications():
            for m in kernels_of_app(app):
                assert m.app == app


class TestFermiResourceLimits:
    @pytest.mark.parametrize("name", [m.name for m in all_kernels()])
    def test_within_fermi_limits(self, name):
        """Every model launches on the paper's GTX 480 (Table I)."""
        prog = get_kernel(name).build_program()
        cfg = GPUConfig.gtx480()
        assert prog.threads_per_tb <= FERMI_MAX_THREADS_PER_TB
        assert prog.shared_mem_per_tb <= cfg.shared_mem_per_sm
        assert (prog.regs_per_thread * prog.threads_per_tb
                <= cfg.registers_per_sm)
        # and residency is in Fermi's 1..8 TB-slot range
        assert 1 <= max_resident_tbs(prog, cfg) <= cfg.max_tbs_per_sm

    def test_model_type(self):
        for m in all_kernels():
            assert isinstance(m, KernelModel)
            assert m.suite in ("gpgpusim", "rodinia", "cudasdk")
