"""Property-based end-to-end simulation invariants.

Random small kernels are generated and run under randomly chosen
schedulers; the conservation laws of the simulator must hold for all of
them:

* every TB completes;
* per-SM cycle accounting is exact (active + stalls == total);
* instruction and progress counts match the programs' closed-form
  dynamic counts, independent of scheduler;
* simulations are deterministic.
"""

from hypothesis import given, settings, strategies as st

from repro import Gpu, GPUConfig, KernelLaunch, ProgramBuilder
from repro.isa.patterns import Coalesced

CFG = GPUConfig.scaled(2)
SCHEDULERS = ("lrr", "tl", "gto", "pro", "pro-nb", "pro-nf")

kernel_recipes = st.fixed_dictionaries({
    "threads": st.sampled_from([32, 64, 96, 128]),
    "loops": st.integers(1, 4),
    "body_alu": st.integers(0, 3),
    "with_mem": st.booleans(),
    "with_barrier": st.booleans(),
    "divergent": st.booleans(),
    "num_tbs": st.integers(1, 8),
    "scheduler": st.sampled_from(SCHEDULERS),
})


def build_kernel(recipe):
    b = ProgramBuilder("prop", threads_per_tb=recipe["threads"],
                       regs_per_thread=10)
    trips = (
        (lambda tb, w: 1 + (tb + w) % 3) if recipe["divergent"]
        else recipe["loops"]
    )
    with b.loop(times=trips):
        if recipe["with_mem"]:
            b.load_global(1, pattern=Coalesced(base=0, iter_stride=128,
                                               warp_region=1024))
        b.ialu(2, (1, 2) if recipe["with_mem"] else (2,))
        for _ in range(recipe["body_alu"]):
            b.ialu(2, (2,))
    if recipe["with_barrier"]:
        b.barrier()
        b.ialu(3, (2,))
    b.store_global((2,), pattern=Coalesced(base=1 << 30))
    return b.build()


def expected_instructions(prog, num_tbs):
    warps = (prog.threads_per_tb + 31) // 32
    return sum(
        prog.dynamic_count(tb, w) for tb in range(num_tbs)
        for w in range(warps)
    )


class TestSimulationProperties:
    @given(kernel_recipes)
    @settings(max_examples=40, deadline=None)
    def test_conservation_laws(self, recipe):
        prog = build_kernel(recipe)
        res = Gpu(CFG, recipe["scheduler"]).run(
            KernelLaunch(prog, recipe["num_tbs"])
        )
        c = res.counters
        assert c.tbs_completed == recipe["num_tbs"]
        assert c.instructions == expected_instructions(prog, recipe["num_tbs"])
        for s in c.per_sm:
            assert s.active_cycles + s.stall_cycles == res.cycles

    @given(kernel_recipes)
    @settings(max_examples=15, deadline=None)
    def test_deterministic(self, recipe):
        launch = KernelLaunch(build_kernel(recipe), recipe["num_tbs"])
        launch2 = KernelLaunch(build_kernel(recipe), recipe["num_tbs"])
        r1 = Gpu(CFG, recipe["scheduler"]).run(launch)
        r2 = Gpu(CFG, recipe["scheduler"]).run(launch2)
        assert r1.cycles == r2.cycles
        assert r1.counters.stall_cycles == r2.counters.stall_cycles

    @given(kernel_recipes)
    @settings(max_examples=15, deadline=None)
    def test_work_is_scheduler_invariant(self, recipe):
        counts = set()
        for sched in ("lrr", "pro"):
            prog = build_kernel(recipe)
            res = Gpu(CFG, sched).run(KernelLaunch(prog, recipe["num_tbs"]))
            counts.add((res.counters.instructions,
                        res.counters.thread_instructions))
        assert len(counts) == 1
