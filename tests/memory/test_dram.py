"""Unit tests for the banked open-row DRAM model."""

from repro.config import LatencyConfig, MemoryConfig
from repro.memory.dram import Dram

LINE = 128


def make(**mem_kw):
    mem = MemoryConfig(**mem_kw)
    return Dram(mem, LatencyConfig()), mem, LatencyConfig()


class TestRowBuffer:
    def test_first_access_is_row_miss(self):
        d, _, lat = make()
        done = d.service(0, arrive=0)
        assert d.stats.row_misses == 1
        assert done >= lat.dram_row_miss

    def test_same_row_hits(self):
        d, mem, lat = make()
        d.service(0, 0)
        # the next line on the same channel within the row: stride by
        # channels lines
        same_row_line = mem.dram_channels * LINE
        d.service(same_row_line, 0)
        assert d.stats.row_hits == 1

    def test_hit_faster_than_miss(self):
        d, mem, lat = make()
        t_miss = d.service(0, 0)
        t_hit = d.service(mem.dram_channels * LINE, t_miss) - t_miss
        assert t_hit < t_miss

    def test_row_conflict_reopens(self):
        d, mem, _ = make()
        rows_apart = mem.dram_channels * mem.dram_banks * (
            mem.dram_row_size // LINE) * LINE
        d.service(0, 0)
        d.service(rows_apart, 0)  # same bank, different row
        assert d.stats.row_misses == 2

    def test_row_hit_rate(self):
        d, mem, _ = make()
        for i in range(4):
            d.service(i * mem.dram_channels * LINE, 0)
        assert d.stats.row_hit_rate == 0.75  # 1 miss + 3 hits


class TestQueueing:
    def test_same_bank_serializes(self):
        d, mem, lat = make()
        t1 = d.service(0, 0)
        row_line = mem.dram_channels * LINE
        t2 = d.service(row_line, 0)  # same bank, same row, arrives together
        assert t2 > t1  # must wait for the bank/bus

    def test_different_channels_parallel(self):
        d, _, _ = make()
        t1 = d.service(0, 0)
        t2 = d.service(LINE, 0)  # next line -> next channel
        # independent channel: same latency, not serialized
        assert t2 == t1

    def test_bank_occupancy_shorter_than_latency(self):
        d, mem, lat = make()
        d.service(0, 0)
        # second access to the same bank can *start* after the occupancy,
        # well before the first access's data was delivered
        row_line = mem.dram_channels * LINE
        t2 = d.service(row_line, 0)
        assert t2 < 2 * (lat.dram_row_miss + mem.dram_bus_cycles)

    def test_reads_and_writes_counted(self):
        d, _, _ = make()
        d.service(0, 0, is_write=False)
        d.service(LINE, 0, is_write=True)
        assert d.stats.reads == 1
        assert d.stats.writes == 1


class TestReset:
    def test_reset_clears_state(self):
        d, mem, _ = make()
        d.service(0, 0)
        d.reset()
        d.service(mem.dram_channels * LINE, 0)
        # after reset the open row is forgotten -> miss again
        assert d.stats.row_misses == 2

    def test_reset_clears_timing(self):
        d, _, _ = make()
        t1 = d.service(0, 0)
        d.reset()
        t2 = d.service(0, 0)
        assert t2 == t1


class TestDeterminism:
    def test_service_sequence_deterministic(self):
        seq = [(i * 13 % 64) * LINE for i in range(100)]
        d1, _, _ = make()
        d2, _, _ = make()
        out1 = [d1.service(a, t) for t, a in enumerate(seq)]
        out2 = [d2.service(a, t) for t, a in enumerate(seq)]
        assert out1 == out2
