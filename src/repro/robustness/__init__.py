"""Reliability layer: watchdog, diagnostics, checkpointing, fault injection.

Long sweeps (the paper's 25-kernel x 4-scheduler matrix at 14 SMs) need
the same machinery a production fleet does:

* :mod:`~repro.robustness.watchdog` — forward-progress + wall-clock
  watchdog beaten from the GPU main loop;
* :mod:`~repro.robustness.diagnostics` — :class:`DeadlockReport`
  machine-state snapshots attached to structured simulation errors;
* :mod:`~repro.robustness.checkpoint` — disk-backed run-matrix cells so
  an interrupted harness invocation resumes instead of restarting;
* :mod:`~repro.robustness.faults` — deterministic, seeded fault injectors
  that prove the above paths actually fire.
"""

from .checkpoint import (
    CheckpointStore,
    cell_key,
    config_digest,
    result_from_json,
    result_to_json,
)
from .diagnostics import (
    DeadlockReport,
    DramSnapshot,
    MshrSnapshot,
    SmSnapshot,
    WarpSnapshot,
    report_for_sm,
    snapshot_gpu,
    snapshot_sm,
    snapshot_warp,
)
from .faults import FaultPlan
from .watchdog import ProgressWatchdog

__all__ = [
    "CheckpointStore",
    "DeadlockReport",
    "DramSnapshot",
    "FaultPlan",
    "MshrSnapshot",
    "ProgressWatchdog",
    "SmSnapshot",
    "WarpSnapshot",
    "cell_key",
    "config_digest",
    "report_for_sm",
    "result_from_json",
    "result_to_json",
    "snapshot_gpu",
    "snapshot_sm",
    "snapshot_warp",
]
