"""Property-based tests on scheduler orderings.

Whatever events a scheduler has seen, its ``order()`` must be a
permutation of its live warps — no duplicates, no lost warps, no
resurrected finished warps. Violations of this are exactly the class of
bug that silently skews a scheduling study.
"""

from hypothesis import given, settings, strategies as st

from repro.config import GPUConfig
from repro.core.scheduler import build_schedulers
from repro.isa.builder import ProgramBuilder
from repro.memory.subsystem import MemorySubsystem
from repro.simt.sm import StreamingMultiprocessor
from repro.simt.threadblock import ThreadBlock

SCHEDULERS = ("lrr", "tl", "gto", "pro", "pro-nb", "pro-nf")

#: A scripted event trace for a bare scheduler rig: assignments,
#: issue notes, and warp finishes, as (op, arg) pairs.
trace_steps = st.lists(
    st.tuples(st.sampled_from(["assign", "issue", "finish"]),
              st.integers(0, 7)),
    max_size=30,
)


def make_sm(scheduler):
    cfg = GPUConfig.scaled(1).with_(tb_launch_latency=0)
    memory = MemorySubsystem(cfg)
    sm = StreamingMultiprocessor(0, cfg, memory, gpu=None)
    sm.attach_schedulers(build_schedulers(scheduler, sm, cfg))
    return sm, cfg


def make_tb(idx, cfg, n_warps=4):
    prog = ProgramBuilder("p", threads_per_tb=32 * n_warps).ialu(1).build()
    prog.finalize(cfg.latency)
    return ThreadBlock(idx, prog)


class TestOrderIsAPermutation:
    @given(st.sampled_from(SCHEDULERS), trace_steps)
    @settings(max_examples=120, deadline=None)
    def test_order_never_duplicates_or_loses_warps(self, sched_name, steps):
        sm, cfg = make_sm(sched_name)
        live = []
        next_tb = 0
        cycle = 0
        for op, arg in steps:
            cycle += 1
            if op == "assign" and len(sm.resident_tbs) < 4:
                tb = make_tb(next_tb, cfg)
                next_tb += 1
                sm.assign_tb(tb, cycle)
                live.extend(tb.warps)
            elif op == "issue" and live:
                warp = live[arg % len(live)]
                warp.progress += 32
                for s in sm.schedulers:
                    if s.sched_id == warp.sched_id:
                        s.note_issued(warp, cycle)
            elif op == "finish" and live:
                warp = live[arg % len(live)]
                # finish the warp through the SM's bookkeeping
                if not warp.finished:
                    sm._warp_finished(warp, cycle)
                    live.remove(warp)

            # invariant: each scheduler's order is a permutation of its
            # live (unfinished) warps, modulo barrier-blocked ones which
            # remain listed
            for s in sm.schedulers:
                order = list(s.order(cycle))
                ids = [id(w) for w in order]
                assert len(ids) == len(set(ids)), f"{sched_name}: duplicate"
                expected = {
                    id(w) for w in live
                    if w.sched_id == s.sched_id and not w.finished
                }
                assert set(ids) == expected, f"{sched_name}: lost/extra warp"

    @given(st.sampled_from(SCHEDULERS))
    @settings(max_examples=12, deadline=None)
    def test_empty_scheduler_empty_order(self, sched_name):
        sm, _ = make_sm(sched_name)
        for s in sm.schedulers:
            assert list(s.order(0)) == []
