"""Unit tests for the text renderers."""

import pytest

from repro.stats.report import (
    geomean,
    render_bars,
    render_gantt,
    render_stacked_pct,
    render_table,
)


class TestRenderTable:
    def test_headers_and_rows_present(self):
        out = render_table(("A", "B"), [("x", 1), ("y", 2)])
        assert "A" in out and "B" in out
        assert "x" in out and "2" in out

    def test_float_formatting(self):
        out = render_table(("V",), [(1.23456,)])
        assert "1.235" in out

    def test_title(self):
        out = render_table(("A",), [("x",)], title="My Table")
        assert out.startswith("My Table\n========")

    def test_alignment(self):
        out = render_table(("Name", "N"), [("a", 5), ("bbbb", 123)])
        lines = out.splitlines()
        # numeric column right-aligned: '5' under the ones digit of 123
        assert lines[-1].endswith("123")
        assert lines[-2].endswith("  5")

    def test_empty_rows(self):
        out = render_table(("A",), [])
        assert "A" in out


class TestRenderBars:
    def test_scaling(self):
        out = render_bars(["a", "b"], [1.0, 2.0], width=10)
        lines = out.splitlines()
        assert lines[0].count("#") == 5
        assert lines[1].count("#") == 10

    def test_mismatched_lengths(self):
        with pytest.raises(ValueError):
            render_bars(["a"], [1.0, 2.0])

    def test_zero_values(self):
        out = render_bars(["a"], [0.0])
        assert "#" not in out

    def test_unit_suffix(self):
        assert "1.500x" in render_bars(["a"], [1.5], unit="x")


class TestRenderStacked:
    def test_percentages_shown(self):
        out = render_stacked_pct(["app"], [[1.0, 1.0, 2.0]],
                                 ("i", "s", "p"))
        assert "25%" in out and "50%" in out

    def test_legend(self):
        out = render_stacked_pct(["app"], [[1.0]], ("only",))
        assert "legend" in out and "only" in out

    def test_zero_stack(self):
        out = render_stacked_pct(["app"], [[0.0, 0.0]], ("a", "b"))
        assert "app" in out


class TestRenderGantt:
    def test_bars_positioned(self):
        out = render_gantt([("tb0", 0, 50), ("tb1", 50, 100)], width=20)
        lines = out.splitlines()
        assert lines[0].index("#") < lines[1].index("#")

    def test_empty(self):
        assert "no intervals" in render_gantt([])

    def test_bounds_annotated(self):
        out = render_gantt([("a", 10, 90)], width=10)
        assert "[10..90]" in out


class TestGeomean:
    def test_basic(self):
        assert geomean([2.0, 8.0]) == pytest.approx(4.0)

    def test_identity(self):
        assert geomean([1.0, 1.0, 1.0]) == pytest.approx(1.0)

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            geomean([])

    def test_nonpositive_raises(self):
        with pytest.raises(ValueError):
            geomean([1.0, 0.0])
