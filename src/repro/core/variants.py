"""PRO ablation variants (registered at import).

* ``pro-nb`` — barrier handling disabled: TBs are never promoted to
  barrierWait; barriers still synchronize physically, but the scheduler
  does not react. The paper's §IV notes scalarProd runs ~11% faster this
  way, motivating their future work on per-application profiling.
* ``pro-nf`` — finish handling disabled: no finishWait promotion.
* ``pro-norm`` — the normalized-progress extension: TBs and warps are
  compared by *completion fraction* (progress / estimated total
  thread-instructions) instead of raw counts. §III-C.1 discusses exactly
  this normalization as an alternative (and notes even it is approximate);
  §VI lists richer progress metrics as future work. The estimate comes
  from each warp's launch-time dynamic instruction count.
* :func:`pro_with_threshold` — PRO with a custom re-sort period, for the
  THRESHOLD sensitivity ablation (the paper fixes THRESHOLD=1000).
"""

from __future__ import annotations

from .pro import make_pro_factory
from .scheduler import register_scheduler

register_scheduler("pro-nb", make_pro_factory(handle_barrier=False))
register_scheduler("pro-nf", make_pro_factory(handle_finish=False))
register_scheduler("pro-norm", make_pro_factory(normalize=True))


def pro_with_threshold(threshold: int) -> str:
    """Register (idempotently) and return the name of a PRO variant whose
    periodic sort runs every ``threshold`` cycles."""
    name = f"pro-t{threshold}"
    register_scheduler(name, make_pro_factory(threshold=threshold))
    return name
