"""Simulation runner with cross-experiment result caching.

Fig. 4, Fig. 5 and Table III all consume the same 25-kernel x 4-scheduler
run matrix; :class:`ResultCache` memoizes runs per (kernel, scheduler,
config, scale) so a full `all` harness invocation simulates each cell
exactly once.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple

from ..config import GPUConfig
from ..gpu.gpu import Gpu
from ..gpu.launch import RunResult
from ..stats.timeline import SortTraceRecorder, TimelineRecorder
from ..workloads import KernelModel, get_kernel

#: The scheduler set of the paper's evaluation.
PAPER_SCHEDULERS = ("tl", "lrr", "gto", "pro")


@dataclass
class ExperimentSetup:
    """Shared configuration of one harness session.

    The default is the scaled 4-SM configuration (DESIGN.md §2); pass
    ``config=GPUConfig.gtx480()`` and a larger ``scale`` for a
    paper-faithful (but much slower) run.
    """

    config: GPUConfig = field(default_factory=lambda: GPUConfig.scaled(4))
    #: Workload grid-size multiplier (1.0 = the models' scaled defaults).
    scale: float = 1.0
    cache: "ResultCache" = field(default_factory=lambda: ResultCache())

    def run(self, kernel: str | KernelModel, scheduler: str,
            **kwargs) -> RunResult:
        """Run (or fetch from cache) one kernel under one scheduler."""
        return self.cache.run(kernel, scheduler, self.config, self.scale,
                              **kwargs)


class ResultCache:
    """Memoizes RunResults keyed by (kernel, scheduler, config, scale).

    Runs requesting recorders (timeline / sort trace) are cached under a
    distinct key so plain runs never pay recording overhead.
    """

    def __init__(self) -> None:
        self._results: Dict[Tuple, RunResult] = {}

    def run(
        self,
        kernel: str | KernelModel,
        scheduler: str,
        config: GPUConfig,
        scale: float = 1.0,
        *,
        with_timeline: bool = False,
        with_sort_trace: bool = False,
        trace_sm: int = 0,
    ) -> RunResult:
        model = kernel if isinstance(kernel, KernelModel) else get_kernel(kernel)
        key = (model.name, scheduler, id_of(config), scale,
               with_timeline, with_sort_trace, trace_sm)
        hit = self._results.get(key)
        if hit is not None:
            return hit
        timeline = TimelineRecorder() if with_timeline else None
        sort_trace = (
            SortTraceRecorder(sm_id=trace_sm) if with_sort_trace else None
        )
        gpu = Gpu(config, scheduler=scheduler)
        result = gpu.run(
            model.build_launch(scale), timeline=timeline, sort_trace=sort_trace
        )
        self._results[key] = result
        return result

    def __len__(self) -> int:
        return len(self._results)


def id_of(config: GPUConfig) -> Tuple:
    """Hashable identity of a config (frozen dataclasses hash by value)."""
    return (config,)


def run_kernel(
    kernel: str | KernelModel,
    scheduler: str = "pro",
    config: Optional[GPUConfig] = None,
    scale: float = 1.0,
    **kwargs,
) -> RunResult:
    """One-shot convenience runner (no cache)."""
    cache = ResultCache()
    return cache.run(kernel, scheduler, config or GPUConfig.scaled(4),
                     scale, **kwargs)
