"""Paper-fidelity scoring: machine-checked reproduction gating.

This package turns "does the repo still reproduce the paper?" into a
verdict a CI job can gate on. Three layers:

* :mod:`~repro.fidelity.expectations` — machine-readable expectations
  distilled from the paper's evaluation (Fig. 4 speedups, Fig. 5 /
  Table III stall ratios, Table III stall shares), each carrying a paper
  citation anchor, the paper's value, a *shape* bound that must hold at
  any simulation scale, and per-profile numeric targets with warn/fail
  tolerance bands;
* :mod:`~repro.fidelity.scorer` — measures a (kernels x schedulers)
  profile through the harness cache and evaluates every expectation into
  a verdict (``pass`` / ``warn`` / ``fail``);
* :mod:`~repro.fidelity.baseline` — content-hashed goldens of per-cell
  counters keyed by a sim-version digest, with an explicit
  ``--accept-baseline`` promotion flow so intentional behavior changes
  are one reviewed file diff instead of silent drift.

The CLI entry points are ``pro-sim fidelity [--smoke|--full]`` and
``pro-sim diff-baseline A B`` (docs/fidelity.md).
"""

from .baseline import BaselineDiff, BaselineStore, diff_baselines, sim_version_digest
from .expectations import (
    Band,
    Expectation,
    ExpectationError,
    FidelityProfile,
    PROFILES,
    load_expectations,
    resolve_profile,
)
from .report import FidelityReport, Verdict
from .scorer import (
    FidelityMeasurement,
    evaluate,
    measure,
    score,
    verdicts_for_fig4,
    verdicts_for_stalls,
)

__all__ = [
    "Band",
    "BaselineDiff",
    "BaselineStore",
    "Expectation",
    "ExpectationError",
    "FidelityMeasurement",
    "FidelityProfile",
    "FidelityReport",
    "PROFILES",
    "Verdict",
    "diff_baselines",
    "evaluate",
    "load_expectations",
    "measure",
    "resolve_profile",
    "score",
    "sim_version_digest",
    "verdicts_for_fig4",
    "verdicts_for_stalls",
]
