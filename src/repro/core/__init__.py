"""Warp scheduling algorithms: LRR, GTO, TL baselines and PRO (the paper).

Schedulers are looked up by name via :func:`available_schedulers` /
:func:`build_schedulers`:

========== ==========================================================
``lrr``    Loose Round Robin (equal priority, rotating start point)
``gto``    Greedy Then Oldest (stick with one warp, fall back to oldest)
``tl``     Two-Level (Narasiman et al., MICRO-2011 fetch groups)
``pro``    Progress-aware scheduler (this paper, Algorithm 1 + Fig. 3)
``pro-nb`` PRO ablation: barrierWait prioritization disabled (§IV note)
``pro-nf`` PRO ablation: finishWait prioritization disabled
``pro-norm`` PRO extension: normalized (fractional) progress (§III-C.1/§VI)
``of``     Oldest-First reference (GTO without the greedy component)
``rand``   Deterministic pseudo-random priority (policy floor)
========== ==========================================================
"""

from .scheduler import (
    WarpScheduler,
    available_schedulers,
    build_schedulers,
    register_scheduler,
)
from .tb_state import TbState, allowed_transitions, check_transition
from .lrr import LrrScheduler
from .gto import GtoScheduler
from .tl import TwoLevelScheduler
from .pro import ProManager, ProScheduler
from . import variants as _variants  # noqa: F401  (registers pro-nb / pro-nf / pro-norm)
from . import extra as _extra  # noqa: F401  (registers of / rand)

__all__ = [
    "GtoScheduler",
    "LrrScheduler",
    "ProManager",
    "ProScheduler",
    "TbState",
    "TwoLevelScheduler",
    "WarpScheduler",
    "allowed_transitions",
    "available_schedulers",
    "build_schedulers",
    "check_transition",
    "register_scheduler",
]
