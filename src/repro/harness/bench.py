"""``pro-sim bench`` — simulator throughput measurement harness.

Two phases, mirroring the two things this project optimizes:

1. **Micro phase (sequential).** Each cell of a small fixed
   kernel x scheduler set simulates in-process on a fresh
   :class:`~repro.gpu.gpu.Gpu`, timed individually. The aggregate
   cycles/sec and instr/sec are the single-process hot-path throughput —
   the number the simulator-core optimizations move.
2. **Matrix phase (parallel).** The same cells run as a run matrix
   through :func:`~repro.harness.parallel.run_matrix_parallel`, once
   with the requested ``--jobs`` and once with ``--jobs 1`` (fresh
   caches both times), giving the sweep-level parallel speedup. The
   parallel side uses a persistent :class:`~repro.harness.pool.WorkerPool`
   spawned *before* the timed region (spawn + prewarm cost is reported
   separately as ``seconds_spawn``) — the steady-state number is what a
   long sweep over warm workers actually sees, which is the speedup CI
   gates on. On a single-core machine it is expectedly ~1.0 or below
   (process overhead with no cores to spread over); the report says so
   rather than hiding it.

``run_bench`` writes a machine-readable ``BENCH_<timestamp>.json`` next
to the human-readable report so CI can archive throughput history.
"""

from __future__ import annotations

import json
import platform
import sys
import time
from dataclasses import asdict, dataclass, field
from pathlib import Path
from typing import List, Optional

from ..config import GPUConfig
from ..gpu.gpu import Gpu
from ..stats.report import render_table
from ..workloads import get_kernel
from .parallel import run_matrix_parallel
from .pool import PoolConfig, WorkerPool
from .runner import CellPolicy, ResultCache

#: The micro-workload set: two compute-regular kernels, one barrier-heavy
#: kernel and one memory-divergent kernel, under the paper's main
#: schedulers — small enough to finish in seconds, varied enough to
#: exercise every hot path (issue scan, scoreboard, ports, PRO sorting).
MICRO_KERNELS = (
    "scalarProdGPU", "cenergy", "aesEncrypt128", "calculate_temp",
)
MICRO_SCHEDULERS = ("lrr", "gto", "pro")

#: ``--smoke`` subset for CI: one short cell per scheduler.
SMOKE_KERNELS = ("scalarProdGPU", "cenergy")
SMOKE_SCHEDULERS = ("lrr", "pro")

#: Reduced simulation size (matches benchmarks/conftest.py).
BENCH_SMS = 2
BENCH_SCALE = 0.35
SMOKE_SCALE = 0.15


@dataclass
class CellTiming:
    """One timed micro-phase cell."""

    kernel: str
    scheduler: str
    cycles: int
    instructions: int
    wall_seconds: float

    @property
    def cycles_per_sec(self) -> float:
        return self.cycles / self.wall_seconds if self.wall_seconds else 0.0

    @property
    def instr_per_sec(self) -> float:
        return (
            self.instructions / self.wall_seconds if self.wall_seconds
            else 0.0
        )


@dataclass
class BenchReport:
    """Full bench result: per-cell timings + aggregate throughput."""

    sms: int
    scale: float
    jobs: int
    smoke: bool
    backend: str = "reference"
    micro: List[CellTiming] = field(default_factory=list)
    matrix_seconds_parallel: float = 0.0
    matrix_seconds_serial: float = 0.0
    #: One-time worker-pool spawn + prewarm cost, paid before the timed
    #: parallel region (amortized across every sweep a persistent pool
    #: serves, so reported separately rather than folded into speedup).
    matrix_seconds_spawn: float = 0.0
    #: Where the machine-readable JSON landed (set by :func:`run_bench`).
    json_path: Optional[str] = None

    @property
    def total_cycles(self) -> int:
        return sum(c.cycles for c in self.micro)

    @property
    def total_instructions(self) -> int:
        return sum(c.instructions for c in self.micro)

    @property
    def total_seconds(self) -> float:
        return sum(c.wall_seconds for c in self.micro)

    @property
    def cycles_per_sec(self) -> float:
        return (
            self.total_cycles / self.total_seconds if self.total_seconds
            else 0.0
        )

    @property
    def instr_per_sec(self) -> float:
        return (
            self.total_instructions / self.total_seconds
            if self.total_seconds else 0.0
        )

    @property
    def parallel_speedup(self) -> float:
        if not self.matrix_seconds_parallel:
            return 0.0
        return self.matrix_seconds_serial / self.matrix_seconds_parallel

    def to_json(self) -> dict:
        return {
            "schema": 1,
            "sms": self.sms,
            "scale": self.scale,
            "jobs": self.jobs,
            "smoke": self.smoke,
            "backend": self.backend,
            "python": sys.version.split()[0],
            "platform": platform.platform(),
            "micro": [
                {**asdict(c), "cycles_per_sec": c.cycles_per_sec,
                 "instr_per_sec": c.instr_per_sec}
                for c in self.micro
            ],
            "totals": {
                "cycles": self.total_cycles,
                "instructions": self.total_instructions,
                "wall_seconds": self.total_seconds,
                "cycles_per_sec": self.cycles_per_sec,
                "instr_per_sec": self.instr_per_sec,
            },
            "matrix": {
                "seconds_parallel": self.matrix_seconds_parallel,
                "seconds_serial": self.matrix_seconds_serial,
                "seconds_spawn": self.matrix_seconds_spawn,
                "parallel_speedup": self.parallel_speedup,
            },
        }

    def render(self) -> str:
        rows = [
            (c.kernel, c.scheduler, c.cycles, f"{c.wall_seconds:.3f}",
             f"{c.cycles_per_sec:,.0f}", f"{c.instr_per_sec:,.0f}")
            for c in self.micro
        ]
        table = render_table(
            ("Kernel", "Sched", "Cycles", "Wall s", "Cycles/s", "Instr/s"),
            rows,
            title=f"Bench: micro-workload throughput (sequential, "
                  f"in-process, backend={self.backend})",
        )
        lines = [
            table,
            "",
            f"aggregate: {self.cycles_per_sec:,.0f} cycles/s, "
            f"{self.instr_per_sec:,.0f} instr/s "
            f"({self.total_seconds:.2f}s over {len(self.micro)} cells)",
            f"matrix sweep: jobs={self.jobs} {self.matrix_seconds_parallel:.2f}s "
            f"vs jobs=1 {self.matrix_seconds_serial:.2f}s "
            f"-> {self.parallel_speedup:.2f}x parallel speedup "
            f"(warm workers; one-time pool spawn "
            f"{self.matrix_seconds_spawn:.2f}s)",
        ]
        if self.jobs > 1 and self.parallel_speedup < 1.1:
            lines.append(
                "(speedup near or below 1.0 usually means too few CPU "
                "cores for the requested --jobs)"
            )
        if self.json_path:
            lines.append(f"bench JSON: {self.json_path}")
        return "\n".join(lines)


def run_bench(
    *,
    jobs: int = 1,
    smoke: bool = False,
    sms: int = BENCH_SMS,
    scale: Optional[float] = None,
    out_dir: str | Path = ".",
    out_path: Optional[str] = None,
    pool_config: Optional[PoolConfig] = None,
    backend: str = "reference",
) -> BenchReport:
    """Run both bench phases and write ``BENCH_<timestamp>.json``.

    ``smoke`` shrinks the cell set and scale for CI. ``out_path``
    overrides the default timestamped filename (in ``out_dir``).
    ``pool_config`` tunes the matrix phase's worker pool (CLI
    ``--worker-deadline`` / ``--max-respawns``). ``backend`` selects the
    simulation core for both phases (micro cells directly, matrix cells
    via the worker payload's :class:`CellPolicy`).
    """
    kernels = SMOKE_KERNELS if smoke else MICRO_KERNELS
    schedulers = SMOKE_SCHEDULERS if smoke else MICRO_SCHEDULERS
    if scale is None:
        scale = SMOKE_SCALE if smoke else BENCH_SCALE
    config = GPUConfig.scaled(sms)
    report = BenchReport(sms=sms, scale=scale, jobs=jobs, smoke=smoke,
                         backend=backend)
    policy = CellPolicy(backend=backend)

    # Untimed warmup: the very first simulation pays one-time import and
    # bytecode-cache costs that would otherwise be billed to whichever
    # cell happens to run first (20%+ distortion at smoke scale).
    warm = Gpu(config, scheduler=schedulers[0], backend=backend)
    warm.run(get_kernel(kernels[0]).build_launch(min(scale, SMOKE_SCALE)))

    # Phase 1: sequential micro cells, each on a fresh Gpu.
    for kernel in kernels:
        model = get_kernel(kernel)
        for scheduler in schedulers:
            launch = model.build_launch(scale)
            gpu = Gpu(config, scheduler=scheduler, backend=backend)
            t0 = time.perf_counter()
            result = gpu.run(launch)
            dt = time.perf_counter() - t0
            report.micro.append(CellTiming(
                kernel=kernel,
                scheduler=scheduler,
                cycles=result.cycles,
                instructions=result.counters.instructions,
                wall_seconds=dt,
            ))

    # Phase 2: the same matrix as a sweep, parallel vs sequential
    # (fresh caches so both sides do full work). The pool is spawned and
    # prewarmed outside the timed region — a persistent pool pays that
    # once per session, not per sweep — and its cost is reported
    # separately so the speedup number stays honest.
    cells = [(k, s) for k in kernels for s in schedulers]
    if jobs > 1:
        t0 = time.perf_counter()
        with WorkerPool(min(jobs, len(cells)),
                        pool_config=pool_config) as pool:
            pool.wait_ready()
            report.matrix_seconds_spawn = time.perf_counter() - t0
            t0 = time.perf_counter()
            run_matrix_parallel(ResultCache(policy=policy), cells,
                                config, scale, jobs=jobs, pool=pool)
            report.matrix_seconds_parallel = time.perf_counter() - t0
    else:
        t0 = time.perf_counter()
        run_matrix_parallel(ResultCache(policy=policy), cells, config,
                            scale, jobs=jobs)
        report.matrix_seconds_parallel = time.perf_counter() - t0
    t0 = time.perf_counter()
    run_matrix_parallel(ResultCache(policy=policy), cells, config, scale,
                        jobs=1)
    report.matrix_seconds_serial = time.perf_counter() - t0

    if out_path is None:
        stamp = time.strftime("%Y%m%dT%H%M%S")
        out_path = str(Path(out_dir) / f"BENCH_{stamp}.json")
    with open(out_path, "w", encoding="utf-8") as f:
        json.dump(report.to_json(), f, indent=2, sort_keys=True)
    report.json_path = out_path
    return report


# ---------------------------------------------------------------------------
# ``bench --compare``


def micro_geomean(report: dict) -> float:
    """Geometric-mean micro cycles/sec of a bench JSON (0.0 if empty)."""
    import math

    vals = [c["cycles_per_sec"] for c in report.get("micro", [])
            if c.get("cycles_per_sec")]
    if not vals:
        return 0.0
    return math.exp(sum(math.log(v) for v in vals) / len(vals))


def compare_bench(old: dict, new: dict) -> str:
    """Render per-cell cycles/sec deltas between two bench JSONs.

    Cells are matched on (kernel, scheduler); unmatched cells are listed
    but excluded from the geomean speedup line, so comparing a smoke
    report against a full one only scores the shared cells.
    """
    import math

    old_cells = {(c["kernel"], c["scheduler"]): c for c in old.get("micro", [])}
    new_cells = {(c["kernel"], c["scheduler"]): c for c in new.get("micro", [])}
    rows = []
    ratios = []
    for key in new_cells:
        kernel, scheduler = key
        n = new_cells[key]["cycles_per_sec"]
        o = old_cells.get(key, {}).get("cycles_per_sec")
        if o:
            ratios.append(n / o)
            rows.append((kernel, scheduler, f"{o:,.0f}", f"{n:,.0f}",
                         f"{n / o:.2f}x"))
        else:
            rows.append((kernel, scheduler, "-", f"{n:,.0f}", "new"))
    for key in old_cells:
        if key not in new_cells:
            o = old_cells[key]["cycles_per_sec"]
            rows.append((key[0], key[1], f"{o:,.0f}", "-", "dropped"))
    title = (
        f"Bench compare: {old.get('backend', 'reference')} "
        f"(sms={old.get('sms')}, scale={old.get('scale')}) -> "
        f"{new.get('backend', 'reference')} "
        f"(sms={new.get('sms')}, scale={new.get('scale')})"
    )
    table = render_table(
        ("Kernel", "Sched", "Old c/s", "New c/s", "Speedup"),
        rows, title=title,
    )
    lines = [table, ""]
    if ratios:
        geo = math.exp(sum(math.log(r) for r in ratios) / len(ratios))
        lines.append(
            f"geomean speedup over {len(ratios)} matched cells: {geo:.2f}x"
        )
    else:
        lines.append("no matched cells: geomean speedup unavailable")
    if old.get("sms") != new.get("sms") or old.get("scale") != new.get("scale"):
        lines.append(
            "warning: reports use different sms/scale geometry; per-cell "
            "ratios mix simulator speed with problem-size effects"
        )
    return "\n".join(lines)
