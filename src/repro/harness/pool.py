"""Persistent, supervised worker pool for run-matrix sweeps.

The per-sweep ``ProcessPoolExecutor`` fan-out paid cold spawn + prewarm
for every sweep (losing to serial at jobs=2 — the recorded 0.87x of
``benchmarks/BENCH_*.json``) and died un-structurally the moment a
worker did: a segfault surfaced as a raw ``BrokenProcessPool`` traceback
that aborted the whole matrix. :class:`WorkerPool` replaces it with a
long-lived supervised pool:

* **Workers spawn once and stay warm.** Each worker is a
  ``multiprocessing.Process`` pulling cells off its own dispatch queue;
  one pool can serve any number of sweeps (bench, fidelity, nightly
  ``--full`` runs), so spawn + import cost is amortized instead of paid
  per sweep. Tasks carry their own (config, scale, policy), so a single
  pool serves heterogeneous sweeps.
* **The parent supervises.** Every worker owns a heartbeat (a shared
  double a worker-side daemon thread refreshes) and every dispatched
  cell a wall-clock deadline (``PoolConfig.worker_deadline``). A dead
  worker (``is_alive()`` false — segfault, OOM kill, ``os._exit``), a
  deadline-blown cell or a stale heartbeat gets the worker reaped and a
  replacement spawned (bounded by ``max_respawns``); the in-flight cell
  is redispatched with exponential backoff.
* **Poison cells are quarantined, not fatal.** A cell that destroys its
  worker ``max_cell_attempts`` times becomes a
  :class:`~repro.errors.PoisonCellError`
  :class:`~repro.harness.runner.CellFailure`; the sweep continues under
  ``keep_going`` exactly like any other failed cell.
* **Exhaustion degrades, never aborts.** When the respawn budget runs
  out and the last worker dies, the remaining cells are handed back for
  the in-process sequential path — a slow sweep beats a dead one.
* **Dispatch is longest-estimated-first.** Cell wall-clock history
  (the :class:`~repro.robustness.checkpoint.CheckpointStore` durations
  sidecar, falling back to what this pool has already observed) orders
  the queue so the longest cells start first and stragglers don't
  serialize the sweep's tail.
* **Results are validated before adoption.** Worker payloads carry a
  content digest; a truncated or corrupt payload (torn pipe, bit flip,
  the ``corrupt_payload`` injector) is a *retryable* redispatch, never a
  poisoned checkpoint.

The parent remains the single checkpoint writer (``ResultCache.adopt``)
and counters stay bit-identical to a sequential sweep — the pool only
changes *where* cells run, never what they compute. Lifecycle telemetry
(:class:`PoolEvent`) flows through the ordinary
:class:`~repro.obs.ProbeBus` ``on_pool_event`` hook.

Worker-level fault injection (``FaultPlan.kill_worker`` /
``hang_worker`` / ``corrupt_payload``) is consumed parent-side at
dispatch time and shipped to the worker as part of the task, which keeps
budgets deterministic even though the faulted worker never returns.
"""

from __future__ import annotations

import os
import queue as queue_mod
import threading
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from .. import errors as _errors
from ..config import GPUConfig
from ..errors import (
    InvariantViolation,
    PayloadError,
    PoisonCellError,
    SimulationError,
    SimulationInterrupted,
)
from ..obs.bus import ProbeBus
from ..robustness.checkpoint import (
    payload_digest,
    result_from_json,
    result_to_json,
)
from ..robustness.diagnostics import (
    DeadlockReport,
    TextReport,
    report_from_json,
    report_to_json,
)
from .runner import CellFailure, CellPolicy, ResultCache

#: Exit code of a worker killed by the ``kill_worker`` injector —
#: distinctive in pool telemetry, irrelevant to supervision (any death
#: is handled identically).
KILL_EXIT_CODE = 113

#: Seconds between worker heartbeat refreshes.
HEARTBEAT_INTERVAL = 0.25


# ---------------------------------------------------------------------------
# configuration and telemetry


@dataclass(frozen=True)
class PoolConfig:
    """Supervision knobs of one :class:`WorkerPool`.

    ``worker_deadline`` is the parent-side wall-clock budget per
    *dispatched cell* (None = unbounded) — independent of the
    worker-internal ``CellPolicy.cell_timeout``, which a wedged worker
    may never get to enforce. ``heartbeat_timeout`` catches workers that
    are alive to the OS but no longer scheduling Python (None disables).
    ``max_respawns`` bounds replacement workers per pool lifetime;
    ``max_cell_attempts`` bounds how often one cell may destroy a worker
    before quarantine.
    """

    worker_deadline: Optional[float] = None
    heartbeat_timeout: Optional[float] = 30.0
    max_respawns: int = 4
    max_cell_attempts: int = 3
    #: Exponential redispatch backoff: base * 2^(attempt-1), capped.
    backoff_base: float = 0.05
    backoff_max: float = 1.0
    #: Parent supervision poll period when nothing is happening.
    poll_interval: float = 0.02


@dataclass(frozen=True)
class PoolEvent:
    """One worker-pool lifecycle event (telemetry).

    ``kind`` is one of ``spawn``, ``respawn``, ``dispatch``,
    ``redispatch``, ``inject``, ``worker-death``, ``deadline``,
    ``heartbeat-lost``, ``corrupt-payload``, ``quarantine``,
    ``degrade``, ``shutdown``.
    """

    kind: str
    worker_id: Optional[int] = None
    kernel: Optional[str] = None
    scheduler: Optional[str] = None
    detail: str = ""

    def describe(self) -> str:
        cell = (
            f" {self.kernel}/{self.scheduler}"
            if self.kernel is not None else ""
        )
        who = f" worker {self.worker_id}" if self.worker_id is not None else ""
        tail = f": {self.detail}" if self.detail else ""
        return f"[pool] {self.kind}{who}{cell}{tail}"


# ---------------------------------------------------------------------------
# worker side


def _ensure_scheduler_registered(scheduler: str) -> None:
    """Make dynamically-registered scheduler names resolvable in a fresh
    worker process.

    Static variants (``pro-nb``/``pro-nf``/``pro-norm``) register on
    import; threshold variants (``pro-t<N>``) are registered lazily by
    the parent and must be re-registered here.
    """
    from ..core import variants

    if scheduler.startswith("pro-t"):
        try:
            variants.pro_with_threshold(int(scheduler[len("pro-t"):]))
        except ValueError:
            pass  # not a threshold variant; let the registry reject it


def failure_to_json(err: SimulationError, attempts: int) -> dict:
    """Serialize a worker-side simulation failure, diagnostics included.

    The attached :class:`~repro.robustness.diagnostics.DeadlockReport`
    is flattened structurally (rendered-text fallback for duck-typed
    reports) so the parent's FAILURES output matches a sequential
    sweep's, not just its headline.
    """
    report = getattr(err, "report", None)
    report_json: Optional[dict] = None
    if isinstance(report, DeadlockReport):
        report_json = report_to_json(report)
    elif report is not None:
        try:
            report_json = {"text": report.render()}
        except Exception:
            report_json = None
    return {
        "type": type(err).__name__,
        "headline": getattr(err, "headline", None) or str(err),
        "attempts": attempts,
        "report": report_json,
        "invariant": getattr(err, "name", None),
    }


def rebuild_error(failure: dict) -> SimulationError:
    """Rehydrate a :func:`failure_to_json` payload in the parent.

    The error class is resolved by name against :mod:`repro.errors`
    (unknown or non-SimulationError names degrade to the base class) and
    the diagnostic report is rebuilt so ``str(error)`` renders the same
    post-mortem a sequential sweep would have printed.
    """
    cls = getattr(_errors, failure.get("type", ""), SimulationError)
    if not (isinstance(cls, type) and issubclass(cls, SimulationError)):
        cls = SimulationError
    headline = failure.get("headline", "worker-side simulation failure")
    report = None
    report_json = failure.get("report")
    if isinstance(report_json, dict):
        if "text" in report_json:
            report = TextReport(report_json["text"])
        else:
            try:
                report = report_from_json(report_json)
            except (KeyError, TypeError):
                report = None
    kwargs = {}
    if report is not None:
        kwargs["report"] = report
    if cls is InvariantViolation and failure.get("invariant"):
        kwargs["name"] = failure["invariant"]
    try:
        return cls(headline, **kwargs)
    except TypeError:
        # A subclass with an incompatible signature (e.g. one that does
        # not accept report=); the base class always does.
        return SimulationError(headline, report=report)


def simulate_cell_payload(
    kernel: str,
    scheduler: str,
    config: GPUConfig,
    scale: float,
    policy: CellPolicy,
) -> dict:
    """Simulate one cell and package the outcome for the parent.

    The payload is pure JSON-able data — results carry a content digest
    the parent re-checks before adoption, failures carry their full
    serialized diagnostics. Exceptions never cross the process boundary
    as live objects.
    """
    _ensure_scheduler_registered(scheduler)
    cache = ResultCache(policy=policy)
    t0 = time.perf_counter()
    try:
        result = cache.run(kernel, scheduler, config, scale)
    except SimulationError as err:
        attempts = (
            cache.failures[-1].attempts if cache.failures
            else policy.retries + 1
        )
        return {
            "kernel": kernel,
            "scheduler": scheduler,
            "seconds": time.perf_counter() - t0,
            "result": None,
            "digest": None,
            "failure": failure_to_json(err, attempts),
        }
    result_json = result_to_json(result)
    return {
        "kernel": kernel,
        "scheduler": scheduler,
        "seconds": time.perf_counter() - t0,
        "result": result_json,
        "digest": payload_digest(result_json),
        "failure": None,
    }


def corrupt_cell_payload(payload: dict) -> dict:
    """Deterministically mangle a payload (the ``corrupt_payload``
    injector): drop the per-SM counters, leaving the stale digest to
    disagree with the truncated body — exactly what a torn write
    produces."""
    bad = dict(payload)
    result = bad.get("result")
    if isinstance(result, dict):
        counters = dict(result.get("counters") or {})
        counters.pop("per_sm", None)
        bad["result"] = {**result, "counters": counters}
    else:
        bad["digest"] = "0" * 16
    return bad


def _worker_main(worker_id: int, task_q, result_q, heartbeat) -> None:
    """Worker process loop: beat, pull a cell, simulate, answer.

    A daemon thread refreshes ``heartbeat`` (a shared double) every
    :data:`HEARTBEAT_INTERVAL` seconds — the simulation loop itself is
    single-threaded and cannot. Injected faults arrive inside the task:
    ``kill_worker`` exits before touching the simulator, ``hang_worker``
    sleeps forever (the heartbeat keeps beating — deliberately: only the
    parent's *deadline* can catch a wedged-but-scheduling worker), and
    ``corrupt_payload`` mangles an otherwise honest result.
    """
    stop = threading.Event()

    def beat() -> None:
        while not stop.is_set():
            heartbeat.value = time.monotonic()
            stop.wait(HEARTBEAT_INTERVAL)

    threading.Thread(target=beat, daemon=True,
                     name=f"heartbeat-{worker_id}").start()
    try:
        while True:
            task = task_q.get()
            if task is None:
                break
            seq, kernel, scheduler, config, scale, policy, inject = task
            if inject == "kill_worker":
                os._exit(KILL_EXIT_CODE)
            if inject == "hang_worker":
                while True:
                    time.sleep(60.0)
            payload = simulate_cell_payload(kernel, scheduler, config,
                                            scale, policy)
            if inject == "corrupt_payload":
                payload = corrupt_cell_payload(payload)
            result_q.put((seq, payload))
    finally:
        stop.set()


# ---------------------------------------------------------------------------
# parent side


@dataclass
class _Task:
    """One not-yet-adopted cell, with its pool-level retry state."""

    seq: int
    kernel: str
    scheduler: str
    #: Pool-level attempts consumed by worker loss / corrupt payloads
    #: (worker-internal CellPolicy retries are a separate, inner budget).
    attempts: int = 0
    #: Earliest monotonic time the cell may be redispatched (backoff).
    ready_at: float = 0.0


class _Worker:
    """Parent-side handle of one worker process."""

    def __init__(self, ctx, worker_id: int) -> None:
        self.id = worker_id
        self.task_q = ctx.Queue()
        self.result_q = ctx.Queue()
        self.heartbeat = ctx.Value("d", 0.0)
        self.spawned_at = time.monotonic()
        self.current: Optional[_Task] = None
        self.dispatched_at = 0.0
        self.proc = ctx.Process(
            target=_worker_main,
            args=(worker_id, self.task_q, self.result_q, self.heartbeat),
            daemon=True,
            name=f"pro-sim-worker-{worker_id}",
        )
        self.proc.start()

    def alive(self) -> bool:
        return self.proc.is_alive()

    def ready(self) -> bool:
        """True once the worker booted far enough to beat (imports done)."""
        return self.heartbeat.value > 0.0

    def stalled(self, now: float, timeout: Optional[float]) -> bool:
        """True when the heartbeat (or, pre-boot, the spawn clock) is
        older than ``timeout``."""
        if timeout is None:
            return False
        last = max(self.heartbeat.value, self.spawned_at)
        return now - last > timeout

    def reap(self) -> None:
        """Terminate (escalating to SIGKILL) and join the process."""
        if self.proc.is_alive():
            self.proc.terminate()
            self.proc.join(timeout=2.0)
        if self.proc.is_alive():  # pragma: no cover - stubborn process
            self.proc.kill()
            self.proc.join(timeout=2.0)
        for q in (self.task_q, self.result_q):
            try:
                q.close()
            except Exception:  # pragma: no cover - teardown best effort
                pass


@dataclass
class PoolRunOutcome:
    """What one :meth:`WorkerPool.run_cells` sweep produced."""

    #: (kernel, scheduler) -> RunResult, or None for a failed/quarantined
    #: cell (recorded in ``cache.failures``).
    results: Dict[Tuple[str, str], object] = field(default_factory=dict)
    #: Cells never attempted because the pool degraded; the caller runs
    #: them through the in-process sequential path.
    leftover: List[Tuple[str, str]] = field(default_factory=list)
    #: First non-quarantine simulation failure (raised by the caller
    #: unless keep_going).
    first_error: Optional[SimulationError] = None


class WorkerPool:
    """A persistent supervised pool of simulation worker processes.

    Construct once, :meth:`start` (or use as a context manager), then
    call :meth:`run_cells` any number of times — sweeps reuse the warm
    workers. ``probes`` objects implementing ``on_pool_event`` receive
    :class:`PoolEvent` telemetry synchronously from the supervision
    loop; every event is also appended to :attr:`events`.
    """

    def __init__(
        self,
        jobs: int,
        *,
        pool_config: Optional[PoolConfig] = None,
        probes: Sequence[object] = (),
    ) -> None:
        import multiprocessing

        self.jobs = max(1, int(jobs))
        self.cfg = pool_config or PoolConfig()
        self._ctx = multiprocessing.get_context()
        self._bus = ProbeBus(probes) if probes else None
        #: Full lifecycle event log (tests, CLI failure reports).
        self.events: List[PoolEvent] = []
        #: Replacement workers spawned so far (<= cfg.max_respawns).
        self.respawns = 0
        self.redispatches = 0
        #: Cells quarantined as PoisonCellError across this pool's life.
        self.quarantined: List[Tuple[str, str]] = []
        self._workers: Dict[int, _Worker] = {}
        self._next_worker_id = 0
        self._started = False
        #: (kernel, scheduler) -> last observed wall seconds (dispatch
        #: ordering when no checkpoint history exists).
        self._history: Dict[Tuple[str, str], float] = {}

    # -- lifecycle -----------------------------------------------------

    def start(self) -> "WorkerPool":
        """Spawn the workers (idempotent)."""
        if not self._started:
            for _ in range(self.jobs):
                self._spawn("spawn")
            self._started = True
        return self

    def wait_ready(self, timeout: float = 30.0) -> bool:
        """Block until every worker heartbeats (imports finished).

        Lets callers separate spawn/prewarm cost from steady-state sweep
        time — the bench harness times them apart. Returns False on
        timeout (slow machine; the pool still works, just colder).
        """
        self.start()
        deadline = time.monotonic() + timeout
        while time.monotonic() < deadline:
            if all(w.ready() for w in self._workers.values()):
                return True
            time.sleep(0.01)
        return False  # pragma: no cover - only on pathological machines

    def shutdown(self) -> None:
        """Stop and reap every worker (idempotent)."""
        if not self._workers and not self._started:
            return
        for worker in self._workers.values():
            try:
                worker.task_q.put_nowait(None)
            except Exception:  # pragma: no cover - queue already broken
                pass
        deadline = time.monotonic() + 2.0
        for worker in self._workers.values():
            worker.proc.join(timeout=max(0.0, deadline - time.monotonic()))
        for worker in list(self._workers.values()):
            worker.reap()
        self._workers.clear()
        self._started = False
        self._emit("shutdown")

    def __enter__(self) -> "WorkerPool":
        return self.start()

    def __exit__(self, *exc) -> None:
        self.shutdown()

    # -- internals -----------------------------------------------------

    def _emit(self, kind: str, *, worker_id: Optional[int] = None,
              kernel: Optional[str] = None, scheduler: Optional[str] = None,
              detail: str = "") -> None:
        event = PoolEvent(kind=kind, worker_id=worker_id, kernel=kernel,
                          scheduler=scheduler, detail=detail)
        self.events.append(event)
        if self._bus is not None:
            self._bus.pool_event(event)

    def _spawn(self, kind: str) -> _Worker:
        worker = _Worker(self._ctx, self._next_worker_id)
        self._next_worker_id += 1
        self._workers[worker.id] = worker
        self._emit(kind, worker_id=worker.id)
        return worker

    def _estimate(self, cache: ResultCache, task: _Task) -> float:
        """Expected wall seconds of a cell; unknown cells rank first
        (pessimistic — an unknown cell might be the sweep's longest)."""
        seen = self._history.get((task.kernel, task.scheduler))
        if seen is not None:
            return seen
        checkpoint = getattr(cache, "checkpoint", None)
        if checkpoint is not None:
            recorded = checkpoint.estimate_seconds(task.kernel,
                                                   task.scheduler)
            if recorded is not None:
                return recorded
        return float("inf")

    # -- the sweep -----------------------------------------------------

    def run_cells(
        self,
        cache: ResultCache,
        cells: Sequence[Tuple[str, str]],
        config: GPUConfig,
        scale: float = 1.0,
        *,
        outcomes: Optional[list] = None,
    ) -> PoolRunOutcome:
        """Run every cell through the pool, adopting results into
        ``cache`` (single writer) as they stream back.

        Mirrors the executor path's contract: all cells are driven to an
        outcome (result, recorded failure, or quarantine) before
        returning; the caller decides whether ``first_error`` aborts the
        sweep. Raises :class:`~repro.errors.SimulationInterrupted` when
        ``cache.request_stop()`` fires mid-sweep — workers are torn down
        and already-adopted cells stay checkpointed.
        """
        # Local import: parallel imports this module at top level.
        from .parallel import CellOutcome

        self.start()
        run = _SweepState(self, cache, config, scale, outcomes,
                          CellOutcome)
        for index, (kernel, scheduler) in enumerate(cells):
            run.pending.append(_Task(seq=index, kernel=kernel,
                                     scheduler=scheduler))
        # Longest-estimated-first; unknown (inf) cells lead, ties keep
        # submission order.
        run.pending.sort(
            key=lambda t: (-self._estimate(cache, t), t.seq)
        )
        while run.pending or run.in_flight():
            if getattr(cache, "interrupted", False):
                self._interrupt(run)
            progressed = run.drain()
            progressed |= run.supervise()
            if not self._workers:
                # Respawn budget exhausted and the last worker is gone:
                # degrade to the in-process path instead of aborting.
                leftover = [
                    (t.kernel, t.scheduler)
                    for t in sorted(run.pending, key=lambda t: t.seq)
                ]
                run.pending.clear()
                self._emit(
                    "degrade",
                    detail=(
                        f"respawn budget exhausted "
                        f"({self.cfg.max_respawns}); "
                        f"{len(leftover)} cell(s) fall back to the "
                        "in-process sequential path"
                    ),
                )
                run.outcome.leftover = leftover
                return run.outcome
            progressed |= run.dispatch()
            if not progressed:
                self._wait_for_results(self.cfg.poll_interval)
        return run.outcome

    def _wait_for_results(self, timeout: float) -> None:
        """Block until some worker result pipe is readable (or timeout).

        Event-driven wakeup keeps per-cell latency at pipe speed instead
        of poll granularity; the timeout bounds the wait so supervision
        (deadlines, heartbeats, interrupts) still runs on schedule. Falls
        back to a plain sleep if the queue internals ever change.
        """
        import multiprocessing.connection as mpc

        try:
            readers = [
                w.result_q._reader for w in self._workers.values()
                if w.current is not None
            ]
        except AttributeError:  # pragma: no cover - exotic mp backend
            readers = []
        if readers:
            try:
                mpc.wait(readers, timeout=timeout)
                return
            except OSError:  # pragma: no cover - pipe died under us
                pass
        time.sleep(timeout)

    def _interrupt(self, run: "_SweepState") -> None:
        """Tear the pool down after a cooperative stop and unwind."""
        outstanding = len(run.pending) + sum(
            1 for w in self._workers.values() if w.current is not None
        )
        for worker in list(self._workers.values()):
            worker.reap()
        self._workers.clear()
        self._started = False
        raise SimulationInterrupted(
            f"parallel sweep interrupted: {run.completed} cell(s) "
            f"completed, {outstanding} outstanding (checkpointed cells "
            "are kept; re-run the same command to resume)"
        )


class _SweepState:
    """Mutable state of one :meth:`WorkerPool.run_cells` sweep."""

    def __init__(self, pool: WorkerPool, cache: ResultCache,
                 config: GPUConfig, scale: float,
                 outcomes: Optional[list], outcome_cls) -> None:
        self.pool = pool
        self.cache = cache
        self.config = config
        self.scale = scale
        self.outcomes = outcomes
        self.outcome_cls = outcome_cls
        self.pending: List[_Task] = []
        self.outcome = PoolRunOutcome()
        self.completed = 0

    def in_flight(self) -> bool:
        return any(
            w.current is not None for w in self.pool._workers.values()
        )

    # -- receiving results ---------------------------------------------

    def drain(self) -> bool:
        """Consume every ready worker result; True if any arrived."""
        progressed = False
        for worker in list(self.pool._workers.values()):
            progressed |= self._drain_one(worker)
        return progressed

    def _drain_one(self, worker: _Worker) -> bool:
        try:
            seq, payload = worker.result_q.get_nowait()
        except queue_mod.Empty:
            return False
        except Exception:
            # A torn/unpicklable message: per-worker result queues keep
            # the damage contained — treat the worker as corrupt.
            self.pool._emit(
                "corrupt-payload", worker_id=worker.id,
                kernel=worker.current.kernel if worker.current else None,
                scheduler=(worker.current.scheduler
                           if worker.current else None),
                detail="unreadable result stream",
            )
            self._lose_worker(worker, "worker-death",
                              "result stream corrupt")
            return True
        task = worker.current
        worker.current = None
        if task is None or task.seq != seq:  # pragma: no cover - defensive
            return True
        problem = self._validate(payload)
        if problem is not None:
            self.pool._emit(
                "corrupt-payload", worker_id=worker.id,
                kernel=task.kernel, scheduler=task.scheduler,
                detail=problem,
            )
            self._retry_or_quarantine(task, "corrupt-payload", problem)
            return True
        self._adopt(task, payload)
        return True

    def _validate(self, payload: object) -> Optional[str]:
        """Schema + digest check; returns a defect description or None."""
        if not isinstance(payload, dict):
            return f"payload is {type(payload).__name__}, expected dict"
        if payload.get("failure") is not None:
            failure = payload["failure"]
            if not isinstance(failure, dict) or "type" not in failure:
                return "failure record malformed"
            return None
        result_json = payload.get("result")
        try:
            result_from_json(result_json)  # full structural validation
        except PayloadError as err:
            return err.headline
        if payload.get("digest") != payload_digest(result_json):
            return "payload digest mismatch (truncated or corrupt result)"
        return None

    def _adopt(self, task: _Task, payload: dict) -> None:
        """Stream one validated worker outcome into the parent cache."""
        cache, pool = self.cache, self.pool
        seconds = float(payload.get("seconds") or 0.0)
        pool._history[(task.kernel, task.scheduler)] = seconds
        cache.runs_executed += 1
        self.completed += 1
        if self.outcomes is not None:
            self.outcomes.append(self.outcome_cls(
                task.kernel, task.scheduler, seconds, False
            ))
        key = (task.kernel, task.scheduler)
        if payload["failure"] is not None:
            error = rebuild_error(payload["failure"])
            cache.failures.append(CellFailure(
                kernel=task.kernel, scheduler=task.scheduler,
                scale=self.scale,
                attempts=int(payload["failure"].get("attempts", 1)),
                error=error,
            ))
            self.outcome.results[key] = None
            if self.outcome.first_error is None:
                self.outcome.first_error = error
            return
        result = result_from_json(payload["result"])
        cache.adopt(task.kernel, task.scheduler, self.config, self.scale,
                    result, seconds=seconds)
        self.outcome.results[key] = result

    # -- supervision ----------------------------------------------------

    def supervise(self) -> bool:
        """Reap dead / deadline-blown / heartbeat-stale workers."""
        cfg = self.pool.cfg
        now = time.monotonic()
        progressed = False
        for worker in list(self.pool._workers.values()):
            if not worker.alive():
                # One last drain: the result may have been flushed just
                # before death.
                if self._drain_one(worker):
                    progressed = True
                code = worker.proc.exitcode
                self._lose_worker(worker, "worker-death",
                                  f"exit code {code}")
                progressed = True
            elif (worker.current is not None
                  and cfg.worker_deadline is not None
                  and now - worker.dispatched_at > cfg.worker_deadline):
                if self._drain_one(worker):  # beat the reaper by a hair
                    progressed = True
                    continue
                self._lose_worker(
                    worker, "deadline",
                    f"cell exceeded the {cfg.worker_deadline:g}s worker "
                    "deadline",
                )
                progressed = True
            elif worker.stalled(now, cfg.heartbeat_timeout):
                self._lose_worker(
                    worker, "heartbeat-lost",
                    f"no heartbeat for {cfg.heartbeat_timeout:g}s",
                )
                progressed = True
        return progressed

    def _lose_worker(self, worker: _Worker, kind: str,
                     detail: str) -> None:
        """Reap one worker, respawn within budget, requeue its cell."""
        pool = self.pool
        task = worker.current
        worker.current = None
        pool._emit(
            kind, worker_id=worker.id,
            kernel=task.kernel if task else None,
            scheduler=task.scheduler if task else None,
            detail=detail,
        )
        worker.reap()
        pool._workers.pop(worker.id, None)
        if pool.respawns < pool.cfg.max_respawns:
            pool.respawns += 1
            pool._spawn("respawn")
        if task is not None:
            self._retry_or_quarantine(task, kind, detail)

    def _retry_or_quarantine(self, task: _Task, kind: str,
                             detail: str) -> None:
        pool, cfg = self.pool, self.pool.cfg
        task.attempts += 1
        if task.attempts >= cfg.max_cell_attempts:
            error = PoisonCellError(
                f"cell {task.kernel}/{task.scheduler} destroyed its "
                f"worker {task.attempts} time(s) (last: {kind}: {detail})"
                "; quarantined",
                fault_kind=kind, attempts=task.attempts,
            )
            self.cache.failures.append(CellFailure(
                kernel=task.kernel, scheduler=task.scheduler,
                scale=self.scale, attempts=task.attempts, error=error,
            ))
            self.outcome.results[(task.kernel, task.scheduler)] = None
            pool.quarantined.append((task.kernel, task.scheduler))
            pool._emit("quarantine", kernel=task.kernel,
                       scheduler=task.scheduler,
                       detail=f"after {task.attempts} attempt(s): {kind}")
            if self.outcome.first_error is None:
                self.outcome.first_error = error
            return
        delay = min(cfg.backoff_max,
                    cfg.backoff_base * (2 ** (task.attempts - 1)))
        task.ready_at = time.monotonic() + delay
        pool.redispatches += 1
        # Keep longest-first order: reinsert by estimate.
        estimate = pool._estimate(self.cache, task)
        position = 0
        for position, queued in enumerate(self.pending):  # noqa: B007
            if pool._estimate(self.cache, queued) <= estimate:
                break
        else:
            position = len(self.pending)
        self.pending.insert(position, task)
        pool._emit("redispatch", kernel=task.kernel,
                   scheduler=task.scheduler,
                   detail=f"attempt {task.attempts + 1} in {delay:.2f}s "
                          f"(after {kind})")

    # -- dispatch --------------------------------------------------------

    def dispatch(self) -> bool:
        """Hand ready cells to idle workers; True if any were sent."""
        pool = self.pool
        now = time.monotonic()
        progressed = False
        for worker in pool._workers.values():
            if worker.current is not None or not worker.alive():
                continue
            task = self._next_ready(now)
            if task is None:
                break
            inject = None
            faults = getattr(self.cache, "faults", None)
            if faults is not None:
                inject = faults.pop_worker_fault(task.kernel,
                                                 task.scheduler)
            worker.task_q.put((
                task.seq, task.kernel, task.scheduler, self.config,
                self.scale, self.cache.policy, inject,
            ))
            worker.current = task
            worker.dispatched_at = now
            if inject is not None:
                pool._emit("inject", worker_id=worker.id,
                           kernel=task.kernel, scheduler=task.scheduler,
                           detail=inject)
            pool._emit("dispatch", worker_id=worker.id,
                       kernel=task.kernel, scheduler=task.scheduler)
            progressed = True
        return progressed

    def _next_ready(self, now: float) -> Optional[_Task]:
        """Pop the highest-priority cell whose backoff has elapsed."""
        for index, task in enumerate(self.pending):
            if task.ready_at <= now:
                return self.pending.pop(index)
        return None
