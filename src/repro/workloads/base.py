"""Workload model base: per-kernel specs, divergence helpers, registry."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List

from ..errors import WorkloadError
from ..gpu.launch import KernelLaunch
from ..isa.patterns import Coalesced
from ..isa.program import Program

_MASK64 = (1 << 64) - 1


def _mix(x: int) -> int:
    """SplitMix64 finalizer (same family as repro.isa.patterns)."""
    x = (x + 0x9E3779B97F4A7C15) & _MASK64
    x = ((x ^ (x >> 30)) * 0xBF58476D1CE4E5B9) & _MASK64
    x = ((x ^ (x >> 27)) * 0x94D049BB133111EB) & _MASK64
    return x ^ (x >> 31)


def divergent_trips(base: int, spread: int, *, seed: int = 0) -> Callable[[int, int], int]:
    """Per-warp loop trip counts in ``[base, base + spread)``.

    Deterministic pseudo-random function of (tb_index, warp_in_tb) — the
    standard way these models inject *warp-level divergence* (paper §II-B:
    warps of a TB taking different amounts of time due to unequal work).
    ``spread == 1`` yields uniform (divergence-free) trips.
    """
    if base < 1 or spread < 1:
        raise WorkloadError("divergent_trips requires base >= 1, spread >= 1")

    def trips(tb: int, w: int) -> int:
        return base + _mix(seed * 0x9E3779B9 + tb * 64 + w) % spread

    return trips


def divergent_active(lo: int, hi: int, *, seed: int = 0) -> Callable[[int, int], int]:
    """Per-warp active-thread counts in ``[lo, hi]`` (branch divergence)."""
    if not 1 <= lo <= hi <= 32:
        raise WorkloadError("divergent_active requires 1 <= lo <= hi <= 32")
    span = hi - lo + 1

    def active(tb: int, w: int) -> int:
        return lo + _mix(seed * 0x85EBCA6B + tb * 64 + w) % span

    return active


def tb_skewed_trips(base: int, spread: int, *, period: int = 7, seed: int = 0) -> Callable[[int, int], int]:
    """Trip counts that vary per *TB* (inter-TB runtime variance).

    All warps of a TB share the count, so this creates unequal TB
    durations (the paper's SM-residency discussion, §II-C) without
    intra-TB divergence.
    """
    if base < 1 or spread < 1 or period < 1:
        raise WorkloadError("tb_skewed_trips requires positive parameters")

    def trips(tb: int, w: int) -> int:
        return base + _mix(seed * 0xC2B2AE35 + (tb % period)) % spread

    return trips


def stream(base: int, iters: int, *, line: int = 128) -> Coalesced:
    """Coalesced *streaming* pattern: each warp walks its own contiguous
    block of ``iters`` lines.

    This is the blocked data layout real streaming kernels use (each warp
    owns a contiguous slice): consecutive iterations of one warp are
    row-buffer friendly, and different warps/TBs touch disjoint lines (no
    accidental cross-TB cache aliasing). The per-warp region is rounded up
    to the 2 KB DRAM row so warps do not split rows.
    """
    if iters < 1:
        raise WorkloadError("stream iters must be >= 1")
    region = ((iters * line + 2047) // 2048) * 2048
    return Coalesced(base=base, iter_stride=line, warp_region=region)


@dataclass(frozen=True)
class KernelModel:
    """One Table II kernel: metadata plus a program factory.

    Attributes
    ----------
    name:
        Kernel name exactly as in Table II (e.g. ``"scalarProdGPU"``).
    app:
        Application the kernel belongs to (Table II column 1) — the unit
        at which the paper reports stall statistics (Fig. 5, Table III).
    suite:
        ``"gpgpusim"``, ``"rodinia"`` or ``"cudasdk"``.
    paper_tbs:
        Grid size in the paper (Table II column 3).
    model_tbs:
        Grid size used by the scaled experiments (scale=1.0). Chosen to
        preserve the paper ratio of grid size to resident capacity on the
        4-SM experiment config; documented per kernel.
    builder:
        Zero-argument factory returning a fresh :class:`Program`.
    notes:
        What the real kernel does and which characteristics the model
        preserves (docs + DESIGN inventory).
    """

    name: str
    app: str
    suite: str
    paper_tbs: int
    model_tbs: int
    builder: Callable[[], Program]
    notes: str = ""

    def build_program(self) -> Program:
        """Fresh program instance (programs hold resolved latencies, so
        each launch gets its own)."""
        return self.builder()

    def scaled_tbs(self, scale: float = 1.0) -> int:
        """TB count at the given scale (>= 4 so every run is meaningful)."""
        if scale <= 0:
            raise WorkloadError("scale must be positive")
        return max(4, round(self.model_tbs * scale))

    def build_launch(self, scale: float = 1.0) -> KernelLaunch:
        """A ready-to-run :class:`KernelLaunch` at the given scale."""
        return KernelLaunch(self.build_program(), self.scaled_tbs(scale))


_REGISTRY: Dict[str, KernelModel] = {}


def register_kernel(model: KernelModel) -> KernelModel:
    """Add a kernel model to the global registry (name must be unique)."""
    if model.name in _REGISTRY:
        raise WorkloadError(f"kernel {model.name!r} already registered")
    _REGISTRY[model.name] = model
    return model


def get_kernel(name: str) -> KernelModel:
    """Look up a kernel by its Table II name."""
    try:
        return _REGISTRY[name]
    except KeyError:
        raise WorkloadError(
            f"unknown kernel {name!r}; available: {sorted(_REGISTRY)}"
        ) from None


def all_kernels() -> List[KernelModel]:
    """All 25 kernel models in Table II order (registration order)."""
    return list(_REGISTRY.values())


def applications() -> List[str]:
    """Distinct application names, in Table II order."""
    seen: List[str] = []
    for m in _REGISTRY.values():
        if m.app not in seen:
            seen.append(m.app)
    return seen


def kernels_of_app(app: str) -> List[KernelModel]:
    """All kernels belonging to one application."""
    out = [m for m in _REGISTRY.values() if m.app == app]
    if not out:
        raise WorkloadError(f"unknown application {app!r}")
    return out


#: Fermi (GTX 480, paper Table I) per-TB thread limit — distinct from
#: the per-SM thread limit the occupancy calculation enforces.
FERMI_MAX_THREADS_PER_TB = 1024


def validate_registry() -> List[str]:
    """Cross-kernel invariants of the Table II registry.

    Returns a list of violation descriptions (empty = healthy). The
    fidelity expectations anchor to kernels by name, so the registry's
    integrity — unique resolvable names, app partitioning, launchable
    resource specs on the paper's GPU — is itself a checked artifact
    rather than an assumption.
    """
    from ..config import GPUConfig
    from ..simt.occupancy import max_resident_tbs

    problems: List[str] = []
    models = all_kernels()
    cfg = GPUConfig.gtx480()

    for key, m in _REGISTRY.items():
        if key != m.name:
            problems.append(f"registry key {key!r} != model name {m.name!r}")
        if get_kernel(m.name) is not m:
            problems.append(f"{m.name}: get_kernel resolves a different model")
        if m.paper_tbs < 1 or m.model_tbs < 1:
            problems.append(
                f"{m.name}: grid sizes must be positive "
                f"(paper_tbs={m.paper_tbs}, model_tbs={m.model_tbs})"
            )
        try:
            prog = m.build_program()
        except Exception as err:  # noqa: BLE001 — collected, not raised
            problems.append(f"{m.name}: builder failed: {err}")
            continue
        if prog.name != m.name:
            problems.append(
                f"{m.name}: program is named {prog.name!r}"
            )
        if prog.threads_per_tb > FERMI_MAX_THREADS_PER_TB:
            problems.append(
                f"{m.name}: {prog.threads_per_tb} threads/TB exceeds the "
                f"Fermi per-TB limit of {FERMI_MAX_THREADS_PER_TB}"
            )
        try:
            max_resident_tbs(prog, cfg)
        except Exception as err:  # noqa: BLE001
            problems.append(f"{m.name}: does not fit the paper GPU: {err}")

    # applications() / kernels_of_app must partition the registry.
    covered: List[str] = []
    for app in applications():
        covered.extend(m.name for m in kernels_of_app(app))
    if sorted(covered) != sorted(m.name for m in models):
        problems.append(
            "kernels_of_app over applications() does not partition "
            f"all_kernels(): {sorted(covered)} vs "
            f"{sorted(m.name for m in models)}"
        )
    return problems
