"""RLWS — Reinforcement Learning based Warp Scheduler (Anantpur et al.).

A reproduction-scale take on RLWS (arXiv:1712.04303, by the PRO author):
the scheduler is a tabular Q-learner whose *state* is a discretized view
of the signals this simulator already exposes to probes — ready-warp
count, the dominant stall class of the recent window, and pending-memory
depth (MSHR occupancy) — and whose *actions* are warp-ordering policies.
Every ``quantum`` cycles the scheduler observes the state, picks the
highest-valued action (greedily at inference; epsilon-greedily while
training) and serves that ordering until the next decision point. The
reward is the issue throughput achieved during the quantum (RLWS's
reward is IPC), credited with a standard TD(0) update when learning is
enabled.

The Q-table is an offline artifact: :func:`load_default_table` reads the
versioned JSON packaged at ``data/rlws_qtable.json`` (overridable via the
``REPRO_RLWS_QTABLE`` environment variable, which is how the parallel
training sweep ships candidate tables to worker processes). Inference
runs never mutate the table, so simulations stay deterministic;
training runs (see :mod:`repro.core.rlws_train`) share one mutable
:class:`QTable` across episodes.

State, action, reward and every piece of bookkeeping are plain data, so
``rlws`` honors the full stateful-component contract: ``snapshot()`` /
``restore()`` round-trips mid-run bit-exactly (Q-table included) and the
scheduler runs unchanged inside worker processes.
"""

from __future__ import annotations

import json
import os
from bisect import bisect_right
from pathlib import Path
from typing import Dict, List, Optional, Sequence

from ..errors import ReproError
from .scheduler import WarpScheduler, register_scheduler

#: Ordering policies the learner chooses between (the action space).
ACTIONS = (
    "oldest",          # strict age order (OF)
    "youngest",        # reverse age order
    "most-progress",   # descending warp progress (stagger leaders ahead)
    "least-progress",  # ascending warp progress (drag stragglers)
    "round-robin",     # rotating start after the last issued warp (LRR)
    "greedy-oldest",   # last issued warp first, then age order (GTO)
)

#: Feature discretization: right-open bucket upper bounds.
READY_BUCKETS = (1, 2, 4, 8)    # 0 | 1 | 2-3 | 4-7 | 8+
MEM_BUCKETS = (1, 3, 7)         # 0 | 1-2 | 3-6 | 7+
#: Dominant-stall feature values (index = code).
STALL_CLASSES = ("none", "idle", "scoreboard", "pipeline")

ARTIFACT_SCHEMA = 1
DATA_PATH = Path(__file__).parent / "data" / "rlws_qtable.json"
#: Environment override for the Q-table artifact — the training sweep's
#: channel for shipping candidate tables into worker processes.
ENV_TABLE = "REPRO_RLWS_QTABLE"

_MASK64 = (1 << 64) - 1


def _mix(x: int) -> int:
    """SplitMix64 finalizer: the deterministic exploration hash."""
    x = (x + 0x9E3779B97F4A7C15) & _MASK64
    x = ((x ^ (x >> 30)) * 0xBF58476D1CE4E5B9) & _MASK64
    x = ((x ^ (x >> 27)) * 0x94D049BB133111EB) & _MASK64
    return x ^ (x >> 31)


class QTableError(ReproError):
    """Malformed or unreadable Q-table artifact."""


class QTable:
    """Tabular state -> action-value store with artifact (de)serialization.

    States are ``"r.s.m"`` keys (ready bucket, stall class code, memory
    bucket); values are ``len(ACTIONS)`` floats. Unvisited states answer
    with ``default_q`` — a prior that ranks the GTO-like ordering first,
    so an untrained table already behaves like a sane baseline.
    """

    def __init__(
        self,
        q: Optional[Dict[str, List[float]]] = None,
        *,
        default_q: Optional[List[float]] = None,
        alpha: float = 0.10,
        gamma: float = 0.90,
        epsilon: float = 0.08,
        quantum: int = 24,
        version: str = "untrained",
    ) -> None:
        self.q: Dict[str, List[float]] = {k: list(v) for k, v in (q or {}).items()}
        # Prior: greedy-oldest slightly above oldest, everything else flat.
        self.default_q = list(default_q) if default_q is not None else [
            0.05, 0.0, 0.0, 0.0, 0.0, 0.10,
        ]
        if len(self.default_q) != len(ACTIONS):
            raise QTableError(
                f"default_q needs {len(ACTIONS)} entries, got "
                f"{len(self.default_q)}"
            )
        for key, row in self.q.items():
            if len(row) != len(ACTIONS):
                raise QTableError(
                    f"state {key!r} has {len(row)} action values, "
                    f"expected {len(ACTIONS)}"
                )
        self.alpha = alpha
        self.gamma = gamma
        self.epsilon = epsilon
        self.quantum = quantum
        self.version = version

    # -- lookups -------------------------------------------------------

    def row(self, state: str) -> List[float]:
        """The mutable action-value row for ``state`` (created on demand)."""
        r = self.q.get(state)
        if r is None:
            r = list(self.default_q)
            self.q[state] = r
        return r

    def values(self, state: str) -> List[float]:
        """Read-only action values (no row materialization)."""
        return self.q.get(state, self.default_q)

    def best_action(self, state: str) -> int:
        """Greedy argmax with deterministic lowest-index tie-breaking."""
        vals = self.values(state)
        best, best_v = 0, vals[0]
        for i in range(1, len(vals)):
            if vals[i] > best_v:
                best, best_v = i, vals[i]
        return best

    def update(self, state: str, action: int, reward: float,
               next_state: str) -> None:
        """One TD(0) backup: ``Q[s,a] += a*(r + g*maxQ[s'] - Q[s,a])``."""
        row = self.row(state)
        target = reward + self.gamma * max(self.values(next_state))
        row[action] += self.alpha * (target - row[action])

    # -- artifact (de)serialization ------------------------------------

    def to_json(self) -> dict:
        return {
            "schema": ARTIFACT_SCHEMA,
            "version": self.version,
            "actions": list(ACTIONS),
            "features": {
                "ready_buckets": list(READY_BUCKETS),
                "mem_buckets": list(MEM_BUCKETS),
                "stall_classes": list(STALL_CLASSES),
            },
            "alpha": self.alpha,
            "gamma": self.gamma,
            "epsilon": self.epsilon,
            "quantum": self.quantum,
            "default_q": list(self.default_q),
            "q": {k: list(v) for k, v in sorted(self.q.items())},
        }

    @classmethod
    def from_json(cls, data: dict, source: str = "<data>") -> "QTable":
        if data.get("schema") != ARTIFACT_SCHEMA:
            raise QTableError(
                f"{source}: Q-table schema {data.get('schema')!r} != "
                f"{ARTIFACT_SCHEMA}"
            )
        if tuple(data.get("actions", ())) != ACTIONS:
            raise QTableError(
                f"{source}: action set {data.get('actions')!r} does not "
                f"match this simulator's {list(ACTIONS)}"
            )
        if data.get("quantum", 1) <= 0:
            raise QTableError(f"{source}: quantum must be positive")
        return cls(
            q=data.get("q", {}),
            default_q=data.get("default_q"),
            alpha=data.get("alpha", 0.10),
            gamma=data.get("gamma", 0.90),
            epsilon=data.get("epsilon", 0.08),
            quantum=data.get("quantum", 24),
            version=data.get("version", "unversioned"),
        )

    def save(self, path: str | Path) -> Path:
        path = Path(path)
        path.write_text(json.dumps(self.to_json(), indent=1) + "\n",
                        encoding="utf-8")
        return path

    @classmethod
    def load(cls, path: str | Path) -> "QTable":
        path = Path(path)
        try:
            data = json.loads(path.read_text(encoding="utf-8"))
        except FileNotFoundError:
            raise QTableError(f"Q-table artifact not found: {path}") from None
        except json.JSONDecodeError as err:
            raise QTableError(f"{path} is not JSON: {err}") from None
        return cls.from_json(data, source=str(path))


#: Process-wide cache of the default artifact: (resolved path, table).
_DEFAULT_CACHE: Optional[tuple] = None


def load_default_table() -> QTable:
    """The packaged Q-table artifact (or the ``REPRO_RLWS_QTABLE`` one).

    Loaded once per process and shared read-only between scheduler
    instances — inference never mutates it.
    """
    global _DEFAULT_CACHE
    path = os.environ.get(ENV_TABLE) or DATA_PATH
    if _DEFAULT_CACHE is not None and _DEFAULT_CACHE[0] == str(path):
        return _DEFAULT_CACHE[1]
    table = QTable.load(path)
    _DEFAULT_CACHE = (str(path), table)
    return table


class RlwsScheduler(WarpScheduler):
    """Q-learning warp scheduler over ProbeBus-grade state features."""

    name = "rlws"

    def __init__(self, sm, sched_id, cfg, *, table: Optional[QTable] = None,
                 learn: bool = False) -> None:
        super().__init__(sm, sched_id, cfg)
        self.table = table if table is not None else load_default_table()
        self.learn = learn
        self.quantum = self.table.quantum
        #: Cycle at/after which the next decision fires.
        self._next_decision = 0
        #: Current action index (the ordering being served).
        self._action = self.table.best_action("0.0.0")
        #: State the current action was chosen in (TD backup source).
        self._state: Optional[str] = None
        #: Instructions issued since the last decision (the reward signal).
        self._issued = 0
        #: Stall-counter values at the last decision (delta -> stall mix).
        self._prev_stall = (0, 0, 0)
        #: Round-robin start index (actions "round-robin").
        self._rr = 0
        #: Last issued warp (action "greedy-oldest").
        self._greedy = None
        #: Cached priority order served until the next decision/rebuild.
        self._order: List = []
        self._dirty = True

    # -- feature extraction --------------------------------------------

    def _observe(self, cycle: int) -> str:
        """Discretized state key ``"ready.stall.mem"`` at ``cycle``."""
        ready = 0
        for w in self.warps:
            if w.finished or w.at_barrier or cycle < w.next_valid_cycle:
                continue
            pending = w.scoreboard._pending
            if pending:
                instr = w.instructions[w.pc]
                dst = instr.dst
                if (dst is not None and dst in pending) or not (
                    pending.isdisjoint(instr.srcs)
                ):
                    continue
            ready += 1
        c = self.sm.counters
        idle, sb, pipe = (c.stall_idle, c.stall_scoreboard, c.stall_pipeline)
        p_idle, p_sb, p_pipe = self._prev_stall
        deltas = (idle - p_idle, sb - p_sb, pipe - p_pipe)
        self._prev_stall = (idle, sb, pipe)
        if max(deltas) <= 0:
            stall = 0
        else:
            # 1=idle, 2=scoreboard, 3=pipeline; ties resolve to the
            # first (deterministic).
            stall = 1 + deltas.index(max(deltas))
        mshr = self.sm.memory.mshr[self.sm.sm_id]
        depth = mshr.occupancy(cycle)["in_flight"]
        return (f"{bisect_right(READY_BUCKETS, ready)}.{stall}."
                f"{bisect_right(MEM_BUCKETS, depth)}")

    # -- ordering ------------------------------------------------------

    def _rebuild(self) -> None:
        """Render the current action into a concrete warp order."""
        warps = self.warps
        action = self._action
        if action == 0:      # oldest
            order = list(warps)
        elif action == 1:    # youngest
            order = list(reversed(warps))
        elif action == 2:    # most-progress
            order = sorted(warps, key=lambda w: -w.progress)
        elif action == 3:    # least-progress
            order = sorted(warps, key=lambda w: w.progress)
        elif action == 4:    # round-robin
            start = self._rr % len(warps) if warps else 0
            order = warps[start:] + warps[:start]
        else:                # greedy-oldest
            g = self._greedy
            if g is None or g.finished or g not in warps:
                order = list(warps)
            else:
                order = [g] + [w for w in warps if w is not g]
        self._order = order
        self._dirty = False

    def order(self, cycle: int) -> Sequence:
        if cycle >= self._next_decision:
            self._decide(cycle)
        elif self._dirty:
            self._rebuild()
        return self._order

    def _decide(self, cycle: int) -> None:
        state = self._observe(cycle)
        if self.learn and self._state is not None:
            reward = self._issued / self.quantum
            self.table.update(self._state, self._action, reward, state)
        if self.learn:
            h = _mix((cycle << 16) ^ (self.sm.sm_id << 8) ^ self.sched_id)
            if (h % 10_000) / 10_000.0 < self.table.epsilon:
                action = (h >> 32) % len(ACTIONS)
            else:
                action = self.table.best_action(state)
        else:
            action = self.table.best_action(state)
        self._state = state
        self._action = action
        self._issued = 0
        self._next_decision = cycle + self.quantum
        self._rebuild()

    def note_issued(self, warp, cycle: int) -> None:
        self._issued += 1
        self._greedy = warp
        try:
            self._rr = self.warps.index(warp) + 1
        except ValueError:  # warp finished on this very issue (EXIT)
            self._rr = 0

    # -- pool maintenance ----------------------------------------------

    def on_tb_assigned(self, tb, cycle: int) -> None:
        super().on_tb_assigned(tb, cycle)
        self._dirty = True

    def on_warp_finished(self, warp, cycle: int) -> None:
        if warp.sched_id != self.sched_id:
            return
        idx = None
        try:
            idx = self.warps.index(warp)
        except ValueError:  # pragma: no cover - defensive
            pass
        super().on_warp_finished(warp, cycle)
        if self._greedy is warp:
            self._greedy = None
        # Keep the round-robin point stable across removals (LRR rule).
        if idx is not None and idx < self._rr:
            self._rr -= 1
        self._dirty = True

    # -- state serialization -------------------------------------------

    def snapshot(self) -> dict:
        data = super().snapshot()
        g = self._greedy
        data.update({
            # Full Q-table state: restore must not depend on the artifact
            # on disk (which may have changed since the run started).
            "qtable": self.table.to_json(),
            "learn": self.learn,
            "next_decision": self._next_decision,
            "action": self._action,
            "state": self._state,
            "issued": self._issued,
            "prev_stall": list(self._prev_stall),
            "rr": self._rr,
            "greedy": None if g is None or g.finished else self.warp_ref(g),
            # Served order: live warps only (finished warps are skipped
            # by the SM scan with no side effects, so dropping them is
            # behavior-preserving and keeps every ref resolvable).
            "order": [self.warp_ref(w) for w in self._order
                      if not w.finished],
            "dirty": self._dirty,
        })
        return data

    def restore(self, data: dict, warp_map) -> None:
        super().restore(data, warp_map)
        self.table = QTable.from_json(data["qtable"], source="<snapshot>")
        self.learn = data["learn"]
        self.quantum = self.table.quantum
        self._next_decision = data["next_decision"]
        self._action = data["action"]
        self._state = data["state"]
        self._issued = data["issued"]
        self._prev_stall = tuple(data["prev_stall"])
        self._rr = data["rr"]
        g = data["greedy"]
        self._greedy = None if g is None else warp_map[tuple(g)]
        self._order = [warp_map[tuple(r)] for r in data["order"]]
        self._dirty = data["dirty"]


def make_rlws_factory(*, table: Optional[QTable] = None, learn: bool = False):
    """Registry factory for RLWS.

    Without arguments this is the inference configuration: every
    scheduler instance shares the (frozen) default artifact. A training
    loop passes its own mutable ``table`` (shared across instances and
    episodes) with ``learn=True``.
    """

    def factory(sm, cfg):
        return [
            RlwsScheduler(sm, i, cfg, table=table, learn=learn)
            for i in range(cfg.num_schedulers)
        ]

    return factory


register_scheduler("rlws", make_rlws_factory())
