"""Execution unit issue ports.

Each SM owns a pool of issue ports: ``sp_units`` SP ports, ``sfu_units``
SFU ports and ``lsu_units`` LSU ports. Issuing an instruction occupies one
port of its class for the instruction's *initiation interval* (1 cycle for
simple ALU ops, several for SFU ops, one cycle per memory transaction for
loads/stores). A warp whose instruction is operand-ready but finds all
ports of its class busy contributes a **Pipeline** stall — the third stall
class of the paper's Fig. 1.
"""

from __future__ import annotations

from typing import List, Optional

from ..config import GPUConfig
from ..isa.instructions import ExecUnit

#: Initiation interval (port-busy cycles) per unit class for single-
#: transaction instructions. SFU throughput is a quarter of SP on Fermi.
_BASE_II = {ExecUnit.SP: 1, ExecUnit.SFU: 4, ExecUnit.LSU: 1}


class ExecUnitPool:
    """Issue-port availability tracking for one SM."""

    __slots__ = ("_free_at", "_counts")

    def __init__(self, cfg: GPUConfig) -> None:
        self._counts = {
            ExecUnit.SP: cfg.sp_units,
            ExecUnit.SFU: cfg.sfu_units,
            ExecUnit.LSU: cfg.lsu_units,
        }
        #: unit -> list of cycle-stamps when each port frees up.
        self._free_at: dict[ExecUnit, List[int]] = {
            unit: [0] * n for unit, n in self._counts.items()
        }

    # ------------------------------------------------------------------
    def port_available(self, unit: ExecUnit, cycle: int) -> bool:
        """True if some port of ``unit``'s class is free at ``cycle``."""
        if unit is ExecUnit.NONE:
            return True
        for t in self._free_at[unit]:
            if t <= cycle:
                return True
        return False

    def occupy(self, unit: ExecUnit, cycle: int, interval: int) -> None:
        """Occupy the first free port of the class for ``interval`` cycles."""
        if unit is ExecUnit.NONE:
            return
        ports = self._free_at[unit]
        for i, t in enumerate(ports):
            if t <= cycle:
                ports[i] = cycle + max(1, interval)
                return
        raise AssertionError(  # pragma: no cover - caller checks first
            f"occupy() with no free {unit.name} port at cycle {cycle}"
        )

    def initiation_interval(self, unit: ExecUnit, transactions: int = 1) -> int:
        """Port-busy cycles: base II scaled by transaction count (LSU)."""
        base = _BASE_II.get(unit, 1)
        if unit is ExecUnit.LSU:
            return max(1, transactions)
        return base

    def next_free(self, cycle: int) -> Optional[int]:
        """Earliest future cycle at which any currently-busy port frees.

        Returns ``None`` when every port is already free (no pipeline
        back-pressure to wait on). Used for stall fast-forwarding.
        """
        best: Optional[int] = None
        for ports in self._free_at.values():
            for t in ports:
                if t > cycle and (best is None or t < best):
                    best = t
        return best

    def reset(self) -> None:
        """Free all ports (between kernels)."""
        for unit, n in self._counts.items():
            self._free_at[unit] = [0] * n

    # -- state serialization -------------------------------------------

    def snapshot(self) -> dict:
        """Serializable per-port free-cycle stamps, keyed by unit name."""
        return {unit.name: list(ports) for unit, ports in self._free_at.items()}

    def restore(self, data: dict) -> None:
        """Apply snapshotted port stamps (port order is significant:
        :meth:`occupy` always takes the first free port)."""
        for name, stamps in data.items():
            self._free_at[ExecUnit[name]] = list(stamps)
