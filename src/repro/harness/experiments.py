"""Regenerators for every table and figure of the paper's evaluation.

Each function takes an :class:`~repro.harness.runner.ExperimentSetup`,
simulates what it needs (sharing runs through the setup's cache) and
returns a result object carrying both the raw data and a ``render()``
method producing the paper-style text artifact. The experiment index
lives in DESIGN.md §5; measured-vs-paper commentary in EXPERIMENTS.md.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from ..core.variants import pro_with_threshold
from ..stats.report import (
    geomean,
    render_bars,
    render_gantt,
    render_stacked_pct,
    render_table,
)
from ..workloads import all_kernels, applications, kernels_of_app
from .runner import ExperimentSetup

#: Baselines PRO is compared against throughout the evaluation.
BASELINES = ("tl", "lrr", "gto")

#: Stall kinds in the paper's (Pipe, Idle, SB) column order of Table III.
STALL_KINDS = ("pipeline", "idle", "scoreboard")


# ---------------------------------------------------------------------------
# Table I / Table II — static artifacts


@dataclass
class Table1Result:
    """Paper Table I: the simulated GPU configuration."""

    rows: List[Tuple[str, object]]

    def render(self) -> str:
        return render_table(("Parameter", "Value"), self.rows,
                            title="Table I: GPGPU-Sim / repro configuration")


def table1_config(setup: Optional[ExperimentSetup] = None) -> Table1Result:
    """Emit the active configuration in Table I's layout."""
    cfg = (setup or ExperimentSetup()).config
    rows: List[Tuple[str, object]] = [
        ("Architecture", "NVIDIA Fermi GTX480 (simulated)"),
        ("Number of SMs", cfg.num_sms),
        ("Max No of Thread Blocks per SM", cfg.max_tbs_per_sm),
        ("Max No of Threads per Core", cfg.max_threads_per_sm),
        ("Shared Memory per Core", f"{cfg.shared_mem_per_sm // 1024}KB"),
        ("L1-Cache per Core", f"{cfg.memory.l1_size // 1024}KB"),
        ("L2-Cache", f"{cfg.memory.l2_size // 1024}KB"),
        ("Max No of Registers/Core", cfg.registers_per_sm),
        ("No-of Schedulers", cfg.num_schedulers),
        ("DRAM Scheduler", "FR-FCFS (open-row banked model)"),
    ]
    return Table1Result(rows=rows)


@dataclass
class Table2Result:
    """Paper Table II: benchmark applications and grid sizes."""

    rows: List[Tuple[str, str, int, int]]

    def render(self) -> str:
        return render_table(
            ("Application", "Kernel", "Thread Blocks (paper)",
             "Thread Blocks (model)"),
            self.rows,
            title="Table II: benchmark applications",
        )


def table2_benchmarks(setup: Optional[ExperimentSetup] = None) -> Table2Result:
    """Emit the kernel inventory with paper and scaled grid sizes."""
    scale = (setup or ExperimentSetup()).scale
    rows = [
        (m.app, m.name, m.paper_tbs, m.scaled_tbs(scale))
        for m in all_kernels()
    ]
    return Table2Result(rows=rows)


# ---------------------------------------------------------------------------
# Fig. 1 — stall breakdown of the three baselines


@dataclass
class Fig1Result:
    """Per-application stall-kind fractions for TL, LRR and GTO."""

    #: app -> scheduler -> {"idle": f, "scoreboard": f, "pipeline": f}
    breakdown: Dict[str, Dict[str, Dict[str, float]]]

    def render(self) -> str:
        parts = []
        for sched in BASELINES:
            labels = list(self.breakdown)
            stacks = [
                [self.breakdown[app][sched][k]
                 for k in ("idle", "scoreboard", "pipeline")]
                for app in labels
            ]
            parts.append(render_stacked_pct(
                labels, stacks, ("idle", "scoreboard", "pipeline"),
                title=f"Fig. 1 ({sched.upper()} stalls)",
            ))
        return "\n\n".join(parts)

    def mean_idle_share(self, scheduler: str) -> float:
        """Average idle fraction across apps (Fig. 1 headline statistic)."""
        vals = [v[scheduler]["idle"] for v in self.breakdown.values()]
        return sum(vals) / len(vals)


def _app_stalls(setup: ExperimentSetup, app: str, scheduler: str) -> Dict[str, int]:
    """Aggregate stall cycles of one application (sum over its kernels),
    matching the paper's per-application reporting."""
    totals = {"idle": 0, "scoreboard": 0, "pipeline": 0}
    for model in kernels_of_app(app):
        c = setup.run(model, scheduler).counters
        totals["idle"] += c.stall_idle
        totals["scoreboard"] += c.stall_scoreboard
        totals["pipeline"] += c.stall_pipeline
    return totals


def fig1_stall_breakdown(setup: Optional[ExperimentSetup] = None) -> Fig1Result:
    """Reproduce Fig. 1: stall composition under TL, LRR and GTO."""
    setup = setup or ExperimentSetup()
    breakdown: Dict[str, Dict[str, Dict[str, float]]] = {}
    for app in applications():
        breakdown[app] = {}
        for sched in BASELINES:
            totals = _app_stalls(setup, app, sched)
            total = sum(totals.values()) or 1
            breakdown[app][sched] = {k: v / total for k, v in totals.items()}
    return Fig1Result(breakdown=breakdown)


# ---------------------------------------------------------------------------
# Fig. 2 — TB execution timeline, LRR vs PRO


@dataclass
class Fig2Result:
    """TB execution intervals on one SM under LRR and PRO."""

    kernel: str
    sm_id: int
    #: scheduler -> list of (tb_index, start, finish)
    intervals: Dict[str, List[Tuple[int, int, int]]]
    cycles: Dict[str, int]

    def render(self) -> str:
        parts = []
        for sched, ivs in self.intervals.items():
            rows = [(f"tb{t}", s, f) for t, s, f in ivs]
            parts.append(render_gantt(
                rows,
                title=(f"Fig. 2 ({sched.upper()}): thread blocks on SM "
                       f"{self.sm_id}, kernel {self.kernel}, total "
                       f"{self.cycles[sched]} cycles"),
            ))
        return "\n\n".join(parts)

    def finish_spread(self, scheduler: str, batch: int = 4) -> float:
        """Std-dev of the first ``batch`` TBs' finish cycles — small under
        LRR (batched completion), large under PRO (staggered)."""
        import statistics

        finals = [f for (_, _, f) in self.intervals[scheduler][:batch]]
        return statistics.pstdev(finals) if len(finals) > 1 else 0.0


def fig2_tb_timeline(
    setup: Optional[ExperimentSetup] = None,
    kernel: str = "aesEncrypt128",
    sm_id: int = 0,
) -> Fig2Result:
    """Reproduce Fig. 2: TB lifetimes on one SM under LRR and PRO."""
    setup = setup or ExperimentSetup()
    intervals: Dict[str, List[Tuple[int, int, int]]] = {}
    cycles: Dict[str, int] = {}
    for sched in ("lrr", "pro"):
        result = setup.run(kernel, sched, with_timeline=True)
        ivs = result.timeline.for_sm(sm_id)
        intervals[sched] = [
            (iv.tb_index, iv.start_cycle, iv.finish_cycle) for iv in ivs
        ]
        cycles[sched] = result.cycles
    return Fig2Result(kernel=kernel, sm_id=sm_id, intervals=intervals,
                      cycles=cycles)


# ---------------------------------------------------------------------------
# Fig. 4 — per-kernel speedups of PRO


@dataclass
class Fig4Result:
    """Speedup of PRO over TL / LRR / GTO, per kernel + geometric mean."""

    #: kernel -> {"tl": s, "lrr": s, "gto": s}
    speedups: Dict[str, Dict[str, float]]
    geomeans: Dict[str, float]

    def render(self) -> str:
        rows = [
            (k, v["tl"], v["lrr"], v["gto"]) for k, v in self.speedups.items()
        ]
        rows.append(("GEOMEAN", self.geomeans["tl"], self.geomeans["lrr"],
                     self.geomeans["gto"]))
        table = render_table(
            ("Kernel", "PRO/TL", "PRO/LRR", "PRO/GTO"), rows,
            title="Fig. 4: performance of the Progress Aware Warp Scheduler",
        )
        bars = render_bars(
            list(self.speedups) + ["GEOMEAN"],
            [v["lrr"] for v in self.speedups.values()] + [self.geomeans["lrr"]],
            title="Fig. 4 (bars): speedup over LRR", unit="x",
        )
        return table + "\n\n" + bars


def fig4_speedups(setup: Optional[ExperimentSetup] = None) -> Fig4Result:
    """Reproduce Fig. 4: 25 kernels x (PRO vs TL/LRR/GTO)."""
    setup = setup or ExperimentSetup()
    speedups: Dict[str, Dict[str, float]] = {}
    for model in all_kernels():
        pro = setup.run(model, "pro")
        speedups[model.name] = {
            b: setup.run(model, b).cycles / pro.cycles for b in BASELINES
        }
    geomeans = {
        b: geomean(v[b] for v in speedups.values()) for b in BASELINES
    }
    return Fig4Result(speedups=speedups, geomeans=geomeans)


# ---------------------------------------------------------------------------
# Fig. 5 / Table III — stall-cycle improvement


@dataclass
class StallComparison:
    """Per-application stall ratios of PRO vs the three baselines."""

    #: app -> PRO stall cycles by kind.
    pro_stalls: Dict[str, Dict[str, int]]
    #: app -> baseline -> kind -> ratio (baseline stalls / PRO stalls).
    ratios: Dict[str, Dict[str, Dict[str, float]]]
    #: baseline -> kind (or "total") -> geomean ratio.
    geomeans: Dict[str, Dict[str, float]]

    def render_fig5(self) -> str:
        labels = list(self.ratios)
        parts = []
        for b in BASELINES:
            vals = [self.ratios[app][b]["total"] for app in labels]
            parts.append(render_bars(
                labels + ["GEOMEAN"], vals + [self.geomeans[b]["total"]],
                title=f"Fig. 5: stall-cycle ratio {b.upper()}/PRO "
                      "(>1 means PRO has fewer stalls)", unit="x",
            ))
        return "\n\n".join(parts)

    def render_table3(self) -> str:
        headers = ["Application", "PRO Pipe", "PRO Idle", "PRO SB"]
        for b in BASELINES:
            headers += [f"{b.upper()}/Pipe", f"{b.upper()}/Idle",
                        f"{b.upper()}/SB", f"{b.upper()}/Total"]
        rows = []
        for app, stalls in self.pro_stalls.items():
            row: List[object] = [
                app, stalls["pipeline"], stalls["idle"], stalls["scoreboard"]
            ]
            for b in BASELINES:
                r = self.ratios[app][b]
                row += [r["pipeline"], r["idle"], r["scoreboard"], r["total"]]
            rows.append(tuple(row))
        grow: List[object] = ["GEOMEAN", "", "", ""]
        for b in BASELINES:
            g = self.geomeans[b]
            grow += [g["pipeline"], g["idle"], g["scoreboard"], g["total"]]
        rows.append(tuple(grow))
        return render_table(headers, rows,
                            title="Table III: improvement in stall cycles "
                                  "with PRO (>1 = PRO has fewer stalls)")

    def render(self) -> str:
        return self.render_fig5() + "\n\n" + self.render_table3()


def _stall_comparison(setup: ExperimentSetup) -> StallComparison:
    pro_stalls: Dict[str, Dict[str, int]] = {}
    ratios: Dict[str, Dict[str, Dict[str, float]]] = {}
    for app in applications():
        pro = _app_stalls(setup, app, "pro")
        pro_stalls[app] = pro
        ratios[app] = {}
        pro_total = sum(pro.values())
        for b in BASELINES:
            base = _app_stalls(setup, app, b)
            ratios[app][b] = {
                kind: _safe_ratio(base[kind], pro[kind])
                for kind in ("pipeline", "idle", "scoreboard")
            }
            ratios[app][b]["total"] = _safe_ratio(sum(base.values()), pro_total)
    geomeans: Dict[str, Dict[str, float]] = {}
    for b in BASELINES:
        geomeans[b] = {
            kind: geomean(ratios[app][b][kind] for app in ratios)
            for kind in ("pipeline", "idle", "scoreboard", "total")
        }
    return StallComparison(pro_stalls=pro_stalls, ratios=ratios,
                           geomeans=geomeans)


def _safe_ratio(num: int, den: int) -> float:
    """Stall ratio with sane behaviour when a class is empty.

    Both zero -> 1.0 (identical); zero denominator -> treat PRO's zero
    stalls as one cycle to keep the ratio finite (the paper's tables have
    no zero cells at full scale; ours can at small scale).
    """
    if den == 0:
        return 1.0 if num == 0 else float(num)
    return num / den


def fig5_stall_improvement(
    setup: Optional[ExperimentSetup] = None,
) -> StallComparison:
    """Reproduce Fig. 5 (and the data behind Table III)."""
    return _stall_comparison(setup or ExperimentSetup())


def table3_stall_ratios(
    setup: Optional[ExperimentSetup] = None,
) -> StallComparison:
    """Reproduce Table III (same computation as Fig. 5, table rendering)."""
    return _stall_comparison(setup or ExperimentSetup())


# ---------------------------------------------------------------------------
# Table IV — PRO's sorted TB order over time


@dataclass
class Table4Result:
    """PRO's periodically re-sorted TB priority order on one SM."""

    kernel: str
    sm_id: int
    rows: List[Tuple[int, Tuple[int, ...]]]
    order_changes: int

    def render(self) -> str:
        if not self.rows:
            return "Table IV: (no sort snapshots recorded)"
        width = len(self.rows[0][1])
        headers = ["Cycle"] + [str(i + 1) for i in range(width)]
        body = [(cycle, *order) for cycle, order in self.rows]
        table = render_table(headers, body,
                             title=f"Table IV: sorted order of TBs in "
                                   f"{self.kernel} (SM {self.sm_id})")
        return (f"{table}\n(order changed {self.order_changes} times across "
                f"{len(self.rows)} sort periods)")


def table4_sort_trace(
    setup: Optional[ExperimentSetup] = None,
    kernel: str = "aesEncrypt128",
    sm_id: int = 0,
    batch: int = 6,
    threshold: int = 128,
) -> Table4Result:
    """Reproduce Table IV: PRO's TB sort order per THRESHOLD period.

    The paper's AES TBs live ~16 sort periods (16000 cycles / 1000-cycle
    THRESHOLD); our scaled AES TBs live ~2000 cycles, so the trace uses a
    proportionally denser ``threshold`` (default 128) to show the same
    number of re-sort opportunities. Pass ``threshold=1000`` for the
    paper-literal period.
    """
    setup = setup or ExperimentSetup()
    sched = (
        "pro" if threshold == setup.config.pro_sort_threshold
        else pro_with_threshold(threshold)
    )
    result = setup.run(kernel, sched, with_sort_trace=True, trace_sm=sm_id)
    rows = result.sort_trace.first_batch_table(batch)
    return Table4Result(kernel=kernel, sm_id=sm_id, rows=rows,
                        order_changes=result.sort_trace.order_changes())


# ---------------------------------------------------------------------------
# Ablations (paper §IV discussion + THRESHOLD choice)


@dataclass
class AblationResult:
    """Cycles per (kernel, variant) with speedups vs full PRO."""

    title: str
    #: kernel -> variant -> cycles
    cycles: Dict[str, Dict[str, int]]

    def render(self) -> str:
        variants = list(next(iter(self.cycles.values())))
        headers = ["Kernel"] + variants + [
            f"{v} vs {variants[0]}" for v in variants[1:]
        ]
        rows = []
        for kernel, per_variant in self.cycles.items():
            base = per_variant[variants[0]]
            row: List[object] = [kernel] + [per_variant[v] for v in variants]
            row += [base / per_variant[v] for v in variants[1:]]
            rows.append(tuple(row))
        return render_table(headers, rows, title=self.title)


def ablation_barrier_handling(
    setup: Optional[ExperimentSetup] = None,
    kernels: Sequence[str] = (
        "scalarProdGPU", "calculate_temp", "GPU_laplace3d",
        "bpnn_layerforward", "MonteCarloOneBlockPerOption",
    ),
) -> AblationResult:
    """PRO vs its no-barrier / no-finish variants (paper §IV: scalarProd
    gains ~11% with barrier handling disabled)."""
    setup = setup or ExperimentSetup()
    cycles: Dict[str, Dict[str, int]] = {}
    for k in kernels:
        cycles[k] = {
            v: setup.run(k, v).cycles for v in ("pro", "pro-nb", "pro-nf")
        }
    return AblationResult(
        title="Ablation: PRO barrier/finish handling (speedup >1 means the "
              "variant is faster than full PRO)",
        cycles=cycles,
    )


def ablation_progress_normalization(
    setup: Optional[ExperimentSetup] = None,
    kernels: Sequence[str] = (
        "render", "bfs_kernel", "scalarProdGPU", "findRangeK",
        "calculate_temp",
    ),
) -> AblationResult:
    """PRO vs the normalized-progress extension (paper §III-C.1 / §VI).

    The sample leans on kernels with strong inter-warp work imbalance,
    where raw progress most misrepresents time-to-completion.
    """
    setup = setup or ExperimentSetup()
    cycles: Dict[str, Dict[str, int]] = {}
    for k in kernels:
        cycles[k] = {v: setup.run(k, v).cycles for v in ("pro", "pro-norm")}
    return AblationResult(
        title="Ablation: raw vs normalized (fractional) progress",
        cycles=cycles,
    )


def extra_scheduler_comparison(
    setup: Optional[ExperimentSetup] = None,
    kernels: Sequence[str] = (
        "aesEncrypt128", "sha1_overlap", "scalarProdGPU", "findK",
    ),
) -> AblationResult:
    """Reference schedulers beyond the paper's set (of / rand) vs PRO."""
    setup = setup or ExperimentSetup()
    cycles: Dict[str, Dict[str, int]] = {}
    for k in kernels:
        cycles[k] = {
            v: setup.run(k, v).cycles for v in ("pro", "of", "rand", "lrr")
        }
    return AblationResult(
        title="Reference schedulers: oldest-first and random vs PRO",
        cycles=cycles,
    )


def ablation_threshold(
    setup: Optional[ExperimentSetup] = None,
    kernels: Sequence[str] = (
        "aesEncrypt128", "scalarProdGPU", "executeSecondLayer",
    ),
    thresholds: Sequence[int] = (100, 500, 1000, 4000, 16000),
) -> AblationResult:
    """THRESHOLD sensitivity (the paper fixes THRESHOLD=1000, §III-C)."""
    setup = setup or ExperimentSetup()
    cycles: Dict[str, Dict[str, int]] = {}
    for k in kernels:
        cycles[k] = {}
        for t in thresholds:
            name = "pro" if t == setup.config.pro_sort_threshold else pro_with_threshold(t)
            cycles[k][f"t={t}"] = setup.run(k, name).cycles
    return AblationResult(
        title="Ablation: PRO sort-THRESHOLD sensitivity (cycles)",
        cycles=cycles,
    )
