"""Simulation runner with cross-experiment result caching + checkpointing.

Fig. 4, Fig. 5 and Table III all consume the same 25-kernel x 4-scheduler
run matrix; :class:`ResultCache` memoizes runs per (kernel, scheduler,
config, scale) so a full `all` harness invocation simulates each cell
exactly once. Two reliability tiers sit under the memo dict:

* a :class:`~repro.robustness.checkpoint.CheckpointStore` persists each
  plain cell's counters to disk, so an interrupted sweep resumes with
  only the missing cells re-simulated (``pro-sim ... --checkpoint DIR``);
* a :class:`CellPolicy` wraps every simulation attempt with a wall-clock
  budget and a retry loop; cells that still fail are recorded as
  :class:`CellFailure` entries (the CLI's FAILURES section) before the
  error propagates.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..config import GPUConfig
from ..errors import SimulationError
from ..gpu.gpu import Gpu
from ..gpu.launch import RunResult
from ..robustness.checkpoint import CheckpointStore, cell_key, config_digest
from ..robustness.faults import FaultPlan
from ..stats.timeline import SortTraceRecorder, TimelineRecorder
from ..workloads import KernelModel, get_kernel

#: The scheduler set of the paper's evaluation.
PAPER_SCHEDULERS = ("tl", "lrr", "gto", "pro")


@dataclass(frozen=True)
class CellPolicy:
    """Per-cell execution budget for one harness session.

    ``retries`` extra attempts are made after a failed simulation (fault
    injectors with consumed budgets make retried cells succeed, modeling
    transient faults); ``cell_timeout`` is a wall-clock budget in seconds
    enforced by the GPU main loop's watchdog (None = unbounded).
    """

    retries: int = 0
    cell_timeout: Optional[float] = None


@dataclass
class CellFailure:
    """One run-matrix cell that failed all its attempts."""

    kernel: str
    scheduler: str
    scale: float
    attempts: int
    error: SimulationError

    @property
    def headline(self) -> str:
        """One-line summary (error message without the attached report)."""
        msg = getattr(self.error, "headline", None) or str(self.error)
        return msg.splitlines()[0]

    def describe(self) -> str:
        return (
            f"{self.kernel}/{self.scheduler} scale={self.scale} "
            f"({self.attempts} attempt(s)): "
            f"{type(self.error).__name__}: {self.headline}"
        )


@dataclass
class ExperimentSetup:
    """Shared configuration of one harness session.

    The default is the scaled 4-SM configuration (DESIGN.md §2); pass
    ``config=GPUConfig.gtx480()`` and a larger ``scale`` for a
    paper-faithful (but much slower) run. For long sweeps, construct the
    cache with a checkpoint store and cell policy::

        cache = ResultCache(checkpoint=CheckpointStore("ckpt/"),
                            policy=CellPolicy(retries=1, cell_timeout=600))
        setup = ExperimentSetup(config=GPUConfig.gtx480(), cache=cache)
    """

    config: GPUConfig = field(default_factory=lambda: GPUConfig.scaled(4))
    #: Workload grid-size multiplier (1.0 = the models' scaled defaults).
    scale: float = 1.0
    cache: "ResultCache" = field(default_factory=lambda: ResultCache())
    #: Worker processes for matrix prewarming (1 = fully sequential).
    jobs: int = 1

    def run(self, kernel: str | KernelModel, scheduler: str,
            **kwargs) -> RunResult:
        """Run (or fetch from cache) one kernel under one scheduler."""
        return self.cache.run(kernel, scheduler, self.config, self.scale,
                              **kwargs)

    def prewarm(
        self,
        kernels: Optional[List[str]] = None,
        schedulers: Tuple[str, ...] = PAPER_SCHEDULERS,
        *,
        keep_going: bool = False,
    ):
        """Populate the cache with a (kernels x schedulers) matrix using
        ``self.jobs`` worker processes.

        Experiments then answer every plain cell from the memo. Defaults
        to the full paper matrix. Returns the per-cell results dict of
        :func:`repro.harness.parallel.run_matrix_parallel`.
        """
        # Local import: parallel imports this module.
        from ..workloads import all_kernels
        from .parallel import run_matrix_parallel

        names = (
            kernels if kernels is not None
            else [m.name for m in all_kernels()]
        )
        cells = [(k, s) for k in names for s in schedulers]
        return run_matrix_parallel(
            self.cache, cells, self.config, self.scale,
            jobs=self.jobs, keep_going=keep_going,
        )


class ResultCache:
    """Memoizes RunResults keyed by (kernel, scheduler, config, scale).

    Runs requesting recorders (timeline / sort trace) are cached under a
    distinct key so plain runs never pay recording overhead, and runs
    carrying caller-supplied ``probes`` (see :mod:`repro.obs`) bypass the
    cache entirely — the probes must observe a real simulation. Recorder
    runs are memory-only; plain runs additionally hit the optional disk
    ``checkpoint`` tier (read before simulating, write after), keyed by
    the same content hash :func:`repro.robustness.checkpoint.cell_key`
    uses, so checkpoints are valid across processes and config changes
    invalidate exactly the cells they affect.
    """

    def __init__(
        self,
        checkpoint: Optional[CheckpointStore] = None,
        policy: Optional[CellPolicy] = None,
        faults: Optional[FaultPlan] = None,
    ) -> None:
        self._results: Dict[Tuple, RunResult] = {}
        self.checkpoint = checkpoint
        self.policy = policy or CellPolicy()
        #: Fault plan installed on every GPU this cache builds (tests).
        self.faults = faults
        #: Cells answered from the disk checkpoint without simulating.
        self.checkpoint_hits = 0
        #: Actual Gpu.run invocations (attempts), for resume verification.
        self.runs_executed = 0
        #: Cells that exhausted every attempt (kept for the FAILURES
        #: section even though the error also propagates).
        self.failures: List[CellFailure] = []

    def run(
        self,
        kernel: str | KernelModel,
        scheduler: str,
        config: GPUConfig,
        scale: float = 1.0,
        *,
        with_timeline: bool = False,
        with_sort_trace: bool = False,
        trace_sm: int = 0,
        probes: Tuple = (),
    ) -> RunResult:
        model = kernel if isinstance(kernel, KernelModel) else get_kernel(kernel)
        if probes:
            # Probe-carrying runs bypass both cache tiers: the caller's
            # probe objects must observe an actual simulation, and a
            # memoized result would leave them silently empty.
            return self._simulate(model, scheduler, config, scale,
                                  with_timeline, with_sort_trace, trace_sm,
                                  probes)
        ckey = cell_key(model.name, scheduler, config, scale)
        key = (ckey, with_timeline, with_sort_trace, trace_sm)
        hit = self._results.get(key)
        if hit is not None:
            return hit
        plain = not (with_timeline or with_sort_trace)
        if plain and self.checkpoint is not None:
            cached = self.checkpoint.get(ckey)
            if cached is not None:
                self.checkpoint_hits += 1
                self._results[key] = cached
                return cached
        result = self._simulate(model, scheduler, config, scale,
                                with_timeline, with_sort_trace, trace_sm)
        self._results[key] = result
        if plain and self.checkpoint is not None:
            self.checkpoint.put(ckey, model.name, scheduler, scale, result)
        return result

    def lookup(
        self,
        kernel: str | KernelModel,
        scheduler: str,
        config: GPUConfig,
        scale: float = 1.0,
    ) -> Optional[RunResult]:
        """Answer a plain cell from the memo or checkpoint tiers only.

        Never simulates. Used by the parallel executor to decide which
        cells actually need a worker.
        """
        model = kernel if isinstance(kernel, KernelModel) else get_kernel(kernel)
        ckey = cell_key(model.name, scheduler, config, scale)
        key = (ckey, False, False, 0)
        hit = self._results.get(key)
        if hit is not None:
            return hit
        if self.checkpoint is not None:
            cached = self.checkpoint.get(ckey)
            if cached is not None:
                self.checkpoint_hits += 1
                self._results[key] = cached
                return cached
        return None

    def adopt(
        self,
        kernel: str | KernelModel,
        scheduler: str,
        config: GPUConfig,
        scale: float,
        result: RunResult,
    ) -> None:
        """Insert an externally simulated plain result (a parallel
        worker's counters) into the memo and checkpoint tiers.

        The adopting process is the only checkpoint writer, keeping the
        on-disk file single-writer even under ``--jobs N``.
        """
        model = kernel if isinstance(kernel, KernelModel) else get_kernel(kernel)
        ckey = cell_key(model.name, scheduler, config, scale)
        self._results[(ckey, False, False, 0)] = result
        if self.checkpoint is not None:
            self.checkpoint.put(ckey, model.name, scheduler, scale, result)

    # ------------------------------------------------------------------
    def _simulate(
        self,
        model: KernelModel,
        scheduler: str,
        config: GPUConfig,
        scale: float,
        with_timeline: bool,
        with_sort_trace: bool,
        trace_sm: int,
        probes: Tuple = (),
    ) -> RunResult:
        """One cell through the retry/timeout policy; raises after the
        last failed attempt (with the failure recorded)."""
        policy = self.policy
        attempts = policy.retries + 1
        last_err: Optional[SimulationError] = None
        for _ in range(attempts):
            try:
                if self.faults is not None:
                    self.faults.check_cell(model.name, scheduler)
                probe_list = list(probes)
                if with_timeline:
                    probe_list.append(TimelineRecorder())
                if with_sort_trace:
                    probe_list.append(SortTraceRecorder(sm_id=trace_sm))
                gpu = Gpu(config, scheduler=scheduler)
                if self.faults is not None:
                    gpu.install_faults(self.faults)
                deadline = (
                    time.monotonic() + policy.cell_timeout
                    if policy.cell_timeout is not None else None
                )
                self.runs_executed += 1
                return gpu.run(
                    model.build_launch(scale),
                    probes=probe_list,
                    deadline=deadline,
                )
            except SimulationError as err:
                last_err = err
        assert last_err is not None
        self.failures.append(CellFailure(
            kernel=model.name,
            scheduler=scheduler,
            scale=scale,
            attempts=attempts,
            error=last_err,
        ))
        raise last_err

    def __len__(self) -> int:
        return len(self._results)


def id_of(config: GPUConfig) -> str:
    """Stable content-hash identity of a config.

    The same digest :func:`repro.robustness.checkpoint.cell_key` folds
    into checkpoint keys: two configs share an identity iff every field
    (including nested latency/memory geometry) is equal, and the digest
    is stable across processes — unlike ``hash()``, which is salted.
    """
    return config_digest(config)


def run_kernel(
    kernel: str | KernelModel,
    scheduler: str = "pro",
    config: Optional[GPUConfig] = None,
    scale: float = 1.0,
    **kwargs,
) -> RunResult:
    """One-shot convenience runner.

    Builds a private, throwaway :class:`ResultCache` for the single run —
    nothing is shared with (or leaked into) any other cache, but the run
    itself goes through the exact same cell machinery as harness runs.
    """
    cache = ResultCache()
    return cache.run(kernel, scheduler, config or GPUConfig.scaled(4),
                     scale, **kwargs)
