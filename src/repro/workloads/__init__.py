"""Synthetic models of the paper's 25 benchmark kernels (Table II).

Each :class:`~repro.workloads.base.KernelModel` encodes the *scheduling-
relevant* structure of one real CUDA kernel: grid geometry (threads/TB and
TB count from Table II), occupancy-limiting resources, instruction mix,
memory access patterns, barrier placement and warp-level divergence. The
actual arithmetic is not simulated — warp schedulers cannot see data
values, only the dependence/latency/synchronization structure, which is
what these models reproduce (DESIGN.md §2).

Kernels are looked up by their Table II kernel name::

    from repro.workloads import get_kernel, all_kernels
    model = get_kernel("scalarProdGPU")
    launch = model.build_launch(scale=1.0)
"""

from .base import (
    KernelModel,
    all_kernels,
    applications,
    get_kernel,
    kernels_of_app,
    validate_registry,
)
from . import gpgpusim, rodinia, cudasdk  # noqa: F401  (populate registry)

__all__ = [
    "KernelModel",
    "all_kernels",
    "applications",
    "get_kernel",
    "kernels_of_app",
    "validate_registry",
]
