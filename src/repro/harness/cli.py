"""Command-line entry point: ``pro-sim <experiment>``.

Examples::

    pro-sim table2                 # benchmark inventory
    pro-sim fig4 --sms 4           # per-kernel speedups (the headline)
    pro-sim all --out results.txt  # every artifact, sharing runs
    pro-sim fig4 --json fig4.json  # machine-readable export
    pro-sim run scalarProdGPU --scheduler pro  # one simulation
    pro-sim trace cenergy --metrics-out m.jsonl --trace-out t.json
                                   # instrumented run: windowed metrics +
                                   # a Perfetto-loadable trace (--smoke
                                   # for the quick CI variant)
    pro-sim fidelity --smoke --json report.json
                                   # machine-check the reproduction against
                                   # the paper expectations + goldens
    pro-sim diff-baseline baselines/ other-baselines/
                                   # per-cell counter diff of two goldens
    pro-sim serve --port 8642 --serve-dir serve-data/
                                   # simulation-as-a-service: async job API
                                   # (submit/status/result/cancel over HTTP,
                                   # content-addressed dedup, priority
                                   # preemption; see docs/serve.md)
    pro-sim tournament --smoke --json t.json
                                   # race all six schedulers (lrr/gto/tl/
                                   # pro/rlws/wasp) over the kernel matrix
    pro-sim train-rlws --epochs 6 --jobs auto --qtable-out q.json
                                   # offline-train the RLWS Q-table

``pro-sim fidelity`` scores the measured (kernels x schedulers) matrix
against the tolerance-banded paper expectations (docs/fidelity.md) and
the content-hashed golden baselines under ``--baseline DIR`` (default
``baselines/``); any ``fail`` verdict exits 1, making it a CI gate.
``--accept-baseline`` promotes the measured counters to the golden file
— the reviewed diff that sanctions an intentional behavior change. When
``$GITHUB_STEP_SUMMARY`` is set, the markdown report is appended to it.

Long / paper-faithful sweeps get the resilient path, and multi-core
machines the parallel one::

    pro-sim all --sms 14 --checkpoint ckpt/ --keep-going \\
            --cell-timeout 600 --retries 1 --jobs auto

``--jobs N`` (or ``auto`` = CPU count) fans independent run-matrix cells
out to N worker processes before the experiments render; results are
bit-identical to a sequential run. ``pro-sim bench`` measures the
simulator's own throughput (``--smoke`` for the quick CI variant) and
writes a machine-readable ``BENCH_<timestamp>.json``.

``--checkpoint`` persists every completed run-matrix cell to
``ckpt/cells.jsonl``; killing the run and re-invoking the same command
resumes with only the missing cells re-simulated. With ``--snapshot-every
N`` the in-flight cell additionally writes a cycle-level simulator
snapshot every N cycles (and on SIGINT/SIGTERM, at the exact stop cycle),
so resuming continues that cell mid-run, bit-identically, instead of
restarting it. ``pro-sim run --resume SNAP`` resumes a standalone
snapshot file directly. ``--keep-going`` turns a failed experiment into a
FAILURES section (exit code 3, "partial success") instead of aborting
everything.

Exit codes: 0 = success, 1 = simulation failure, 2 = usage error
(including a refused overwrite of an existing output file — every
file-writing flag shares the guard of :mod:`repro.harness.outputs`;
pass ``--force`` to overwrite), 3 = partial success (``--keep-going``
with at least one failure) or an interrupted sweep (SIGINT/SIGTERM;
state saved, re-run to resume).
"""

from __future__ import annotations

import argparse
import contextlib
import dataclasses
import json
import os
import sys
import time
from typing import Callable, Dict, List, Optional, Tuple

from ..config import GPUConfig
from ..errors import ReproError, SimulationInterrupted
from ..gpu.gpu import BACKENDS, Gpu
from ..robustness.checkpoint import CheckpointStore
from ..workloads import get_kernel
from . import experiments
from .bench import run_bench
from .parallel import resolve_jobs
from .runner import (
    PAPER_SCHEDULERS,
    CellFailure,
    CellPolicy,
    ExperimentSetup,
    ResultCache,
    graceful_interrupts,
)

#: experiment name -> callable(setup) -> result object with .render()
EXPERIMENTS: Dict[str, Callable] = {
    "table1": experiments.table1_config,
    "table2": experiments.table2_benchmarks,
    "fig1": experiments.fig1_stall_breakdown,
    "fig2": experiments.fig2_tb_timeline,
    "fig4": experiments.fig4_speedups,
    "fig5": experiments.fig5_stall_improvement,
    "table3": experiments.table3_stall_ratios,
    "table4": experiments.table4_sort_trace,
    "ablation-barrier": experiments.ablation_barrier_handling,
    "ablation-threshold": experiments.ablation_threshold,
    "ablation-norm": experiments.ablation_progress_normalization,
    "extra-schedulers": experiments.extra_scheduler_comparison,
}

#: Process exit codes (EXIT_USAGE matches argparse's own).
EXIT_OK = 0
EXIT_FAILURE = 1
EXIT_USAGE = 2
EXIT_PARTIAL = 3
#: Interrupted sweeps share code 3: in both cases the report is partial
#: and re-running the same command completes it.
EXIT_INTERRUPTED = 3

#: Experiments whose plain cells form a (kernels x schedulers) matrix
#: worth prewarming in parallel under --jobs. Recorder-carrying
#: experiments (fig2/table4) and static tables gain nothing from it.
_MATRIX_SCHEDULERS: Dict[str, Tuple[str, ...]] = {
    "all": PAPER_SCHEDULERS,
    "fig1": experiments.BASELINES,
    "fig4": PAPER_SCHEDULERS,
    "fig5": PAPER_SCHEDULERS,
    "table3": PAPER_SCHEDULERS,
}


def build_parser() -> argparse.ArgumentParser:
    p = argparse.ArgumentParser(
        prog="pro-sim",
        description="Reproduce the tables and figures of 'PRO: Progress "
                    "Aware GPU Warp Scheduling Algorithm' (IPDPS 2015).",
    )
    p.add_argument(
        "experiment",
        choices=sorted(EXPERIMENTS) + ["all", "run", "bench", "trace",
                                       "fidelity", "diff-baseline",
                                       "serve", "tournament",
                                       "train-rlws"],
        help="which artifact to regenerate ('all' = every one; 'run' = a "
             "single kernel simulation; 'bench' = simulator throughput "
             "measurement; 'trace' = one instrumented run exporting "
             "windowed metrics + a Perfetto-loadable trace; 'fidelity' = "
             "score the reproduction against the paper expectations; "
             "'diff-baseline' = compare two golden baseline files/dirs; "
             "'serve' = run the HTTP simulation-as-a-service job API; "
             "'tournament' = race all six first-class schedulers over the "
             "kernel matrix; 'train-rlws' = offline-train the RLWS "
             "Q-table artifact)",
    )
    p.add_argument("kernel", nargs="?", default=None,
                   help="kernel name (for 'run' and 'trace'; 'trace' "
                        "defaults to scalarProdGPU) or baseline A (for "
                        "'diff-baseline')")
    p.add_argument("arg2", nargs="?", default=None, metavar="B",
                   help="baseline B (for 'diff-baseline')")
    p.add_argument("--sms", type=int, default=None,
                   help="number of SMs (default 4; 14 = paper Table I; "
                        "'fidelity' defaults to its profile's geometry)")
    p.add_argument("--scale", type=float, default=None,
                   help="workload grid-size multiplier (default 1.0; "
                        "'fidelity' defaults to its profile's geometry)")
    p.add_argument("--scheduler", default="pro",
                   help="scheduler for 'run' (default pro)")
    p.add_argument("--backend", default="reference", choices=BACKENDS,
                   help="simulation core: 'reference' (per-warp "
                        "interpreter) or 'vector' (struct-of-arrays core, "
                        "bit-identical counters, faster). Threaded through "
                        "worker payloads, so parallel sweeps honor it")
    p.add_argument("--compare", nargs=2, default=None,
                   metavar=("OLD.json", "NEW.json"),
                   help="for 'bench': instead of running, diff two bench "
                        "JSONs — per-cell cycles/sec deltas plus a geomean "
                        "speedup line over the matched cells")
    p.add_argument("--threshold", type=int, default=None,
                   help="PRO sort period for 'table4' (default: a period "
                        "scaled to the model's TB lifetimes; pass 1000 for "
                        "the paper-literal value)")
    p.add_argument("--out", default=None,
                   help="also write the report to this file")
    p.add_argument("--json", default=None, dest="json_out",
                   help="also dump the experiment's raw data as JSON ('run' "
                        "dumps its counters; not supported for 'all', whose "
                        "sections have no common schema)")
    p.add_argument("--checkpoint", default=None, metavar="DIR",
                   help="persist completed run-matrix cells to DIR and "
                        "resume from them: an interrupted invocation "
                        "re-simulates only the missing cells")
    p.add_argument("--keep-going", action="store_true",
                   help="for 'all': continue past failed experiments; "
                        "failures become a FAILURES section and the exit "
                        "code is 3 (partial success) instead of aborting")
    p.add_argument("--cell-timeout", type=float, default=None,
                   metavar="SECONDS",
                   help="wall-clock budget per simulated cell; exceeding it "
                        "fails the cell with a diagnostic report")
    p.add_argument("--retries", type=int, default=0, metavar="N",
                   help="retry each failed cell up to N times before "
                        "giving up (default 0)")
    p.add_argument("--snapshot-every", type=int, default=None,
                   metavar="CYCLES",
                   help="with --checkpoint: write a cycle-level simulator "
                        "snapshot of the in-flight cell every CYCLES "
                        "cycles; an interrupted invocation resumes the "
                        "cell mid-run, bit-identically")
    p.add_argument("--resume", default=None, metavar="SNAPSHOT",
                   help="for 'run': resume a simulator snapshot file "
                        "(written by --snapshot-every or a SIGINT/SIGTERM "
                        "stop) instead of starting a fresh simulation")
    p.add_argument("--jobs", default="1", metavar="N",
                   help="worker processes for run-matrix cells: a positive "
                        "integer or 'auto' (= CPU count; default 1 = "
                        "sequential). Results are bit-identical either way")
    p.add_argument("--worker-deadline", type=float, default=None,
                   metavar="SECONDS",
                   help="with --jobs > 1: parent-side wall-clock budget per "
                        "dispatched cell; a worker exceeding it is reaped "
                        "and the cell redispatched (default: unbounded). "
                        "Catches wedged workers --cell-timeout cannot")
    p.add_argument("--max-respawns", type=int, default=None, metavar="N",
                   help="with --jobs > 1: replacement workers spawned after "
                        "crashes/deadlines before the sweep degrades to "
                        "in-process execution (default 4)")
    p.add_argument("--smoke", action="store_true",
                   help="for 'bench'/'trace'/'fidelity'/'tournament': the "
                        "quick CI variant (fewer, smaller cells; 'trace' "
                        "drops to 2 SMs at scale 0.25; 'fidelity' scores "
                        "the smoke profile, which is also its default; "
                        "'tournament' races the 6 smoke kernels at 2 SMs, "
                        "scale 0.25)")
    p.add_argument("--epochs", type=int, default=None, metavar="N",
                   help="for 'train-rlws': training epochs — passes over "
                        "the training kernels with TD(0) updates and "
                        "decaying exploration (default 4)")
    p.add_argument("--qtable-out", default=None, metavar="PATH",
                   help="for 'train-rlws': write the trained, "
                        "content-digest-versioned Q-table artifact to PATH "
                        "(exportable via REPRO_RLWS_QTABLE; omit for a "
                        "dry training run)")
    p.add_argument("--full", action="store_true",
                   help="for 'fidelity': score the full profile (all "
                        "Table II kernels at the paper-faithful scaled "
                        "geometry) instead of the smoke subset")
    p.add_argument("--baseline", default="baselines", metavar="DIR",
                   help="for 'fidelity': golden baseline directory "
                        "(default baselines/)")
    p.add_argument("--accept-baseline", action="store_true",
                   help="for 'fidelity': promote the measured per-cell "
                        "counters to the golden baseline file before "
                        "scoring (the reviewed diff that sanctions an "
                        "intentional behavior change)")
    p.add_argument("--expectations", default=None, metavar="PATH",
                   help="for 'fidelity': alternate paper-expectations JSON "
                        "(default: the packaged data file)")
    p.add_argument("--force", action="store_true",
                   help="overwrite existing --json / --bench-out output "
                        "files instead of refusing")
    p.add_argument("--bench-out", default=None, metavar="PATH",
                   help="for 'bench': write the machine-readable JSON to "
                        "PATH instead of ./BENCH_<timestamp>.json")
    p.add_argument("--metrics-out", default="metrics.jsonl", metavar="PATH",
                   help="for 'trace': windowed per-SM metrics stream "
                        "(.csv extension switches to CSV; default "
                        "metrics.jsonl)")
    p.add_argument("--trace-out", default="trace.json", metavar="PATH",
                   help="for 'trace': Chrome trace-event JSON, loadable at "
                        "https://ui.perfetto.dev (default trace.json)")
    p.add_argument("--window", type=int, default=500, metavar="CYCLES",
                   help="for 'trace': metrics window width in cycles "
                        "(default 500)")
    p.add_argument("--host", default="127.0.0.1",
                   help="for 'serve': interface to bind (default 127.0.0.1)")
    p.add_argument("--port", type=int, default=8642,
                   help="for 'serve': TCP port (default 8642; 0 = let the "
                        "OS pick, reported on startup)")
    p.add_argument("--serve-dir", default="serve-data", metavar="DIR",
                   help="for 'serve': service state directory — the JSONL "
                        "job ledger plus the content-addressed checkpoint "
                        "tier that memoizes results across clients and "
                        "restarts. The ledger is an artifact: an existing "
                        "one is refused without --force; the checkpoint "
                        "tier is a resumable store and survives restarts "
                        "by design")
    return p


def _resolve_geometry(args: argparse.Namespace) -> None:
    """Fill in the --sms/--scale defaults.

    'fidelity' defaults to its profile's canonical geometry (where the
    numeric targets apply); everything else keeps the historical 4 SMs at
    scale 1.0. Explicit flags always win — for fidelity that flips the
    measurement off-canonical, restricting scoring to shape bands.
    """
    if args.experiment == "fidelity":
        from ..fidelity import expectations as _exp

        profile = _exp.resolve_profile("full" if args.full else "smoke")
        if args.sms is None:
            args.sms = profile.sms
        if args.scale is None:
            args.scale = profile.scale
    elif (args.experiment == "train-rlws"
          or (args.experiment == "tournament" and args.smoke)):
        # Training always runs at the smoke geometry (the artifact is
        # trained where CI evaluates it); the smoke tournament matches
        # the fidelity smoke profile.
        if args.sms is None:
            args.sms = 2
        if args.scale is None:
            args.scale = 0.25
    else:
        if args.sms is None:
            args.sms = 4
        if args.scale is None:
            args.scale = 1.0


def _guard_overwrite(parser: argparse.ArgumentParser,
                     args: argparse.Namespace) -> None:
    """One overwrite rule for every artifact-writing flag.

    Delegates to :mod:`repro.harness.outputs`: an existing target file
    is refused with exit code 2 unless ``--force`` (see EXPERIMENTS.md,
    "Output files and --force"). Resumable stores — ``--checkpoint``
    and the snapshots inside it, the serve checkpoint tier — are exempt
    by contract; the serve *ledger* is an artifact and is guarded where
    it is opened (:class:`repro.serve.ledger.JobLedger`).
    """
    from .outputs import OutputExistsError, guard_outputs

    targets = [("--out", args.out), ("--json", args.json_out)]
    if args.experiment == "bench":
        targets.append(("--bench-out", args.bench_out))
    if args.experiment == "train-rlws":
        targets.append(("--qtable-out", args.qtable_out))
    if args.experiment == "trace":
        targets.append(("--metrics-out", args.metrics_out))
        targets.append(("--trace-out", args.trace_out))
    try:
        guard_outputs(targets, force=args.force)
    except OutputExistsError as err:
        parser.error(str(err))


def _validate_args(parser: argparse.ArgumentParser,
                   args: argparse.Namespace) -> None:
    """Friendly usage errors instead of deep ConfigError tracebacks."""
    _resolve_geometry(args)
    if args.sms <= 0:
        parser.error(f"--sms must be positive (got {args.sms})")
    if args.scale <= 0:
        parser.error(f"--scale must be positive (got {args.scale})")
    if args.cell_timeout is not None and args.cell_timeout <= 0:
        parser.error(
            f"--cell-timeout must be positive (got {args.cell_timeout})"
        )
    if args.retries < 0:
        parser.error(f"--retries must be >= 0 (got {args.retries})")
    if args.snapshot_every is not None:
        if args.snapshot_every <= 0:
            parser.error(
                f"--snapshot-every must be positive (got {args.snapshot_every})"
            )
        if not args.checkpoint and args.experiment != "serve":
            parser.error("--snapshot-every requires --checkpoint (snapshots "
                         "live under the checkpoint directory; 'serve' "
                         "keeps its own under --serve-dir)")
    if args.resume and args.experiment != "run":
        parser.error("--resume only applies to 'run'")
    try:
        args.jobs = resolve_jobs(args.jobs)
    except ValueError as err:
        parser.error(f"--{err}")
    if args.worker_deadline is not None and args.worker_deadline <= 0:
        parser.error(
            f"--worker-deadline must be positive (got {args.worker_deadline})"
        )
    if args.max_respawns is not None and args.max_respawns < 0:
        parser.error(
            f"--max-respawns must be >= 0 (got {args.max_respawns})"
        )
    if args.smoke and args.experiment not in ("bench", "trace", "fidelity",
                                              "tournament"):
        parser.error("--smoke only applies to 'bench', 'trace', 'fidelity' "
                     "and 'tournament'")
    if args.epochs is not None:
        if args.experiment != "train-rlws":
            parser.error("--epochs only applies to 'train-rlws'")
        if args.epochs <= 0:
            parser.error(f"--epochs must be positive (got {args.epochs})")
    elif args.experiment == "train-rlws":
        args.epochs = 4
    if args.qtable_out and args.experiment != "train-rlws":
        parser.error("--qtable-out only applies to 'train-rlws'")
    if args.window <= 0:
        parser.error(f"--window must be positive (got {args.window})")
    if args.bench_out and args.experiment != "bench":
        parser.error("--bench-out only applies to 'bench'")
    if args.compare is not None:
        if args.experiment != "bench":
            parser.error("--compare only applies to 'bench'")
        for path in args.compare:
            if not os.path.exists(path):
                parser.error(f"--compare input does not exist: {path}")
    if args.json_out and args.experiment == "all":
        parser.error(
            "--json is not supported for 'all' (its sections have no "
            "common schema); export experiments individually"
        )
    if args.experiment == "fidelity":
        if args.smoke and args.full:
            parser.error("--smoke and --full are mutually exclusive")
    else:
        for flag, on in (("--full", args.full),
                         ("--accept-baseline", args.accept_baseline),
                         ("--expectations", args.expectations is not None)):
            if on:
                parser.error(f"{flag} only applies to 'fidelity'")
    if args.experiment == "diff-baseline" and (
            not args.kernel or not args.arg2):
        parser.error("diff-baseline requires two baseline files or "
                     "directories: pro-sim diff-baseline A B")
    _guard_overwrite(parser, args)


def to_jsonable(result) -> dict:
    """Convert an experiment result dataclass to plain JSON-able data.

    Dict keys that are not str/int are stringified; dataclass fields are
    flattened recursively. Render-only helpers are dropped.
    """

    def convert(obj):
        if dataclasses.is_dataclass(obj) and not isinstance(obj, type):
            return {
                f.name: convert(getattr(obj, f.name))
                for f in dataclasses.fields(obj)
            }
        if isinstance(obj, dict):
            return {str(k): convert(v) for k, v in obj.items()}
        if isinstance(obj, (list, tuple)):
            return [convert(v) for v in obj]
        return obj

    return convert(result)


def _dump_json(path: str, payload) -> None:
    with open(path, "w") as f:
        json.dump(payload, f, indent=2, default=str)


def _render_failures(failed: List[Tuple[str, ReproError]],
                     cells: List[CellFailure]) -> str:
    """The FAILURES section appended to a --keep-going report."""
    lines = ["### FAILURES", f"{len(failed)} experiment(s) failed:"]
    for name, err in failed:
        headline = getattr(err, "headline", None) or str(err)
        lines.append(
            f"  {name}: {type(err).__name__}: {headline.splitlines()[0]}"
        )
    if cells:
        lines.append("Failed cells (after retries):")
        # Two experiments needing the same cell both record its failure;
        # list each cell once.
        for desc in dict.fromkeys(cell.describe() for cell in cells):
            lines.append(f"  {desc}")
    lines.append("(re-run with --checkpoint to resume; completed cells are "
                 "not re-simulated)")
    return "\n".join(lines)


def _prewarm_matrix(setup: ExperimentSetup, args: argparse.Namespace) -> None:
    """Fill the cache's run matrix in parallel before experiments render.

    Only fires for matrix-shaped experiments with ``--jobs > 1``; the
    experiments then answer every plain cell from the memo. Failed cells
    under ``--keep-going`` are left missing — the sequential experiment
    path re-encounters (and re-reports) them as before.
    """
    schedulers = _MATRIX_SCHEDULERS.get(args.experiment)
    if schedulers is None or setup.jobs <= 1:
        return
    setup.prewarm(schedulers=schedulers, keep_going=args.keep_going)


def _run_trace(cache: ResultCache, args: argparse.Namespace) -> List[str]:
    """One instrumented run: metrics JSONL/CSV + Perfetto trace JSON."""
    from ..obs import ChromeTraceProbe, MetricsSampler

    kernel = args.kernel or "scalarProdGPU"
    if args.smoke:
        # Quick CI variant; write back so the report footer tells the truth.
        args.sms, args.scale = 2, 0.25
    cfg = GPUConfig.scaled(args.sms)
    scale = args.scale
    sampler = MetricsSampler(window=args.window)
    chrome = ChromeTraceProbe()
    result = cache.run(get_kernel(kernel), args.scheduler, cfg, scale,
                       probes=(sampler, chrome))
    chrome.write(args.trace_out)
    if args.metrics_out.endswith(".csv"):
        sampler.write_csv(args.metrics_out)
    else:
        sampler.write_jsonl(args.metrics_out)
    totals = sampler.stall_totals()
    c = result.counters
    return [
        result.summary(),
        f"windows sampled: {len(sampler.rows())} "
        f"(width {args.window} cycles)",
        f"trace events: {len(chrome.events)} -> {args.trace_out} "
        "(open at https://ui.perfetto.dev)",
        f"metrics stream -> {args.metrics_out}",
        "stall cycles (windowed == counters): "
        f"idle {totals['idle']}=={c.stall_idle} "
        f"scoreboard {totals['scoreboard']}=={c.stall_scoreboard} "
        f"pipeline {totals['pipeline']}=={c.stall_pipeline}",
    ]


def _run_tournament(setup: ExperimentSetup, args: argparse.Namespace,
                    chunks: List[str]) -> None:
    """Race the six first-class schedulers; emit report + optional JSON.

    ``--smoke`` uses the fidelity smoke kernel subset (geometry already
    resolved to 2 SMs at scale 0.25); the default is the full Table II
    matrix. Like fidelity, the markdown rendering is appended to
    ``$GITHUB_STEP_SUMMARY`` when CI sets it.
    """
    from ..fidelity.expectations import SMOKE_KERNELS
    from .tournament import run_tournament

    kernels = SMOKE_KERNELS if args.smoke else None
    result = run_tournament(setup, kernels=kernels,
                            keep_going=args.keep_going)
    chunks.append(result.render())
    if args.json_out:
        _dump_json(args.json_out, result.to_json())
    summary_path = os.environ.get("GITHUB_STEP_SUMMARY")
    if summary_path:
        with open(summary_path, "a") as f:
            f.write(result.render_markdown())


def _run_fidelity(setup: ExperimentSetup, args: argparse.Namespace,
                  chunks: List[str]) -> bool:
    """Score the reproduction; returns the gate verdict (False = fail)."""
    from ..fidelity import (
        BaselineStore,
        load_expectations,
        measure,
        resolve_profile,
        score,
    )

    profile = resolve_profile("full" if args.full else "smoke")
    expectations = load_expectations(args.expectations)
    store = BaselineStore(args.baseline)
    measurement = measure(profile, setup=setup)
    if args.accept_baseline:
        path = store.accept(measurement)
        chunks.append(f"baseline promoted: {path}")
    report = score(measurement, expectations, baseline=store)
    chunks.append(report.render())
    if args.json_out:
        _dump_json(args.json_out, report.to_json())
    summary_path = os.environ.get("GITHUB_STEP_SUMMARY")
    if summary_path:
        with open(summary_path, "a") as f:
            f.write(report.render_markdown())
    return report.ok


def main(argv: Optional[list] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    _validate_args(parser, args)

    if args.experiment == "serve":
        from ..serve.cli import run_serve

        return run_serve(args)

    if args.experiment == "diff-baseline":
        from ..fidelity import diff_baselines

        print(diff_baselines(args.kernel, args.arg2))
        return EXIT_OK

    if args.experiment == "bench" and args.compare is not None:
        from .bench import compare_bench

        with open(args.compare[0]) as f:
            old = json.load(f)
        with open(args.compare[1]) as f:
            new = json.load(f)
        print(compare_bench(old, new))
        return EXIT_OK

    checkpoint = (
        CheckpointStore(args.checkpoint) if args.checkpoint else None
    )
    policy = CellPolicy(retries=args.retries, cell_timeout=args.cell_timeout,
                        snapshot_every=args.snapshot_every,
                        backend=args.backend)
    cache = ResultCache(checkpoint=checkpoint, policy=policy)
    pool_config = None
    if args.worker_deadline is not None or args.max_respawns is not None:
        from .pool import PoolConfig

        overrides = {}
        if args.worker_deadline is not None:
            overrides["worker_deadline"] = args.worker_deadline
        if args.max_respawns is not None:
            overrides["max_respawns"] = args.max_respawns
        pool_config = PoolConfig(**overrides)
    setup = ExperimentSetup(config=GPUConfig.scaled(args.sms),
                            scale=args.scale, cache=cache, jobs=args.jobs,
                            pool_config=pool_config)

    chunks = []
    failed: List[Tuple[str, ReproError]] = []
    fidelity_ok = True
    t0 = time.time()
    # One SIGINT/SIGTERM = cooperative stop (snapshot the in-flight cell,
    # unwind as SimulationInterrupted); a second one kills the process.
    interrupt_guard = contextlib.ExitStack()
    interrupt_guard.enter_context(graceful_interrupts(cache))
    try:
        if args.experiment == "bench":
            report = run_bench(jobs=args.jobs, smoke=args.smoke,
                               sms=args.sms, out_path=args.bench_out,
                               pool_config=pool_config,
                               backend=args.backend)
            chunks.append(report.render())
            if args.json_out:
                _dump_json(args.json_out, report.to_json())
        elif args.experiment == "trace":
            chunks.extend(_run_trace(cache, args))
        elif args.experiment == "fidelity":
            fidelity_ok = _run_fidelity(setup, args, chunks)
        elif args.experiment == "tournament":
            _run_tournament(setup, args, chunks)
        elif args.experiment == "train-rlws":
            from ..core.rlws_train import save_artifact, train

            training = train(epochs=args.epochs, sms=args.sms,
                             scale=args.scale, jobs=args.jobs)
            chunks.append(training.render())
            if args.qtable_out:
                path = save_artifact(training, args.qtable_out)
                chunks.append(f"Q-table artifact -> {path} "
                              f"(activate with REPRO_RLWS_QTABLE={path})")
            if args.json_out:
                _dump_json(args.json_out, training.to_json())
        elif args.experiment == "run":
            if args.resume:
                result = Gpu.resume(args.resume,
                                    register=cache._register_gpu,
                                    backend=args.backend)
            elif not args.kernel:
                print("error: 'run' requires a kernel name (or --resume)",
                      file=sys.stderr)
                return EXIT_USAGE
            else:
                result = setup.run(get_kernel(args.kernel), args.scheduler)
            chunks.append(result.summary())
            b = result.counters.stall_breakdown()
            chunks.append(
                f"stall breakdown: idle={b['idle']:.1%} "
                f"scoreboard={b['scoreboard']:.1%} pipeline={b['pipeline']:.1%}"
            )
            if args.json_out:
                _dump_json(args.json_out, {
                    "kernel": result.kernel_name,
                    "scheduler": result.scheduler,
                    "num_tbs": result.num_tbs,
                    "cycles": result.cycles,
                    "ipc": result.ipc,
                    "counters": to_jsonable(result.counters),
                })
        elif args.experiment == "all":
            _prewarm_matrix(setup, args)
            for name, fn in EXPERIMENTS.items():
                chunks.append(f"### {name}")
                if args.keep_going:
                    try:
                        chunks.append(fn(setup).render())
                    except ReproError as err:
                        failed.append((name, err))
                        headline = getattr(err, "headline", str(err))
                        chunks.append(
                            f"[FAILED: {type(err).__name__}: "
                            f"{headline.splitlines()[0]}]"
                        )
                else:
                    chunks.append(fn(setup).render())
                chunks.append("")
            if failed:
                chunks.append(_render_failures(failed, cache.failures))
        elif args.experiment == "table4" and args.threshold is not None:
            result = experiments.table4_sort_trace(setup,
                                                   threshold=args.threshold)
            chunks.append(result.render())
            if args.json_out:
                _dump_json(args.json_out, to_jsonable(result))
        else:
            _prewarm_matrix(setup, args)
            result = EXPERIMENTS[args.experiment](setup)
            chunks.append(result.render())
            if args.json_out:
                _dump_json(args.json_out, to_jsonable(result))
    except SimulationInterrupted as err:
        note = (f" (snapshot: {err.snapshot_path})"
                if err.snapshot_path else "")
        print(f"interrupted: {err.headline}{note}", file=sys.stderr)
        if args.checkpoint:
            print("re-run the same command to resume from the checkpoint",
                  file=sys.stderr)
        return EXIT_INTERRUPTED
    except ReproError as err:
        # Structured simulation errors carry their diagnostic report in
        # str(); surface it instead of a raw traceback.
        print(f"error: {err}", file=sys.stderr)
        return EXIT_FAILURE
    finally:
        interrupt_guard.close()
    chunks.append(f"\n[{time.time() - t0:.1f}s, {args.sms} SMs, "
                  f"scale {args.scale}]")

    report = "\n".join(chunks)
    print(report)
    if args.out:
        with open(args.out, "w") as f:
            f.write(report + "\n")
    if failed:
        return EXIT_PARTIAL
    return EXIT_OK if fidelity_ok else EXIT_FAILURE


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
