"""Tests for the PRO scheduler (Algorithm 1) — manager-level behaviour.

A bare single-SM rig drives the real issue loop; the ProManager's lists,
states and orderings are then inspected directly.
"""

from repro.config import GPUConfig
from repro.core.pro import ProManager, make_pro_factory
from repro.core.scheduler import build_schedulers
from repro.core.tb_state import TbState
from repro.isa.builder import ProgramBuilder
from repro.memory.subsystem import MemorySubsystem
from repro.simt.sm import StreamingMultiprocessor
from repro.simt.threadblock import ThreadBlock


def make_cfg(**kw):
    base = dict(tb_launch_latency=0)
    base.update(kw)
    return GPUConfig.scaled(1).with_(**base)


def make_sm(cfg, scheduler="pro"):
    memory = MemorySubsystem(cfg)
    sm = StreamingMultiprocessor(0, cfg, memory, gpu=None)
    sm.attach_schedulers(build_schedulers(scheduler, sm, cfg))
    return sm


def manager_of(sm) -> ProManager:
    return sm.schedulers[0].manager


def assign(sm, prog, tb_index=0, cycle=0):
    prog.finalize(sm.cfg.latency)
    tb = ThreadBlock(tb_index, prog)
    sm.assign_tb(tb, cycle)
    return tb


def drive(sm, max_cycles=1_000_000):
    cycle = 0
    while sm.resident_tbs:
        cycle = max(cycle, sm.sleep_until)
        assert cycle <= max_cycles, "SM did not drain"
        sm.step(cycle)
        cycle += 1
    return cycle


def simple_prog(n_alu=3, threads=64, name="p"):
    b = ProgramBuilder(name, threads_per_tb=threads)
    for _ in range(n_alu):
        b.ialu(1)
    return b.build()


class TestManagerWiring:
    def test_shared_manager_between_schedulers(self):
        sm = make_sm(make_cfg())
        assert sm.schedulers[0].manager is sm.schedulers[1].manager

    def test_single_listener(self):
        sm = make_sm(make_cfg())
        assert len(sm.listeners) == 1
        assert isinstance(sm.listeners[0], ProManager)

    def test_tb_assignment_creates_record(self):
        sm = make_sm(make_cfg())
        tb = assign(sm, simple_prog())
        mgr = manager_of(sm)
        assert tb.tb_index in mgr.records
        assert mgr.records[tb.tb_index].state is TbState.NO_WAIT
        assert mgr.no_wait[0].tb is tb

    def test_tb_finish_removes_record(self):
        sm = make_sm(make_cfg())
        tb = assign(sm, simple_prog())
        drive(sm)
        mgr = manager_of(sm)
        assert tb.tb_index not in mgr.records
        assert not mgr.no_wait and not mgr.finish_wait

    def test_order_partitioned_by_scheduler(self):
        sm = make_sm(make_cfg())
        assign(sm, simple_prog(threads=128))
        mgr = manager_of(sm)
        for sid in (0, 1):
            assert all(w.sched_id == sid for w in mgr.order(sid, 0))


class TestNoWaitPriority:
    def test_fast_phase_descending_progress(self):
        sm = make_sm(make_cfg())
        a = assign(sm, simple_prog(name="a"), tb_index=0)
        b = assign(sm, simple_prog(name="b"), tb_index=1)
        # manufacture unequal progress
        a.warps[0].progress = 10
        b.warps[0].progress = 500
        mgr = manager_of(sm)
        mgr._sort_rem(mgr.no_wait)
        assert mgr.no_wait[0].tb is b  # more progress first (SRTF)

    def test_tie_broken_by_index(self):
        sm = make_sm(make_cfg())
        assign(sm, simple_prog(name="a"), tb_index=3)
        b = assign(sm, simple_prog(name="b"), tb_index=1)
        mgr = manager_of(sm)
        mgr._sort_rem(mgr.no_wait)
        assert mgr.no_wait[0].tb is b

    def test_threshold_sort_period(self):
        cfg = make_cfg(pro_sort_threshold=100)
        sm = make_sm(cfg)
        a = assign(sm, simple_prog(name="a"), tb_index=0)
        b = assign(sm, simple_prog(name="b"), tb_index=1)
        mgr = manager_of(sm)
        b.warps[0].progress = 999
        mgr.order(0, cycle=50)       # below threshold: no resort
        assert mgr.no_wait[0].tb is a
        mgr.order(0, cycle=150)      # above: resort happens
        assert mgr.no_wait[0].tb is b


class TestFinishWait:
    def divergent_prog(self):
        # warp 0 exits after 1 pass; warp 1 after 12 passes
        b = ProgramBuilder("div", threads_per_tb=64)
        with b.loop(times=lambda tb, w: 1 + 11 * w):
            b.ialu(1)
        return b.build()

    def test_promotion_on_first_finish(self):
        sm = make_sm(make_cfg())
        tb = assign(sm, self.divergent_prog())
        mgr = manager_of(sm)
        cycle = 0
        while tb.n_finished == 0:
            cycle = max(cycle, sm.sleep_until)
            sm.step(cycle)
            cycle += 1
        rec = mgr.records[tb.tb_index]
        assert rec.state is TbState.FINISH_WAIT
        assert mgr.finish_wait and mgr.finish_wait[0] is rec
        drive(sm)

    def test_finish_wait_has_top_priority(self):
        sm = make_sm(make_cfg())
        fast = assign(sm, self.divergent_prog(), tb_index=0)
        assign(sm, simple_prog(n_alu=40, name="s"), tb_index=1)
        mgr = manager_of(sm)
        cycle = 0
        while fast.n_finished == 0 and sm.resident_tbs:
            cycle = max(cycle, sm.sleep_until)
            sm.step(cycle)
            cycle += 1
        if fast.n_finished and not fast.all_finished:
            order = mgr.order(1, cycle)
            live_fast = [w for w in fast.warps if not w.finished
                         and w.sched_id == 1]
            if live_fast and order:
                assert order[0].tb is fast


class TestBarrierWait:
    def barrier_prog(self):
        b = ProgramBuilder("bar", threads_per_tb=64)
        with b.loop(times=lambda tb, w: 1 + 14 * w):  # w1 is much slower
            b.ialu(1)
        b.barrier()
        b.ialu(2)
        return b.build()

    def test_promotion_on_first_barrier_arrival(self):
        sm = make_sm(make_cfg())
        tb = assign(sm, self.barrier_prog())
        mgr = manager_of(sm)
        cycle = 0
        while tb.n_at_barrier == 0 and not tb.all_finished:
            cycle = max(cycle, sm.sleep_until)
            sm.step(cycle)
            cycle += 1
        rec = mgr.records[tb.tb_index]
        assert rec.state is TbState.BARRIER_WAIT
        assert mgr.barrier_wait[0] is rec
        drive(sm)
        assert tb.all_finished

    def test_release_returns_to_nowait_in_fast_phase(self):
        sm = make_sm(make_cfg())
        assign(sm, self.barrier_prog())
        mgr = manager_of(sm)
        drive(sm)
        # after completion the record is gone; but mid-run transitions were
        # legal (no SchedulerError raised) and lists are empty again
        assert not mgr.barrier_wait

    def test_barrier_wait_sorted_by_waiting_warps(self):
        sm = make_sm(make_cfg(max_tbs_per_sm=4))
        a = assign(sm, self.barrier_prog(), tb_index=0)
        b = assign(sm, self.barrier_prog(), tb_index=1)
        mgr = manager_of(sm)
        ra, rb = mgr.records[0], mgr.records[1]
        ra.state = TbState.BARRIER_WAIT
        rb.state = TbState.BARRIER_WAIT
        mgr.barrier_wait = [ra, rb]
        a.n_at_barrier = 1
        b.n_at_barrier = 2
        mgr._sort_barrier_wait()
        assert mgr.barrier_wait[0] is rb  # more warps at barrier first


class TestPhaseTransition:
    class FakeTbScheduler:
        def __init__(self):
            self.pending = True

        def has_pending(self):
            return self.pending

    class FakeGpu:
        def __init__(self):
            self.tb_scheduler = TestPhaseTransition.FakeTbScheduler()

        def on_tb_finished(self, sm, cycle):
            pass

    def test_merge_on_fast_to_slow(self):
        sm = make_sm(make_cfg())
        gpu = self.FakeGpu()
        sm.gpu = gpu
        a = assign(sm, simple_prog(name="a"), tb_index=0)
        mgr = manager_of(sm)
        assert mgr.fast_phase
        gpu.tb_scheduler.pending = False
        mgr.order(0, cycle=10)
        assert not mgr.fast_phase
        rec = mgr.records[a.tb_index]
        assert rec.state is TbState.FINISH_NO_WAIT
        assert mgr.finish_no_wait and not mgr.no_wait

    def test_slow_phase_ascending_progress(self):
        sm = make_sm(make_cfg())
        gpu = self.FakeGpu()
        gpu.tb_scheduler.pending = False
        sm.gpu = gpu
        a = assign(sm, simple_prog(name="a"), tb_index=0)
        b = assign(sm, simple_prog(name="b"), tb_index=1)
        mgr = manager_of(sm)
        mgr.order(0, cycle=1)  # trigger transition
        a.warps[0].progress = 500
        b.warps[0].progress = 10
        mgr._sort_rem(mgr.finish_no_wait)
        assert mgr.finish_no_wait[0].tb is b  # least progress first

    def test_new_tb_in_slow_phase_lands_in_finish_no_wait(self):
        sm = make_sm(make_cfg())
        gpu = self.FakeGpu()
        gpu.tb_scheduler.pending = False
        sm.gpu = gpu
        mgr = manager_of(sm)
        mgr.order(0, cycle=1)
        assign(sm, simple_prog(), tb_index=5)
        assert mgr.records[5].state is TbState.FINISH_NO_WAIT


class TestAblationVariants:
    def test_pro_nb_ignores_barriers(self):
        sm = make_sm(make_cfg(), scheduler="pro-nb")
        b = ProgramBuilder("bar", threads_per_tb=64)
        with b.loop(times=lambda tb, w: 1 + 9 * w):
            b.ialu(1)
        b.barrier()
        b.ialu(2)
        tb = assign(sm, b.build())
        mgr = manager_of(sm)
        cycle = 0
        saw_barrier_state = False
        while sm.resident_tbs:
            cycle = max(cycle, sm.sleep_until)
            sm.step(cycle)
            if mgr.barrier_wait:
                saw_barrier_state = True
            cycle += 1
        assert not saw_barrier_state
        assert tb.all_finished  # physical barrier still enforced

    def test_pro_nf_ignores_finishes(self):
        sm = make_sm(make_cfg(), scheduler="pro-nf")
        b = ProgramBuilder("div", threads_per_tb=64)
        with b.loop(times=lambda tb, w: 1 + 11 * w):
            b.ialu(1)
        tb = assign(sm, b.build())
        mgr = manager_of(sm)
        cycle = 0
        saw_finish_state = False
        while sm.resident_tbs:
            cycle = max(cycle, sm.sleep_until)
            sm.step(cycle)
            if mgr.finish_wait:
                saw_finish_state = True
            cycle += 1
        assert not saw_finish_state
        assert tb.all_finished

    def test_custom_threshold_factory(self):
        from repro.core.variants import pro_with_threshold

        name = pro_with_threshold(12345)
        assert name == "pro-t12345"
        sm = make_sm(make_cfg(), scheduler=name)
        assert manager_of(sm).threshold == 12345

    def test_factory_flags(self):
        cfg = make_cfg()
        sm0 = StreamingMultiprocessor(0, cfg, MemorySubsystem(cfg), gpu=None)
        scheds = make_pro_factory(handle_barrier=False)(sm0, cfg)
        assert scheds[0].manager.handle_barrier is False
        assert scheds[0].manager.handle_finish is True
