"""Append-only JSONL ledger of every job transition the service makes.

One JSON object per line, written under a lock so concurrent HTTP
submissions and the runner thread interleave whole lines, never bytes:

    {"ts": ..., "seq": 3, "event": "state", "job": "j0002-ab12cd34",
     "state": "running", "detail": ""}

``event`` values: ``service-start`` / ``service-stop`` (lifecycle),
``submitted``, ``state`` (every state transition), ``cache-hit`` (a job
answered without simulating — the dedup audit trail), ``coalesced``,
``preempt-request``, ``preempted``, ``resumed`` (a preempted job
continued from its snapshot), ``pool`` (worker-pool telemetry such as
worker-death/respawn/quarantine). The file is an artifact: the overwrite
guard of :mod:`repro.harness.outputs` applies (``--force`` to restart a
service over an old ledger).
"""

from __future__ import annotations

import json
import threading
import time
from pathlib import Path
from typing import Any, Dict, List, Optional

from ..harness.outputs import guard_output

from .jobs import Job


class JobLedger:
    """Thread-safe JSONL transition log (one writer process)."""

    def __init__(
        self,
        path: str | Path,
        *,
        force: bool = False,
        flag: str = "ledger",
    ) -> None:
        self.path = Path(path)
        guard_output(self.path, force=force, flag=flag)
        self.path.parent.mkdir(parents=True, exist_ok=True)
        self._lock = threading.Lock()
        self._seq = 0
        self._fh = open(self.path, "w", encoding="utf-8")

    def record(
        self,
        event: str,
        *,
        job: Optional[Job] = None,
        state: Optional[str] = None,
        detail: str = "",
        **extra: Any,
    ) -> None:
        entry: Dict[str, Any] = {
            "ts": round(time.time(), 6),
            "event": event,
        }
        if job is not None:
            entry["job"] = job.id
            entry["key"] = job.key
            entry["kind"] = job.spec.kind
        if state is not None:
            entry["state"] = state
        if detail:
            entry["detail"] = detail
        entry.update(extra)
        # seq is assigned under the lock, so seq order == file order.
        with self._lock:
            entry["seq"] = self._seq
            self._seq += 1
            self._fh.write(json.dumps(entry, sort_keys=True) + "\n")
            self._fh.flush()

    def close(self) -> None:
        with self._lock:
            if not self._fh.closed:
                self._fh.close()

    # ------------------------------------------------------------------
    def entries(self) -> List[dict]:
        """Parse the ledger back (tests, the /ledger endpoint)."""
        return self.load(self.path)

    @staticmethod
    def load(path: str | Path) -> List[dict]:
        out: List[dict] = []
        p = Path(path)
        if not p.exists():
            return out
        for line in p.read_text(encoding="utf-8").splitlines():
            line = line.strip()
            if not line:
                continue
            try:
                out.append(json.loads(line))
            except json.JSONDecodeError:
                # A torn final line (reader racing the writer) is not an
                # integrity failure; whole past lines always parse.
                continue
        return out
