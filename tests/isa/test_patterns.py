"""Unit tests for the memory address pattern generators."""

import pytest

from repro.config import LINE_SIZE
from repro.errors import ProgramError
from repro.isa.patterns import (
    AccessContext,
    Broadcast,
    Chase,
    Coalesced,
    Random,
    Strided,
)


def ctx(tb=0, w=0, it=0, active=32):
    return AccessContext(tb_index=tb, warp_in_tb=w, iteration=it, active=active)


class TestCoalesced:
    def test_single_transaction(self):
        assert len(Coalesced().lines(ctx())) == 1

    def test_lines_are_aligned(self):
        for pattern in (Coalesced(base=5), Coalesced(base=130)):
            (line,) = pattern.lines(ctx())
            assert line % LINE_SIZE == 0

    def test_distinct_warps_distinct_lines(self):
        p = Coalesced()
        lines = {p.lines(ctx(w=w))[0] for w in range(8)}
        assert len(lines) == 8

    def test_distinct_tbs_distinct_lines(self):
        p = Coalesced()
        lines = {p.lines(ctx(tb=t))[0] for t in range(8)}
        assert len(lines) == 8

    def test_iter_stride_advances(self):
        p = Coalesced(iter_stride=LINE_SIZE)
        a = p.lines(ctx(it=0))[0]
        b = p.lines(ctx(it=1))[0]
        assert b - a == LINE_SIZE

    def test_zero_iter_stride_repeats(self):
        p = Coalesced()
        assert p.lines(ctx(it=0)) == p.lines(ctx(it=5))

    def test_warp_region_spacing(self):
        p = Coalesced(warp_region=4096)
        a = p.lines(ctx(w=0))[0]
        b = p.lines(ctx(w=1))[0]
        assert b - a == 4096

    def test_negative_fields_rejected(self):
        with pytest.raises(ProgramError):
            Coalesced(base=-1)


class TestStrided:
    def test_small_stride_one_line(self):
        # 32 lanes x 4 B = 128 B = exactly one line
        assert len(Strided(stride=4).lines(ctx())) == 1

    def test_stride_16_four_lines(self):
        # 32 lanes x 16 B = 512 B = 4 lines
        assert len(Strided(stride=16).lines(ctx())) == 4

    def test_huge_stride_one_line_per_lane(self):
        assert len(Strided(stride=LINE_SIZE).lines(ctx())) == 32

    def test_active_limits_lines(self):
        assert len(Strided(stride=LINE_SIZE).lines(ctx(active=5))) == 5

    def test_lines_aligned(self):
        for line in Strided(stride=48, base=7).lines(ctx()):
            assert line % LINE_SIZE == 0

    def test_invalid_stride(self):
        with pytest.raises(ProgramError):
            Strided(stride=0)


class TestRandom:
    def test_deterministic(self):
        p = Random(1 << 20, txns=8, seed=3)
        assert p.lines(ctx(tb=2, w=1, it=4)) == p.lines(ctx(tb=2, w=1, it=4))

    def test_contexts_differ(self):
        p = Random(1 << 20, txns=8, seed=3)
        assert p.lines(ctx(tb=0)) != p.lines(ctx(tb=1))

    def test_txn_cap(self):
        p = Random(1 << 24, txns=16)
        assert len(p.lines(ctx())) <= 16

    def test_active_caps_txns(self):
        p = Random(1 << 24, txns=32)
        assert len(p.lines(ctx(active=4))) <= 4

    def test_lines_within_footprint(self):
        fp = 1 << 16
        p = Random(fp, txns=32, base=1 << 20)
        for line in p.lines(ctx()):
            assert (1 << 20) <= line < (1 << 20) + fp

    def test_lines_distinct(self):
        p = Random(1 << 24, txns=32)
        lines = p.lines(ctx())
        assert len(lines) == len(set(lines))

    def test_footprint_too_small_rejected(self):
        with pytest.raises(ProgramError):
            Random(64)

    def test_txns_out_of_range(self):
        with pytest.raises(ProgramError):
            Random(1 << 20, txns=0)
        with pytest.raises(ProgramError):
            Random(1 << 20, txns=33)


class TestChase:
    def test_single_transaction(self):
        assert len(Chase(1 << 20).lines(ctx())) == 1

    def test_iteration_dependent(self):
        p = Chase(1 << 24, seed=9)
        hops = [p.lines(ctx(it=i))[0] for i in range(8)]
        assert len(set(hops)) > 1  # the walk moves

    def test_deterministic(self):
        p = Chase(1 << 20, seed=1)
        assert p.lines(ctx(tb=3, w=2, it=7)) == p.lines(ctx(tb=3, w=2, it=7))

    def test_within_footprint(self):
        p = Chase(1 << 16, base=1 << 26)
        for i in range(32):
            (line,) = p.lines(ctx(it=i))
            assert (1 << 26) <= line < (1 << 26) + (1 << 16)


class TestBroadcast:
    def test_single_transaction(self):
        assert len(Broadcast().lines(ctx())) == 1

    def test_confined_to_table(self):
        p = Broadcast(base=4096, table_lines=4)
        for i in range(16):
            (line,) = p.lines(ctx(it=i))
            assert 4096 <= line < 4096 + 4 * LINE_SIZE

    def test_same_for_all_warps(self):
        p = Broadcast(table_lines=8)
        assert p.lines(ctx(tb=0, w=0)) == p.lines(ctx(tb=9, w=5))

    def test_invalid_table(self):
        with pytest.raises(ProgramError):
            Broadcast(table_lines=0)
