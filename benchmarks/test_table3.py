"""Benchmark: regenerate Table III (per-application stall ratios).

The aggregate stall-ratio bounds are judged through the shared fidelity
expectation data rather than inline constants (docs/fidelity.md).
"""

import pytest

from repro.fidelity import verdicts_for_stalls
from repro.harness.experiments import table3_stall_ratios

from .conftest import fresh_setup, once

pytestmark = [pytest.mark.bench, pytest.mark.slow]


def test_table3_stall_ratios(benchmark):
    result = once(benchmark, lambda: table3_stall_ratios(fresh_setup()))
    table = result.render_table3()
    assert "Table III" in table and "GEOMEAN" in table
    # every application row carries PRO's absolute stalls + 3x4 ratios
    for app, stalls in result.pro_stalls.items():
        assert set(stalls) == {"pipeline", "idle", "scoreboard"}
        for b in ("tl", "lrr", "gto"):
            assert set(result.ratios[app][b]) == {
                "pipeline", "idle", "scoreboard", "total"
            }
    benchmark.extra_info["geomean_total_vs_lrr"] = (
        result.geomeans["lrr"]["total"]
    )
    # Same geomean stall-ratio bands Fig. 5 is judged by.
    failures = [v for v in verdicts_for_stalls(result) if v.status == "fail"]
    assert not failures, "\n".join(
        f"{v.expectation_id}: measured {v.measured:.3f} outside {v.band} "
        f"({v.anchor})" for v in failures
    )
