#!/usr/bin/env python
"""Sensitivity sweeps: where does PRO's advantage come from?

Uses repro.analysis to sweep three axes on one kernel and watch the
PRO-vs-LRR gap move:

  * memory latency (longer latency -> more to hide -> scheduling matters),
  * occupancy (fewer resident TBs -> fewer warps -> scheduling matters),
  * grid size (more batches -> more residency staggering to exploit).

Usage::

    python examples/sensitivity_sweeps.py [kernel-name]
"""

import sys

from repro.analysis import grid_sweep, latency_sweep, occupancy_sweep


def main() -> None:
    kernel = sys.argv[1] if len(sys.argv) > 1 else "scalarProdGPU"

    lat = latency_sweep(kernel, factors=(0.5, 1.0, 2.0), num_sms=2,
                        scale=0.5, schedulers=("lrr", "pro"))
    print(lat.render())
    print(f"pro/lrr speedup across latency points: "
          f"{[round(s, 3) for s in lat.speedup_series()]}\n")

    occ = occupancy_sweep(kernel, tb_limits=(1, 2, 4, 8), num_sms=2,
                          scale=0.5, schedulers=("lrr", "pro"))
    print(occ.render())
    print(f"pro/lrr speedup across occupancy points: "
          f"{[round(s, 3) for s in occ.speedup_series()]}\n")

    grid = grid_sweep(kernel, scales=(0.5, 1.0, 2.0), num_sms=2,
                      schedulers=("lrr", "pro"))
    print(grid.render())
    print(f"pro/lrr speedup across grid points: "
          f"{[round(s, 3) for s in grid.speedup_series()]}")


if __name__ == "__main__":
    main()
