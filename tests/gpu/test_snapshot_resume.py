"""Gpu-level snapshot/resume: capture, schema checks, cooperative stop."""

import dataclasses
import json

import pytest

from repro import Gpu, GPUConfig, KernelLaunch
from repro.errors import SimulationInterrupted, SnapshotError
from repro.obs.bus import Probe
from repro.robustness.snapshot import (
    SNAPSHOT_SCHEMA_VERSION,
    build_snapshot,
    load_snapshot,
    program_digest,
    write_snapshot,
)
from tests.conftest import tiny_program

CFG = GPUConfig.scaled(2)


def _counters(result):
    return dataclasses.asdict(result.counters)


class _StopAt(Probe):
    def __init__(self, cycle):
        self.cycle = cycle
        self._gpu = None

    def on_run_start(self, gpu, launch):
        self._gpu = gpu

    def on_issue(self, cycle, sm_id, tb_index, warp_in_tb, pc, opcode,
                 active):
        if cycle >= self.cycle:
            self._gpu.request_stop()


def _interrupt_at(cfg, scheduler, snap, cycle, **prog_kwargs):
    launch = KernelLaunch(tiny_program(**prog_kwargs), 6)
    with pytest.raises(SimulationInterrupted) as exc:
        Gpu(cfg, scheduler).run(launch, probes=[_StopAt(cycle)],
                                snapshot_path=snap)
    return exc.value


class TestPeriodicSnapshots:
    def test_snapshotting_does_not_perturb_the_run(self, tmp_path):
        launch = KernelLaunch(tiny_program(barrier=True, loops=3), 6)
        baseline = Gpu(CFG, "pro").run(launch)
        launch2 = KernelLaunch(tiny_program(barrier=True, loops=3), 6)
        snapped = Gpu(CFG, "pro").run(
            launch2, snapshot_every=100, snapshot_path=tmp_path / "s.snap"
        )
        assert _counters(snapped) == _counters(baseline)
        assert (tmp_path / "s.snap").exists()
        assert not list(tmp_path.glob("*.tmp"))  # atomic write cleaned up

    def test_snapshot_every_requires_a_path(self):
        launch = KernelLaunch(tiny_program(), 2)
        with pytest.raises(SnapshotError):
            Gpu(CFG, "lrr").run(launch, snapshot_every=100)

    @pytest.mark.parametrize("sched", ["lrr", "tl", "gto", "pro"])
    def test_resume_from_last_periodic_snapshot(self, tmp_path, sched):
        launch = KernelLaunch(tiny_program(barrier=True, loops=3), 6)
        baseline = Gpu(CFG, sched).run(launch)
        snap = tmp_path / "cell.snap"
        launch2 = KernelLaunch(tiny_program(barrier=True, loops=3), 6)
        Gpu(CFG, sched).run(launch2, snapshot_every=baseline.cycles // 3,
                            snapshot_path=snap)
        launch3 = KernelLaunch(tiny_program(barrier=True, loops=3), 6)
        resumed = Gpu.resume(snap, launch=launch3)
        assert resumed.cycles == baseline.cycles
        assert _counters(resumed) == _counters(baseline)


class TestCooperativeStop:
    def test_stop_without_snapshot_config_still_raises(self):
        launch = KernelLaunch(tiny_program(), 6)
        with pytest.raises(SimulationInterrupted) as exc:
            Gpu(CFG, "lrr").run(launch, probes=[_StopAt(1)])
        assert exc.value.snapshot_path is None

    def test_stop_resume_on_the_heap_loop(self, tmp_path):
        # >= 8 SMs selects the heap-based main loop; the snapshot boundary
        # must behave identically there.
        cfg = GPUConfig.scaled(8)
        launch = KernelLaunch(tiny_program(barrier=True, loops=3), 24)
        baseline = Gpu(cfg, "pro").run(launch)
        snap = tmp_path / "heap.snap"
        launch2 = KernelLaunch(tiny_program(barrier=True, loops=3), 24)
        with pytest.raises(SimulationInterrupted):
            Gpu(cfg, "pro").run(launch2,
                                probes=[_StopAt(baseline.cycles // 2)],
                                snapshot_path=snap)
        launch3 = KernelLaunch(tiny_program(barrier=True, loops=3), 24)
        resumed = Gpu.resume(snap, launch=launch3)
        assert _counters(resumed) == _counters(baseline)

    def test_interrupt_reports_cycle_and_path(self, tmp_path):
        snap = tmp_path / "s.snap"
        err = _interrupt_at(CFG, "lrr", snap, 50)
        assert err.snapshot_path == str(snap)
        assert err.cycle >= 50
        assert snap.exists()


class TestSchemaChecks:
    def _snapshot(self, tmp_path):
        snap = tmp_path / "s.snap"
        _interrupt_at(CFG, "lrr", snap, 50)
        return snap

    def test_roundtrip_and_required_fields(self, tmp_path):
        snap = self._snapshot(tmp_path)
        data = load_snapshot(snap)
        assert data["schema"] == SNAPSHOT_SCHEMA_VERSION
        assert data["scheduler"] == "lrr"
        assert len(data["sms"]) == CFG.num_sms

    def test_non_snapshot_file_refused(self, tmp_path):
        bogus = tmp_path / "x.snap"
        bogus.write_text('{"kind": "something-else"}')
        with pytest.raises(SnapshotError):
            load_snapshot(bogus)

    def test_schema_version_mismatch_refused(self, tmp_path):
        snap = self._snapshot(tmp_path)
        data = json.loads(snap.read_text())
        data["schema"] = SNAPSHOT_SCHEMA_VERSION + 1
        snap.write_text(json.dumps(data))
        with pytest.raises(SnapshotError):
            load_snapshot(snap)

    def test_truncated_file_refused(self, tmp_path):
        snap = self._snapshot(tmp_path)
        snap.write_text(snap.read_text()[: len(snap.read_text()) // 2])
        with pytest.raises(SnapshotError):
            Gpu.resume(snap)

    def test_mismatched_program_refused(self, tmp_path):
        snap = self._snapshot(tmp_path)
        other = KernelLaunch(tiny_program(loops=5), 6)  # different structure
        with pytest.raises(SnapshotError):
            Gpu.resume(snap, launch=other)

    def test_mismatched_grid_refused(self, tmp_path):
        snap = self._snapshot(tmp_path)
        other = KernelLaunch(tiny_program(), 7)
        with pytest.raises(SnapshotError):
            Gpu.resume(snap, launch=other)

    def test_resume_without_launch_needs_a_launch_ref(self, tmp_path):
        snap = self._snapshot(tmp_path)  # ad-hoc program: no launch_ref
        with pytest.raises(SnapshotError):
            Gpu.resume(snap)

    def test_program_digest_is_structural(self):
        a = tiny_program()
        b = tiny_program()
        c = tiny_program(loops=5)
        assert program_digest(a) == program_digest(b)
        assert program_digest(a) != program_digest(c)

    def test_build_snapshot_is_json_serializable(self):
        prog = tiny_program()
        launch = KernelLaunch(prog, 4)
        gpu = Gpu(CFG, "pro")
        gpu.run(launch)
        data = build_snapshot(gpu, 0, program=prog, num_tbs=4)
        json.dumps(data)  # must not raise

    def test_write_snapshot_refuses_unwritable_path(self, tmp_path):
        target = tmp_path / "dir-not-file"
        target.mkdir()
        with pytest.raises(SnapshotError):
            write_snapshot(target, {"kind": "repro-snapshot"})


class TestLaunchRefResume:
    def test_registered_kernel_resumes_without_a_launch(self, tmp_path):
        from repro.workloads import get_kernel

        model = get_kernel("cenergy")
        launch = model.build_launch(0.1)
        baseline = Gpu(CFG, "gto").run(launch)
        snap = tmp_path / "ref.snap"
        launch2 = model.build_launch(0.1)
        with pytest.raises(SimulationInterrupted):
            Gpu(CFG, "gto").run(
                launch2, probes=[_StopAt(baseline.cycles // 2)],
                snapshot_path=snap,
                launch_ref={"kernel": "cenergy", "scale": 0.1},
            )
        resumed = Gpu.resume(snap)  # launch rebuilt from the registry
        assert _counters(resumed) == _counters(baseline)
