"""Exporter tests: JSONL/CSV writers, Chrome trace structure, goldens.

The golden files under ``tests/golden/`` pin the exporter *schemas*: the
simulator is deterministic, so the instrumented micro-run here must
reproduce the committed bytes exactly. Regenerate them (after a
deliberate schema change) with::

    PYTHONPATH=src python tests/obs/test_export.py --regen
"""

import json
from pathlib import Path

from repro import Gpu, GPUConfig, KernelLaunch
from repro.obs import ChromeTraceProbe, MetricsSampler
from repro.obs.export import write_csv, write_jsonl
from tests.conftest import tiny_program

GOLDEN = Path(__file__).resolve().parent.parent / "golden"
CFG = GPUConfig.scaled(2)


def _golden_run():
    """The fixed micro-run both golden files were generated from."""
    sampler = MetricsSampler(window=250)
    chrome = ChromeTraceProbe(window=250)
    result = Gpu(CFG, "pro").run(
        KernelLaunch(tiny_program(barrier=True), 6),
        probes=[sampler, chrome],
    )
    return sampler, chrome, result


class TestRowWriters:
    ROWS = [{"a": 1, "b": "x"}, {"a": 2, "b": "y"}]

    def test_write_jsonl(self, tmp_path):
        path = tmp_path / "rows.jsonl"
        write_jsonl(self.ROWS, path)
        lines = path.read_text().splitlines()
        assert [json.loads(line) for line in lines] == self.ROWS

    def test_write_csv(self, tmp_path):
        path = tmp_path / "rows.csv"
        write_csv(self.ROWS, path)
        assert path.read_text().splitlines() == ["a,b", "1,x", "2,y"]

    def test_write_csv_empty_rows_gives_empty_file(self, tmp_path):
        path = tmp_path / "empty.csv"
        write_csv([], path)
        assert path.read_text() == ""


class TestChromeTraceStructure:
    def test_document_shape(self):
        _, chrome, result = _golden_run()
        doc = chrome.to_json()
        assert set(doc) == {"traceEvents", "displayTimeUnit", "otherData"}
        meta = doc["otherData"]
        assert meta["kernel"] == "tiny"
        assert meta["scheduler"] == "pro"
        assert meta["cycles"] == result.cycles
        phases = {e["ph"] for e in doc["traceEvents"]}
        assert phases == {"M", "X", "i", "C"}

    def test_every_event_is_well_formed(self):
        _, chrome, result = _golden_run()
        for e in chrome.trace_events():
            assert isinstance(e["pid"], int)
            if e["ph"] == "X":
                assert e["dur"] >= 0
                assert 0 <= e["ts"] <= result.cycles
            if e["ph"] in ("X", "i"):
                assert e["tid"] in (0, 1, 2)

    def test_one_tb_slice_per_thread_block(self):
        _, chrome, result = _golden_run()
        tb_slices = [e for e in chrome.events
                     if e["ph"] == "X" and e["cat"] == "tb"]
        assert len(tb_slices) == result.num_tbs

    def test_stall_slices_sum_to_counter_totals(self):
        _, chrome, result = _golden_run()
        for sm in result.counters.per_sm:
            by_kind = {"idle": 0, "scoreboard": 0, "pipeline": 0}
            for e in chrome.events:
                if (e["ph"] == "X" and e["cat"] == "stall"
                        and e["pid"] == sm.sm_id):
                    by_kind[e["name"]] += e["dur"]
            assert by_kind["idle"] == sm.stall_idle
            assert by_kind["scoreboard"] == sm.stall_scoreboard
            assert by_kind["pipeline"] == sm.stall_pipeline

    def test_barrier_release_instants_present(self):
        _, chrome, _ = _golden_run()
        instants = [e for e in chrome.events if e["cat"] == "barrier"]
        assert len(instants) == 6  # one release per TB of the barrier kernel


class TestGoldenSchemas:
    """The committed exporter outputs must reproduce byte-for-byte."""

    def test_metrics_jsonl_matches_golden(self, tmp_path):
        sampler, _, _ = _golden_run()
        out = tmp_path / "metrics.jsonl"
        sampler.write_jsonl(out)
        assert out.read_text() == (GOLDEN / "metrics_tiny.jsonl").read_text()

    def test_chrome_trace_matches_golden(self, tmp_path):
        _, chrome, _ = _golden_run()
        out = tmp_path / "trace.json"
        chrome.write(out)
        assert out.read_text() == (GOLDEN / "trace_tiny.json").read_text()


if __name__ == "__main__":  # pragma: no cover - golden regeneration
    import sys

    if "--regen" in sys.argv:
        sampler, chrome, _ = _golden_run()
        sampler.write_jsonl(GOLDEN / "metrics_tiny.jsonl")
        chrome.write(GOLDEN / "trace_tiny.json")
        print(f"regenerated goldens under {GOLDEN}")
