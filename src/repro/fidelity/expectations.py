"""Machine-readable paper expectations with tolerance bands.

The paper's evaluation claims live in ``data/paper_expectations.json`` as
:class:`Expectation` records. Each record names the quantity it checks
(a *kind* plus kind-specific parameters), cites the paper figure/table it
reproduces, and carries two levels of bounds:

* a **shape** band — an absolute min/max that must hold at *any*
  simulation geometry (e.g. "PRO beats LRR on geometric mean"). Shape
  bands are what the benchmark suite asserts and what the scorer falls
  back to when the measurement was taken off the profile's canonical
  configuration;
* per-**profile** numeric targets — the value this reproduction measures
  at the profile's canonical (SMs, scale, kernel set), with a relative
  ``warn``/``fail`` tolerance band. Within ``warn`` passes, within
  ``fail`` warns, outside fails. The simulator is deterministic, so any
  movement at all is a real behavior change; the bands grade how much of
  one.

Expectations are data, not code: perturbing a band or target is a
one-line JSON diff, which is exactly how the fidelity CLI is verified
(see tests/fidelity/test_cli_fidelity.py).
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Tuple

from ..errors import ReproError

#: Kinds the scorer knows how to evaluate.
KINDS = (
    "geomean_speedup",   # geomean over profile kernels of PRO/<over>
    "kernel_speedup",    # one kernel's PRO/<over> speedup
    "stall_ratio_geomean",  # Fig. 5: per-app geomean of <over>/PRO total stalls
    "stall_share",       # Table III/Fig. 1: share of one stall class
    "gto_closest",       # ordering: GTO is the closest baseline
)

DATA_PATH = Path(__file__).parent / "data" / "paper_expectations.json"

SCHEMA_VERSION = 1


class ExpectationError(ReproError):
    """Malformed expectation data or an unsatisfiable lookup."""


@dataclass(frozen=True)
class Band:
    """One expectation's bounds.

    Numeric form: ``target`` with relative ``warn``/``fail`` tolerances.
    Shape form: absolute ``lo``/``hi`` bounds (fail outside, no warn
    region — shape violations mean the reproduction's direction broke).
    """

    target: Optional[float] = None
    warn: Optional[float] = None
    fail: Optional[float] = None
    lo: Optional[float] = None
    hi: Optional[float] = None

    def __post_init__(self) -> None:
        numeric = self.target is not None
        shaped = self.lo is not None or self.hi is not None
        if numeric == shaped:
            raise ExpectationError(
                "band needs either target+warn+fail or lo/hi bounds, "
                f"got {self!r}"
            )
        if numeric and (self.warn is None or self.fail is None):
            raise ExpectationError(f"numeric band missing warn/fail: {self!r}")
        if numeric and not 0 < self.warn <= self.fail:
            raise ExpectationError(
                f"need 0 < warn <= fail, got warn={self.warn} fail={self.fail}"
            )

    @property
    def is_numeric(self) -> bool:
        return self.target is not None

    def judge(self, measured: float) -> Tuple[str, float]:
        """Return (status, delta) for a measured value.

        For numeric bands ``delta`` is the relative deviation from the
        target; for shape bands it is the distance past the violated
        bound (0.0 when inside).
        """
        if self.is_numeric:
            delta = measured / self.target - 1.0 if self.target else 0.0
            if abs(delta) <= self.warn:
                return "pass", delta
            if abs(delta) <= self.fail:
                return "warn", delta
            return "fail", delta
        if self.lo is not None and measured < self.lo:
            return "fail", measured - self.lo
        if self.hi is not None and measured > self.hi:
            return "fail", measured - self.hi
        return "pass", 0.0

    def describe(self) -> str:
        if self.is_numeric:
            return (f"target {self.target:.3f} "
                    f"(warn ±{self.warn:.0%}, fail ±{self.fail:.0%})")
        parts = []
        if self.lo is not None:
            parts.append(f">= {self.lo:.3f}")
        if self.hi is not None:
            parts.append(f"<= {self.hi:.3f}")
        return " and ".join(parts)


@dataclass(frozen=True)
class Expectation:
    """One paper claim the scorer checks."""

    id: str
    kind: str
    #: Paper citation anchor, e.g. "Fig. 4" or "Table III, hotspot row".
    anchor: str
    #: The paper's own value for the quantity (context in reports; the
    #: reproduction's compressed magnitudes are graded by the bands).
    paper_value: Optional[float] = None
    #: Scale-independent bound; evaluated when no profile target applies.
    shape: Optional[Band] = None
    #: Profile name -> numeric band at that profile's canonical config.
    profiles: Dict[str, Band] = field(default_factory=dict)
    #: Kind parameters.
    scheduler: str = "pro"
    over: Optional[str] = None
    kernel: Optional[str] = None
    stall: Optional[str] = None
    margin: float = 0.0

    def band_for(self, profile: str, canonical: bool) -> Optional[Band]:
        """The band to judge with: the profile's numeric band when the
        measurement sits on the profile's canonical configuration, else
        the shape band (or None = not checkable)."""
        if canonical and profile in self.profiles:
            return self.profiles[profile]
        return self.shape


class Expectations:
    """A validated expectation set with lookup helpers."""

    def __init__(self, records: List[Expectation], source: str = "") -> None:
        self.records = records
        self.source = source
        self.by_id = {r.id: r for r in records}
        if len(self.by_id) != len(records):
            raise ExpectationError("duplicate expectation ids")

    def __iter__(self):
        return iter(self.records)

    def __len__(self) -> int:
        return len(self.records)

    def of_kind(self, kind: str) -> List[Expectation]:
        return [r for r in self.records if r.kind == kind]

    def get(self, eid: str) -> Expectation:
        try:
            return self.by_id[eid]
        except KeyError:
            raise ExpectationError(
                f"unknown expectation {eid!r}; have {sorted(self.by_id)}"
            ) from None


def _band(data: Optional[dict], where: str) -> Optional[Band]:
    if data is None:
        return None
    if not isinstance(data, dict):
        raise ExpectationError(f"{where}: band must be an object")
    allowed = {"target", "warn", "fail", "lo", "hi"}
    unknown = set(data) - allowed
    if unknown:
        raise ExpectationError(f"{where}: unknown band keys {sorted(unknown)}")
    return Band(**data)


def load_expectations(path: Optional[str | Path] = None) -> Expectations:
    """Load and validate an expectation file (default: the bundled one)."""
    path = Path(path) if path is not None else DATA_PATH
    try:
        data = json.loads(path.read_text(encoding="utf-8"))
    except FileNotFoundError:
        raise ExpectationError(f"expectation file not found: {path}") from None
    except json.JSONDecodeError as err:
        raise ExpectationError(f"expectation file {path} is not JSON: {err}") from None
    if data.get("schema") != SCHEMA_VERSION:
        raise ExpectationError(
            f"expectation schema {data.get('schema')!r} != {SCHEMA_VERSION}"
        )
    records = []
    for rec in data.get("expectations", []):
        where = rec.get("id", "<missing id>")
        if rec.get("kind") not in KINDS:
            raise ExpectationError(
                f"{where}: unknown kind {rec.get('kind')!r} (known: {KINDS})"
            )
        paper = rec.get("paper", {})
        records.append(Expectation(
            id=rec["id"],
            kind=rec["kind"],
            anchor=paper.get("anchor", ""),
            paper_value=paper.get("value"),
            shape=_band(rec.get("shape"), where),
            profiles={
                name: _band(b, f"{where}.profiles.{name}")
                for name, b in rec.get("profiles", {}).items()
            },
            scheduler=rec.get("scheduler", "pro"),
            over=rec.get("over"),
            kernel=rec.get("kernel"),
            stall=rec.get("stall"),
            margin=rec.get("margin", 0.0),
        ))
    if not records:
        raise ExpectationError(f"expectation file {path} holds no expectations")
    return Expectations(records, source=data.get("source", ""))


# ---------------------------------------------------------------------------
# profiles


@dataclass(frozen=True)
class FidelityProfile:
    """One canonical fidelity measurement geometry.

    ``smoke`` is the PR-gating subset (single-kernel applications, so
    per-app stall aggregation degenerates to per-kernel — cheap and
    unambiguous); ``full`` is the paper's whole Table II matrix at the
    scaled 4-SM configuration EXPERIMENTS.md reports.
    """

    name: str
    kernels: Tuple[str, ...]
    sms: int
    scale: float
    #: The measured matrix: the paper's four schedulers plus the
    #: post-2015 frontier entries. The frontier pair carries shape-band
    #: expectations only (the paper never ran them — there is no
    #: paper-numeric target to grade against), but their counters are
    #: part of the golden baseline, so silent behavior drift in either
    #: is caught the same way as for the original four.
    schedulers: Tuple[str, ...] = ("tl", "lrr", "gto", "pro",
                                   "rlws", "wasp")

    def key(self) -> str:
        """Content digest identifying the profile geometry (baseline
        filenames embed it, so geometry changes can never be confused
        with behavior changes)."""
        payload = json.dumps(
            {"kernels": self.kernels, "schedulers": self.schedulers,
             "sms": self.sms, "scale": self.scale},
            sort_keys=True,
        )
        return hashlib.sha256(payload.encode()).hexdigest()[:12]


#: Single-kernel applications spanning the suite's behavior space:
#: barrier-heavy (AES), cache-sensitive divergent (BFS — a kernel PRO
#: loses, so regressions in *both* directions are visible), compute
#: regular (CP), ray-divergent (STO), the paper's biggest stall win
#: (hotspot), and the paper's headline kernel (ScalarProd).
SMOKE_KERNELS = (
    "aesEncrypt128", "bfs_kernel", "cenergy", "sha1_overlap",
    "calculate_temp", "scalarProdGPU",
)

PROFILES: Dict[str, FidelityProfile] = {
    "smoke": FidelityProfile(name="smoke", kernels=SMOKE_KERNELS,
                             sms=2, scale=0.25),
    "full": FidelityProfile(name="full", kernels=(), sms=4, scale=1.0),
}


def resolve_profile(name: str) -> FidelityProfile:
    """PROFILES lookup, expanding full's kernel set from the registry."""
    try:
        profile = PROFILES[name]
    except KeyError:
        raise ExpectationError(
            f"unknown fidelity profile {name!r}; have {sorted(PROFILES)}"
        ) from None
    if not profile.kernels:
        from ..workloads import all_kernels

        profile = FidelityProfile(
            name=profile.name,
            kernels=tuple(m.name for m in all_kernels()),
            sms=profile.sms,
            scale=profile.scale,
            schedulers=profile.schedulers,
        )
    return profile
