"""Cycle-level simulator snapshots: capture, atomic write, bit-exact resume.

A snapshot serializes *every* piece of mutable simulator state at a main-loop
cycle boundary — resident TBs and warps, scoreboards, pending writeback
events (in exact heap order), warp-scheduler internals (including PRO's
per-TB progress tables and priority lists), execution-port timestamps, the
TB dispatch queue, caches/MSHRs/DRAM, and per-SM counters. Restoring it and
continuing produces the same final :class:`~repro.gpu.launch.RunResult`,
counter for counter, as the uninterrupted run; the property tests in
``tests/property/`` enforce this across all four schedulers at arbitrary
snapshot cycles.

Three guarantees shape the format:

* **Schema-checked** — :data:`SNAPSHOT_SCHEMA_VERSION` plus a ``kind`` tag;
  loading anything else raises :class:`~repro.errors.SnapshotError` instead
  of misparsing.
* **Atomic on disk** — :func:`write_snapshot` writes a temp file in the
  target directory, fsyncs, then ``os.replace``\\ s it over the destination,
  so a crash mid-write can never leave a torn snapshot behind.
* **Self-describing** — the file embeds the full ``GPUConfig`` field tree
  (plus its digest) and a structural :func:`program_digest`, so resume can
  rebuild the exact machine and refuse a mismatched program. Programs whose
  trip/active counts are callables cannot be pickled; instead the snapshot
  stores a ``launch_ref`` (kernel name + scale) from which
  :meth:`repro.gpu.gpu.Gpu.resume` rebuilds the launch via the workload
  registry, with the digest guarding against drift.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import os
from pathlib import Path
from typing import Optional

from ..config import GPUConfig, LatencyConfig, MemoryConfig
from ..errors import SnapshotError
from .checkpoint import config_digest

#: Bump when the snapshot layout changes; mismatched files are refused
#: (a stale snapshot silently misapplied would corrupt results).
SNAPSHOT_SCHEMA_VERSION = 1

#: File-type tag distinguishing snapshots from other JSON artifacts.
SNAPSHOT_KIND = "repro-snapshot"


# ---------------------------------------------------------------------------
# program identity


def _token(value) -> str:
    """Digest token for a scalar-or-callable instruction field.

    Callables (per-warp trip/active functions) are identified by qualname:
    two builds of the same registered kernel produce the same qualnames,
    while a structurally different program almost surely does not.
    """
    if value is None:
        return "-"
    if callable(value):
        return getattr(value, "__qualname__", type(value).__qualname__)
    return repr(value)


def _pattern_token(pattern) -> str:
    """Digest token for an AccessPattern (class + slot values)."""
    if pattern is None:
        return "-"
    cls = type(pattern)
    fields = ",".join(
        f"{slot}={getattr(pattern, slot)!r}"
        for slot in getattr(cls, "__slots__", ())
    )
    return f"{cls.__qualname__}({fields})"


def program_digest(program) -> str:
    """Structural content hash of a :class:`~repro.isa.program.Program`.

    Covers everything that affects execution: per-TB resources and, per
    instruction, opcode, registers, memory pattern, bank conflicts, branch
    target and trip/active resolution. Latencies are excluded — they are
    (re)finalized from the config, which has its own digest.
    """
    parts = [
        program.name,
        str(program.threads_per_tb),
        str(program.regs_per_thread),
        str(program.shared_mem_per_tb),
    ]
    for instr in program.instructions:
        parts.append(
            "|".join(
                (
                    instr.op.value,
                    _token(instr.dst),
                    ",".join(str(s) for s in instr.srcs),
                    _pattern_token(instr.pattern),
                    str(instr.conflict_ways),
                    _token(instr.target),
                    _token(instr.trips),
                    _token(instr.active),
                    instr.unit.name,
                )
            )
        )
    payload = "\n".join(parts)
    return hashlib.sha256(payload.encode()).hexdigest()[:16]


# ---------------------------------------------------------------------------
# capture / file I/O


def build_snapshot(gpu, cycle: int, *, program, num_tbs: int,
                   launch_ref: Optional[dict] = None) -> dict:
    """Serialize the full simulator state at a cycle boundary.

    Must be called from the main loop *before* any SM steps at ``cycle``:
    resume recomputes the same next-wake instant from the restored
    ``sleep_until`` values and continues bit-identically.
    """
    return {
        "schema": SNAPSHOT_SCHEMA_VERSION,
        "kind": SNAPSHOT_KIND,
        "cycle": cycle,
        "scheduler": gpu.scheduler_name,
        "num_tbs": num_tbs,
        "config": dataclasses.asdict(gpu.cfg),
        "config_digest": config_digest(gpu.cfg),
        "program_digest": program_digest(program),
        "launch_ref": launch_ref,
        "tb_scheduler": gpu.tb_scheduler.snapshot(),
        "sms": [sm.snapshot() for sm in gpu.sms],
        "memory": gpu.memory.snapshot(),
    }


def write_snapshot(path, data: dict) -> Path:
    """Atomically write a snapshot dict as JSON.

    Write-temp + fsync + ``os.replace`` in the destination directory: a
    reader never observes a partially written file, and a crash leaves at
    worst a stale ``.tmp`` alongside an intact previous snapshot.
    """
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    tmp = path.with_name(path.name + ".tmp")
    try:
        with open(tmp, "w", encoding="utf-8") as f:
            json.dump(data, f, sort_keys=True)
            f.flush()
            os.fsync(f.fileno())
        os.replace(tmp, path)
    except OSError as exc:
        raise SnapshotError(f"cannot write snapshot {path}: {exc}") from exc
    finally:
        if tmp.exists():  # replace failed part-way
            try:
                tmp.unlink()
            except OSError:  # pragma: no cover - best-effort cleanup
                pass
    return path


_REQUIRED_FIELDS = (
    "cycle", "scheduler", "num_tbs", "config", "program_digest",
    "tb_scheduler", "sms", "memory",
)


def load_snapshot(path) -> dict:
    """Read and schema-check a snapshot file; raises SnapshotError."""
    path = Path(path)
    try:
        with open(path, "r", encoding="utf-8") as f:
            data = json.load(f)
    except FileNotFoundError:
        raise SnapshotError(f"snapshot file not found: {path}") from None
    except (json.JSONDecodeError, OSError) as exc:
        raise SnapshotError(f"unreadable snapshot {path}: {exc}") from None
    if not isinstance(data, dict) or data.get("kind") != SNAPSHOT_KIND:
        raise SnapshotError(f"{path} is not a simulator snapshot")
    if data.get("schema") != SNAPSHOT_SCHEMA_VERSION:
        raise SnapshotError(
            f"snapshot {path} has schema {data.get('schema')!r}; this "
            f"build reads schema {SNAPSHOT_SCHEMA_VERSION}"
        )
    missing = [k for k in _REQUIRED_FIELDS if k not in data]
    if missing:
        raise SnapshotError(f"snapshot {path} missing fields: {missing}")
    return data


def config_from_snapshot(data: dict) -> GPUConfig:
    """Rebuild the exact GPUConfig a snapshot was taken under."""
    cdata = dict(data["config"])
    try:
        latency = LatencyConfig(**cdata.pop("latency"))
        memory = MemoryConfig(**cdata.pop("memory"))
        cfg = GPUConfig(latency=latency, memory=memory, **cdata)
    except (KeyError, TypeError) as exc:
        raise SnapshotError(
            f"snapshot config does not match this build's GPUConfig: {exc}"
        ) from None
    digest = data.get("config_digest")
    if digest is not None and config_digest(cfg) != digest:
        raise SnapshotError(
            "rebuilt GPUConfig digest differs from the snapshotted one; "
            "the config schema has drifted since the snapshot was taken"
        )
    return cfg


# ---------------------------------------------------------------------------
# per-run policy


class SnapshotControl:
    """Per-run snapshot policy the main loop consults at cycle boundaries.

    Combines the periodic schedule (``every``) with the metadata needed to
    build a resumable file. With ``every=None`` the control only serves
    cooperative-stop capture (:meth:`repro.gpu.gpu.Gpu.request_stop`).
    """

    __slots__ = ("path", "every", "next_at", "program", "num_tbs",
                 "launch_ref", "written")

    def __init__(self, path, *, every: Optional[int] = None, program,
                 num_tbs: int, launch_ref: Optional[dict] = None,
                 start_cycle: int = 0) -> None:
        if path is None:
            raise SnapshotError(
                "snapshot_every requires snapshot_path (nowhere to write)"
            )
        if every is not None and every <= 0:
            raise SnapshotError("snapshot_every must be a positive cycle count")
        self.path = Path(path)
        self.every = every
        self.next_at = (start_cycle + every) if every is not None else None
        self.program = program
        self.num_tbs = num_tbs
        self.launch_ref = launch_ref
        #: Snapshots written by this run (tests / progress reporting).
        self.written = 0

    def write(self, gpu, cycle: int) -> Path:
        """Capture and atomically persist the current state."""
        data = build_snapshot(
            gpu, cycle, program=self.program, num_tbs=self.num_tbs,
            launch_ref=self.launch_ref,
        )
        write_snapshot(self.path, data)
        self.written += 1
        return self.path
