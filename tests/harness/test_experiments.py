"""Tests for the experiment harness (small scale for speed)."""

import pytest

from repro.config import GPUConfig
from repro.harness import (
    ExperimentSetup,
    ablation_barrier_handling,
    ablation_threshold,
    fig1_stall_breakdown,
    fig2_tb_timeline,
    fig4_speedups,
    fig5_stall_improvement,
    table1_config,
    table2_benchmarks,
    table3_stall_ratios,
    table4_sort_trace,
)
from repro.workloads import applications


@pytest.fixture(scope="module")
def setup():
    """Tiny shared setup: 2 SMs, 15%% grids; cache shared across tests."""
    return ExperimentSetup(config=GPUConfig.scaled(2), scale=0.15)


class TestStaticTables:
    def test_table1_rows(self):
        r = table1_config()
        keys = [k for k, _ in r.rows]
        assert "Number of SMs" in keys
        assert "DRAM Scheduler" in keys
        assert "Table I" in r.render()

    def test_table2_all_kernels(self):
        r = table2_benchmarks()
        assert len(r.rows) == 25
        assert r.rows[0][0] == "AES"
        out = r.render()
        assert "scalarProdGPU" in out and "18432" in out


class TestFig1(object):
    def test_breakdown_structure(self, setup):
        r = fig1_stall_breakdown(setup)
        assert set(r.breakdown) == set(applications())
        for app, per_sched in r.breakdown.items():
            for sched in ("tl", "lrr", "gto"):
                b = per_sched[sched]
                assert sum(b.values()) == pytest.approx(1.0, abs=1e-9) or \
                    sum(b.values()) == 0.0

    def test_render_contains_all_schedulers(self, setup):
        out = fig1_stall_breakdown(setup).render()
        for s in ("TL", "LRR", "GTO"):
            assert s in out

    def test_mean_idle_share(self, setup):
        r = fig1_stall_breakdown(setup)
        assert 0.0 <= r.mean_idle_share("lrr") <= 1.0


class TestFig2:
    def test_intervals_for_both_schedulers(self, setup):
        r = fig2_tb_timeline(setup)
        assert set(r.intervals) == {"lrr", "pro"}
        assert r.intervals["lrr"]
        assert "Fig. 2" in r.render()

    def test_finish_spread_helper(self, setup):
        r = fig2_tb_timeline(setup)
        assert r.finish_spread("lrr") >= 0.0


class TestFig4:
    def test_speedups_all_kernels(self, setup):
        r = fig4_speedups(setup)
        assert len(r.speedups) == 25
        for v in r.speedups.values():
            assert set(v) == {"tl", "lrr", "gto"}
            for s in v.values():
                assert 0.5 < s < 3.0  # sane range
        assert set(r.geomeans) == {"tl", "lrr", "gto"}

    def test_render(self, setup):
        out = fig4_speedups(setup).render()
        assert "GEOMEAN" in out and "PRO/LRR" in out


class TestFig5AndTable3:
    def test_ratios_structure(self, setup):
        r = fig5_stall_improvement(setup)
        assert set(r.ratios) == set(applications())
        for app in r.ratios:
            for b in ("tl", "lrr", "gto"):
                assert set(r.ratios[app][b]) == {
                    "pipeline", "idle", "scoreboard", "total"
                }

    def test_geomeans_positive(self, setup):
        r = fig5_stall_improvement(setup)
        for b in ("tl", "lrr", "gto"):
            for kind, v in r.geomeans[b].items():
                assert v > 0

    def test_table3_render(self, setup):
        out = table3_stall_ratios(setup).render_table3()
        assert "Table III" in out and "GEOMEAN" in out

    def test_fig5_render(self, setup):
        out = fig5_stall_improvement(setup).render_fig5()
        assert "Fig. 5" in out

    def test_cache_shared_between_experiments(self, setup):
        before = len(setup.cache)
        fig5_stall_improvement(setup)
        table3_stall_ratios(setup)
        # second experiment reused every run of the first
        assert len(setup.cache) == before or len(setup.cache) > 0


class TestTable4:
    def test_rows_present(self, setup):
        r = table4_sort_trace(setup, threshold=64)
        assert r.rows, "expected at least one sort snapshot row"
        out = r.render()
        assert "Table IV" in out

    def test_literal_threshold(self, setup):
        r = table4_sort_trace(setup, threshold=1000)
        assert "Table IV" in r.render()


class TestAblations:
    def test_barrier_ablation(self, setup):
        r = ablation_barrier_handling(setup, kernels=("scalarProdGPU",))
        assert set(r.cycles["scalarProdGPU"]) == {"pro", "pro-nb", "pro-nf"}
        assert "Ablation" in r.render()

    def test_threshold_ablation(self, setup):
        r = ablation_threshold(setup, kernels=("aesEncrypt128",),
                               thresholds=(100, 1000))
        assert set(r.cycles["aesEncrypt128"]) == {"t=100", "t=1000"}
        assert "THRESHOLD" in r.render()
