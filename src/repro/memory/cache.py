"""Set-associative cache with LRU replacement.

Used for both the per-SM L1 data caches and the shared L2 (the L2 is a
collection of these, one per bank). The cache stores tags only — the
simulator never materializes data. Reads allocate on miss; writes are
write-through and configurable no-allocate (L1, Fermi policy) or
allocate (L2).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import ConfigError


@dataclass
class CacheStats:
    """Hit/miss counters, split by access type."""

    read_hits: int = 0
    read_misses: int = 0
    write_hits: int = 0
    write_misses: int = 0
    evictions: int = 0

    @property
    def reads(self) -> int:
        return self.read_hits + self.read_misses

    @property
    def writes(self) -> int:
        return self.write_hits + self.write_misses

    @property
    def accesses(self) -> int:
        return self.reads + self.writes

    @property
    def miss_rate(self) -> float:
        """Overall miss rate; 0.0 when the cache was never accessed."""
        total = self.accesses
        if total == 0:
            return 0.0
        return (self.read_misses + self.write_misses) / total

    def merge(self, other: "CacheStats") -> None:
        """Accumulate another stats object into this one (for aggregation)."""
        self.read_hits += other.read_hits
        self.read_misses += other.read_misses
        self.write_hits += other.write_hits
        self.write_misses += other.write_misses
        self.evictions += other.evictions


class Cache:
    """Tag-only set-associative LRU cache.

    Parameters
    ----------
    size:
        Capacity in bytes.
    ways:
        Associativity.
    line_size:
        Line size in bytes (power of two).
    write_allocate:
        Whether write misses install the line (L2) or bypass (L1).
    name:
        Label for diagnostics.
    """

    __slots__ = ("name", "line_size", "ways", "num_sets", "_line_shift",
                 "_sets", "write_allocate", "stats")

    def __init__(
        self,
        size: int,
        ways: int,
        line_size: int,
        *,
        write_allocate: bool = False,
        name: str = "cache",
    ) -> None:
        if line_size <= 0 or line_size & (line_size - 1):
            raise ConfigError("line_size must be a positive power of two")
        if size <= 0 or ways <= 0:
            raise ConfigError("cache size and ways must be positive")
        if size % (line_size * ways):
            raise ConfigError("size must be a multiple of line_size * ways")
        self.name = name
        self.line_size = line_size
        self.ways = ways
        self.num_sets = size // (line_size * ways)
        self._line_shift = line_size.bit_length() - 1
        # Each set is a dict {tag: None}; Python dicts preserve insertion
        # order, so eviction pops the first (least-recently-used) key and a
        # hit re-inserts to refresh recency. This is the fastest pure-Python
        # LRU for small associativities.
        self._sets: list[dict[int, None]] = [dict() for _ in range(self.num_sets)]
        self.write_allocate = write_allocate
        self.stats = CacheStats()

    # ------------------------------------------------------------------
    def access(self, line_addr: int, is_write: bool = False) -> bool:
        """Look up (and update) one line; returns True on hit.

        ``line_addr`` must be line-aligned (the coalescer guarantees this).
        Read misses allocate; write misses allocate only if
        ``write_allocate``.
        """
        line_idx = line_addr >> self._line_shift
        set_idx = line_idx % self.num_sets
        tag = line_idx // self.num_sets
        cset = self._sets[set_idx]
        stats = self.stats
        if tag in cset:
            # refresh LRU position
            del cset[tag]
            cset[tag] = None
            if is_write:
                stats.write_hits += 1
            else:
                stats.read_hits += 1
            return True
        if is_write:
            stats.write_misses += 1
            if not self.write_allocate:
                return False
        else:
            stats.read_misses += 1
        if len(cset) >= self.ways:
            # evict LRU = first inserted key
            cset.pop(next(iter(cset)))
            stats.evictions += 1
        cset[tag] = None
        return False

    def probe(self, line_addr: int) -> bool:
        """Non-updating lookup (no stats, no LRU refresh). For tests/tools."""
        line_idx = line_addr >> self._line_shift
        cset = self._sets[line_idx % self.num_sets]
        return (line_idx // self.num_sets) in cset

    def invalidate_all(self) -> None:
        """Drop every line (e.g. between kernel launches)."""
        for cset in self._sets:
            cset.clear()

    # -- state serialization -------------------------------------------

    def snapshot(self) -> dict:
        """Serializable tag state. Each set is its tag list in insertion
        order — which *is* the LRU order, so restoring the list restores
        replacement behaviour exactly."""
        return {
            "sets": [list(cset) for cset in self._sets],
            "stats": {
                "read_hits": self.stats.read_hits,
                "read_misses": self.stats.read_misses,
                "write_hits": self.stats.write_hits,
                "write_misses": self.stats.write_misses,
                "evictions": self.stats.evictions,
            },
        }

    def restore(self, data: dict) -> None:
        """Apply snapshotted tags (LRU order preserved) and stats."""
        self._sets = [dict.fromkeys(int(t) for t in tags)
                      for tags in data["sets"]]
        self.stats = CacheStats(**data["stats"])

    @property
    def resident_lines(self) -> int:
        """Number of lines currently cached."""
        return sum(len(s) for s in self._sets)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<Cache {self.name}: {self.num_sets} sets x {self.ways} ways "
            f"x {self.line_size}B>"
        )
