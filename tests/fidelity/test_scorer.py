"""Scorer tests on hand-built measurements (no simulation)."""

import pytest

from repro.config import GPUConfig
from repro.fidelity import FidelityMeasurement, evaluate
from repro.fidelity.expectations import Band, Expectation, Expectations, FidelityProfile
from repro.gpu.launch import RunResult
from repro.stats.counters import GpuCounters, SmCounters

#: Two single-kernel applications (AES, CP) so per-app == per-kernel.
PROFILE = FidelityProfile(name="toy", kernels=("aesEncrypt128", "cenergy"),
                          schedulers=("tl", "lrr", "gto", "pro"),
                          sms=2, scale=0.25)


def rr(kernel, sched, cycles, idle=100, sb=200, pipe=300, instr=1000):
    counters = GpuCounters(total_cycles=cycles, per_sm=[SmCounters(
        stall_idle=idle, stall_scoreboard=sb, stall_pipeline=pipe,
        instructions=instr,
    )])
    return RunResult(kernel_name=kernel, scheduler=sched, num_tbs=4,
                     cycles=cycles, counters=counters)


def toy_measurement(canonical=True):
    # PRO: 100/200 cycles; TL: 160/230; LRR: 150/220; GTO: 110/210.
    cells = {
        ("aesEncrypt128", "pro"): rr("aesEncrypt128", "pro", 100,
                                     idle=10, sb=40, pipe=50),
        ("aesEncrypt128", "tl"): rr("aesEncrypt128", "tl", 160,
                                    idle=35, sb=65, pipe=95),
        ("aesEncrypt128", "lrr"): rr("aesEncrypt128", "lrr", 150,
                                     idle=30, sb=60, pipe=90),
        ("aesEncrypt128", "gto"): rr("aesEncrypt128", "gto", 110,
                                     idle=15, sb=45, pipe=55),
        ("cenergy", "pro"): rr("cenergy", "pro", 200,
                               idle=20, sb=80, pipe=100),
        ("cenergy", "tl"): rr("cenergy", "tl", 230,
                              idle=45, sb=105, pipe=165),
        ("cenergy", "lrr"): rr("cenergy", "lrr", 220,
                               idle=40, sb=100, pipe=160),
        ("cenergy", "gto"): rr("cenergy", "gto", 210,
                               idle=25, sb=85, pipe=105),
    }
    return FidelityMeasurement(profile=PROFILE, config=GPUConfig.scaled(2),
                               scale=0.25, cells=cells, canonical=canonical)


class TestDerivedMetrics:
    def test_speedup(self):
        m = toy_measurement()
        assert m.speedup("aesEncrypt128", "lrr") == pytest.approx(1.5)
        assert m.speedup("cenergy", "gto") == pytest.approx(210 / 200)

    def test_geomean_speedup(self):
        m = toy_measurement()
        expected = (1.5 * 1.1) ** 0.5
        assert m.geomean_speedup("lrr") == pytest.approx(expected)

    def test_stall_ratio_geomean(self):
        m = toy_measurement()
        # per-app total stall ratios: AES 180/100, CP 300/200
        assert m.stall_ratio_geomean("lrr") == pytest.approx(
            (1.8 * 1.5) ** 0.5
        )

    def test_stall_share(self):
        m = toy_measurement()
        # PRO totals: idle 30, sb 120, pipe 150 -> denom 300
        assert m.stall_share("pro", "idle") == pytest.approx(0.1)
        assert m.stall_share("pro", "scoreboard") == pytest.approx(0.4)
        assert m.stall_share("pro", "pipeline") == pytest.approx(0.5)

    def test_baseline_cells_layout(self):
        cells = toy_measurement().baseline_cells()
        assert set(cells) == {
            f"{k}/{s}" for k in PROFILE.kernels for s in PROFILE.schedulers
        }
        aes = cells["aesEncrypt128/pro"]
        assert aes == {"cycles": 100, "instructions": 1000,
                       "stall_idle": 10, "stall_scoreboard": 40,
                       "stall_pipeline": 50}

    def test_apps_grouping(self):
        assert toy_measurement().apps() == {"AES": ["aesEncrypt128"],
                                            "CP": ["cenergy"]}


def toy_expectations():
    return Expectations([
        Expectation(id="geo.lrr", kind="geomean_speedup", anchor="Fig. 4",
                    over="lrr", shape=Band(lo=1.0),
                    profiles={"toy": Band(target=(1.5 * 1.1) ** 0.5,
                                          warn=0.02, fail=0.05)}),
        Expectation(id="k.aes", kind="kernel_speedup", anchor="Fig. 4",
                    over="lrr", kernel="aesEncrypt128", shape=Band(lo=1.0)),
        Expectation(id="k.absent", kind="kernel_speedup", anchor="Fig. 4",
                    over="lrr", kernel="bfs_kernel", shape=Band(lo=0.5)),
        Expectation(id="ordering", kind="gto_closest", anchor="Fig. 4",
                    margin=0.05, shape=Band(hi=0.0)),
    ])


class TestEvaluate:
    def test_canonical_uses_profile_targets(self):
        verdicts = {v.expectation_id: v
                    for v in evaluate(toy_measurement(), toy_expectations())}
        assert verdicts["geo.lrr"].numeric
        assert verdicts["geo.lrr"].status == "pass"
        assert verdicts["geo.lrr"].delta == pytest.approx(0.0)

    def test_off_canonical_falls_back_to_shape(self):
        verdicts = {v.expectation_id: v
                    for v in evaluate(toy_measurement(canonical=False),
                                      toy_expectations())}
        assert not verdicts["geo.lrr"].numeric
        assert verdicts["geo.lrr"].status == "pass"

    def test_absent_kernel_is_skipped(self):
        ids = {v.expectation_id
               for v in evaluate(toy_measurement(), toy_expectations())}
        assert "k.absent" not in ids
        assert "k.aes" in ids

    def test_gto_closest_folds_margin_into_measured(self):
        m = toy_measurement()
        v = {x.expectation_id: x
             for x in evaluate(m, toy_expectations())}["ordering"]
        gap = m.geomean_speedup("gto") - min(m.geomean_speedup("tl"),
                                             m.geomean_speedup("lrr"))
        assert v.measured == pytest.approx(gap - 0.05)
        # GTO geomean < TL/LRR geomeans here, so the ordering holds
        assert v.status == "pass"

    def test_perturbed_target_fails(self):
        exps = Expectations([
            Expectation(id="geo.lrr", kind="geomean_speedup", anchor="Fig. 4",
                        over="lrr", shape=Band(lo=1.0),
                        profiles={"toy": Band(target=2.0, warn=0.02,
                                              fail=0.05)}),
        ])
        (v,) = evaluate(toy_measurement(), exps)
        assert v.status == "fail"


class TestReport:
    def test_score_and_render(self, tmp_path):
        from repro.fidelity import BaselineStore, score

        report = score(toy_measurement(), toy_expectations(),
                       baseline=BaselineStore(tmp_path))
        assert report.status == "warn"  # no baseline yet
        assert report.ok
        assert "Fidelity report" in report.render()
        assert "no baseline" in report.render()

    def test_render_markdown_and_json(self):
        from repro.fidelity import score

        report = score(toy_measurement(), toy_expectations())
        md = report.render_markdown()
        assert md.startswith("## Paper fidelity")
        assert "`geo.lrr`" in md
        data = report.to_json()
        assert data["schema"] == 1
        assert data["ok"] is True
        assert data["counts"]["fail"] == 0
        assert {v["id"] for v in data["verdicts"]} >= {"geo.lrr", "k.aes"}

    def test_failure_gates(self):
        from repro.fidelity import score

        exps = Expectations([
            Expectation(id="x", kind="geomean_speedup", anchor="a",
                        over="lrr", shape=Band(lo=5.0)),
        ])
        report = score(toy_measurement(), exps)
        assert not report.ok
        assert report.failures()[0].expectation_id == "x"
