"""Occupancy: how many TBs of a program fit on one SM.

Mirrors the CUDA occupancy calculation for the resources the paper's
Table I lists: the TB-slot limit (8 on Fermi), the thread limit (1536),
the register file (32768 4-byte registers) and shared memory (48 KB).
The binding constraint determines residency, which in turn determines
when the grid enters the paper's slowTBPhase.
"""

from __future__ import annotations

from ..config import GPUConfig
from ..errors import LaunchError
from ..isa.program import Program


def max_resident_tbs(program: Program, cfg: GPUConfig) -> int:
    """Maximum TBs of ``program`` concurrently resident on one SM.

    Raises :class:`LaunchError` if even a single TB does not fit (the
    CUDA ``cudaErrorInvalidConfiguration`` analogue).
    """
    threads = program.threads_per_tb
    if threads > cfg.max_threads_per_sm:
        raise LaunchError(
            f"TB needs {threads} threads; SM holds {cfg.max_threads_per_sm}"
        )
    regs_per_tb = program.regs_per_thread * threads
    if regs_per_tb > cfg.registers_per_sm:
        raise LaunchError(
            f"TB needs {regs_per_tb} registers; SM holds {cfg.registers_per_sm}"
        )
    if program.shared_mem_per_tb > cfg.shared_mem_per_sm:
        raise LaunchError(
            f"TB needs {program.shared_mem_per_tb} B shared memory; "
            f"SM holds {cfg.shared_mem_per_sm}"
        )

    limit = cfg.max_tbs_per_sm
    limit = min(limit, cfg.max_threads_per_sm // threads)
    limit = min(limit, cfg.registers_per_sm // regs_per_tb)
    if program.shared_mem_per_tb > 0:
        limit = min(limit, cfg.shared_mem_per_sm // program.shared_mem_per_tb)
    return max(1, limit)


def occupancy_report(program: Program, cfg: GPUConfig) -> dict:
    """Per-constraint residency limits (diagnostics for examples/docs)."""
    threads = program.threads_per_tb
    regs_per_tb = program.regs_per_thread * threads
    report = {
        "tb_slot_limit": cfg.max_tbs_per_sm,
        "thread_limit": cfg.max_threads_per_sm // threads if threads else 0,
        "register_limit": (
            cfg.registers_per_sm // regs_per_tb if regs_per_tb else 0
        ),
        "shared_mem_limit": (
            cfg.shared_mem_per_sm // program.shared_mem_per_tb
            if program.shared_mem_per_tb
            else None
        ),
    }
    report["resident_tbs"] = max_resident_tbs(program, cfg)
    report["resident_warps"] = report["resident_tbs"] * (
        (threads + cfg.warp_size - 1) // cfg.warp_size
    )
    return report
