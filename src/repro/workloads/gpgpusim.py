"""GPGPU-Sim benchmark suite models (Table II rows 1-10).

AES, BFS, CP, LPS, NN (4 layer kernels), RAY, STO. Each model states in
its notes what the real kernel does and which scheduling-relevant traits
the synthetic program preserves; `model_tbs` keeps the paper's ratio of
grid size to resident capacity on the 4-SM experiment configuration.
"""

from __future__ import annotations

from ..isa.builder import ProgramBuilder
from ..isa.patterns import Broadcast, Coalesced, Random, Strided
from .base import (
    KernelModel,
    divergent_active,
    divergent_trips,
    register_kernel,
    stream,
    tb_skewed_trips,
)

MB = 1 << 20


def _build_aes():
    """AES-128 encryption: T-box lookups from shared memory, 10 rounds.

    Real kernel: loads the state + key, stages T-boxes in shared memory
    behind one barrier, then runs 10 compute rounds of table lookups
    (bank conflicts) and XOR chains; writes ciphertext. Compute-bound,
    register-limited occupancy (4 TBs/SM), mild per-TB time variance.
    """
    b = ProgramBuilder(
        "aesEncrypt128", threads_per_tb=256, regs_per_thread=30,
        shared_mem_per_tb=8 * 1024,
    )
    b.load_global(1, pattern=Coalesced(base=0))  # state in
    b.load_global(2, pattern=Broadcast(base=64 * MB, table_lines=16))  # T-boxes
    b.store_shared((2,))
    b.barrier()
    with b.loop(times=tb_skewed_trips(9, 3, seed=11)):  # ~10 rounds
        b.load_shared(3, srcs=(1,), conflict_ways=2)  # T-box lookup
        b.ialu(4, (1, 3))
        b.ialu(4, (4,))
        b.load_shared(5, srcs=(4,), conflict_ways=2)
        b.ialu(1, (4, 5))
        b.ialu(1, (1,))
        b.fma(1, (1,))
    b.store_global((1,), pattern=Coalesced(base=128 * MB))
    return b.build()


register_kernel(KernelModel(
    name="aesEncrypt128", app="AES", suite="gpgpusim",
    paper_tbs=257, model_tbs=64, builder=_build_aes,
    notes="Shared-memory T-box rounds behind one barrier; compute bound, "
          "register-limited to ~4 TBs/SM; per-TB round-count skew models "
          "the block-length variance of the paper's 257-TB grid.",
))


def _build_bfs():
    """BFS level expansion: data-dependent neighbour gathers.

    Real kernel: each thread visits a frontier node and touches scattered
    neighbour/cost arrays; massive memory divergence (uncoalesced), high
    warp-level divergence (frontier degree varies), no barriers, short
    per-thread work. Pipeline stalls dominate in the paper (LSU saturated
    by divergent transactions).
    """
    b = ProgramBuilder(
        "bfs_kernel", threads_per_tb=256, regs_per_thread=12,
        shared_mem_per_tb=0,
    )
    b.load_global(1, pattern=Coalesced(base=0))  # frontier flags
    with b.loop(times=divergent_trips(2, 6, seed=3)):  # neighbour count varies
        b.load_global(2, pattern=Random(8 * MB, txns=16, seed=7, base=16 * MB),
                      srcs=(1,), active=divergent_active(8, 32, seed=5))
        b.ialu(3, (2,))
        b.load_global(4, pattern=Random(8 * MB, txns=12, seed=9, base=32 * MB),
                      srcs=(3,), active=divergent_active(8, 32, seed=6))
        b.ialu(1, (4, 1))
    b.store_global((1,), pattern=Coalesced(base=48 * MB))
    return b.build()


register_kernel(KernelModel(
    name="bfs_kernel", app="BFS", suite="gpgpusim",
    paper_tbs=256, model_tbs=64, builder=_build_bfs,
    notes="Scattered dependent gathers with divergent degree; LSU/DRAM "
          "saturation makes Pipeline stalls dominate, matching Table III.",
))


def _build_cp():
    """CP (cenergy): coulombic potential — heavily compute-bound.

    Real kernel: per-thread loop over atoms with FMA + rsqrt chains,
    constant-memory atom data (modeled as a broadcast load), single
    coalesced store at the end. Almost no memory stalls; uniform work.
    """
    b = ProgramBuilder(
        "cenergy", threads_per_tb=128, regs_per_thread=30,
        shared_mem_per_tb=0,
    )
    b.load_global(1, pattern=Coalesced(base=0))
    with b.loop(times=12):
        b.load_global(2, pattern=Broadcast(base=64 * MB, table_lines=4))  # atoms
        b.fma(3, (1, 2))
        b.fma(3, (3,))
        b.sfu(4, (3,))  # rsqrt
        b.fma(5, (4, 2))
        b.fma(5, (5,))
        b.falu(1, (1, 5))
    b.store_global((1,), pattern=Coalesced(base=128 * MB))
    return b.build()


register_kernel(KernelModel(
    name="cenergy", app="CP", suite="gpgpusim",
    paper_tbs=256, model_tbs=64, builder=_build_cp,
    notes="FMA/rsqrt atom loop with broadcast (constant-cache-like) "
          "loads; compute bound at full 8-TB residency.",
))


def _build_lps():
    """LPS (laplace3d): 3D Laplace solver, shared-memory stencil.

    Real kernel: marches in z, each plane staged through shared memory
    between two barriers; x/y halo loads are partially uncoalesced
    (Strided). Barrier-dense with boundary-warp divergence.
    """
    b = ProgramBuilder(
        "GPU_laplace3d", threads_per_tb=128, regs_per_thread=20,
        shared_mem_per_tb=4 * 1024,
    )
    b.load_global(1, pattern=Coalesced(base=0))
    with b.loop(times=8):  # z planes
        b.load_global(2, pattern=Strided(base=16 * MB, stride=16, iter_stride=1 << 14),
                      active=divergent_active(24, 32, seed=21))
        b.store_shared((2,))
        b.barrier()
        b.load_shared(3, conflict_ways=1)
        b.load_shared(4, conflict_ways=2)
        # 7-point stencil arithmetic; boundary warps do less of it.
        with b.loop(times=divergent_trips(2, 3, seed=22)):
            b.fma(5, (3, 4))
            b.fma(5, (5, 1))
            b.fma(5, (5,))
            b.falu(1, (5,))
        b.barrier()
    b.store_global((1,), pattern=Coalesced(base=64 * MB))
    return b.build()


register_kernel(KernelModel(
    name="GPU_laplace3d", app="LPS", suite="gpgpusim",
    paper_tbs=100, model_tbs=40, builder=_build_lps,
    notes="Two barriers per z-plane iteration with strided halo loads and "
          "boundary divergence; barrierWait handling is exercised heavily.",
))


def _nn_layer(name: str, paper_tbs: int, model_tbs: int, neurons: int, notes: str):
    """NN layer kernels: dense dot products, coalesced weight streaming.

    Real kernels: each thread computes one neuron: loop over inputs with
    coalesced weight loads + FMA, sigmoid (SFU) at the end. The four
    layers differ mainly in grid size, which is exactly what Table II
    records — so the four models share structure and vary the grid.
    Memory-latency bound (one LDG per FMA pair).
    """

    def build():
        b = ProgramBuilder(
            name, threads_per_tb=128, regs_per_thread=18,
            shared_mem_per_tb=0,
        )
        b.load_global(1, pattern=Coalesced(base=0))
        with b.loop(times=neurons):
            b.load_global(2, pattern=stream(16 * MB, neurons))  # weights
            b.load_global(4, pattern=Broadcast(base=8 * MB, table_lines=8))  # inputs
            b.fma(3, (2, 4, 3))
            b.fma(3, (3, 1))
        b.sfu(3, (3,))  # sigmoid
        b.store_global((3,), pattern=Coalesced(base=96 * MB))
        return b.build()

    register_kernel(KernelModel(
        name=name, app="NN", suite="gpgpusim",
        paper_tbs=paper_tbs, model_tbs=model_tbs, builder=build, notes=notes,
    ))


_nn_layer("executeFirstLayer", 168, 48, 10,
          "First NN layer; smallest grid of the four (168 TBs).")
_nn_layer("executeSecondLayer", 1400, 112, 8,
          "Second NN layer; large grid (1400 TBs), long fastTBPhase.")
_nn_layer("executeThirdLayer", 2800, 160, 6,
          "Third NN layer; largest NN grid (2800 TBs).")
_nn_layer("executeFourthLayer", 280, 56, 8,
          "Output NN layer (280 TBs).")


def _build_ray():
    """RAY (render): ray tracing — deeply divergent compute + gathers.

    Real kernel: per-pixel ray marching with data-dependent bounce depth
    (strong warp-level divergence), scene-node gathers with poor locality
    and heavy SFU use. Register-limited occupancy (~6 TBs/SM).
    """
    b = ProgramBuilder(
        "render", threads_per_tb=128, regs_per_thread=40,
        shared_mem_per_tb=0,
    )
    b.load_global(1, pattern=Coalesced(base=0))  # ray setup
    with b.loop(times=divergent_trips(3, 10, seed=31)):  # bounce depth
        b.load_global(2, pattern=Random(2 * MB, txns=8, seed=13, base=16 * MB),
                      srcs=(1,), active=divergent_active(6, 32, seed=17))
        b.fma(3, (2, 1))
        b.sfu(4, (3,))
        b.fma(5, (4, 3))
        b.fma(1, (5, 1))
    b.store_global((1,), pattern=Coalesced(base=64 * MB))
    return b.build()


register_kernel(KernelModel(
    name="render", app="RAY", suite="gpgpusim",
    paper_tbs=512, model_tbs=96, builder=_build_ray,
    notes="Divergent bounce-depth loop (3-12 trips) with scattered scene "
          "gathers; finishWait handling matters as rays retire unevenly.",
))


def _build_sto():
    """STO (sha1_overlap): SHA-1 hashing — long dependent ALU chains.

    Real kernel: per-thread SHA-1 rounds over shared-memory staged data:
    long serial integer chains, shared loads, almost no global traffic
    after the initial stage. Shared-memory limited (3 TBs/SM): few warps,
    so branch bubbles and the barrier around staging expose Idle stalls —
    STO is the most Idle-dominated app in the paper's Fig. 1.
    """
    b = ProgramBuilder(
        "sha1_overlap", threads_per_tb=256, regs_per_thread=24,
        shared_mem_per_tb=16 * 1024,
    )
    b.load_global(1, pattern=Coalesced(base=0))
    b.store_shared((1,))
    b.barrier()
    with b.loop(times=tb_skewed_trips(10, 4, seed=41)):  # hash rounds
        b.load_shared(2, conflict_ways=1)
        b.ialu(3, (2, 1))
        b.ialu(3, (3,))
        b.ialu(3, (3,))
        b.ialu(4, (3,))
        b.ialu(1, (4, 1))
    b.barrier()
    b.store_global((1,), pattern=Coalesced(base=32 * MB))
    return b.build()


register_kernel(KernelModel(
    name="sha1_overlap", app="STO", suite="gpgpusim",
    paper_tbs=384, model_tbs=72, builder=_build_sto,
    notes="Dependent integer rounds at 3-TB/SM occupancy (24 warps); "
          "loop-branch bubbles + staging barriers make Idle stalls the "
          "largest class, as in Fig. 1.",
))
