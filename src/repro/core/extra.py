"""Additional reference schedulers beyond the paper's evaluated set.

These are not in the paper's comparison but are standard reference points
in the warp-scheduling literature and useful for sanity-checking the
simulator (a policy-free scheduler should never beat a sensible one by
much on latency-bound workloads):

* ``of`` — strict Oldest-First: GTO without the greedy component. Shows
  how much of GTO's strength comes from age-ordering alone.
* ``rand`` — deterministic pseudo-random priority each cycle: the
  policy-free floor. Uses a counter-hashed permutation so runs remain
  bit-reproducible.
"""

from __future__ import annotations

from typing import List, Sequence

from .scheduler import WarpScheduler, register_scheduler, simple_factory

_MASK64 = (1 << 64) - 1


def _mix(x: int) -> int:
    x = (x + 0x9E3779B97F4A7C15) & _MASK64
    x = ((x ^ (x >> 30)) * 0xBF58476D1CE4E5B9) & _MASK64
    x = ((x ^ (x >> 27)) * 0x94D049BB133111EB) & _MASK64
    return x ^ (x >> 31)


class OldestFirstScheduler(WarpScheduler):
    """Strict oldest-first (earliest-assigned TB, lowest warp index)."""

    name = "of"

    def __init__(self, sm, sched_id, cfg) -> None:
        super().__init__(sm, sched_id, cfg)
        self._aged: List = []

    def on_tb_assigned(self, tb, cycle: int) -> None:
        super().on_tb_assigned(tb, cycle)
        # New TBs are youngest: appending preserves the age order.
        self._aged.extend(w for w in tb.warps if w.sched_id == self.sched_id)

    def on_warp_finished(self, warp, cycle: int) -> None:
        if warp.sched_id != self.sched_id:
            return
        super().on_warp_finished(warp, cycle)
        self._aged.remove(warp)

    def order(self, cycle: int) -> Sequence:
        return self._aged


class RandomScheduler(WarpScheduler):
    """Deterministic per-cycle pseudo-random priority (the policy floor)."""

    name = "rand"

    def order(self, cycle: int) -> Sequence:
        warps = self.warps
        n = len(warps)
        if n <= 1:
            return warps
        # cheap keyed rotation + interleave: varies per cycle, reproducible
        k = _mix(cycle * 2 + self.sched_id)
        start = k % n
        stride = 1 + (k >> 32) % (n - 1) if n > 1 else 1
        # a full permutation only when gcd(stride, n) == 1; fall back to
        # rotation otherwise (still varies by cycle)
        seen = set()
        out = []
        idx = start
        for _ in range(n):
            if idx in seen:
                return warps[start:] + warps[:start]
            seen.add(idx)
            out.append(warps[idx])
            idx = (idx + stride) % n
        return out


register_scheduler("of", simple_factory(OldestFirstScheduler))
register_scheduler("rand", simple_factory(RandomScheduler))
