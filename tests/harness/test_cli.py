"""Tests for the pro-sim command-line interface."""

import json

import pytest

from repro.errors import SimulationError
from repro.harness import cli
from repro.harness.cli import EXPERIMENTS, build_parser, main


class TestParser:
    def test_all_experiments_are_choices(self):
        parser = build_parser()
        args = parser.parse_args(["table1"])
        assert args.experiment == "table1"

    def test_unknown_experiment_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["nope"])

    def test_options(self):
        args = build_parser().parse_args(
            ["fig4", "--sms", "2", "--scale", "0.5", "--out", "x.txt"]
        )
        assert args.sms == 2
        assert args.scale == 0.5
        assert args.out == "x.txt"

    def test_experiment_registry_complete(self):
        for name in ("table1", "table2", "fig1", "fig2", "fig4", "fig5",
                     "table3", "table4", "ablation-barrier",
                     "ablation-threshold"):
            assert name in EXPERIMENTS


class TestMain:
    def test_table1(self, capsys):
        assert main(["table1"]) == 0
        out = capsys.readouterr().out
        assert "Table I" in out

    def test_table2(self, capsys):
        assert main(["table2"]) == 0
        assert "scalarProdGPU" in capsys.readouterr().out

    def test_run_single_kernel(self, capsys):
        assert main(["run", "cenergy", "--sms", "2", "--scale", "0.1"]) == 0
        out = capsys.readouterr().out
        assert "cenergy" in out and "stall breakdown" in out

    def test_run_without_kernel_errors(self, capsys):
        assert main(["run"]) == 2

    def test_trace_smoke_writes_metrics_and_perfetto_json(
            self, tmp_path, capsys):
        metrics = tmp_path / "m.jsonl"
        trace = tmp_path / "t.json"
        assert main(["trace", "--smoke",
                     "--metrics-out", str(metrics),
                     "--trace-out", str(trace)]) == 0
        out = capsys.readouterr().out
        assert "perfetto" in out.lower()
        doc = json.loads(trace.read_text())
        assert doc["traceEvents"]
        assert doc["otherData"]["kernel"] == "scalarProdGPU"
        rows = [json.loads(line)
                for line in metrics.read_text().splitlines()]
        assert rows and "stall_idle" in rows[0]
        # The report asserts windowed == counter stall totals inline.
        assert "windowed == counters" in out

    def test_trace_metrics_out_csv_extension_switches_format(
            self, tmp_path, capsys):
        metrics = tmp_path / "m.csv"
        trace = tmp_path / "t.json"
        assert main(["trace", "cenergy", "--smoke", "--window", "1000",
                     "--metrics-out", str(metrics),
                     "--trace-out", str(trace)]) == 0
        header = metrics.read_text().splitlines()[0]
        assert header.startswith("window,start,end,sm")

    def test_trace_rejects_bad_window(self, capsys):
        with pytest.raises(SystemExit):
            main(["trace", "--window", "0"])

    def test_smoke_rejected_outside_bench_and_trace(self, capsys):
        with pytest.raises(SystemExit):
            main(["table1", "--smoke"])

    def test_out_file(self, tmp_path, capsys):
        path = tmp_path / "report.txt"
        assert main(["table1", "--out", str(path)]) == 0
        assert "Table I" in path.read_text()

    def test_table4_small(self, capsys):
        assert main(["table4", "--sms", "2", "--scale", "0.2"]) == 0
        assert "Table IV" in capsys.readouterr().out

    def test_table4_custom_threshold(self, capsys):
        assert main(["table4", "--sms", "2", "--scale", "0.2",
                     "--threshold", "1000"]) == 0
        assert "Table IV" in capsys.readouterr().out

    def test_json_export(self, tmp_path, capsys):
        import json

        path = tmp_path / "fig2.json"
        assert main(["fig2", "--sms", "2", "--scale", "0.15",
                     "--json", str(path)]) == 0
        data = json.loads(path.read_text())
        assert set(data) >= {"kernel", "intervals", "cycles"}
        assert data["cycles"]["lrr"] > 0

    def test_json_export_table2(self, tmp_path, capsys):
        path = tmp_path / "t2.json"
        assert main(["table2", "--json", str(path)]) == 0
        data = json.loads(path.read_text())
        assert len(data["rows"]) == 25

    def test_json_export_run(self, tmp_path, capsys):
        path = tmp_path / "run.json"
        assert main(["run", "cenergy", "--sms", "2", "--scale", "0.1",
                     "--json", str(path)]) == 0
        data = json.loads(path.read_text())
        assert data["kernel"] == "cenergy"
        assert data["scheduler"] == "pro"
        assert data["cycles"] > 0
        assert data["counters"]["total_cycles"] == data["cycles"]

    def test_json_export_table4_with_threshold(self, tmp_path, capsys):
        """--json used to be silently dropped on the --threshold branch."""
        path = tmp_path / "t4.json"
        assert main(["table4", "--sms", "2", "--scale", "0.2",
                     "--threshold", "1000", "--json", str(path)]) == 0
        assert path.exists()
        assert json.loads(path.read_text())


class TestValidation:
    @pytest.mark.parametrize("argv", [
        ["fig4", "--sms", "0"],
        ["fig4", "--sms", "-3"],
        ["fig4", "--scale", "-1"],
        ["fig4", "--scale", "0"],
        ["fig4", "--cell-timeout", "0"],
        ["fig4", "--cell-timeout", "-5"],
        ["fig4", "--retries", "-2"],
        ["all", "--json", "out.json"],
        ["fig4", "--snapshot-every", "0", "--checkpoint", "ckpt"],
        ["fig4", "--snapshot-every", "100"],  # requires --checkpoint
        ["fig4", "--resume", "x.snap"],  # --resume only applies to 'run'
    ])
    def test_bad_arguments_exit_usage(self, argv, capsys):
        with pytest.raises(SystemExit) as exc:
            main(argv)
        assert exc.value.code == 2
        assert "usage:" in capsys.readouterr().err

    def test_validation_message_names_the_flag(self, capsys):
        with pytest.raises(SystemExit):
            main(["fig4", "--sms", "0"])
        assert "--sms must be positive" in capsys.readouterr().err


class _FakeResult:
    def render(self):
        return "fake report body"


def _fake_registry():
    def ok(setup):
        return _FakeResult()

    def boom(setup):
        raise SimulationError("injected experiment failure")

    return {"good-a": ok, "bad": boom, "good-b": ok}


class TestKeepGoing:
    def test_all_keep_going_reports_failures_and_exits_3(
            self, monkeypatch, capsys):
        monkeypatch.setattr(cli, "EXPERIMENTS", _fake_registry())
        rc = main(["all", "--keep-going", "--sms", "2", "--scale", "0.1"])
        out = capsys.readouterr().out
        assert rc == 3
        # surviving experiments still rendered
        assert out.count("fake report body") == 2
        assert "[FAILED: SimulationError: injected experiment failure]" in out
        assert "### FAILURES" in out
        assert "bad: SimulationError" in out

    def test_all_without_keep_going_aborts_with_exit_1(
            self, monkeypatch, capsys):
        monkeypatch.setattr(cli, "EXPERIMENTS", _fake_registry())
        rc = main(["all", "--sms", "2", "--scale", "0.1"])
        captured = capsys.readouterr()
        assert rc == 1
        assert "error: injected experiment failure" in captured.err
        assert "FAILURES" not in captured.out

    def test_all_keep_going_clean_run_exits_0(self, monkeypatch, capsys):
        def ok(setup):
            return _FakeResult()

        monkeypatch.setattr(cli, "EXPERIMENTS", {"only": ok})
        rc = main(["all", "--keep-going", "--sms", "2", "--scale", "0.1"])
        assert rc == 0
        assert "FAILURES" not in capsys.readouterr().out


class TestCheckpointFlag:
    def test_run_persists_one_cell_and_resumes_from_it(
            self, tmp_path, capsys):
        ckpt = tmp_path / "ckpt"
        argv = ["run", "cenergy", "--sms", "2", "--scale", "0.1",
                "--checkpoint", str(ckpt)]
        assert main(argv) == 0
        cells = (ckpt / "cells.jsonl").read_text().strip().splitlines()
        assert len(cells) == 1
        first = capsys.readouterr().out
        # second invocation replays the checkpoint: no new line appended
        assert main(argv) == 0
        again = (ckpt / "cells.jsonl").read_text().strip().splitlines()
        assert len(again) == 1
        assert capsys.readouterr().out.splitlines()[0] == first.splitlines()[0]


class TestSnapshotResumeFlags:
    def test_exit_code_3_is_shared_by_partial_and_interrupted(self):
        assert cli.EXIT_INTERRUPTED == 3
        assert cli.EXIT_PARTIAL == 3

    def _snapshot_of_cenergy(self, tmp_path):
        """A mid-run snapshot carrying a launch_ref (CLI-resumable)."""
        from repro import Gpu, GPUConfig
        from repro.errors import SimulationInterrupted
        from repro.obs.bus import Probe
        from repro.workloads import get_kernel

        class StopEarly(Probe):
            def on_run_start(self, gpu, launch):
                self._gpu = gpu

            def on_issue(self, cycle, sm_id, tb_index, warp_in_tb, pc,
                         opcode, active):
                if cycle >= 50:
                    self._gpu.request_stop()

        snap = tmp_path / "cell.snap"
        launch = get_kernel("cenergy").build_launch(0.1)
        with pytest.raises(SimulationInterrupted):
            Gpu(GPUConfig.scaled(4), "pro").run(
                launch, probes=[StopEarly()], snapshot_path=snap,
                launch_ref={"kernel": "cenergy", "scale": 0.1},
            )
        return snap

    def test_run_resume_finishes_a_snapshot_file(self, tmp_path, capsys):
        snap = self._snapshot_of_cenergy(tmp_path)
        assert main(["run", "--resume", str(snap)]) == 0
        baseline = capsys.readouterr()
        assert "cenergy" in baseline.out and "stall breakdown" in baseline.out
        # matches the uninterrupted run's summary line
        assert main(["run", "cenergy", "--sms", "4", "--scale", "0.1"]) == 0
        fresh = capsys.readouterr()
        assert baseline.out.splitlines()[0] == fresh.out.splitlines()[0]

    def test_interrupted_run_exits_3_with_resume_hint(
            self, tmp_path, monkeypatch, capsys):
        from repro.errors import SimulationInterrupted
        from repro.harness.runner import ExperimentSetup

        def interrupted(self, *a, **k):
            raise SimulationInterrupted(
                "simulation stopped on request at cycle 123",
                snapshot_path=str(tmp_path / "x.snap"), cycle=123,
            )

        monkeypatch.setattr(ExperimentSetup, "run", interrupted)
        rc = main(["run", "cenergy", "--sms", "2", "--scale", "0.1",
                   "--checkpoint", str(tmp_path / "ckpt")])
        err = capsys.readouterr().err
        assert rc == 3
        assert "interrupted:" in err and "x.snap" in err
        assert "re-run the same command" in err


class TestTournament:
    ARGS = ["tournament", "--smoke", "--sms", "1", "--scale", "0.05"]

    def test_smoke_tournament_table_json_and_step_summary(
            self, tmp_path, monkeypatch, capsys):
        summary = tmp_path / "summary.md"
        monkeypatch.setenv("GITHUB_STEP_SUMMARY", str(summary))
        path = tmp_path / "t.json"
        assert main(self.ARGS + ["--json", str(path)]) == 0
        out = capsys.readouterr().out
        assert "Scheduler tournament" in out
        assert "Geomean vs LRR" in out
        data = json.loads(path.read_text())
        assert set(data["schedulers"]) == {"lrr", "gto", "tl", "pro",
                                           "rlws", "wasp"}
        assert data["reference"] == "lrr"
        assert data["geomeans"]["lrr"] == 1.0
        assert len(data["ranking"]) == 6
        # The CI step summary got the markdown rendering.
        md = summary.read_text()
        assert md.startswith("### Scheduler tournament")
        assert "| `rlws` |" in md and "| `wasp` |" in md

    def test_smoke_uses_the_fidelity_smoke_kernels(self, tmp_path, capsys):
        from repro.fidelity.expectations import SMOKE_KERNELS

        path = tmp_path / "t.json"
        assert main(self.ARGS + ["--json", str(path)]) == 0
        data = json.loads(path.read_text())
        assert tuple(data["kernels"]) == tuple(SMOKE_KERNELS)

    def test_json_round_trips_through_the_result_type(self, tmp_path,
                                                      capsys):
        from repro.harness.tournament import TournamentResult

        path = tmp_path / "t.json"
        assert main(self.ARGS + ["--json", str(path)]) == 0
        result = TournamentResult.from_json(json.loads(path.read_text()))
        assert result.winner() == result.ranking()[0][0]
        assert result.to_json() | {"reference": "lrr"} == json.loads(
            path.read_text())


class TestTrainRlws:
    def test_writes_versioned_artifact_with_activation_hint(
            self, tmp_path, capsys):
        path = tmp_path / "q.json"
        assert main(["train-rlws", "--epochs", "1", "--sms", "1",
                     "--scale", "0.05", "--qtable-out", str(path)]) == 0
        out = capsys.readouterr().out
        assert "RLWS offline training" in out
        assert "REPRO_RLWS_QTABLE" in out
        data = json.loads(path.read_text())
        assert data["version"].startswith("trained-")
        assert data["q"]  # visited at least one state

    def test_dry_run_without_artifact(self, capsys):
        assert main(["train-rlws", "--epochs", "1", "--sms", "1",
                     "--scale", "0.05"]) == 0
        assert "epoch 0" in capsys.readouterr().out

    @pytest.mark.parametrize("argv", [
        ["train-rlws", "--epochs", "0"],
        ["train-rlws", "--epochs", "-1"],
        ["tournament", "--qtable-out", "q.json"],  # train-rlws only
        ["fig4", "--epochs", "2"],                 # train-rlws only
    ])
    def test_bad_arguments_exit_usage(self, argv, capsys):
        with pytest.raises(SystemExit) as exc:
            main(argv)
        assert exc.value.code == 2

    def test_qtable_out_overwrite_guarded(self, tmp_path, capsys):
        path = tmp_path / "q.json"
        path.write_text("{}")
        with pytest.raises(SystemExit) as exc:
            main(["train-rlws", "--epochs", "1", "--sms", "1",
                  "--scale", "0.05", "--qtable-out", str(path)])
        assert exc.value.code == 2
        assert "--force" in capsys.readouterr().err
