"""Unit tests for the wired memory hierarchy."""

import pytest

from repro.config import GPUConfig
from repro.memory.subsystem import MemorySubsystem

LINE = 128


@pytest.fixture
def mem():
    return MemorySubsystem(GPUConfig.scaled(2))


class TestLoadPath:
    def test_l1_hit_is_fast(self, mem):
        lat = mem.cfg.latency
        mem.access(0, [0], cycle=0)              # cold miss, fills L1
        r = mem.access(0, [0], cycle=10_000)     # hit
        assert r.completion == 10_000 + lat.l1_hit
        assert r.l1_hits == 1

    def test_cold_miss_goes_to_dram(self, mem):
        lat = mem.cfg.latency
        r = mem.access(0, [0], cycle=0)
        assert r.completion > lat.l2_hit  # had to travel past L2

    def test_l2_hit_after_remote_sm_fill(self, mem):
        # SM 0 misses and fills L2; SM 1 misses L1 but hits L2.
        cold = mem.access(0, [0], cycle=0)
        warm = mem.access(1, [0], cycle=cold.completion + 1)
        assert warm.completion - (cold.completion + 1) < cold.completion

    def test_completion_is_max_over_lines(self, mem):
        lines = [0, LINE, 2 * LINE, 3 * LINE]
        r = mem.access(0, lines, cycle=0)
        singles = MemorySubsystem(mem.cfg)
        worst = max(
            singles.access(0, [l], cycle=0).completion for l in lines
        )
        # the batched access shares queueing, but can never beat the
        # slowest isolated line
        assert r.completion >= worst - 1

    def test_transactions_counted(self, mem):
        r = mem.access(0, [0, LINE, 5 * LINE], cycle=0)
        assert r.transactions == 3

    def test_empty_access(self, mem):
        r = mem.access(0, [], cycle=7)
        assert r.completion == 7
        assert r.transactions == 0


class TestMshrIntegration:
    def test_second_miss_merges(self, mem):
        r1 = mem.access(0, [0], cycle=0)
        r2 = mem.access(0, [0], cycle=1)  # in flight -> merged
        assert r2.completion == r1.completion
        assert mem.mshr[0].stats.merges == 1

    def test_merge_is_per_sm(self, mem):
        mem.access(0, [0], cycle=0)
        mem.access(1, [0], cycle=1)
        assert mem.mshr[1].stats.merges == 0


class TestStorePath:
    def test_store_counts_write_traffic(self, mem):
        mem.access(0, [0], cycle=0, is_write=True)
        assert mem.dram.stats.writes >= 1

    def test_store_does_not_fill_l1(self, mem):
        mem.access(0, [0], cycle=0, is_write=True)
        assert mem.l1[0].probe(0) is False

    def test_store_fills_l2(self, mem):
        mem.access(0, [0], cycle=0, is_write=True)
        line_bank = 0 % len(mem.l2_banks)
        assert mem.l2_banks[line_bank].probe(0) is True


class TestStatsAndReset:
    def test_l1_stats_total(self, mem):
        mem.access(0, [0], cycle=0)
        mem.access(1, [LINE], cycle=0)
        total = mem.l1_stats_total()
        assert total.read_misses == 2

    def test_l2_stats_total(self, mem):
        mem.access(0, [0], cycle=0)
        assert mem.l2_stats_total().read_misses == 1

    def test_reset_clears_everything(self, mem):
        mem.access(0, [0], cycle=0)
        mem.reset()
        assert mem.l1[0].probe(0) is False
        assert mem.mshr[0].in_flight == 0
        assert mem.dram.stats.reads == 1  # stats objects survive on dram...
        # ...but timing state is cleared: a fresh access at cycle 0 has the
        # same completion as the very first one did
        r = mem.access(0, [0], cycle=0)
        fresh = MemorySubsystem(mem.cfg).access(0, [0], cycle=0)
        assert r.completion == fresh.completion


class TestDeterminism:
    def test_identical_sequences_identical_timing(self):
        cfg = GPUConfig.scaled(2)
        seq = [(i % 2, [(i * 7 % 40) * LINE], i * 3) for i in range(200)]
        a = MemorySubsystem(cfg)
        b = MemorySubsystem(cfg)
        out_a = [a.access(s, l, c).completion for s, l, c in seq]
        out_b = [b.access(s, l, c).completion for s, l, c in seq]
        assert out_a == out_b
