"""Benchmark: regenerate Fig. 5 (stall-cycle improvement of PRO)."""

from repro.harness.experiments import fig5_stall_improvement

from .conftest import fresh_setup, once


def test_fig5_stall_improvement(benchmark):
    result = once(benchmark, lambda: fig5_stall_improvement(fresh_setup()))
    assert len(result.ratios) == 15
    for b in ("tl", "lrr", "gto"):
        benchmark.extra_info[f"geomean_total_ratio_{b}"] = (
            result.geomeans[b]["total"]
        )
    # Paper shape: PRO has fewer total stalls than TL and LRR on geomean
    # (1.32x / 1.19x in the paper; smaller but > 1 here).
    assert result.geomeans["lrr"]["total"] > 1.0
    assert result.geomeans["tl"]["total"] > 1.0
    assert "Fig. 5" in result.render_fig5()
