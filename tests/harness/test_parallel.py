"""Tests for the parallel run-matrix executor.

The load-bearing property is *bit-identical equivalence*: a parallel
sweep must produce exactly the counters a sequential sweep produces,
cell for cell, and leave the same checkpoint behind.
"""

import json

import pytest

from repro.config import GPUConfig
from repro.errors import SimulationError, WorkerPoolError
from repro.harness.parallel import (
    CellOutcome,
    resolve_jobs,
    run_matrix_parallel,
)
from repro.harness.runner import CellPolicy, ExperimentSetup, ResultCache
from repro.robustness.checkpoint import CheckpointStore, result_to_json
from repro.robustness.faults import FaultPlan

#: Small fast matrix: every scheduler family, two contrasting kernels.
CONFIG = GPUConfig.scaled(2)
SCALE = 0.1
CELLS = [
    (k, s)
    for k in ("scalarProdGPU", "cenergy")
    for s in ("lrr", "gto", "pro")
]


def _flatten(results):
    return {k: result_to_json(v) for k, v in results.items() if v is not None}


class TestResolveJobs:
    def test_int_and_str(self):
        assert resolve_jobs(3) == 3
        assert resolve_jobs("5") == 5
        assert resolve_jobs(None) == 1

    def test_auto_is_positive(self):
        assert resolve_jobs("auto") >= 1
        assert resolve_jobs("AUTO") >= 1

    @pytest.mark.parametrize("bad", ["0", "-2", "nope", "1.5", ""])
    def test_rejects_garbage(self, bad):
        with pytest.raises(ValueError):
            resolve_jobs(bad)


class TestEquivalence:
    def test_parallel_matches_sequential_bit_for_bit(self):
        seq = run_matrix_parallel(ResultCache(), CELLS, CONFIG, SCALE,
                                  jobs=1)
        par = run_matrix_parallel(ResultCache(), CELLS, CONFIG, SCALE,
                                  jobs=2)
        assert _flatten(seq) == _flatten(par)
        # Same stall breakdowns per cell, not just the same cycles.
        for key in CELLS:
            assert (seq[key].counters.stall_breakdown()
                    == par[key].counters.stall_breakdown())

    def test_frontier_schedulers_parallel_match_sequential(self):
        """rlws/wasp cells must survive the worker-payload round trip:
        a jobs=2 sweep is bit-identical to the sequential one."""
        cells = [
            (k, s)
            for k in ("scalarProdGPU", "cenergy")
            for s in ("rlws", "wasp")
        ]
        seq = run_matrix_parallel(ResultCache(), cells, CONFIG, SCALE,
                                  jobs=1)
        par = run_matrix_parallel(ResultCache(), cells, CONFIG, SCALE,
                                  jobs=2)
        assert _flatten(seq) == _flatten(par)
        for key in cells:
            assert (seq[key].counters.stall_breakdown()
                    == par[key].counters.stall_breakdown())

    def test_results_land_in_cache_memo(self):
        cache = ResultCache()
        par = run_matrix_parallel(cache, CELLS, CONFIG, SCALE, jobs=2)
        assert cache.runs_executed == len(CELLS)
        for kernel, sched in CELLS:
            hit = cache.lookup(kernel, sched, CONFIG, SCALE)
            assert hit is not None
            assert result_to_json(hit) == result_to_json(par[(kernel, sched)])
        # A second sweep is answered entirely from the memo.
        before = cache.runs_executed
        run_matrix_parallel(cache, CELLS, CONFIG, SCALE, jobs=2)
        assert cache.runs_executed == before

    def test_parallel_checkpoint_matches_sequential(self, tmp_path):
        caches = {}
        for label, jobs in (("seq", 1), ("par", 2)):
            store = CheckpointStore(tmp_path / label)
            caches[label] = ResultCache(checkpoint=store)
            run_matrix_parallel(caches[label], CELLS, CONFIG, SCALE,
                                jobs=jobs)

        def cells_on_disk(directory):
            out = {}
            for line in (directory / "cells.jsonl").read_text().splitlines():
                record = json.loads(line)
                out[record["key"]] = record["result"]
            return out

        assert cells_on_disk(tmp_path / "seq") == cells_on_disk(tmp_path / "par")

    def test_checkpoint_hits_skip_workers(self, tmp_path):
        store = CheckpointStore(tmp_path)
        cache = ResultCache(checkpoint=store)
        run_matrix_parallel(cache, CELLS, CONFIG, SCALE, jobs=2)
        resumed = ResultCache(checkpoint=CheckpointStore(tmp_path))
        run_matrix_parallel(resumed, CELLS, CONFIG, SCALE, jobs=2)
        assert resumed.runs_executed == 0
        assert resumed.checkpoint_hits == len(CELLS)

    def test_outcomes_record_every_cell(self):
        outcomes = []
        run_matrix_parallel(ResultCache(), CELLS, CONFIG, SCALE, jobs=2,
                            outcomes=outcomes)
        assert sorted((o.kernel, o.scheduler) for o in outcomes) == sorted(CELLS)
        assert all(isinstance(o, CellOutcome) and not o.from_cache
                   for o in outcomes)


class TestFailures:
    def test_worker_failure_raises_without_keep_going(self):
        # An instantly-expired wall-clock budget makes every worker cell
        # fail with CellTimeoutError (a SimulationError).
        cache = ResultCache(policy=CellPolicy(cell_timeout=1e-9))
        with pytest.raises(SimulationError):
            run_matrix_parallel(cache, CELLS[:2], CONFIG, SCALE, jobs=2)
        assert cache.failures  # recorded before raising

    def test_keep_going_aggregates_worker_failures(self):
        cache = ResultCache(policy=CellPolicy(cell_timeout=1e-9))
        results = run_matrix_parallel(cache, CELLS[:2], CONFIG, SCALE,
                                      jobs=2, keep_going=True)
        assert all(v is None for v in results.values())
        assert len(cache.failures) == 2
        for failure in cache.failures:
            assert isinstance(failure.error, SimulationError)
            assert failure.attempts == 1

    def test_retries_counted_in_worker_failures(self):
        cache = ResultCache(
            policy=CellPolicy(retries=1, cell_timeout=1e-9)
        )
        run_matrix_parallel(cache, CELLS[:1], CONFIG, SCALE, jobs=2,
                            keep_going=True)
        assert cache.failures[0].attempts == 2

    def test_worker_diagnostics_survive_the_process_boundary(self):
        """A worker-side CellTimeoutError carries a full DeadlockReport;
        the parent's FAILURES section must render the same post-mortem a
        sequential sweep would — not just the headline."""
        cache = ResultCache(policy=CellPolicy(cell_timeout=1e-9))
        run_matrix_parallel(cache, CELLS[:1], CONFIG, SCALE, jobs=2,
                            keep_going=True)
        sequential = ResultCache(policy=CellPolicy(cell_timeout=1e-9))
        run_matrix_parallel(sequential, CELLS[:1], CONFIG, SCALE, jobs=1,
                            keep_going=True)
        (par_failure,), (seq_failure,) = cache.failures, sequential.failures
        assert type(par_failure.error).__name__ == type(
            seq_failure.error).__name__
        # The rehydrated report renders the same diagnostic sections.
        par_text, seq_text = str(par_failure.error), str(seq_failure.error)
        assert "DeadlockReport @ cycle" in seq_text
        assert "DeadlockReport @ cycle" in par_text
        for marker in ("SM 0:", "MSHR:", "occupancy:"):
            assert (marker in par_text) == (marker in seq_text)

    def test_fault_plans_fall_back_to_sequential(self):
        # Fault budgets are process-local mutable state: the executor
        # must not fork them to workers. A poisoned cell still fails
        # (via the in-process path) and healthy cells still complete.
        plan = FaultPlan().fail_cell("cenergy", "lrr", times=99)
        cache = ResultCache(faults=plan)
        results = run_matrix_parallel(
            cache, [("cenergy", "lrr"), ("scalarProdGPU", "pro")],
            CONFIG, SCALE, jobs=4, keep_going=True,
        )
        assert results[("cenergy", "lrr")] is None
        assert results[("scalarProdGPU", "pro")] is not None
        assert len(cache.failures) == 1
        assert cache.failures[0].kernel == "cenergy"


class TestExecutorBackend:
    """Regression surface for the legacy unsupervised executor path."""

    def test_dead_worker_raises_structured_pool_error(self):
        # kill_worker makes the dispatched worker os._exit: the executor
        # backend must surface a WorkerPoolError naming the lost cells,
        # never a raw BrokenProcessPool traceback.
        plan = FaultPlan().kill_worker("scalarProdGPU", "lrr")
        cache = ResultCache(faults=plan)
        with pytest.raises(WorkerPoolError) as exc:
            run_matrix_parallel(cache, CELLS[:2], CONFIG, SCALE, jobs=2,
                                backend="executor")
        assert ("scalarProdGPU", "lrr") in exc.value.lost_cells
        assert "lost" in str(exc.value)

    def test_executor_matches_sequential(self):
        seq = run_matrix_parallel(ResultCache(), CELLS, CONFIG, SCALE,
                                  jobs=1)
        par = run_matrix_parallel(ResultCache(), CELLS, CONFIG, SCALE,
                                  jobs=2, backend="executor")
        assert _flatten(seq) == _flatten(par)

    def test_corrupt_payload_is_recorded_not_adopted(self, tmp_path):
        # The executor has no redispatch: a mangled payload becomes a
        # recorded CellFailure and must never reach the checkpoint.
        plan = FaultPlan().corrupt_payload("scalarProdGPU", "lrr")
        store = CheckpointStore(tmp_path)
        cache = ResultCache(checkpoint=store, faults=plan)
        results = run_matrix_parallel(cache, CELLS[:1], CONFIG, SCALE,
                                      jobs=2, backend="executor",
                                      keep_going=True)
        assert results[("scalarProdGPU", "lrr")] is None
        assert len(cache.failures) == 1
        assert "payload" in cache.failures[0].headline
        fresh = ResultCache(checkpoint=CheckpointStore(tmp_path))
        assert fresh.lookup("scalarProdGPU", "lrr", CONFIG, SCALE) is None

    def test_unknown_backend_rejected(self):
        with pytest.raises(ValueError):
            run_matrix_parallel(ResultCache(), CELLS[:1], CONFIG, SCALE,
                                jobs=2, backend="threads")


class TestConcurrentCheckpointShards:
    def test_two_shard_writers_one_reader(self, tmp_path):
        """Two writer processes each append to their own shard; a fresh
        parent store sees the union."""
        a = CheckpointStore(tmp_path, shard="w1")
        b = CheckpointStore(tmp_path, shard="w2")
        cache_a = ResultCache(checkpoint=a)
        cache_b = ResultCache(checkpoint=b)
        cache_a.run("scalarProdGPU", "lrr", CONFIG, SCALE)
        cache_b.run("cenergy", "pro", CONFIG, SCALE)
        assert a.path != b.path
        assert a.path.name == "cells-w1.jsonl"

        parent = CheckpointStore(tmp_path)
        assert len(parent) == 2
        resumed = ResultCache(checkpoint=parent)
        resumed.run("scalarProdGPU", "lrr", CONFIG, SCALE)
        resumed.run("cenergy", "pro", CONFIG, SCALE)
        assert resumed.runs_executed == 0
        assert resumed.checkpoint_hits == 2

    def test_shard_sees_other_shards_on_load(self, tmp_path):
        a = CheckpointStore(tmp_path, shard="w1")
        ResultCache(checkpoint=a).run("scalarProdGPU", "lrr", CONFIG, SCALE)
        late = CheckpointStore(tmp_path, shard="w2")
        assert len(late) == 1

    def test_bad_shard_name_rejected(self, tmp_path):
        with pytest.raises(ValueError):
            CheckpointStore(tmp_path, shard="../evil")


class TestExperimentSetupPrewarm:
    def test_prewarm_fills_cache(self):
        setup = ExperimentSetup(config=CONFIG, scale=SCALE, jobs=2)
        results = setup.prewarm(kernels=["scalarProdGPU", "cenergy"],
                                schedulers=("lrr", "pro"))
        assert len(results) == 4
        assert setup.cache.lookup("cenergy", "pro", CONFIG, SCALE) is not None
        # The experiment-facing path answers from the memo now.
        before = setup.cache.runs_executed
        setup.run("cenergy", "pro")
        assert setup.cache.runs_executed == before

    def test_policy_travels_to_workers(self):
        cache = ResultCache(policy=CellPolicy(retries=0, cell_timeout=60.0))
        results = run_matrix_parallel(cache, CELLS[:2], CONFIG, SCALE,
                                      jobs=2)
        assert all(v is not None for v in results.values())
