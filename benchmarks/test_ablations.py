"""Benchmarks: the paper's §IV ablations (barrier handling, THRESHOLD)."""

import pytest

from repro.harness.experiments import (
    ablation_barrier_handling,
    ablation_threshold,
)

from .conftest import fresh_setup, once

pytestmark = [pytest.mark.bench, pytest.mark.slow]


def test_ablation_barrier_handling(benchmark):
    result = once(
        benchmark,
        lambda: ablation_barrier_handling(
            fresh_setup(), kernels=("scalarProdGPU", "calculate_temp")
        ),
    )
    sp = result.cycles["scalarProdGPU"]
    benchmark.extra_info["scalarProd_pro_nb_speedup"] = sp["pro"] / sp["pro-nb"]
    # Paper §IV: scalarProd is *sensitive* to barrier handling (they saw
    # +11% with it disabled). We assert sensitivity bounds, not the sign.
    assert 0.8 < sp["pro"] / sp["pro-nb"] < 1.25
    assert "Ablation" in result.render()


def test_ablation_threshold(benchmark):
    result = once(
        benchmark,
        lambda: ablation_threshold(
            fresh_setup(),
            kernels=("aesEncrypt128", "scalarProdGPU"),
            thresholds=(100, 1000, 8000),
        ),
    )
    for kernel, per in result.cycles.items():
        vals = list(per.values())
        # THRESHOLD is a second-order knob (paper fixes it at 1000 without
        # sweep): cycles must vary by < 25% across two orders of magnitude.
        assert max(vals) / min(vals) < 1.25, (kernel, per)
    assert "THRESHOLD" in result.render()
