"""Unit tests for Program validation, latency resolution, dynamic counts."""

import pytest

from repro.config import LatencyConfig
from repro.errors import ProgramError
from repro.isa.instructions import Instruction, Opcode
from repro.isa.patterns import Coalesced
from repro.isa.program import Program


def make(instrs, **kw):
    return Program("t", instrs, **kw)


def I(op, **kw):  # noqa: E743 - terse test helper
    return Instruction(op, **kw)


class TestValidation:
    def test_empty_program_rejected(self):
        with pytest.raises(ProgramError):
            make([])

    def test_must_end_with_exit(self):
        with pytest.raises(ProgramError):
            make([I(Opcode.IALU, dst=1)])

    def test_minimal_ok(self):
        p = make([I(Opcode.EXIT)])
        assert p.static_count() == 1

    def test_exit_only_at_end(self):
        with pytest.raises(ProgramError):
            make([I(Opcode.EXIT), I(Opcode.IALU, dst=1), I(Opcode.EXIT)])

    def test_forward_branch_rejected(self):
        with pytest.raises(ProgramError):
            make([
                I(Opcode.BRA, target=1, trips=1),
                I(Opcode.IALU, dst=1),
                I(Opcode.EXIT),
            ])

    def test_self_branch_rejected(self):
        with pytest.raises(ProgramError):
            make([I(Opcode.IALU, dst=1),
                  I(Opcode.BRA, target=1, trips=1),
                  I(Opcode.EXIT)])

    def test_backward_branch_ok(self):
        p = make([I(Opcode.IALU, dst=1),
                  I(Opcode.BRA, target=0, trips=2),
                  I(Opcode.EXIT)])
        assert p.instructions[1].target == 0

    def test_pc_assignment(self):
        p = make([I(Opcode.IALU, dst=1), I(Opcode.EXIT)])
        assert [i.pc for i in p.instructions] == [0, 1]

    def test_resource_fields_validated(self):
        with pytest.raises(ProgramError):
            make([I(Opcode.EXIT)], threads_per_tb=0)
        with pytest.raises(ProgramError):
            make([I(Opcode.EXIT)], regs_per_thread=0)
        with pytest.raises(ProgramError):
            make([I(Opcode.EXIT)], shared_mem_per_tb=-1)


class TestLatencyResolution:
    def test_alu_latency(self):
        p = make([I(Opcode.IALU, dst=1), I(Opcode.EXIT)])
        lat = LatencyConfig()
        p.finalize(lat)
        assert p.instructions[0].latency == lat.alu

    def test_sfu_and_fma(self):
        p = make([I(Opcode.SFU, dst=1), I(Opcode.FMA, dst=2), I(Opcode.EXIT)])
        lat = LatencyConfig()
        p.finalize(lat)
        assert p.instructions[0].latency == lat.sfu
        assert p.instructions[1].latency == lat.mad

    def test_shared_conflicts_add_latency(self):
        p = make([
            I(Opcode.LDS, dst=1, conflict_ways=1),
            I(Opcode.LDS, dst=2, conflict_ways=4),
            I(Opcode.EXIT),
        ])
        lat = LatencyConfig()
        p.finalize(lat)
        assert p.instructions[0].latency == lat.shared
        assert p.instructions[1].latency == lat.shared + 3 * lat.shared_conflict

    def test_memory_latency_left_dynamic(self):
        p = make([I(Opcode.LDG, dst=1, pattern=Coalesced()), I(Opcode.EXIT)])
        p.finalize(LatencyConfig())
        assert p.instructions[0].latency == 0

    def test_finalize_idempotent(self):
        p = make([I(Opcode.IALU, dst=1), I(Opcode.EXIT)])
        lat = LatencyConfig()
        p.finalize(lat)
        first = p.instructions[0].latency
        p.finalize(lat)
        assert p.instructions[0].latency == first


class TestDynamicCount:
    def test_straight_line(self):
        p = make([I(Opcode.IALU, dst=1), I(Opcode.EXIT)])
        assert p.dynamic_count(0, 0) == 2

    def test_simple_loop(self):
        # body (1 instr) + branch, taken twice -> 3 executions of both + EXIT
        p = make([I(Opcode.IALU, dst=1),
                  I(Opcode.BRA, target=0, trips=2),
                  I(Opcode.EXIT)])
        assert p.dynamic_count(0, 0) == 3 * 2 + 1

    def test_per_warp_trips(self):
        p = make([I(Opcode.IALU, dst=1),
                  I(Opcode.BRA, target=0, trips=lambda tb, w: w),
                  I(Opcode.EXIT)])
        assert p.dynamic_count(0, 0) == 3   # 1 pass
        assert p.dynamic_count(0, 2) == 7   # 3 passes

    def test_nested_loops(self):
        # inner loop (1 instr + bra, 2 trips), wrapped by outer (2 trips)
        p = make([
            I(Opcode.IALU, dst=1),            # pc0 inner body
            I(Opcode.BRA, target=0, trips=2),  # pc1 inner: 3 passes
            I(Opcode.BRA, target=0, trips=2),  # pc2 outer: 3 passes
            I(Opcode.EXIT),
        ])
        # per outer pass: inner runs 3x(body+bra)=6, plus outer bra = 7
        assert p.dynamic_count(0, 0) == 3 * 7 + 1

    def test_max_register(self):
        p = make([I(Opcode.IALU, dst=9, srcs=(3, 17)), I(Opcode.EXIT)])
        assert p.max_register() == 17

    def test_has_barrier(self):
        assert make([I(Opcode.BAR), I(Opcode.EXIT)]).has_barrier()
        assert not make([I(Opcode.EXIT)]).has_barrier()

    def test_dunder_helpers(self):
        p = make([I(Opcode.IALU, dst=1), I(Opcode.EXIT)])
        assert len(p) == 2
        assert p[0].op is Opcode.IALU
        assert [i.op for i in p] == [Opcode.IALU, Opcode.EXIT]
