"""GPU hardware configuration (paper Table I) and derived presets.

The default configuration mirrors the GPGPU-Sim GTX480 (NVIDIA Fermi)
configuration the paper used:

======================================  =========
Architecture                            GTX480
Number of SMs                           14 (15 physical, 14 in the sim config)
Max thread blocks per SM                8
Max threads per SM                      1536
Shared memory per SM                    48 KB
L1 cache per SM                         16 KB
L2 cache                                768 KB
Max registers per SM                    32768
Warp schedulers per SM                  2
DRAM scheduler                          FR-FCFS
======================================  =========

Experiments in ``repro.harness`` default to :meth:`GPUConfig.scaled`, a
4-SM configuration with identical per-SM parameters; workload grid sizes
are scaled to preserve the ratio of grid size to resident-TB capacity,
which is the quantity that drives the paper's fastTBPhase/slowTBPhase
behaviour (see DESIGN.md §2).
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

from .errors import ConfigError

#: Number of threads in a warp (CUDA fixed constant).
WARP_SIZE = 32

#: Cache line / memory transaction size in bytes (Fermi L1 line).
LINE_SIZE = 128


@dataclass(frozen=True)
class LatencyConfig:
    """Latencies (in SM cycles) of the execution pipelines and memories.

    Values follow GPGPU-Sim's GTX480 configuration closely enough to
    reproduce the *relative* behaviour of the schedulers: short ALU
    latencies hide easily, SFU latencies need a handful of ready warps,
    and global-memory latencies (hundreds of cycles) need many.
    """

    #: Simple integer/float ALU op writeback latency.
    alu: int = 4
    #: Multiply / fused multiply-add latency.
    mad: int = 6
    #: Special function unit (sin, rsqrt, ...) latency.
    sfu: int = 20
    #: Shared-memory access latency (no conflicts).
    shared: int = 24
    #: Extra shared-memory cycles per bank-conflict way beyond the first.
    shared_conflict: int = 8
    #: L1 hit total load-to-use latency.
    l1_hit: int = 32
    #: Additional latency for an L2 hit (on top of L1 miss path).
    l2_hit: int = 160
    #: DRAM row-buffer hit service time (L2 miss path).
    dram_row_hit: int = 160
    #: DRAM row-buffer miss (precharge + activate + access) service time.
    dram_row_miss: int = 320
    #: Interconnect traversal, SM <-> L2, one way.
    noc: int = 20
    #: Instruction refetch bubble after a branch or barrier release. GPUs
    #: do not speculate: after a warp issues a branch (or resumes from a
    #: barrier) its next instruction is not in the i-buffer for this many
    #: cycles, during which the warp has no valid instruction — the main
    #: hardware source of GPGPU-Sim's "Idle" stall cycles (paper §II-B).
    branch_bubble: int = 6

    def validate(self) -> None:
        """Raise :class:`ConfigError` if any latency is non-positive."""
        for name in (
            "alu",
            "mad",
            "sfu",
            "shared",
            "l1_hit",
            "l2_hit",
            "dram_row_hit",
            "dram_row_miss",
            "noc",
        ):
            if getattr(self, name) <= 0:
                raise ConfigError(f"latency {name!r} must be positive")
        if self.shared_conflict < 0:
            raise ConfigError("shared_conflict must be >= 0")
        if self.branch_bubble < 0:
            raise ConfigError("branch_bubble must be >= 0")


@dataclass(frozen=True)
class MemoryConfig:
    """Geometry of the cache/DRAM hierarchy."""

    #: L1 data cache capacity per SM, bytes.
    l1_size: int = 16 * 1024
    #: L1 associativity.
    l1_ways: int = 4
    #: MSHR entries per SM L1 (distinct outstanding miss lines).
    mshr_entries: int = 32
    #: Maximum merged requests per MSHR entry.
    mshr_merge: int = 8
    #: L2 total capacity, bytes (shared across SMs).
    l2_size: int = 768 * 1024
    #: L2 associativity.
    l2_ways: int = 8
    #: Number of L2 banks (address-interleaved at line granularity).
    l2_banks: int = 6
    #: DRAM channels.
    dram_channels: int = 6
    #: Banks per DRAM channel.
    dram_banks: int = 8
    #: DRAM row size in bytes (open-row locality granularity).
    dram_row_size: int = 2048
    #: Minimum cycles between successive bursts on one channel bus.
    dram_bus_cycles: int = 4
    #: Bank busy time after a row-hit access (burst occupancy, ~tCCD).
    dram_hit_occupancy: int = 8
    #: Bank busy time after a row-miss access (row cycle, ~tRC). Distinct
    #: from the *latency* the requester sees (dram_row_miss): the bank can
    #: accept its next request long before the data finished its journey.
    dram_miss_occupancy: int = 48
    #: Cache line size, bytes.
    line_size: int = LINE_SIZE

    def validate(self) -> None:
        """Raise :class:`ConfigError` on inconsistent geometry."""
        if self.line_size <= 0 or self.line_size & (self.line_size - 1):
            raise ConfigError("line_size must be a positive power of two")
        for name in ("l1_size", "l1_ways", "l2_size", "l2_ways"):
            if getattr(self, name) <= 0:
                raise ConfigError(f"{name} must be positive")
        if self.l1_size % (self.line_size * self.l1_ways):
            raise ConfigError("l1_size must be a multiple of line_size * l1_ways")
        if self.l2_size % (self.line_size * self.l2_ways * self.l2_banks):
            raise ConfigError(
                "l2_size must be divisible by line_size * l2_ways * l2_banks"
            )
        if self.mshr_entries <= 0 or self.mshr_merge <= 0:
            raise ConfigError("MSHR geometry must be positive")
        if self.dram_channels <= 0 or self.dram_banks <= 0:
            raise ConfigError("DRAM geometry must be positive")
        if self.dram_row_size < self.line_size:
            raise ConfigError("dram_row_size must be >= line_size")
        if self.dram_hit_occupancy <= 0 or self.dram_miss_occupancy <= 0:
            raise ConfigError("DRAM occupancies must be positive")
        if self.dram_bus_cycles <= 0:
            raise ConfigError("dram_bus_cycles must be positive")


@dataclass(frozen=True)
class GPUConfig:
    """Top-level GPU configuration (paper Table I).

    Instances are immutable; derive variants with :func:`dataclasses.replace`
    or the :meth:`with_` helper.
    """

    #: Number of streaming multiprocessors.
    num_sms: int = 14
    #: Max resident thread blocks per SM (Fermi: 8).
    max_tbs_per_sm: int = 8
    #: Max resident threads per SM (Fermi: 1536).
    max_threads_per_sm: int = 1536
    #: Shared memory per SM, bytes.
    shared_mem_per_sm: int = 48 * 1024
    #: Register file per SM, 4-byte registers.
    registers_per_sm: int = 32768
    #: Warp schedulers per SM (Fermi: 2).
    num_schedulers: int = 2
    #: SP (ALU) issue ports per SM; each accepts one warp instruction/cycle.
    sp_units: int = 2
    #: SFU issue ports per SM.
    sfu_units: int = 1
    #: LSU (load/store) issue ports per SM.
    lsu_units: int = 1
    #: Threads per warp.
    warp_size: int = WARP_SIZE
    latency: LatencyConfig = field(default_factory=LatencyConfig)
    memory: MemoryConfig = field(default_factory=MemoryConfig)
    #: Cycles between a TB being assigned to an SM and its warps becoming
    #: issuable: resource deallocation of the predecessor, the Thread Block
    #: Scheduler round-trip, and per-thread state init. This is what makes
    #: *batched* TB completion expensive (paper §II-C): when a whole batch
    #: finishes together, the SM sits with no ready warps while every
    #: replacement initializes; staggered completion hides the latency.
    tb_launch_latency: int = 80
    #: PRO re-sort period, cycles (paper §III-C: 1000).
    pro_sort_threshold: int = 1000
    #: TL fetch group size in warps (Narasiman et al.: 8).
    tl_fetch_group_size: int = 8
    #: Hard cap on simulated cycles; exceeded -> SimulationHang (deadlock net).
    max_cycles: int = 200_000_000
    #: Forward-progress watchdog window: simulated cycles without a single
    #: issued instruction GPU-wide before the run is declared hung
    #: (SimulationHang with a DeadlockReport). 0 disables the watchdog.
    #: Distinct from max_cycles: the window catches livelocks long before
    #: the hard cap, with diagnostics instead of a bare overrun.
    watchdog_window: int = 2_000_000

    def __post_init__(self) -> None:
        self.validate()

    def validate(self) -> None:
        """Raise :class:`ConfigError` if the configuration is inconsistent."""
        if self.num_sms <= 0:
            raise ConfigError("num_sms must be positive")
        if self.max_tbs_per_sm <= 0:
            raise ConfigError("max_tbs_per_sm must be positive")
        if self.warp_size <= 0:
            raise ConfigError("warp_size must be positive")
        if self.max_threads_per_sm < self.warp_size:
            raise ConfigError("max_threads_per_sm must hold at least one warp")
        if self.max_threads_per_sm % self.warp_size:
            raise ConfigError("max_threads_per_sm must be a multiple of warp_size")
        if self.num_schedulers <= 0:
            raise ConfigError("num_schedulers must be positive")
        if min(self.sp_units, self.sfu_units, self.lsu_units) <= 0:
            raise ConfigError("each execution unit class needs >= 1 port")
        if self.shared_mem_per_sm < 0 or self.registers_per_sm <= 0:
            raise ConfigError("SM resources must be positive")
        if self.pro_sort_threshold <= 0:
            raise ConfigError("pro_sort_threshold must be positive")
        if self.tb_launch_latency < 0:
            raise ConfigError("tb_launch_latency must be >= 0")
        if self.tl_fetch_group_size <= 0:
            raise ConfigError("tl_fetch_group_size must be positive")
        if self.max_cycles <= 0:
            raise ConfigError("max_cycles must be positive")
        if self.watchdog_window < 0:
            raise ConfigError("watchdog_window must be >= 0 (0 disables)")
        self.latency.validate()
        self.memory.validate()

    @property
    def max_warps_per_sm(self) -> int:
        """Maximum resident warps per SM (Fermi: 48)."""
        return self.max_threads_per_sm // self.warp_size

    @classmethod
    def gtx480(cls) -> "GPUConfig":
        """The paper's Table I configuration (the class default)."""
        return cls()

    @classmethod
    def scaled(cls, num_sms: int = 4) -> "GPUConfig":
        """A reduced-SM configuration used by the experiment harness.

        Per-SM parameters are unchanged; only the SM count (and hence total
        resident-TB capacity) shrinks. Workload grids are scaled to match,
        preserving the grid/residency ratio (DESIGN.md §2).
        """
        return replace(cls(), num_sms=num_sms)

    def with_(self, **kwargs) -> "GPUConfig":
        """Return a copy with the given fields replaced (validated)."""
        return replace(self, **kwargs)
