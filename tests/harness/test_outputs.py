"""The shared output-overwrite guard and its CLI wiring.

One rule (EXPERIMENTS.md, "Output files and --force"): every
artifact-writing flag refuses an existing target with exit code 2
unless ``--force``; resumable stores (``--checkpoint``) are exempt.
"""

import pytest

from repro.harness.cli import main
from repro.harness.outputs import (
    EXIT_REFUSED,
    OutputExistsError,
    guard_output,
    guard_outputs,
)


class TestGuardHelpers:
    def test_missing_target_passes_through(self, tmp_path):
        target = tmp_path / "out.json"
        assert guard_output(target, flag="--json") == target

    def test_none_and_empty_are_noops(self):
        assert guard_output(None) is None
        assert guard_output("") is None

    def test_existing_target_refused_with_flag_in_message(self, tmp_path):
        target = tmp_path / "out.json"
        target.write_text("{}")
        with pytest.raises(OutputExistsError) as exc:
            guard_output(target, flag="--json")
        assert exc.value.flag == "--json"
        assert "--json target exists" in str(exc.value)
        assert "--force" in str(exc.value)

    def test_force_allows_overwrite(self, tmp_path):
        target = tmp_path / "out.json"
        target.write_text("{}")
        assert guard_output(target, force=True, flag="--json") == target

    def test_guard_outputs_names_first_offender(self, tmp_path):
        exists = tmp_path / "a.json"
        exists.write_text("{}")
        with pytest.raises(OutputExistsError) as exc:
            guard_outputs([("--out", tmp_path / "missing.txt"),
                           ("--json", exists)])
        assert exc.value.flag == "--json"

    def test_exit_code_constant_matches_usage_errors(self):
        assert EXIT_REFUSED == 2


class TestCliWiring:
    """Every file-writing verb goes through the same guard."""

    def _expect_refusal(self, argv, capsys, flag):
        with pytest.raises(SystemExit) as exc:
            main(argv)
        assert exc.value.code == 2
        err = capsys.readouterr().err
        assert f"{flag} target exists" in err
        assert "--force" in err

    def test_out_guarded_everywhere(self, tmp_path, capsys):
        target = tmp_path / "report.txt"
        target.write_text("old")
        self._expect_refusal(["table1", "--out", str(target)],
                             capsys, "--out")

    def test_json_guarded_for_run(self, tmp_path, capsys):
        target = tmp_path / "run.json"
        target.write_text("{}")
        self._expect_refusal(
            ["run", "cenergy", "--json", str(target)], capsys, "--json"
        )

    def test_trace_outputs_guarded(self, tmp_path, capsys):
        metrics = tmp_path / "m.jsonl"
        metrics.write_text("")
        self._expect_refusal(
            ["trace", "--smoke", "--metrics-out", str(metrics),
             "--trace-out", str(tmp_path / "t.json")],
            capsys, "--metrics-out",
        )

    def test_bench_out_still_guarded(self, tmp_path, capsys):
        target = tmp_path / "bench.json"
        target.write_text("{}")
        self._expect_refusal(
            ["bench", "--smoke", "--bench-out", str(target)],
            capsys, "--bench-out",
        )

    def test_force_overwrites_out(self, tmp_path, capsys):
        target = tmp_path / "report.txt"
        target.write_text("old")
        assert main(["table1", "--out", str(target), "--force"]) == 0
        assert "Table I" in target.read_text()

    def test_checkpoint_store_is_exempt(self, tmp_path, capsys):
        # Resumable stores must NOT be guarded: re-running the same
        # command against an existing checkpoint dir is the resume path.
        ckpt = tmp_path / "ckpt"
        assert main(["run", "cenergy", "--sms", "2", "--scale", "0.1",
                     "--checkpoint", str(ckpt)]) == 0
        assert (ckpt / "cells.jsonl").exists()
        capsys.readouterr()
        assert main(["run", "cenergy", "--sms", "2", "--scale", "0.1",
                     "--checkpoint", str(ckpt)]) == 0
