"""Fidelity report: verdict rows plus three renderers.

One :class:`FidelityReport` feeds all three consumers:

* ``render()`` — the human terminal table (``pro-sim fidelity``);
* ``to_json()`` — the machine-readable artifact CI archives;
* ``render_markdown()`` — the GitHub Actions step-summary block the
  ``fidelity-smoke`` job publishes on every PR.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from ..stats.report import render_markdown_table, render_table
from .baseline import BaselineDiff
from .expectations import FidelityProfile

#: Severity order for aggregation.
_SEVERITY = {"pass": 0, "warn": 1, "fail": 2}

_STATUS_ICON = {"pass": "✅", "warn": "⚠️", "fail": "❌"}


@dataclass
class Verdict:
    """One judged expectation."""

    expectation_id: str
    kind: str
    status: str  # "pass" | "warn" | "fail"
    measured: float
    delta: float
    band: str
    anchor: str
    paper_value: Optional[float] = None
    #: True when judged against a numeric per-profile target (delta is a
    #: relative deviation); False for shape bounds.
    numeric: bool = False

    def delta_str(self) -> str:
        if self.numeric:
            return f"{self.delta:+.2%}"
        return "-" if self.delta == 0.0 else f"{self.delta:+.3f}"


@dataclass
class FidelityReport:
    """Everything one fidelity run concluded."""

    profile: FidelityProfile
    sms: int
    scale: float
    canonical: bool
    config_digest: str
    verdicts: List[Verdict] = field(default_factory=list)
    baseline: Optional[BaselineDiff] = None

    # -- aggregation --------------------------------------------------
    def counts(self) -> Dict[str, int]:
        out = {"pass": 0, "warn": 0, "fail": 0}
        for v in self.verdicts:
            out[v.status] += 1
        return out

    @property
    def status(self) -> str:
        worst = max(
            (v.status for v in self.verdicts), key=_SEVERITY.get,
            default="pass",
        )
        if self.baseline is not None:
            worst = max(worst, self.baseline.status, key=_SEVERITY.get)
        return worst

    @property
    def ok(self) -> bool:
        """Gate verdict: warnings pass, failures do not."""
        return self.status != "fail"

    def geomean_deltas(self) -> Dict[str, float]:
        """Relative deviation of each aggregate-geomean expectation from
        its target (the report's headline trend numbers)."""
        return {
            v.expectation_id: v.delta
            for v in self.verdicts
            if v.kind in ("geomean_speedup", "stall_ratio_geomean")
            and v.numeric
        }

    def failures(self) -> List[Verdict]:
        return [v for v in self.verdicts if v.status == "fail"]

    # -- renderers ----------------------------------------------------
    def _rows(self) -> List[tuple]:
        rows = []
        for v in self.verdicts:
            paper = "" if v.paper_value is None else f"{v.paper_value:.3f}"
            rows.append((v.status.upper(), v.expectation_id,
                         f"{v.measured:.3f}", v.band, v.delta_str(),
                         paper, v.anchor))
        return rows

    def _headline(self) -> str:
        c = self.counts()
        mode = "canonical" if self.canonical else "shape-only (off-canonical)"
        return (f"fidelity [{self.profile.name}] {self.status.upper()}: "
                f"{c['pass']} pass, {c['warn']} warn, {c['fail']} fail "
                f"({len(self.profile.kernels)} kernels x "
                f"{len(self.profile.schedulers)} schedulers, {self.sms} SMs, "
                f"scale {self.scale}, {mode})")

    def render(self) -> str:
        parts = [
            render_table(
                ("Status", "Expectation", "Measured", "Band", "Delta",
                 "Paper", "Anchor"),
                self._rows(),
                title=f"Fidelity report — profile '{self.profile.name}'",
            ),
            "",
            self._headline(),
        ]
        if self.baseline is not None:
            parts.append(f"baseline [{self.baseline.status}]: "
                         f"{self.baseline.headline()}")
            for d in self.baseline.drifted[:20]:
                parts.append(f"  {d.describe()}")
            if len(self.baseline.drifted) > 20:
                parts.append(f"  ... and {len(self.baseline.drifted) - 20} "
                             "more drifted cells")
            for cell in self.baseline.missing_cells:
                parts.append(f"  {cell}: in baseline only")
            for cell in self.baseline.extra_cells:
                parts.append(f"  {cell}: measured but not in baseline")
            if self.baseline.stale_files:
                parts.append("  stale baseline files (other geometry): "
                             + ", ".join(self.baseline.stale_files))
        return "\n".join(parts)

    def render_markdown(self) -> str:
        """GitHub-flavored markdown for ``$GITHUB_STEP_SUMMARY``."""
        lines = [
            f"## Paper fidelity — `{self.profile.name}` "
            f"{_STATUS_ICON[self.status]}",
            "",
            self._headline(),
            "",
            render_markdown_table(
                ("", "Expectation", "Measured", "Band", "Delta", "Paper",
                 "Anchor"),
                [( _STATUS_ICON[v.status], f"`{v.expectation_id}`",
                   f"{v.measured:.3f}", v.band, v.delta_str(),
                   "" if v.paper_value is None else f"{v.paper_value:.3f}",
                   v.anchor)
                 for v in self.verdicts],
            ),
        ]
        if self.baseline is not None:
            lines += ["",
                      f"**Baseline** {_STATUS_ICON[self.baseline.status]}: "
                      f"{self.baseline.headline()}"]
            if self.baseline.drifted:
                lines += ["", render_markdown_table(
                    ("Cell", "Counter", "Baseline", "Measured", "Δ"),
                    [(d.cell, d.field_name, d.baseline, d.measured,
                      f"{d.rel:+.2%}")
                     for d in self.baseline.drifted[:50]],
                )]
        return "\n".join(lines) + "\n"

    def to_json(self) -> dict:
        out = {
            "schema": 1,
            "profile": {
                "name": self.profile.name,
                "key": self.profile.key(),
                "kernels": list(self.profile.kernels),
                "schedulers": list(self.profile.schedulers),
            },
            "sms": self.sms,
            "scale": self.scale,
            "canonical": self.canonical,
            "config_digest": self.config_digest,
            "status": self.status,
            "ok": self.ok,
            "counts": self.counts(),
            "geomean_deltas": self.geomean_deltas(),
            "verdicts": [
                {
                    "id": v.expectation_id,
                    "kind": v.kind,
                    "status": v.status,
                    "measured": v.measured,
                    "delta": v.delta,
                    "band": v.band,
                    "paper_value": v.paper_value,
                    "anchor": v.anchor,
                    "numeric": v.numeric,
                }
                for v in self.verdicts
            ],
        }
        if self.baseline is not None:
            b = self.baseline
            out["baseline"] = {
                "path": b.path,
                "found": b.found,
                "status": b.status,
                "sim_digest_matches": b.sim_digest_matches,
                "baseline_sim_digest": b.baseline_sim_digest,
                "current_sim_digest": b.current_sim_digest,
                "drifted": [
                    {"cell": d.cell, "field": d.field_name,
                     "baseline": d.baseline, "measured": d.measured}
                    for d in b.drifted
                ],
                "missing_cells": b.missing_cells,
                "extra_cells": b.extra_cells,
                "stale_files": b.stale_files,
            }
        return out
