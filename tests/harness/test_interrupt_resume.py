"""Graceful interrupt + mid-run snapshot resume through the harness.

The third checkpoint tier: an interrupted (or crashed-under-periodic-
snapshots) cell leaves a ``snapshots/<key>.snap`` file under the
checkpoint directory, and the next invocation *continues* the cell from
that cycle — bit-identically — instead of restarting it from cycle 0.
"""

import os
import signal
import threading

import pytest

from repro.config import GPUConfig
from repro.errors import SimulationHang, SimulationInterrupted
from repro.harness.parallel import run_matrix_parallel
from repro.harness.runner import (
    CellPolicy,
    ResultCache,
    graceful_interrupts,
)
from repro.robustness import CheckpointStore, FaultPlan, cell_key
from repro.robustness.checkpoint import result_to_json

CFG = GPUConfig.scaled(2)
KERNEL, SCHED, SCALE = "cenergy", "lrr", 0.1


def _key():
    return cell_key(KERNEL, SCHED, CFG, SCALE)


class _StopMidRun(FaultPlan):
    """Requests a cooperative cache stop after N fill-hook calls.

    The fill hook fires on every global load issue, so this deterministically
    lands the stop mid-simulation without threads or timers.
    """

    def __init__(self, cache, after):
        super().__init__()
        self._cache = cache
        self._after = after
        self._calls = 0

    def should_swallow_fill(self, sm_id, warp, cycle):
        self._calls += 1
        if self._calls == self._after:
            self._cache.request_stop()
        return False


class TestMidRunSnapshotResume:
    def test_cooperative_stop_writes_snapshot_and_resume_is_bit_identical(
            self, tmp_path):
        baseline = ResultCache().run(KERNEL, SCHED, CFG, SCALE)

        store = CheckpointStore(tmp_path)
        cache = ResultCache(checkpoint=store)
        cache.faults = _StopMidRun(cache, after=50)
        with pytest.raises(SimulationInterrupted) as exc:
            cache.run(KERNEL, SCHED, CFG, SCALE)
        assert exc.value.snapshot_path is not None
        assert 0 < exc.value.cycle < baseline.cycles
        assert store.get_snapshot(_key()) is not None
        assert _key() not in store  # cell is NOT checkpointed as done

        resumed = ResultCache(checkpoint=CheckpointStore(tmp_path))
        result = resumed.run(KERNEL, SCHED, CFG, SCALE)
        assert resumed.snapshot_resumes == 1
        assert result_to_json(result) == result_to_json(baseline)
        # completion promotes the cell to the durable tier and drops the
        # now-superseded snapshot
        final = CheckpointStore(tmp_path)
        assert _key() in final
        assert final.get_snapshot(_key()) is None

    def test_periodic_snapshots_survive_a_crash_and_resume(self, tmp_path):
        baseline = ResultCache().run(KERNEL, SCHED, CFG, SCALE)
        clamp = baseline.cycles // 2
        store = CheckpointStore(tmp_path)
        crashed = ResultCache(
            checkpoint=store,
            policy=CellPolicy(snapshot_every=max(1, clamp // 4)),
            faults=FaultPlan().clamp_max_cycles(clamp),
        )
        with pytest.raises(SimulationHang):
            crashed.run(KERNEL, SCHED, CFG, SCALE)
        assert store.get_snapshot(_key()) is not None

        resumed = ResultCache(checkpoint=CheckpointStore(tmp_path))
        result = resumed.run(KERNEL, SCHED, CFG, SCALE)
        assert resumed.snapshot_resumes == 1
        assert result_to_json(result) == result_to_json(baseline)

    def test_stale_snapshot_is_discarded_and_cell_restarts(self, tmp_path):
        store = CheckpointStore(tmp_path)
        snap = store.snapshot_path(_key())
        snap.parent.mkdir(parents=True, exist_ok=True)
        snap.write_text('{"not": "a snapshot"}')
        cache = ResultCache(checkpoint=store)
        result = cache.run(KERNEL, SCHED, CFG, SCALE)
        assert cache.snapshot_resumes == 0
        assert not snap.exists()  # dropped, not resumed
        baseline = ResultCache().run(KERNEL, SCHED, CFG, SCALE)
        assert result_to_json(result) == result_to_json(baseline)

    def test_interrupted_cache_refuses_further_cells(self):
        cache = ResultCache()
        cache.request_stop()
        with pytest.raises(SimulationInterrupted):
            cache.run(KERNEL, SCHED, CFG, SCALE)


class TestGracefulInterrupts:
    def test_sigint_sets_the_stop_flag_and_restores_handlers(self):
        cache = ResultCache()
        before = signal.getsignal(signal.SIGINT)
        with graceful_interrupts(cache):
            os.kill(os.getpid(), signal.SIGINT)
            # force delivery at a bytecode boundary
            signal.getsignal(signal.SIGINT)
        assert cache.interrupted
        assert signal.getsignal(signal.SIGINT) == before

    def test_sigterm_is_handled_too(self):
        cache = ResultCache()
        before = signal.getsignal(signal.SIGTERM)
        with graceful_interrupts(cache):
            os.kill(os.getpid(), signal.SIGTERM)
            signal.getsignal(signal.SIGTERM)
        assert cache.interrupted
        assert signal.getsignal(signal.SIGTERM) == before

    def test_noop_outside_main_thread(self):
        cache = ResultCache()
        seen = {}

        def body():
            with graceful_interrupts(cache):
                seen["handler"] = signal.getsignal(signal.SIGINT)

        before = signal.getsignal(signal.SIGINT)
        t = threading.Thread(target=body)
        t.start()
        t.join()
        assert seen["handler"] == before  # nothing was installed


class TestParallelInterrupt:
    def test_interrupted_parallel_sweep_cancels_and_raises(self, tmp_path):
        cache = ResultCache(checkpoint=CheckpointStore(tmp_path))
        cache.interrupted = True  # as a signal handler would set it
        cells = [("cenergy", s) for s in ("lrr", "gto", "tl", "pro")]
        with pytest.raises(SimulationInterrupted) as exc:
            run_matrix_parallel(cache, cells, CFG, SCALE, jobs=2)
        assert "re-run the same command to resume" in str(exc.value)

    def test_sequential_interrupt_propagates_even_with_keep_going(
            self, tmp_path):
        cache = ResultCache(checkpoint=CheckpointStore(tmp_path))
        cache.faults = _StopMidRun(cache, after=50)
        cells = [("cenergy", s) for s in ("lrr", "gto")]
        with pytest.raises(SimulationInterrupted):
            # faults force the sequential path; keep_going must not
            # swallow the interrupt
            run_matrix_parallel(cache, cells, CFG, SCALE, jobs=2,
                                keep_going=True)
