"""Issue trace: a bounded per-instruction event log for debugging.

Attach an :class:`IssueTrace` to a run to capture the first N issue events
(cycle, SM, TB, warp, pc, opcode, active threads). Useful for inspecting
scheduler decisions at cycle granularity — e.g. verifying that PRO's
priority order actually changes who wins an issue slot — without paying
any cost on untraced runs.

Example::

    trace = IssueTrace(limit=2000, sm_id=0)
    Gpu(cfg, "pro").run(launch, probes=[trace])
    for ev in trace.events[:10]:
        print(ev)
    print(trace.opcode_histogram())
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple


@dataclass(frozen=True)
class IssueEvent:
    """One issued warp instruction."""

    cycle: int
    sm_id: int
    tb_index: int
    warp_in_tb: int
    pc: int
    opcode: str
    active: int


class IssueTrace:
    """Bounded recorder of issue events.

    Parameters
    ----------
    limit:
        Stop recording after this many events (keeps memory bounded).
    sm_id:
        Restrict to one SM, or ``None`` for all SMs.
    """

    def __init__(self, limit: int = 100_000, sm_id: Optional[int] = None) -> None:
        if limit <= 0:
            raise ValueError("limit must be positive")
        self.limit = limit
        self.sm_id = sm_id
        self.events: List[IssueEvent] = []

    @property
    def full(self) -> bool:
        return len(self.events) >= self.limit

    def record(self, cycle: int, sm_id: int, tb_index: int, warp_in_tb: int,
               pc: int, opcode: str, active: int) -> None:
        """Hook called by the SM on every issue (when a trace is attached)."""
        if self.full or (self.sm_id is not None and sm_id != self.sm_id):
            return
        self.events.append(IssueEvent(
            cycle=cycle, sm_id=sm_id, tb_index=tb_index,
            warp_in_tb=warp_in_tb, pc=pc, opcode=opcode, active=active,
        ))

    #: Probe-protocol spelling (repro.obs): the bus's issue event carries
    #: the same argument order.
    on_issue = record

    # -- queries -----------------------------------------------------------

    def opcode_histogram(self) -> Dict[str, int]:
        """Issued-instruction counts by opcode."""
        out: Dict[str, int] = {}
        for ev in self.events:
            out[ev.opcode] = out.get(ev.opcode, 0) + 1
        return out

    def warp_slice(self, tb_index: int, warp_in_tb: int) -> List[IssueEvent]:
        """All events of one warp, in issue order."""
        return [ev for ev in self.events
                if ev.tb_index == tb_index and ev.warp_in_tb == warp_in_tb]

    def issue_gaps(self, tb_index: int, warp_in_tb: int) -> List[int]:
        """Cycle gaps between one warp's consecutive issues (stall view)."""
        evs = self.warp_slice(tb_index, warp_in_tb)
        return [b.cycle - a.cycle for a, b in zip(evs, evs[1:])]

    def winners_per_cycle(self) -> Dict[Tuple[int, int], List[Tuple[int, int]]]:
        """(cycle, sm) -> [(tb, warp), ...] that issued that cycle."""
        out: Dict[Tuple[int, int], List[Tuple[int, int]]] = {}
        for ev in self.events:
            out.setdefault((ev.cycle, ev.sm_id), []).append(
                (ev.tb_index, ev.warp_in_tb)
            )
        return out

    def __len__(self) -> int:
        return len(self.events)
