"""Tests for the runner / result cache."""

import pytest

from repro.config import GPUConfig
from repro.harness.runner import ExperimentSetup, ResultCache, run_kernel
from repro.workloads import get_kernel


CFG = GPUConfig.scaled(2)


class TestResultCache:
    def test_cache_hit_returns_same_object(self):
        cache = ResultCache()
        a = cache.run("cenergy", "lrr", CFG, 0.1)
        b = cache.run("cenergy", "lrr", CFG, 0.1)
        assert a is b
        assert len(cache) == 1

    def test_distinct_schedulers_distinct_entries(self):
        cache = ResultCache()
        cache.run("cenergy", "lrr", CFG, 0.1)
        cache.run("cenergy", "pro", CFG, 0.1)
        assert len(cache) == 2

    def test_distinct_scale_distinct_entries(self):
        cache = ResultCache()
        cache.run("cenergy", "lrr", CFG, 0.1)
        cache.run("cenergy", "lrr", CFG, 0.2)
        assert len(cache) == 2

    def test_recorder_runs_cached_separately(self):
        cache = ResultCache()
        plain = cache.run("cenergy", "pro", CFG, 0.1)
        traced = cache.run("cenergy", "pro", CFG, 0.1, with_timeline=True)
        assert plain is not traced
        assert plain.timeline is None
        assert traced.timeline is not None

    def test_model_object_and_name_equivalent(self):
        cache = ResultCache()
        a = cache.run("cenergy", "lrr", CFG, 0.1)
        b = cache.run(get_kernel("cenergy"), "lrr", CFG, 0.1)
        assert a is b


class TestExperimentSetup:
    def test_defaults(self):
        s = ExperimentSetup()
        assert s.config.num_sms == 4
        assert s.scale == 1.0

    def test_run_uses_cache(self):
        s = ExperimentSetup(config=CFG, scale=0.1)
        a = s.run("cenergy", "lrr")
        b = s.run("cenergy", "lrr")
        assert a is b


class TestRunKernel:
    def test_one_shot(self):
        r = run_kernel("cenergy", "pro", CFG, 0.1)
        assert r.kernel_name == "cenergy"
        assert r.scheduler == "pro"
        assert r.cycles > 0

    def test_default_config(self):
        r = run_kernel("mergeHistogram64Kernel", scale=0.2)
        assert r.counters.tbs_completed == r.num_tbs
