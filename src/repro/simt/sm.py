"""StreamingMultiprocessor: per-cycle issue, stall classification, events.

Each SM steps once per global cycle while it has resident thread blocks.
Its two warp schedulers (Fermi-style) each select at most one ready warp
per cycle from their statically partitioned warp pools. A cycle with zero
issues is classified Idle / Scoreboard / Pipeline exactly as GPGPU-Sim
does (see :mod:`repro.stats.counters`).

**Fast-forwarding** makes the pure-Python simulator tractable without
changing results: when an SM issues nothing, its issue state cannot change
before the earliest pending event (a register writeback, a memory
completion, or an execution port freeing), so the SM sleeps until that
cycle and attributes the skipped cycles to the recorded stall class. This
is exact, not an approximation — nothing observable happens in between.
"""

from __future__ import annotations

import heapq
from typing import TYPE_CHECKING, List, Optional

from ..config import GPUConfig
from ..errors import DeadlockError
from ..isa.instructions import ExecUnit, Opcode
from ..isa.patterns import AccessContext
from ..memory.subsystem import MemorySubsystem
from ..stats.counters import SmCounters, StallKind
from .exec_units import ExecUnitPool
from .scoreboard import Scoreboard
from .threadblock import ThreadBlock
from .warp import Warp

if TYPE_CHECKING:  # pragma: no cover
    from ..core.scheduler import WarpScheduler
    from ..gpu.gpu import Gpu

#: Sentinel "never": an SM with nothing to do sleeps here until woken.
NEVER = 1 << 62

# Hoisted enum members: repeated class-attribute loads are measurable in
# the issue scan, which runs once per warp per cycle.
_EU_NONE = ExecUnit.NONE
_OP_LDG = Opcode.LDG
_OP_STG = Opcode.STG
_OP_LDS = Opcode.LDS
_OP_STS = Opcode.STS
_OP_BRA = Opcode.BRA
_OP_BAR = Opcode.BAR
_OP_EXIT = Opcode.EXIT

# Issue attempt outcomes (bit flags for aggregation; ISSUED is exclusive).
_ST_NONE = 0  # warp not schedulable (barrier/finished) -> Idle contribution
_ST_SB = 1  # valid instruction, operands not ready -> Scoreboard
_ST_PIPE = 2  # valid + ready operands, no free port -> Pipeline
_ST_ISSUED = 4


class _EvictedTb:
    __slots__ = ("tb_index",)

    def __init__(self, tb_index: int) -> None:
        self.tb_index = tb_index


class _EvictedWarp:
    """Restore-time stand-in for a warp whose TB finished and was evicted
    while a writeback of its final load was still in flight.

    Carries just enough shape for the event heap: a scoreboard for the
    eventual release and ``(tb.tb_index, warp_in_tb)`` so a later
    re-snapshot can serialize the event again.
    """

    __slots__ = ("tb", "warp_in_tb", "scoreboard")

    def __init__(self, tb_index: int, warp_in_tb: int) -> None:
        self.tb = _EvictedTb(tb_index)
        self.warp_in_tb = warp_in_tb
        self.scoreboard = Scoreboard()


class IssueStatus:
    """Public names for the issue-attempt outcomes (used in tests)."""

    NONE = _ST_NONE
    SCOREBOARD = _ST_SB
    PIPELINE = _ST_PIPE
    ISSUED = _ST_ISSUED


class StreamingMultiprocessor:
    """One SM: warp pools, issue ports, scoreboard events, TB residency."""

    __slots__ = (
        "sm_id",
        "cfg",
        "memory",
        "gpu",
        "units",
        "schedulers",
        "listeners",
        "resident_tbs",
        "counters",
        "sleep_until",
        "_events",
        "_event_seq",
        "_launch_seq",
        "used_threads",
        "used_regs",
        "used_smem",
        "bus",
        "faults",
        "_min_refetch",
        "_stall_since",
        "_stall_kind",
    )

    def __init__(
        self,
        sm_id: int,
        cfg: GPUConfig,
        memory: MemorySubsystem,
        gpu: Optional["Gpu"] = None,
    ) -> None:
        self.sm_id = sm_id
        self.cfg = cfg
        self.memory = memory
        self.gpu = gpu
        self.units = ExecUnitPool(cfg)
        self.schedulers: List["WarpScheduler"] = []
        #: Unique TB-event listeners (schedulers, or PRO's shared manager).
        self.listeners: List[object] = []
        self.resident_tbs: List[ThreadBlock] = []
        self.counters = SmCounters(sm_id=sm_id)
        self.sleep_until = 0
        #: Min-heap of (cycle, seq, warp, reg): scoreboard release events.
        self._events: List[tuple] = []
        # Plain ints (not itertools.count): their exact values are part of
        # the event-heap ordering and must snapshot/restore losslessly.
        self._event_seq = 0
        self._launch_seq = 0
        self.used_threads = 0
        self.used_regs = 0
        self.used_smem = 0
        self.bus = None  # optional repro.obs.ProbeBus (attached per run)
        self.faults = None  # optional repro.robustness.FaultPlan
        self._min_refetch = NEVER
        # Lazy stall attribution: when the SM goes to sleep without issuing,
        # it records (since, kind); the cycles are credited when it actually
        # wakes — which may be *earlier* than planned if the Thread Block
        # Scheduler drops new work on it mid-sleep.
        self._stall_since = -1
        self._stall_kind: Optional[StallKind] = None

    # ------------------------------------------------------------------
    def attach_schedulers(self, schedulers: List["WarpScheduler"]) -> None:
        """Install the warp schedulers (one list per SM, built by name)."""
        self.schedulers = schedulers
        seen: set[int] = set()
        self.listeners = []
        for s in schedulers:
            listener = s.listener
            if id(listener) not in seen:
                seen.add(id(listener))
                self.listeners.append(listener)

    # -- TB residency --------------------------------------------------------

    def can_accept(self, tb: ThreadBlock) -> bool:
        """Resource check: does this TB fit right now?"""
        prog = tb.program
        cfg = self.cfg
        return (
            len(self.resident_tbs) < cfg.max_tbs_per_sm
            and self.used_threads + prog.threads_per_tb <= cfg.max_threads_per_sm
            and self.used_regs + prog.regs_per_thread * prog.threads_per_tb
            <= cfg.registers_per_sm
            and self.used_smem + prog.shared_mem_per_tb <= cfg.shared_mem_per_sm
        )

    def assign_tb(self, tb: ThreadBlock, cycle: int) -> None:
        """Place a TB on this SM (the Thread Block Scheduler's action)."""
        prog = tb.program
        launch_seq = self._launch_seq
        self._launch_seq = launch_seq + 1
        tb.materialize(self.sm_id, launch_seq, self.cfg.num_schedulers)
        tb.start_cycle = cycle
        # CTA launch latency: warps are not issuable until init completes.
        ready_at = cycle + self.cfg.tb_launch_latency
        for w in tb.warps:
            w.next_valid_cycle = ready_at
        self.resident_tbs.append(tb)
        self.used_threads += prog.threads_per_tb
        self.used_regs += prog.regs_per_thread * prog.threads_per_tb
        self.used_smem += prog.shared_mem_per_tb
        if self.bus is not None:
            self.bus.tb_start(self.sm_id, tb.tb_index, cycle)
        for listener in self.listeners:
            listener.on_tb_assigned(tb, cycle)
        # New warps are issuable from the next cycle.
        if self.sleep_until > cycle + 1:
            self.sleep_until = cycle + 1

    def _release_tb(self, tb: ThreadBlock, cycle: int) -> None:
        prog = tb.program
        tb.finish_cycle = cycle
        self.resident_tbs.remove(tb)
        self.used_threads -= prog.threads_per_tb
        self.used_regs -= prog.regs_per_thread * prog.threads_per_tb
        self.used_smem -= prog.shared_mem_per_tb
        self.counters.tbs_completed += 1
        if self.bus is not None:
            self.bus.tb_finish(self.sm_id, tb.tb_index, cycle)
        for listener in self.listeners:
            listener.on_tb_finished(tb, cycle)
        if self.gpu is not None:
            self.gpu.on_tb_finished(self, cycle)

    # -- main per-cycle step ------------------------------------------------

    def step(self, cycle: int) -> int:
        """Advance this SM at ``cycle``; returns instructions issued.

        Updates ``sleep_until`` to the next cycle at which stepping this SM
        can have any effect.

        The issue-attempt checks of :meth:`_try_issue` are inlined into the
        scan loop below (same checks, same order): the scan visits roughly
        ten warps per issued instruction, so per-attempt function-call and
        attribute-lookup overhead dominates the simulator's hot path.
        """
        # 0. Credit the stall period that just ended (if any).
        if self._stall_kind is not None:
            self.counters.add_stall(self._stall_kind, cycle - self._stall_since)
            if self.bus is not None:
                self.bus.stall(self.sm_id, self._stall_since, cycle,
                               self._stall_kind)
            self._stall_kind = None

        # 1. Retire writeback / memory-completion events due by now
        #    (batched: one guarded loop with hoisted heappop).
        events = self._events
        if events and events[0][0] <= cycle:
            pop = heapq.heappop
            while events and events[0][0] <= cycle:
                _, _, warp, reg = pop(events)
                warp.scoreboard.release(reg)

        # 2. Each scheduler issues at most one warp instruction.
        issued = 0
        agg = _ST_NONE
        min_refetch = NEVER
        units = self.units
        free_at = units._free_at
        mshr = self.memory.mshr[self.sm_id]
        for sched in self.schedulers:
            for warp in sched.order(cycle):
                # -- inlined _try_issue (keep both in sync) --
                if warp.finished or warp.at_barrier:
                    continue  # _ST_NONE
                nvc = warp.next_valid_cycle
                if cycle < nvc:
                    if nvc < min_refetch:
                        min_refetch = nvc
                    continue  # _ST_NONE
                instr = warp.instructions[warp.pc]
                pending = warp.scoreboard._pending
                if pending:
                    dst = instr.dst
                    if (dst is not None and dst in pending) or not (
                        pending.isdisjoint(instr.srcs)
                    ):
                        agg |= _ST_SB
                        continue
                unit = instr.unit
                if unit is not _EU_NONE:
                    for t in free_at[unit]:
                        if t <= cycle:
                            break
                    else:
                        agg |= _ST_PIPE
                        continue
                if instr.op is _OP_LDG and mshr.is_full(cycle):
                    # MSHR reservation would fail; hardware replays the load.
                    agg |= _ST_PIPE
                    continue
                self._do_issue(warp, instr, cycle)
                issued += 1
                sched.note_issued(warp, cycle)
                break
        self._min_refetch = min_refetch

        # 3. Accounting + sleep computation.
        if issued:
            self.counters.active_cycles += 1
            # Drained on this very issue (last EXIT): park until new work.
            self.sleep_until = cycle + 1 if self.resident_tbs else NEVER
            return issued

        if not self.resident_tbs:
            # Drained completely during this step (or empty SM): no stall
            # accounting outside the busy period.
            self.sleep_until = NEVER
            return 0

        kind = (
            StallKind.PIPELINE
            if agg & _ST_PIPE
            else StallKind.SCOREBOARD
            if agg & _ST_SB
            else StallKind.IDLE
        )
        wake = events[0][0] if events else NEVER
        port_free = units.next_free(cycle)
        if port_free is not None and port_free < wake:
            wake = port_free
        if min_refetch < wake:
            wake = min_refetch
        if kind == StallKind.PIPELINE:
            # A load blocked on a full MSHR unwedges at the next retirement.
            ret = mshr.next_retirement()
            if ret is not None and cycle < ret < wake:
                wake = ret
        if wake >= NEVER:
            # Cold path: import here to keep simt free of package cycles.
            from ..robustness.diagnostics import report_for_sm

            reason = (
                f"SM {self.sm_id}: {len(self.resident_tbs)} resident TB(s) "
                "but no pending events, free ports or refetches to wake on"
            )
            raise DeadlockError(
                f"SM {self.sm_id} deadlocked at cycle {cycle}: "
                f"{len(self.resident_tbs)} resident TB(s), no pending events",
                report=report_for_sm(self, cycle, reason),
            )
        if wake <= cycle:  # pragma: no cover - defensive
            wake = cycle + 1
        self._stall_since = cycle
        self._stall_kind = kind
        self.sleep_until = wake
        return 0

    # -- issue path ----------------------------------------------------------

    def _try_issue(self, warp: Warp, cycle: int) -> int:
        """Attempt to issue ``warp``'s next instruction; returns a status.

        Reference implementation of one issue attempt. :meth:`step` inlines
        these exact checks (in this order) on its hot path — any change
        here must be mirrored there.
        """
        if warp.finished or warp.at_barrier:
            return _ST_NONE
        if cycle < warp.next_valid_cycle:
            # Refetch bubble: no valid instruction yet (Idle contribution).
            if warp.next_valid_cycle < self._min_refetch:
                self._min_refetch = warp.next_valid_cycle
            return _ST_NONE
        instr = warp.program.instructions[warp.pc]
        if not warp.scoreboard.can_issue(instr.dst, instr.srcs):
            return _ST_SB
        unit = instr.unit
        if unit is not ExecUnit.NONE and not self.units.port_available(unit, cycle):
            return _ST_PIPE
        if instr.op is Opcode.LDG and self.memory.mshr[self.sm_id].is_full(cycle):
            # MSHR reservation would fail; hardware replays the load.
            return _ST_PIPE
        self._do_issue(warp, instr, cycle)
        return _ST_ISSUED

    def _do_issue(self, warp: Warp, instr, cycle: int) -> None:
        pc = warp.pc
        active = warp.active_threads(pc)
        op = instr.op
        counters = self.counters
        units = self.units
        dst = instr.dst

        if self.bus is not None:
            self.bus.issue(cycle, self.sm_id, warp.tb.tb_index,
                           warp.warp_in_tb, pc, op.value, active)
        # Progress accounting (the quantity PRO schedules on).
        warp.progress += active
        warp.last_issue_cycle = cycle
        counters.instructions += 1
        counters.thread_instructions += active
        counters.last_issue_cycle = cycle

        # Execution-port occupancy + destination-register lifetime.
        if op is _OP_LDG or op is _OP_STG:
            it = warp.next_mem_iteration(pc)
            ctx = AccessContext(
                tb_index=warp.tb.tb_index,
                warp_in_tb=warp.warp_in_tb,
                iteration=it,
                active=active,
            )
            lines = instr.pattern.lines(ctx)
            n_txn = len(lines) if lines else 1
            units.occupy(
                ExecUnit.LSU, cycle, units.initiation_interval(ExecUnit.LSU, n_txn)
            )
            counters.mem_transactions += n_txn
            result = self.memory.access(
                self.sm_id, lines, cycle, is_write=(op is _OP_STG)
            )
            if dst is not None:
                warp.scoreboard.reserve(dst)
                if self.faults is not None and self.faults.should_swallow_fill(
                    self.sm_id, warp, cycle
                ):
                    pass  # injected fault: the fill completion is lost
                else:
                    seq = self._event_seq
                    self._event_seq = seq + 1
                    heapq.heappush(
                        self._events, (result.completion, seq, warp, dst)
                    )
        elif op is _OP_LDS or op is _OP_STS:
            units.occupy(ExecUnit.LSU, cycle, instr.conflict_ways)
            if dst is not None:
                warp.scoreboard.reserve(dst)
                seq = self._event_seq
                self._event_seq = seq + 1
                heapq.heappush(
                    self._events, (cycle + instr.latency, seq, warp, dst)
                )
        elif instr.unit is not _EU_NONE:
            units.occupy(
                instr.unit, cycle, units.initiation_interval(instr.unit)
            )
            if dst is not None:
                warp.scoreboard.reserve(dst)
                seq = self._event_seq
                self._event_seq = seq + 1
                heapq.heappush(
                    self._events, (cycle + instr.latency, seq, warp, dst)
                )

        # Control flow.
        if op is _OP_BRA:
            warp.pc = instr.target if warp.branch_take(pc) else pc + 1
            # No speculation on GPUs: the i-buffer refills after the branch
            # resolves, leaving the warp without a valid instruction.
            warp.next_valid_cycle = cycle + self.cfg.latency.branch_bubble
        elif op is _OP_BAR:
            warp.pc = pc + 1
            self._warp_reached_barrier(warp, cycle)
        elif op is _OP_EXIT:
            self._warp_finished(warp, cycle)
        else:
            warp.pc = pc + 1

    # -- barrier / finish bookkeeping ------------------------------------------

    def _warp_reached_barrier(self, warp: Warp, cycle: int) -> None:
        tb = warp.tb
        warp.at_barrier = True
        if self.faults is not None and self.faults.should_drop_barrier(
            self.sm_id, warp, cycle
        ):
            # Injected fault: the arrival is lost — the warp parks at the
            # barrier but the TB's arrival count never reflects it, so the
            # barrier can never release (lost-event deadlock).
            return
        tb.n_at_barrier += 1
        if self.bus is not None:
            self.bus.barrier_arrive(self.sm_id, tb.tb_index,
                                    warp.warp_in_tb, cycle)
        for listener in self.listeners:
            listener.on_warp_barrier(warp, cycle)
        if tb.all_at_barrier:
            tb.n_at_barrier = 0
            refetch = cycle + self.cfg.latency.branch_bubble
            for w in tb.warps:
                if w.at_barrier:
                    w.at_barrier = False
                    # Resuming warps refetch their post-barrier instruction.
                    if w.next_valid_cycle < refetch:
                        w.next_valid_cycle = refetch
            for listener in self.listeners:
                listener.on_barrier_release(tb, cycle)
            if self.bus is not None:
                self.bus.barrier_release(self.sm_id, tb.tb_index, cycle)

    def _warp_finished(self, warp: Warp, cycle: int) -> None:
        tb = warp.tb
        warp.finished = True
        tb.n_finished += 1
        for listener in self.listeners:
            listener.on_warp_finished(warp, cycle)
        if tb.all_finished:
            self._release_tb(tb, cycle)

    def finalize_accounting(self, final_cycle: int) -> None:
        """Close the books at kernel completion.

        Flushes any open stall period, then attributes every cycle of the
        kernel not otherwise accounted for as Idle — chiefly the tail in
        which this SM sat empty while other SMs finished the last TBs (the
        paper's "work allocation at TB level" idle source). Afterwards
        ``active + idle + scoreboard + pipeline == final_cycle`` for every
        SM, an invariant the test suite checks.
        """
        if self._stall_kind is not None:
            span = final_cycle - self._stall_since
            if span > 0:
                self.counters.add_stall(self._stall_kind, span)
                if self.bus is not None:
                    self.bus.stall(self.sm_id, self._stall_since,
                                   final_cycle, self._stall_kind)
            self._stall_kind = None
        gap = final_cycle - self.counters.busy_cycles
        if gap > 0:
            self.counters.add_stall(StallKind.IDLE, gap)
            # The gap is the sum of this SM's empty periods; attribute it
            # to the run tail, where (TB-allocation skew) most of it lives.
            if self.bus is not None:
                self.bus.stall(self.sm_id, final_cycle - gap, final_cycle,
                               StallKind.IDLE)

    # -- state serialization -------------------------------------------

    def snapshot(self) -> dict:
        """Serializable SM state at a cycle boundary.

        Pending scoreboard events encode their warp as
        ``(tb_index, warp_in_tb)`` and are stored in the heap's exact
        internal list order — heap layout depends on insertion history,
        so restoring the list verbatim reproduces pop order bit-exactly.
        ``managers`` holds listeners that are not schedulers (PRO's
        shared per-SM manager); for the simple baselines it is empty.
        """
        sched_ids = {id(s) for s in self.schedulers}
        return {
            "sm_id": self.sm_id,
            "resident_tbs": [tb.snapshot() for tb in self.resident_tbs],
            "counters": self.counters.snapshot(),
            "sleep_until": self.sleep_until,
            "events": [
                [cycle, seq, warp.tb.tb_index, warp.warp_in_tb, reg]
                for cycle, seq, warp, reg in self._events
            ],
            "event_seq": self._event_seq,
            "launch_seq": self._launch_seq,
            "used_threads": self.used_threads,
            "used_regs": self.used_regs,
            "used_smem": self.used_smem,
            "min_refetch": self._min_refetch,
            "stall_since": self._stall_since,
            "stall_kind": (
                None if self._stall_kind is None else int(self._stall_kind)
            ),
            "units": self.units.snapshot(),
            "schedulers": [s.snapshot() for s in self.schedulers],
            "managers": [
                lst.snapshot()
                for lst in self.listeners
                if id(lst) not in sched_ids
            ],
        }

    def restore(self, data: dict, program) -> dict:
        """Rebuild resident TBs/warps from ``program`` and apply state.

        Schedulers must already be attached. No listener callbacks fire
        (scheduler state is restored directly, not re-derived). Returns
        the ``(tb_index, warp_in_tb) -> Warp`` map used to resolve
        cross-references, for callers that need it.
        """
        num_scheds = self.cfg.num_schedulers
        self.resident_tbs = []
        warp_map: dict = {}
        for tbdata in data["resident_tbs"]:
            tb = ThreadBlock(tbdata["tb_index"], program)
            tb.restore(tbdata, self.sm_id, num_scheds)
            self.resident_tbs.append(tb)
            for warp in tb.warps:
                warp_map[(tb.tb_index, warp.warp_in_tb)] = warp
        self.counters.restore(data["counters"])
        self.sleep_until = data["sleep_until"]
        # Stored in exact heap-list order: already a valid heap. An event
        # may reference a warp whose TB finished and was evicted with the
        # writeback of its final load still in flight; such events must
        # survive the round trip — they still wake the SM at their due
        # cycle — so they are re-targeted at a detached stand-in warp
        # whose scoreboard absorbs the eventual release.
        evicted: dict = {}
        events = []
        for cycle, seq, tb_idx, wid, reg in data["events"]:
            warp = warp_map.get((tb_idx, wid))
            if warp is None:
                warp = evicted.get((tb_idx, wid))
                if warp is None:
                    warp = _EvictedWarp(tb_idx, wid)
                    evicted[(tb_idx, wid)] = warp
                warp.scoreboard.reserve(reg)
            events.append((cycle, seq, warp, reg))
        self._events = events
        self._event_seq = data["event_seq"]
        self._launch_seq = data["launch_seq"]
        self.used_threads = data["used_threads"]
        self.used_regs = data["used_regs"]
        self.used_smem = data["used_smem"]
        self._min_refetch = data["min_refetch"]
        self._stall_since = data["stall_since"]
        kind = data["stall_kind"]
        self._stall_kind = None if kind is None else StallKind(kind)
        self.units.restore(data["units"])
        for sched, sdata in zip(self.schedulers, data["schedulers"]):
            sched.restore(sdata, warp_map)
        sched_ids = {id(s) for s in self.schedulers}
        managers = [
            lst for lst in self.listeners if id(lst) not in sched_ids
        ]
        for mgr, mdata in zip(managers, data["managers"]):
            mgr.restore(mdata, warp_map)
        return warp_map

    # -- introspection -----------------------------------------------------------

    @property
    def resident_warp_count(self) -> int:
        """Live (unfinished) warps currently resident."""
        return sum(
            tb.n_warps - tb.n_finished for tb in self.resident_tbs
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<SM {self.sm_id}: {len(self.resident_tbs)} TBs, "
            f"{self.resident_warp_count} warps, sleep@{self.sleep_until}>"
        )
