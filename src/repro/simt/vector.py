"""Vectorized struct-of-arrays SM core (``backend="vector"``).

:class:`VectorSM` is a drop-in :class:`~repro.simt.sm.StreamingMultiprocessor`
subclass that replaces the per-warp object scan of ``step()`` with
struct-of-arrays state and incremental readiness tracking:

* **Scoreboard SoA.** Per-warp pending-register *sets* become one flat
  column of int64 bitmask lanes (``_pend``), one lane per warp slot, one
  bit per architectural register (hence the ``max_register() <= 62``
  backend gate in :meth:`~repro.gpu.gpu.Gpu._reset_for_launch`). A
  hazard check is a single AND against the static instruction's
  precompiled ``dst|srcs`` mask instead of two set probes.
* **Status column.** ``_stat`` holds each slot's issue class — inactive
  (finished / at barrier / waiting out a refetch bubble), ready, or
  scoreboard-blocked — with running ready/blocked population counts.
  The column is maintained *incrementally* at the events that can change
  a warp's class (writeback retirement, issue, branch bubble, barrier
  arrival/release, warp finish, TB assignment) instead of being
  recomputed for every warp every cycle. A batched numpy
  reclassification over all slots (:meth:`_classify_all`) runs at bulk
  transitions (snapshot restore), where whole-column evaluation wins; at
  the warp counts an SM holds per cycle (<= 48 resident warps, of which
  almost none change state on a given cycle) the incremental updates
  beat a full per-cycle array recompute. Zero-ready cycles skip the
  scheduler walk entirely — the population count *is* the batched
  readiness evaluation.
* **Refetch heap.** Warps waiting out a branch bubble / barrier refetch /
  TB launch latency sit in a ``(next_valid_cycle, slot)`` min-heap
  (``_recheck``) and re-enter the status column when due — the reference
  scan's ``min_refetch`` fold becomes a heap peek.
* **Precompiled static tables.** Per-pc issue metadata (dispatch kind,
  destination bit, writeback latency, initiation interval, and the
  *next* instruction's hazard mask) collapses into one tuple row
  (``_meta``), so the issue fast path does a single table load instead
  of enum and attribute dispatch.

Schedulers are *not* reimplemented: each policy (lrr/gto/pro/tl) gets a
thin selector that renders its live priority structures into slot
sequences, cached until a pool/priority mutation marks it dirty, and
walks them with one status test per candidate. The issue attempt and
each policy's ``note_issued`` bookkeeping are inlined into the walk
(mirroring how the reference SM inlines its per-warp attempt), but every
mutation lands on the real scheduler objects, so scheduler state (and
its snapshot form) stays bit-identical to the reference.

Bit-exactness contract: for any program with ``max_register() <= 62`` and
no ProbeBus / fault plan attached, a :class:`VectorSM` run produces
*identical* ``SmCounters``, event heaps, scheduler state and snapshots to
the reference interpreter. The golden matrix and the cross-backend
equivalence suite enforce this. Instrumented (bus) or fault-injected runs
fall back to the reference SM in ``Gpu._reset_for_launch`` — the vector
issue path therefore omits every ``bus is not None`` / ``faults`` branch
by construction.
"""

from __future__ import annotations

import heapq
from typing import List, Optional

import numpy as np

from ..core.gto import GtoScheduler
from ..core.lrr import LrrScheduler
from ..core.pro import ProScheduler
from ..core.tl import TwoLevelScheduler
from ..errors import DeadlockError, SchedulerError
from ..isa.instructions import ExecUnit, Opcode
from ..stats.counters import StallKind
from .sm import NEVER, StreamingMultiprocessor

#: Highest register index the int64 scoreboard lane can hold (bit 63 is
#: the sign bit; bit 62 is kept clear so lanes stay non-negative).
MAX_VECTOR_REGISTER = 62

_heappush = heapq.heappush
_heappop = heapq.heappop

# Issue-kind dispatch codes (first field of a _meta row).
_K_ALU = 0
_K_MEM = 1
_K_SHARED = 2
_K_BRA = 3
_K_BAR = 4
_K_EXIT = 5

# Slot status codes (the _stat column).
_INACTIVE = 0  # finished, at barrier, or waiting out a refetch bubble
_READY = 1     # valid pc, operands ready: issuable modulo ports/MSHR
_BLOCKED = 2   # valid pc, scoreboard hazard


class _FastCtx:
    """Duck-typed :class:`~repro.isa.patterns.AccessContext` stand-in.

    Access patterns only read the four attributes; skipping the frozen-
    dataclass ``__init__`` machinery saves ~0.7us per memory issue.
    """

    __slots__ = ("tb_index", "warp_in_tb", "iteration", "active")

    def __init__(self, tb_index, warp_in_tb, iteration, active):
        self.tb_index = tb_index
        self.warp_in_tb = warp_in_tb
        self.iteration = iteration
        self.active = active


# ---------------------------------------------------------------------------
# Per-policy slot selectors.
#
# Each selector renders its scheduler's live priority structure into a
# cached sequence of warp slots (rebuilt lazily when `dirty`), then walks
# it testing one status-column entry per candidate. A candidate that
# passes the status test goes through the inlined issue-attempt checks
# (free port of its unit class, MSHR admission for global loads) and, on
# success, through `VectorSM._issue` plus the policy's own `note_issued`
# bookkeeping inlined right here — each inline is derived line-by-line
# from the scheduler classes and asserted by the cross-backend
# equivalence suite. Failed attempts mutate nothing, so walking a cached
# sequence while the scheduler's own lists are intact is safe; any
# mutation (issue side effects included) re-marks the cache dirty via
# the SM hooks before the next walk.


class _LrrSel:
    """Rotating-start scan over the LRR pool (mirrors LrrScheduler.order).

    Inlined ``note_issued``: the rotation restarts after the issued
    warp's pool index — which is exactly its position in the walked
    sequence — or at the front when the warp finished on this issue
    (``on_warp_finished`` already dropped it from ``_pos``, making the
    reference's ``_pos.get`` return None).
    """

    needs_barrier_refresh = False
    __slots__ = ("sm", "sched", "dirty", "seq")

    def __init__(self, sm: "VectorSM", sched: LrrScheduler) -> None:
        self.sm = sm
        self.sched = sched
        self.dirty = True
        self.seq: List[int] = []

    def refresh(self) -> None:
        slot_of = self.sm._slot_of
        self.seq = [slot_of[id(w)] for w in self.sched.warps]
        self.dirty = False

    def try_issue(self, cycle: int, mshr) -> int:
        if self.dirty:
            self.refresh()
        seq = self.seq
        n = len(seq)
        if not n:
            return 0
        sm = self.sm
        sched = self.sched
        stat = sm._stat
        slots = sm._slots
        ports_tbl = sm._ports_tbl
        isldg = sm._isldg
        ucode = sm._ucode
        avail = [-3, -3, -3]
        mshr_full = None
        i = sched._start % n
        for _ in range(n):
            s = seq[i]
            if stat[s] == 1:
                w = slots[s]
                pc = w.pc
                code = ucode[pc]
                if code < 0:
                    pi = -1  # no-unit control instruction: no port to claim
                else:
                    pi = avail[code]  # port index per unit class; -3 = not probed yet
                    if pi == -3:
                        pi = 0
                        for t in ports_tbl[pc]:
                            if t <= cycle:
                                break
                            pi += 1
                        else:
                            pi = -2  # every port of the class is busy
                        avail[code] = pi
                    if pi >= 0 and isldg[pc]:
                        if mshr_full is None:  # one MSHR poll per walk: is_full is cycle-pure
                            mshr_full = mshr.is_full(cycle)
                        if mshr_full:
                            pi = -2
                if pi != -2:
                    sm._issue(
                        s, w, pc, cycle,
                        ports_tbl[pc] if pi >= 0 else None, pi,
                    )
                    sched._start = 0 if w.finished else i + 1
                    return 1
            i += 1
            if i == n:
                i = 0
        return 0


class _GtoSel:
    """Greedy-then-oldest scan (mirrors GtoScheduler.order).

    Inlined ``note_issued``: ``_greedy = warp`` unconditionally — the
    reference sets it even for a warp that finished on this very issue
    (``on_warp_finished`` nulled it first, ``note_issued`` re-points it;
    ``order`` then skips it as finished and the snapshot writes None).
    """

    needs_barrier_refresh = False
    __slots__ = ("sm", "sched", "dirty", "seq")

    def __init__(self, sm: "VectorSM", sched: GtoScheduler) -> None:
        self.sm = sm
        self.sched = sched
        self.dirty = True
        self.seq: List[int] = []

    def refresh(self) -> None:
        slot_of = self.sm._slot_of
        self.seq = [slot_of[id(w)] for w in self.sched._aged]
        self.dirty = False

    def try_issue(self, cycle: int, mshr) -> int:
        if self.dirty:
            self.refresh()
        sm = self.sm
        sched = self.sched
        stat = sm._stat
        slots = sm._slots
        ports_tbl = sm._ports_tbl
        isldg = sm._isldg
        ucode = sm._ucode
        avail = [-3, -3, -3]
        mshr_full = None
        greedy_slot = -1
        g = sched._greedy
        if g is not None and not g.finished:
            greedy_slot = sm._slot_of[id(g)]
        first = True
        for s in ((greedy_slot, *self.seq) if greedy_slot >= 0 else self.seq):
            if greedy_slot >= 0:
                if first:
                    first = False
                elif s == greedy_slot:
                    continue  # aged copy of the greedy warp
            if stat[s] == 1:
                w = slots[s]
                pc = w.pc
                code = ucode[pc]
                if code < 0:
                    pi = -1  # no-unit control instruction: no port to claim
                else:
                    pi = avail[code]
                    if pi == -3:
                        pi = 0
                        for t in ports_tbl[pc]:
                            if t <= cycle:
                                break
                            pi += 1
                        else:
                            pi = -2  # every port of the class is busy
                        avail[code] = pi
                    if pi >= 0 and isldg[pc]:
                        if mshr_full is None:
                            mshr_full = mshr.is_full(cycle)
                        if mshr_full:
                            pi = -2
                if pi != -2:
                    sm._issue(
                        s, w, pc, cycle,
                        ports_tbl[pc] if pi >= 0 else None, pi,
                    )
                    sched._greedy = w
                    return 1
        return 0


class _TlSel:
    """Two-level fetch-group scan (mirrors TwoLevelScheduler.order).

    Inlined ``note_issued``: set the group's round-robin pointer past
    the issued warp and rotate lower-priority groups to the front —
    except when the warp finished on this issue (``on_warp_finished``
    already removed it from its group, so the reference's group scan
    misses and ``note_issued`` is a no-op). The per-group slot cache is
    keyed by ``id(group)``: rotation builds a new ``_groups`` *list* but
    keeps the group objects.
    """

    needs_barrier_refresh = False
    __slots__ = ("sm", "sched", "dirty", "group_slots")

    def __init__(self, sm: "VectorSM", sched: TwoLevelScheduler) -> None:
        self.sm = sm
        self.sched = sched
        self.dirty = True
        self.group_slots: dict = {}

    def refresh(self) -> None:
        slot_of = self.sm._slot_of
        self.group_slots = {
            id(g): [slot_of[id(w)] for w in g.warps]
            for g in self.sched._groups
        }
        self.dirty = False

    def try_issue(self, cycle: int, mshr) -> int:
        if self.dirty:
            self.refresh()
        sm = self.sm
        sched = self.sched
        stat = sm._stat
        slots = sm._slots
        ports_tbl = sm._ports_tbl
        isldg = sm._isldg
        ucode = sm._ucode
        avail = [-3, -3, -3]
        mshr_full = None
        group_slots = self.group_slots
        groups = sched._groups
        for gi, g in enumerate(groups):
            seq = group_slots[id(g)]
            n = len(seq)
            if not n:
                continue
            i = g.rr % n
            for _ in range(n):
                s = seq[i]
                if stat[s] == 1:
                    w = slots[s]
                    pc = w.pc
                    code = ucode[pc]
                    if code < 0:
                        pi = -1  # no-unit control instruction: no port to claim
                    else:
                        pi = avail[code]
                        if pi == -3:
                            pi = 0
                            for t in ports_tbl[pc]:
                                if t <= cycle:
                                    break
                                pi += 1
                            else:
                                pi = -2  # every port of the class is busy
                            avail[code] = pi
                        if pi >= 0 and isldg[pc]:
                            if mshr_full is None:
                                mshr_full = mshr.is_full(cycle)
                            if mshr_full:
                                pi = -2
                    if pi != -2:
                        sm._issue(
                            s, w, pc, cycle,
                            ports_tbl[pc] if pi >= 0 else None, pi,
                        )
                        if not w.finished:
                            g.rr = i + 1
                            if gi > 0:
                                sched._groups = groups[gi:] + groups[:gi]
                        return 1
                i += 1
                if i == n:
                    i = 0
        return 0


class _ProSel:
    """PRO priority walk (mirrors ProManager.order's concatenation).

    ``ProScheduler.note_issued`` is a no-op, so nothing to inline.
    """

    needs_barrier_refresh = True
    __slots__ = ("sm", "sched", "dirty", "seq")

    def __init__(self, sm: "VectorSM", sched: ProScheduler) -> None:
        self.sm = sm
        self.sched = sched
        self.dirty = True
        self.seq: List[int] = []

    def refresh(self) -> None:
        slot_of = self.sm._slot_of
        mgr = self.sched.manager
        sid = self.sched.sched_id
        seq: List[int] = []
        for rec in mgr.finish_wait:
            for w in rec.warp_order[sid]:
                seq.append(slot_of[id(w)])
        for rec in mgr.barrier_wait:
            for w in rec.warp_order[sid]:
                seq.append(slot_of[id(w)])
        for rec in (mgr.no_wait if mgr.no_wait else mgr.finish_no_wait):
            for w in rec.warp_order[sid]:
                seq.append(slot_of[id(w)])
        self.seq = seq
        self.dirty = False

    def try_issue(self, cycle: int, mshr) -> int:
        if self.dirty:
            self.refresh()
        sm = self.sm
        stat = sm._stat
        slots = sm._slots
        ports_tbl = sm._ports_tbl
        isldg = sm._isldg
        ucode = sm._ucode
        avail = [-3, -3, -3]
        mshr_full = None
        for s in self.seq:
            if stat[s] == 1:
                w = slots[s]
                pc = w.pc
                code = ucode[pc]
                if code < 0:
                    pi = -1  # no-unit control instruction: no port to claim
                else:
                    pi = avail[code]
                    if pi == -3:
                        pi = 0
                        for t in ports_tbl[pc]:
                            if t <= cycle:
                                break
                            pi += 1
                        else:
                            pi = -2  # every port of the class is busy
                        avail[code] = pi
                    if pi >= 0 and isldg[pc]:
                        if mshr_full is None:
                            mshr_full = mshr.is_full(cycle)
                        if mshr_full:
                            pi = -2
                if pi != -2:
                    sm._issue(
                        s, w, pc, cycle,
                        ports_tbl[pc] if pi >= 0 else None, pi,
                    )
                    return 1
        return 0


_SELECTOR_FOR = {
    LrrScheduler: _LrrSel,
    GtoScheduler: _GtoSel,
    TwoLevelScheduler: _TlSel,
    ProScheduler: _ProSel,
}


class VectorSM(StreamingMultiprocessor):
    """Struct-of-arrays SM stepping engine (see module docstring)."""

    __slots__ = (
        "program",
        # -- dynamic SoA state ------------------------------------------
        "_slots",        # slot -> Warp (monotonic; never reused in a launch)
        "_slot_of",      # id(warp) -> slot
        "_pend",         # int lane per slot: pending-register bitmask
        "_stat",         # status code per slot (_INACTIVE/_READY/_BLOCKED)
        "_n_ready",      # population count of _READY slots
        "_n_blocked",    # population count of _BLOCKED slots
        "_recheck",      # heap of (next_valid_cycle, slot)
        "_needs_classify",
        "_selectors",
        "_pro_mgr",
        # -- static per-pc tables (from the finalized program) ----------
        "_hz",           # dst|srcs hazard bitmask
        "_meta",         # issue metadata row per pc (layout below)
        "_ports_tbl",    # direct ref to units._free_at[unit] (None w/o unit)
        "_unit_tbl",     # ExecUnit or None (for _rebind_ports)
        "_isldg",        # bool: op is LDG (MSHR admission check)
        "_ucode",        # unit-class code per pc: ExecUnit value, -1 w/o unit
        "_ins_tbl",      # Instruction (pattern access on the MEM path)
        "_bubble",       # cfg.latency.branch_bubble
    )

    # _meta row layout, per dispatch kind (one tuple load replaces five
    # table lookups on the issue path; unused fields are 0):
    #   ALU    (0): (kind, dstbit, dst,    latency, interval, hz_next)
    #   MEM    (1): (kind, dstbit, dst,    0,       is_stg,   hz_next)
    #   SHARED (2): (kind, dstbit, dst,    latency, interval, hz_next)
    #   BRA    (3): (kind, 0,      target, 0,       0,        0)
    #   BAR    (4): (kind, 0, 0, 0, 0, 0)
    #   EXIT   (5): (kind, 0, 0, 0, 0, 0)
    # hz_next is the *following* instruction's hazard mask — the issue
    # path reclassifies the warp against its next pc without re-indexing
    # the hazard table. BRA classifies on refetch-wake instead (the
    # target varies) and BAR/EXIT park the slot, so theirs is unused.

    def __init__(self, sm_id, cfg, memory, gpu=None, program=None) -> None:
        super().__init__(sm_id, cfg, memory, gpu=gpu)
        if program is None:
            raise ValueError("VectorSM requires the finalized kernel program")
        self.program = program
        self._bubble = cfg.latency.branch_bubble
        instructions = program.instructions
        hz: List[int] = []
        for ins in instructions:
            mask = 0
            if ins.dst is not None:
                mask |= 1 << ins.dst
            for src in ins.srcs:
                mask |= 1 << src
            hz.append(mask)
        n_ins = len(instructions)
        meta: List[tuple] = []
        unit_tbl: List[Optional[ExecUnit]] = []
        isldg: List[bool] = []
        for pc, ins in enumerate(instructions):
            op = ins.op
            dstbit = 0 if ins.dst is None else 1 << ins.dst
            hz_next = hz[pc + 1] if pc + 1 < n_ins else 0
            if op is Opcode.LDG or op is Opcode.STG:
                row = (_K_MEM, dstbit, ins.dst, 0, op is Opcode.STG, hz_next)
            elif op is Opcode.LDS or op is Opcode.STS:
                ways = ins.conflict_ways
                row = (_K_SHARED, dstbit, ins.dst, ins.latency,
                       ways if ways > 1 else 1, hz_next)
            elif op is Opcode.BRA:
                row = (_K_BRA, 0, ins.target, 0, 0, 0)
            elif op is Opcode.BAR:
                row = (_K_BAR, 0, 0, 0, 0, 0)
            elif op is Opcode.EXIT:
                row = (_K_EXIT, 0, 0, 0, 0, 0)
            else:
                row = (_K_ALU, dstbit, ins.dst, ins.latency,
                       4 if ins.unit is ExecUnit.SFU else 1, hz_next)
            meta.append(row)
            unit = ins.unit
            unit_tbl.append(None if unit is ExecUnit.NONE else unit)
            isldg.append(op is Opcode.LDG)
        self._hz = hz
        self._meta = meta
        self._unit_tbl = unit_tbl
        self._isldg = isldg
        self._ucode = [-1 if u is None else int(u) for u in unit_tbl]
        self._ins_tbl = list(instructions)
        self._rebind_ports()
        self._slots: List[object] = []
        self._slot_of: dict = {}
        self._pend: List[int] = []
        self._stat: List[int] = []
        self._n_ready = 0
        self._n_blocked = 0
        self._recheck: List[tuple] = []
        self._needs_classify = False
        self._selectors: tuple = ()
        self._pro_mgr = None

    def _rebind_ports(self) -> None:
        """Re-cache direct references to the unit port-stamp lists.

        ``ExecUnitPool.restore``/``reset`` install *new* list objects, so
        the per-pc shortcuts must be rebound after either.
        """
        free_at = self.units._free_at
        self._ports_tbl = [
            None if unit is None else free_at[unit] for unit in self._unit_tbl
        ]

    # ------------------------------------------------------------------
    @staticmethod
    def supports(schedulers) -> bool:
        """True when every scheduler has a vector selector.

        Exact-type match on purpose: a user subclass with an overridden
        ``order()`` would be silently mis-ordered by the stock selector,
        so it routes to the reference backend instead.
        """
        return all(type(s) in _SELECTOR_FOR for s in schedulers)

    def attach_schedulers(self, schedulers) -> None:
        super().attach_schedulers(schedulers)
        selectors = []
        pro_mgr = None
        for sched in schedulers:
            sel_cls = _SELECTOR_FOR.get(type(sched))
            if sel_cls is None:
                raise SchedulerError(
                    f"vector backend has no selector for "
                    f"{type(sched).__name__}; check VectorSM.supports() "
                    "before attaching"
                )
            selectors.append(sel_cls(self, sched))
            if sel_cls is _ProSel:
                pro_mgr = sched.manager
        self._selectors = tuple(selectors)
        self._pro_mgr = pro_mgr

    # -- slot management ------------------------------------------------------

    def _new_slot(self, warp) -> int:
        s = len(self._slots)
        self._slots.append(warp)
        self._slot_of[id(warp)] = s
        self._pend.append(0)
        self._stat.append(_INACTIVE)
        return s

    # -- TB residency hooks ---------------------------------------------------

    def assign_tb(self, tb, cycle: int) -> None:
        super().assign_tb(tb, cycle)
        recheck = self._recheck
        for w in tb.warps:
            s = self._new_slot(w)
            nvc = w.next_valid_cycle
            if nvc > cycle:
                _heappush(recheck, (nvc, s))
            elif self._pend[s] & self._hz[w.pc]:
                self._stat[s] = _BLOCKED
                self._n_blocked += 1
            else:
                self._stat[s] = _READY
                self._n_ready += 1
        for sel in self._selectors:
            sel.dirty = True

    # -- barrier / finish bookkeeping (reference bodies minus the bus and
    # fault branches, which the backend gate guarantees are inactive, plus
    # refetch-heap maintenance and selector invalidation) ----------------------

    def _warp_reached_barrier(self, warp, cycle: int) -> None:
        tb = warp.tb
        warp.at_barrier = True
        tb.n_at_barrier += 1
        for listener in self.listeners:
            listener.on_warp_barrier(warp, cycle)
        if tb.all_at_barrier:
            tb.n_at_barrier = 0
            refetch = cycle + self._bubble
            recheck = self._recheck
            slot_of = self._slot_of
            for w in tb.warps:
                if w.at_barrier:
                    w.at_barrier = False
                    if w.next_valid_cycle < refetch:
                        w.next_valid_cycle = refetch
                    _heappush(recheck, (w.next_valid_cycle, slot_of[id(w)]))
            for listener in self.listeners:
                listener.on_barrier_release(tb, cycle)
        for sel in self._selectors:
            if sel.needs_barrier_refresh:
                sel.dirty = True

    def _warp_finished(self, warp, cycle: int) -> None:
        tb = warp.tb
        warp.finished = True
        tb.n_finished += 1
        for listener in self.listeners:
            listener.on_warp_finished(warp, cycle)
        if tb.all_finished:
            self._release_tb(tb, cycle)
        for sel in self._selectors:
            sel.dirty = True

    # -- main per-cycle step --------------------------------------------------

    def step(self, cycle: int) -> int:
        """Vectorized step: SoA columns + heaps instead of the warp scan.

        Keeps the observable sequence in lockstep with the reference
        ``StreamingMultiprocessor.step``: stall credit, event retirement,
        per-scheduler issue (PRO phase/threshold maintenance included),
        then identical accounting and wake computation.
        """
        counters = self.counters
        if self._stall_kind is not None:
            counters.add_stall(self._stall_kind, cycle - self._stall_since)
            self._stall_kind = None

        # 1. Retire due writebacks: clear the pending bit and promote the
        #    warp from scoreboard-blocked to ready when its current
        #    instruction's hazard mask no longer intersects.
        events = self._events
        if events and events[0][0] <= cycle:
            slot_of = self._slot_of
            pend = self._pend
            stat = self._stat
            hz = self._hz
            while events and events[0][0] <= cycle:
                _, _, warp, reg = _heappop(events)
                s = slot_of[id(warp)]
                lane = pend[s] & ~(1 << reg)
                pend[s] = lane
                if stat[s] == 2 and not (lane & hz[warp.pc]):
                    stat[s] = 1
                    self._n_blocked -= 1
                    self._n_ready += 1

        # 1b. Wake warps whose refetch bubble / launch latency expired.
        if self._needs_classify:
            self._needs_classify = False
            self._classify_all(cycle)
        else:
            recheck = self._recheck
            if recheck and recheck[0][0] <= cycle:
                slots = self._slots
                pend = self._pend
                stat = self._stat
                hz = self._hz
                while recheck and recheck[0][0] <= cycle:
                    _, s = _heappop(recheck)
                    w = slots[s]
                    # Stale entry: the warp re-stalled (barrier/finish),
                    # re-bubbled (a newer heap entry exists), or a
                    # duplicate of this entry already classified it.
                    if (
                        w.finished
                        or w.at_barrier
                        or w.next_valid_cycle > cycle
                        or stat[s] != 0
                    ):
                        continue
                    if pend[s] & hz[w.pc]:
                        stat[s] = 2
                        self._n_blocked += 1
                    else:
                        stat[s] = 1
                        self._n_ready += 1

        # 2. Each scheduler issues at most one warp instruction. With no
        #    ready slot nothing can issue and (for the stateless-order
        #    baselines) the reference scan has no side effects, so the
        #    walk is skipped outright. PRO's order() performs phase and
        #    threshold maintenance at the top of every call — run it per
        #    scheduler regardless, so a mid-step transition between
        #    scheduler 0 and 1 lands on the same cycle as the reference.
        issued = 0
        mshr = None
        selectors = self._selectors
        pro = self._pro_mgr
        if pro is not None:
            mshr = self.memory.mshr[self.sm_id]
            for sel in selectors:
                fast = pro.fast_phase
                sorted_at = pro.last_sort_cycle
                pro._maybe_phase_transition(cycle)
                pro._maybe_threshold_sort(cycle)
                if pro.fast_phase != fast or pro.last_sort_cycle != sorted_at:
                    for other in selectors:
                        other.dirty = True
                if self._n_ready:
                    issued += sel.try_issue(cycle, mshr)
        elif self._n_ready:
            mshr = self.memory.mshr[self.sm_id]
            for sel in selectors:
                issued += sel.try_issue(cycle, mshr)
                if not self._n_ready:
                    break

        # 3. Accounting + sleep computation (identical to the reference).
        if issued:
            counters.active_cycles += 1
            self.sleep_until = cycle + 1 if self.resident_tbs else NEVER
            return issued

        if not self.resident_tbs:
            self.sleep_until = NEVER
            return 0

        # On a zero-issue step the reference scan visits every warp, so
        # its aggregated status equals: PIPELINE iff any warp was ready
        # (every ready candidate was tried and failed a port/MSHR check),
        # else SCOREBOARD iff any warp was hazard-blocked, else IDLE.
        kind = (
            StallKind.PIPELINE
            if self._n_ready
            else StallKind.SCOREBOARD
            if self._n_blocked
            else StallKind.IDLE
        )
        wake = events[0][0] if events else NEVER
        port_free = self.units.next_free(cycle)
        if port_free is not None and port_free < wake:
            wake = port_free
        recheck = self._recheck
        if recheck and recheck[0][0] < wake:
            wake = recheck[0][0]
        if kind == StallKind.PIPELINE:
            if mshr is None:  # pragma: no cover - defensive
                mshr = self.memory.mshr[self.sm_id]
            ret = mshr.next_retirement()
            if ret is not None and cycle < ret < wake:
                wake = ret
        if wake >= NEVER:
            from ..robustness.diagnostics import report_for_sm

            self.flush_scoreboards()
            reason = (
                f"SM {self.sm_id}: {len(self.resident_tbs)} resident TB(s) "
                "but no pending events, free ports or refetches to wake on"
            )
            raise DeadlockError(
                f"SM {self.sm_id} deadlocked at cycle {cycle}: "
                f"{len(self.resident_tbs)} resident TB(s), no pending events",
                report=report_for_sm(self, cycle, reason),
            )
        if wake <= cycle:  # pragma: no cover - defensive
            wake = cycle + 1
        self._stall_since = cycle
        self._stall_kind = kind
        self.sleep_until = wake
        return 0

    # -- issue fast path ------------------------------------------------------

    def _issue(self, s: int, warp, pc: int, cycle: int, ports, pi) -> None:
        """Issue the ready warp in slot ``s`` (all checks already passed).

        Table-driven twin of the reference ``_do_issue`` (bus/fault
        branches omitted: the backend gate guarantees both are absent).
        ``ports``/``pi`` name the unit-class port the caller found free,
        so occupying it is a single stamp store here.
        """
        kind, dstbit, aux, lat, ival, hz_next = self._meta[pc]
        active = warp._active.get(pc, warp.n_threads)
        counters = self.counters
        warp.progress += active
        warp.last_issue_cycle = cycle
        counters.instructions += 1
        counters.thread_instructions += active
        counters.last_issue_cycle = cycle

        if kind == 0:  # _K_ALU
            ports[pi] = cycle + ival
            warp.pc = pc + 1
            pend = self._pend
            lane = pend[s]
            if dstbit:
                lane |= dstbit
                pend[s] = lane
                seq = self._event_seq
                self._event_seq = seq + 1
                _heappush(self._events, (cycle + lat, seq, warp, aux))
            if lane & hz_next:
                self._stat[s] = 2
                self._n_ready -= 1
                self._n_blocked += 1
            # else: the slot stays _READY — no column update needed.
            return

        if kind == 1:  # _K_MEM
            mem_iter = warp.mem_iter
            iteration = mem_iter.get(pc, 0)
            mem_iter[pc] = iteration + 1
            lines = self._ins_tbl[pc].pattern.lines(
                _FastCtx(warp.tb.tb_index, warp.warp_in_tb, iteration, active)
            )
            n_txn = len(lines) if lines else 1
            ports[pi] = cycle + (n_txn if n_txn > 1 else 1)
            counters.mem_transactions += n_txn
            result = self.memory.access(
                self.sm_id, lines, cycle, is_write=bool(ival)
            )
            warp.pc = pc + 1
            pend = self._pend
            lane = pend[s]
            if dstbit:
                lane |= dstbit
                pend[s] = lane
                seq = self._event_seq
                self._event_seq = seq + 1
                _heappush(self._events, (result.completion, seq, warp, aux))
            if lane & hz_next:
                self._stat[s] = 2
                self._n_ready -= 1
                self._n_blocked += 1
            return

        if kind == 3:  # _K_BRA
            ports[pi] = cycle + 1
            warp.pc = aux if warp.branch_take(pc) else pc + 1
            nvc = cycle + self._bubble
            warp.next_valid_cycle = nvc
            self._stat[s] = 0
            self._n_ready -= 1
            _heappush(self._recheck, (nvc, s))
            return

        if kind == 2:  # _K_SHARED
            ports[pi] = cycle + ival
            warp.pc = pc + 1
            pend = self._pend
            lane = pend[s]
            if dstbit:
                lane |= dstbit
                pend[s] = lane
                seq = self._event_seq
                self._event_seq = seq + 1
                _heappush(self._events, (cycle + lat, seq, warp, aux))
            if lane & hz_next:
                self._stat[s] = 2
                self._n_ready -= 1
                self._n_blocked += 1
            return

        self._stat[s] = 0
        self._n_ready -= 1
        if kind == 4:  # _K_BAR
            warp.pc = pc + 1
            self._warp_reached_barrier(warp, cycle)
        else:  # _K_EXIT (pc intentionally not advanced, as in the reference)
            self._warp_finished(warp, cycle)

    # -- bulk (re)classification ----------------------------------------------

    def _classify_all(self, cycle: int) -> None:
        """Batched numpy rebuild of the status column + refetch heap.

        Used after a snapshot restore, where every slot's state is fresh
        and one whole-column vectorized pass beats per-slot incremental
        updates. Evicted-warp stand-ins (no ``finished`` attribute)
        classify as inactive.
        """
        slots = self._slots
        n = len(slots)
        self._stat = [0] * n
        self._n_ready = 0
        self._n_blocked = 0
        self._recheck = []
        if not n:
            return
        hz = self._hz
        live = np.fromiter(
            (
                not (getattr(w, "finished", True) or w.at_barrier)
                for w in slots
            ),
            dtype=bool,
            count=n,
        )
        nvc = np.fromiter(
            (w.next_valid_cycle if live[i] else 0
             for i, w in enumerate(slots)),
            dtype=np.int64,
            count=n,
        )
        hazard = np.fromiter(
            (hz[w.pc] if live[i] else 0 for i, w in enumerate(slots)),
            dtype=np.int64,
            count=n,
        )
        pend = np.fromiter(self._pend, dtype=np.int64, count=n)
        future = live & (nvc > cycle)
        current = live & ~future
        blocked = current & ((pend & hazard) != 0)
        ready = current & ~blocked
        stat = self._stat
        for i in np.flatnonzero(ready):
            stat[i] = 1
        self._n_ready = int(ready.sum())
        for i in np.flatnonzero(blocked):
            stat[i] = 2
        self._n_blocked = int(blocked.sum())
        recheck = [(int(nvc[i]), int(i)) for i in np.flatnonzero(future)]
        heapq.heapify(recheck)
        self._recheck = recheck

    # -- state serialization --------------------------------------------------

    def flush_scoreboards(self) -> None:
        """Write the authoritative pending lanes back into each warp's
        ``Scoreboard`` object (they are stale during vector stepping).

        Needed whenever scoreboard *objects* are observed: snapshots and
        deadlock diagnostics.
        """
        pend = self._pend
        for s, warp in enumerate(self._slots):
            lane = pend[s]
            regs = set()
            while lane:
                low = lane & -lane
                regs.add(low.bit_length() - 1)
                lane ^= low
            warp.scoreboard._pending = regs

    def snapshot(self) -> dict:
        self.flush_scoreboards()
        data = super().snapshot()
        # The reference records the min future next_valid_cycle seen by
        # its last scan; the heap top is this backend's equivalent. The
        # field is diagnostic-only on restore (step() recomputes it).
        data["min_refetch"] = (
            self._recheck[0][0] if self._recheck else NEVER
        )
        return data

    def restore(self, data: dict, program) -> dict:
        warp_map = super().restore(data, program)
        self._rebind_ports()
        self._slots = []
        self._slot_of = {}
        self._pend = []
        self._stat = []
        self._n_ready = 0
        self._n_blocked = 0
        for tb in self.resident_tbs:
            for w in tb.warps:
                s = self._new_slot(w)
                lane = 0
                for reg in w.scoreboard._pending:
                    lane |= 1 << reg
                self._pend[s] = lane
        # Events may reference evicted-warp stand-ins; give them zombie
        # slots so event retirement stays a pure column update.
        for _, _, w, _ in self._events:
            if id(w) not in self._slot_of:
                s = self._new_slot(w)
                lane = 0
                for reg in w.scoreboard._pending:
                    lane |= 1 << reg
                self._pend[s] = lane
        self._recheck = []
        # Defer classification into the first step(), *after* its event
        # retirement — the same point the reference scan first observes
        # the restored state.
        self._needs_classify = True
        for sel in self._selectors:
            sel.dirty = True
        return warp_map
