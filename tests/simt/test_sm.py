"""Unit tests for the SM: issue rules, stall classification, barriers,
finish semantics, event-driven fast-forward."""

from repro.config import GPUConfig
from repro.core.scheduler import build_schedulers
from repro.isa.builder import ProgramBuilder
from repro.isa.patterns import Coalesced
from repro.memory.subsystem import MemorySubsystem
from repro.simt.sm import NEVER, StreamingMultiprocessor
from repro.simt.threadblock import ThreadBlock


def make_cfg(**kw):
    base = dict(tb_launch_latency=0)
    base.update(kw)
    return GPUConfig.scaled(1).with_(**base)


def make_sm(cfg, scheduler="lrr"):
    memory = MemorySubsystem(cfg)
    sm = StreamingMultiprocessor(0, cfg, memory, gpu=None)
    sm.attach_schedulers(build_schedulers(scheduler, sm, cfg))
    return sm


def assign(sm, prog, tb_index=0, cycle=0):
    tb = ThreadBlock(tb_index, prog)
    prog.finalize(sm.cfg.latency)
    sm.assign_tb(tb, cycle)
    return tb


def drive(sm, max_cycles=1_000_000):
    """Step the SM until it drains; returns the last stepped cycle."""
    cycle = 0
    last = 0
    while sm.resident_tbs:
        cycle = max(cycle, sm.sleep_until)
        if cycle > max_cycles:
            raise AssertionError("SM did not drain")
        sm.step(cycle)
        last = cycle
        cycle += 1
    return last


def simple_prog(n_alu=3, threads=32):
    b = ProgramBuilder("p", threads_per_tb=threads)
    for _ in range(n_alu):
        b.ialu(1)
    return b.build()


class TestIssueBasics:
    def test_tb_runs_to_completion(self):
        sm = make_sm(make_cfg())
        tb = assign(sm, simple_prog())
        drive(sm)
        assert tb.all_finished
        assert sm.counters.tbs_completed == 1

    def test_instruction_count(self):
        sm = make_sm(make_cfg())
        prog = simple_prog(n_alu=5)
        assign(sm, prog)
        drive(sm)
        # 1 warp x (5 alu + exit)
        assert sm.counters.instructions == 6

    def test_thread_weighted_progress(self):
        sm = make_sm(make_cfg())
        prog = simple_prog(n_alu=2, threads=48)  # warps of 32 + 16
        assign(sm, prog)
        drive(sm)
        # (2 alu + exit) x (32 + 16) active threads
        assert sm.counters.thread_instructions == 3 * 48

    def test_dual_issue(self):
        # two schedulers issue two independent warps in one cycle
        cfg = make_cfg()
        sm = make_sm(cfg)
        assign(sm, simple_prog(n_alu=1, threads=64))
        issued = sm.step(0)
        assert issued == 2

    def test_single_scheduler_config(self):
        cfg = make_cfg(num_schedulers=1)
        sm = make_sm(cfg)
        assign(sm, simple_prog(n_alu=1, threads=64))
        assert sm.step(0) == 1


class TestScoreboardStalls:
    def test_dependent_chain_stalls(self):
        cfg = make_cfg()
        sm = make_sm(cfg)
        b = ProgramBuilder("dep", threads_per_tb=32)
        b.ialu(1)
        b.ialu(2, (1,))  # depends on previous result (latency 4)
        prog = b.build()
        assign(sm, prog)
        sm.step(0)  # issues first alu
        assert sm.step(1) == 0  # dependent op blocked
        drive(sm)
        assert sm.counters.stall_scoreboard > 0

    def test_memory_dependency_stalls(self):
        cfg = make_cfg()
        sm = make_sm(cfg)
        b = ProgramBuilder("mem", threads_per_tb=32)
        b.load_global(1, pattern=Coalesced())
        b.ialu(2, (1,))
        prog = b.build()
        assign(sm, prog)
        drive(sm)
        # one cold DRAM access exposes hundreds of scoreboard cycles
        assert sm.counters.stall_scoreboard > 100


class TestPipelineStalls:
    def test_lsu_contention(self):
        cfg = make_cfg(lsu_units=1)
        sm = make_sm(cfg)
        b = ProgramBuilder("lds", threads_per_tb=256, shared_mem_per_tb=1024)
        for _ in range(4):
            b.load_shared(1, conflict_ways=8)  # 8-cycle LSU occupancy
        prog = b.build()
        assign(sm, prog)
        drive(sm)
        assert sm.counters.stall_pipeline > 0

    def test_mshr_full_blocks_loads(self):
        cfg = make_cfg()
        cfg = cfg.with_(memory=cfg.memory.__class__(mshr_entries=1))
        sm = make_sm(cfg)
        b = ProgramBuilder("many", threads_per_tb=256)
        b.load_global(1, pattern=Coalesced())
        b.load_global(2, pattern=Coalesced(base=1 << 24))
        prog = b.build()
        assign(sm, prog)
        drive(sm)
        assert sm.counters.stall_pipeline > 0


class TestIdleStalls:
    def test_branch_bubble_idle(self):
        cfg = make_cfg(latency=make_cfg().latency.__class__(branch_bubble=8))
        sm = make_sm(cfg)
        b = ProgramBuilder("loop", threads_per_tb=32)
        with b.loop(times=4):
            b.ialu(1)
        prog = b.build()
        assign(sm, prog)
        drive(sm)
        # single warp: each taken branch leaves the SM with nothing valid
        assert sm.counters.stall_idle > 0

    def test_tb_launch_latency_idle(self):
        cfg = make_cfg(tb_launch_latency=64)
        sm = make_sm(cfg)
        assign(sm, simple_prog())
        drive(sm)
        assert sm.counters.stall_idle >= 64


class TestBarriers:
    def barrier_prog(self, threads=64):
        b = ProgramBuilder("bar", threads_per_tb=threads)
        b.ialu(1)
        b.barrier()
        b.ialu(2)
        return b.build()

    def test_barrier_synchronizes(self):
        sm = make_sm(make_cfg())
        tb = assign(sm, self.barrier_prog())
        drive(sm)
        assert tb.all_finished
        assert tb.n_at_barrier == 0

    def test_single_warp_barrier_is_immediate(self):
        sm = make_sm(make_cfg())
        tb = assign(sm, self.barrier_prog(threads=32))
        drive(sm)
        assert tb.all_finished

    def test_warp_waits_for_sibling(self):
        # Warp 0's path to the barrier is longer; warp 1 must wait.
        cfg = make_cfg()
        sm = make_sm(cfg)
        b = ProgramBuilder("div", threads_per_tb=64)
        with b.loop(times=lambda tb, w: 1 + 9 * (1 - w)):  # w0: 10, w1: 1
            b.ialu(1)
        b.barrier()
        b.ialu(2)
        prog = b.build()
        tb = assign(sm, prog)
        # run a handful of cycles: warp 1 should reach the barrier early
        for c in range(0, 30):
            if sm.sleep_until <= c:
                sm.step(c)
        w1 = tb.warps[1]
        assert w1.at_barrier or tb.n_at_barrier in (0, 1)
        drive(sm)
        assert tb.all_finished


class TestFinishSemantics:
    def test_resources_released(self):
        cfg = make_cfg()
        sm = make_sm(cfg)
        prog = simple_prog(threads=128)
        assign(sm, prog)
        assert sm.used_threads == 128
        drive(sm)
        assert sm.used_threads == 0
        assert sm.used_regs == 0
        assert not sm.resident_tbs

    def test_can_accept_respects_resources(self):
        cfg = make_cfg()
        sm = make_sm(cfg)
        prog = simple_prog(threads=1024)
        tb1 = ThreadBlock(0, prog)
        tb2 = ThreadBlock(1, prog)
        prog.finalize(cfg.latency)
        assert sm.can_accept(tb1)
        sm.assign_tb(tb1, 0)
        assert not sm.can_accept(tb2)  # 2048 threads > 1536

    def test_tb_slot_cap(self):
        cfg = make_cfg(max_tbs_per_sm=2)
        sm = make_sm(cfg)
        prog = simple_prog(threads=32)
        prog.finalize(cfg.latency)
        for i in range(2):
            sm.assign_tb(ThreadBlock(i, prog), 0)
        assert not sm.can_accept(ThreadBlock(2, prog))

    def test_warp_count_tracks_finishes(self):
        sm = make_sm(make_cfg())
        assign(sm, simple_prog(threads=64))
        assert sm.resident_warp_count == 2
        drive(sm)
        assert sm.resident_warp_count == 0


class TestSleepAndEvents:
    def test_sleep_until_advances(self):
        sm = make_sm(make_cfg())
        b = ProgramBuilder("mem", threads_per_tb=32)
        b.load_global(1, pattern=Coalesced())
        b.ialu(2, (1,))
        prog = b.build()
        assign(sm, prog)
        sm.step(0)   # issue load
        sm.step(1)   # blocked -> sleeps until the memory completion
        assert sm.sleep_until > 2

    def test_empty_sm_sleeps_forever(self):
        sm = make_sm(make_cfg())
        assign(sm, simple_prog())
        drive(sm)
        assert sm.sleep_until == NEVER

    def test_accounting_invariant(self):
        sm = make_sm(make_cfg())
        assign(sm, simple_prog(n_alu=8, threads=128))
        last = drive(sm)
        sm.finalize_accounting(last + 1)
        c = sm.counters
        assert c.active_cycles + c.stall_cycles == last + 1
