"""Tiny stdlib HTTP client for the serve API (urllib, no deps).

The same calls the curl quickstart in docs/serve.md makes, as methods::

    from repro.serve import ServeClient

    client = ServeClient("http://127.0.0.1:8642")
    job = client.submit({"kind": "run", "kernel": "scalarProdGPU",
                         "scheduler": "pro", "scale": 0.25})
    done = client.wait(job["id"])
    counters = client.result(job["id"])["result"]["result"]["counters"]
"""

from __future__ import annotations

import json
import time
import urllib.error
import urllib.request
from typing import Any, Dict, Optional

from ..errors import ReproError

from .jobs import JobState


class ServeClientError(ReproError):
    """An HTTP-level error from the service (carries status + payload)."""

    def __init__(self, status: int, payload: Optional[dict],
                 detail: str = "") -> None:
        self.status = status
        self.payload = payload or {}
        message = self.payload.get("error") or detail or f"HTTP {status}"
        super().__init__(f"serve API error {status}: {message}")


class ServeClient:
    """Synchronous client: submit / status / result / cancel / wait."""

    def __init__(self, base_url: str, *, timeout: float = 30.0) -> None:
        self.base_url = base_url.rstrip("/")
        self.timeout = timeout

    # -- plumbing ------------------------------------------------------

    def _request(self, method: str, path: str,
                 body: Optional[dict] = None) -> dict:
        data = None
        headers = {"Accept": "application/json"}
        if body is not None:
            data = json.dumps(body).encode()
            headers["Content-Type"] = "application/json"
        req = urllib.request.Request(
            self.base_url + path, data=data, headers=headers, method=method
        )
        try:
            with urllib.request.urlopen(req, timeout=self.timeout) as resp:
                return json.loads(resp.read().decode() or "{}")
        except urllib.error.HTTPError as err:
            try:
                payload = json.loads(err.read().decode() or "{}")
            except (json.JSONDecodeError, UnicodeDecodeError):
                payload = None
            raise ServeClientError(err.code, payload,
                                   detail=str(err.reason)) from None
        except urllib.error.URLError as err:
            raise ServeClientError(0, None,
                                   detail=f"cannot reach service: "
                                          f"{err.reason}") from None

    # -- API -----------------------------------------------------------

    def submit(self, spec: Dict[str, Any]) -> dict:
        """POST /jobs — returns the job record (may already be done:
        content-addressed dedup answers identical submissions from the
        result cache without simulating)."""
        return self._request("POST", "/jobs", spec)

    def job(self, job_id: str) -> dict:
        return self._request("GET", f"/jobs/{job_id}")

    def jobs(self) -> list:
        return self._request("GET", "/jobs")["jobs"]

    def result(self, job_id: str) -> dict:
        """GET /jobs/<id>/result — 409 (raised) until the job is done."""
        return self._request("GET", f"/jobs/{job_id}/result")

    def cancel(self, job_id: str) -> dict:
        return self._request("POST", f"/jobs/{job_id}/cancel")

    def status(self) -> dict:
        return self._request("GET", "/status")

    def ledger(self, tail: int = 0) -> list:
        path = f"/ledger?tail={tail}" if tail else "/ledger"
        return self._request("GET", path)["entries"]

    def healthy(self) -> bool:
        try:
            return bool(self._request("GET", "/healthz").get("ok"))
        except ServeClientError:
            return False

    def wait(self, job_id: str, *, timeout: float = 300.0,
             poll: float = 0.05) -> dict:
        """Poll until the job reaches a terminal state; returns the job
        record. Raises :class:`ServeClientError` on timeout."""
        deadline = time.monotonic() + timeout
        while True:
            record = self.job(job_id)
            if record["state"] in JobState.TERMINAL:
                return record
            if time.monotonic() >= deadline:
                raise ServeClientError(
                    0, record,
                    detail=f"job {job_id} still {record['state']} "
                           f"after {timeout}s",
                )
            time.sleep(poll)
