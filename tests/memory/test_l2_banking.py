"""L2 banking and port-contention behaviour."""

import pytest

from repro.config import GPUConfig
from repro.memory.subsystem import MemorySubsystem

LINE = 128


@pytest.fixture
def mem():
    return MemorySubsystem(GPUConfig.scaled(2))


class TestBankMapping:
    def test_consecutive_lines_stripe_banks(self, mem):
        n = len(mem.l2_banks)
        # miss n consecutive lines; each lands in a distinct bank
        for i in range(n):
            mem.access(0, [i * LINE], cycle=0)
        fills = [b.stats.read_misses for b in mem.l2_banks]
        assert fills == [1] * n

    def test_same_bank_lines_conflict(self, mem):
        n = len(mem.l2_banks)
        mem.access(0, [0], cycle=0)
        mem.access(0, [n * LINE], cycle=0)  # same bank, next stripe
        assert mem.l2_banks[0].stats.read_misses == 2

    def test_port_serialization_raises_latency(self, mem):
        """Two simultaneous requests to one L2 bank queue on its port."""
        n = len(mem.l2_banks)
        r1 = mem.access(0, [0], cycle=0)
        r2 = mem.access(1, [n * 4 * LINE], cycle=0)  # same bank, diff line
        # the second request was delayed by the first's port occupancy
        assert r2.completion >= r1.completion


class TestL2Sharing:
    def test_cross_sm_sharing(self, mem):
        """L2 is shared: SM 1 benefits from SM 0's fill."""
        cold = mem.access(0, [0], cycle=0)
        after = cold.completion + 10
        warm = mem.access(1, [0], cycle=after)
        assert (warm.completion - after) < (cold.completion - 0)
        assert mem.l2_stats_total().read_hits >= 1

    def test_l1_is_private(self, mem):
        mem.access(0, [0], cycle=0)
        assert mem.l1[0].probe(0) is True
        assert mem.l1[1].probe(0) is False
