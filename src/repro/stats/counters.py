"""Cycle and stall accounting.

GPGPU-Sim (and the paper, §II-B) classifies each SM cycle in which no warp
is issued into exactly one of three stall kinds:

* **Idle** — no warp even has a valid instruction: warps are at barriers,
  finished, or the SM has no work. (Paper: warp-level divergence and
  TB-granularity allocation inflate these; PRO attacks them.)
* **Scoreboard** — at least one warp has a valid instruction, but none has
  all operands ready (typically waiting on memory).
* **Pipeline** — some warp has a valid, operand-ready instruction but every
  needed execution port is busy.

:class:`SmCounters` tracks these per SM; :class:`GpuCounters` aggregates to
GPU level, which is how the paper's Fig. 5 / Table III report them.
"""

from __future__ import annotations

import dataclasses
import enum
from dataclasses import dataclass, field
from typing import Dict, List


class StallKind(enum.IntEnum):
    """Why an SM cycle issued nothing (GPGPU-Sim classification)."""

    IDLE = 0
    SCOREBOARD = 1
    PIPELINE = 2


@dataclass
class SmCounters:
    """Per-SM cycle/issue accounting over the SM's busy period."""

    sm_id: int = 0
    #: Cycles in which >= 1 instruction issued.
    active_cycles: int = 0
    #: Stall cycles by kind.
    stall_idle: int = 0
    stall_scoreboard: int = 0
    stall_pipeline: int = 0
    #: Warp instructions issued.
    instructions: int = 0
    #: Thread-weighted instructions (progress units issued on this SM).
    thread_instructions: int = 0
    #: Thread blocks completed on this SM.
    tbs_completed: int = 0
    #: Memory line transactions issued by this SM's warps.
    mem_transactions: int = 0
    #: Cycle of this SM's most recent instruction issue (-1 = never).
    #: Cheap to maintain and the first thing a hang diagnosis looks at.
    last_issue_cycle: int = -1

    def add_stall(self, kind: StallKind, cycles: int = 1) -> None:
        """Attribute ``cycles`` stall cycles of the given kind."""
        if kind == StallKind.IDLE:
            self.stall_idle += cycles
        elif kind == StallKind.SCOREBOARD:
            self.stall_scoreboard += cycles
        else:
            self.stall_pipeline += cycles

    @property
    def stall_cycles(self) -> int:
        """Total stall cycles across the three kinds."""
        return self.stall_idle + self.stall_scoreboard + self.stall_pipeline

    @property
    def busy_cycles(self) -> int:
        """Active + stalled cycles (the SM's accounted busy period)."""
        return self.active_cycles + self.stall_cycles

    def stall_breakdown(self) -> Dict[str, float]:
        """Fractions of stall cycles by kind (sums to 1.0; zeros if none)."""
        total = self.stall_cycles
        if total == 0:
            return {"idle": 0.0, "scoreboard": 0.0, "pipeline": 0.0}
        return {
            "idle": self.stall_idle / total,
            "scoreboard": self.stall_scoreboard / total,
            "pipeline": self.stall_pipeline / total,
        }

    # -- state serialization -------------------------------------------

    def snapshot(self) -> Dict[str, int]:
        """Serializable field dict (all fields are plain ints)."""
        return dataclasses.asdict(self)

    def restore(self, data: Dict[str, int]) -> None:
        """Overwrite every counter field from a snapshot."""
        for name, value in data.items():
            setattr(self, name, value)


@dataclass
class GpuCounters:
    """GPU-level aggregation of a finished kernel simulation."""

    #: Simulation cycles from launch to last TB completion.
    total_cycles: int = 0
    per_sm: List[SmCounters] = field(default_factory=list)
    #: L1 miss rate across all SMs (diagnostics; paper §IV mentions it).
    l1_miss_rate: float = 0.0
    l2_miss_rate: float = 0.0
    dram_row_hit_rate: float = 0.0

    # -- aggregates ---------------------------------------------------------

    @property
    def stall_idle(self) -> int:
        return sum(s.stall_idle for s in self.per_sm)

    @property
    def stall_scoreboard(self) -> int:
        return sum(s.stall_scoreboard for s in self.per_sm)

    @property
    def stall_pipeline(self) -> int:
        return sum(s.stall_pipeline for s in self.per_sm)

    @property
    def stall_cycles(self) -> int:
        """Total GPU-level stall cycles (paper Fig. 5 / Table III metric)."""
        return self.stall_idle + self.stall_scoreboard + self.stall_pipeline

    @property
    def active_cycles(self) -> int:
        return sum(s.active_cycles for s in self.per_sm)

    @property
    def instructions(self) -> int:
        return sum(s.instructions for s in self.per_sm)

    @property
    def thread_instructions(self) -> int:
        return sum(s.thread_instructions for s in self.per_sm)

    @property
    def tbs_completed(self) -> int:
        return sum(s.tbs_completed for s in self.per_sm)

    @property
    def ipc(self) -> float:
        """Warp instructions per GPU cycle (0.0 for an empty run)."""
        if self.total_cycles == 0:
            return 0.0
        return self.instructions / self.total_cycles

    def stall_breakdown(self) -> Dict[str, float]:
        """GPU-level stall fractions by kind (paper Fig. 1 metric)."""
        total = self.stall_cycles
        if total == 0:
            return {"idle": 0.0, "scoreboard": 0.0, "pipeline": 0.0}
        return {
            "idle": self.stall_idle / total,
            "scoreboard": self.stall_scoreboard / total,
            "pipeline": self.stall_pipeline / total,
        }
