"""Tests for the golden baseline store and baseline diffing."""

import json

import pytest

from repro.fidelity import BaselineStore, diff_baselines, sim_version_digest
from repro.fidelity.baseline import BaselineError

from .test_scorer import toy_measurement


class TestSimVersionDigest:
    def test_shape_and_determinism(self):
        d = sim_version_digest()
        assert len(d) == 16
        assert int(d, 16) >= 0  # hex
        assert d == sim_version_digest()


class TestStoreRoundTrip:
    def test_accept_then_compare_clean(self, tmp_path):
        store = BaselineStore(tmp_path)
        m = toy_measurement()
        path = store.accept(m)
        assert path.name == f"toy-{m.profile.key()}.json"
        data = store.load(m.profile)
        assert data["schema"] == 1
        assert data["sim_digest"] == sim_version_digest()
        diff = store.compare(m)
        assert diff.status == "pass"
        assert diff.clean and diff.sim_digest_matches
        assert "match" in diff.headline()

    def test_missing_baseline_warns(self, tmp_path):
        diff = BaselineStore(tmp_path).compare(toy_measurement())
        assert diff.status == "warn"
        assert not diff.found
        assert "--accept-baseline" in diff.headline()

    def test_drift_fails_with_same_sim_digest(self, tmp_path):
        store = BaselineStore(tmp_path)
        m = toy_measurement()
        path = store.accept(m)
        data = json.loads(path.read_text())
        data["cells"]["aesEncrypt128/pro"]["cycles"] += 7
        path.write_text(json.dumps(data))
        diff = store.compare(m)
        assert diff.status == "fail"
        assert len(diff.drifted) == 1
        d = diff.drifted[0]
        assert (d.cell, d.field_name) == ("aesEncrypt128/pro", "cycles")
        assert "unintended drift" in diff.headline()

    def test_drift_with_changed_sim_digest_suggests_promotion(self, tmp_path):
        store = BaselineStore(tmp_path)
        m = toy_measurement()
        path = store.accept(m)
        data = json.loads(path.read_text())
        data["sim_digest"] = "0" * 16
        data["cells"]["cenergy/lrr"]["stall_idle"] = 1
        path.write_text(json.dumps(data))
        diff = store.compare(m)
        assert diff.status == "fail"
        assert "--accept-baseline" in diff.headline()

    def test_digest_change_without_drift_warns(self, tmp_path):
        store = BaselineStore(tmp_path)
        m = toy_measurement()
        path = store.accept(m)
        data = json.loads(path.read_text())
        data["sim_digest"] = "0" * 16
        path.write_text(json.dumps(data))
        diff = store.compare(m)
        assert diff.status == "warn"
        assert "still valid" in diff.headline()

    def test_missing_and_extra_cells(self, tmp_path):
        store = BaselineStore(tmp_path)
        m = toy_measurement()
        path = store.accept(m)
        data = json.loads(path.read_text())
        data["cells"]["ghost/pro"] = {"cycles": 1}
        del data["cells"]["cenergy/gto"]
        path.write_text(json.dumps(data))
        diff = store.compare(m)
        assert diff.missing_cells == ["ghost/pro"]
        assert diff.extra_cells == ["cenergy/gto"]
        assert diff.status == "fail"

    def test_stale_geometry_files_reported(self, tmp_path):
        store = BaselineStore(tmp_path)
        m = toy_measurement()
        store.accept(m)
        (tmp_path / "toy-feedfeedfeed.json").write_text("{}")
        diff = store.compare(m)
        assert diff.stale_files == ["toy-feedfeedfeed.json"]

    def test_corrupt_baseline_raises(self, tmp_path):
        store = BaselineStore(tmp_path)
        m = toy_measurement()
        store.path_for(m.profile).parent.mkdir(parents=True, exist_ok=True)
        store.path_for(m.profile).write_text("{nope")
        with pytest.raises(BaselineError):
            store.compare(m)


class TestDiffBaselines:
    def _two_files(self, tmp_path):
        store_a = BaselineStore(tmp_path / "a")
        store_b = BaselineStore(tmp_path / "b")
        m = toy_measurement()
        pa = store_a.accept(m)
        pb = store_b.accept(m)
        return pa, pb

    def test_identical(self, tmp_path):
        pa, pb = self._two_files(tmp_path)
        assert "identical cells" in diff_baselines(pa, pb)

    def test_drifted_cell(self, tmp_path):
        pa, pb = self._two_files(tmp_path)
        data = json.loads(pb.read_text())
        data["cells"]["aesEncrypt128/lrr"]["cycles"] = 9999
        pb.write_text(json.dumps(data))
        out = diff_baselines(pa, pb)
        assert "aesEncrypt128/lrr cycles: 150 -> 9999" in out

    def test_directories(self, tmp_path):
        pa, pb = self._two_files(tmp_path)
        (tmp_path / "b" / "other-abc.json").write_text("{}")
        out = diff_baselines(tmp_path / "a", tmp_path / "b")
        assert f"== {pa.name} ==" in out
        assert "other-abc.json: only in" in out

    def test_empty_dirs(self, tmp_path):
        (tmp_path / "x").mkdir()
        (tmp_path / "y").mkdir()
        assert "no baseline files" in diff_baselines(tmp_path / "x",
                                                     tmp_path / "y")

    def test_missing_file_raises(self, tmp_path):
        with pytest.raises(BaselineError):
            diff_baselines(tmp_path / "nope.json", tmp_path / "nope2.json")
