"""Parameter sweeps over the simulator.

A :class:`Sweep` maps one named knob over a sequence of values, running a
kernel under a set of schedulers at each point, and collects cycles +
stall data into a :class:`SweepResult` with a table renderer. Four
ready-made sweeps cover the axes that matter for warp-scheduling studies:

* :func:`latency_sweep` — scale all memory latencies (is the gap
  latency-driven?),
* :func:`sm_count_sweep` — GPU width with proportional grids (does the
  residency effect grow with more SMs?),
* :func:`occupancy_sweep` — shared-memory pressure (fewer resident warps
  make scheduling matter more — the paper's §II premise),
* :func:`grid_sweep` — grid/residency ratio (fastTBPhase vs slowTBPhase
  balance).
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from ..config import GPUConfig
from ..gpu.gpu import Gpu
from ..gpu.launch import KernelLaunch, RunResult
from ..stats.report import geomean, render_table
from ..workloads import KernelModel, get_kernel

#: (value, scheduler) -> RunResult
SweepData = Dict[Tuple[object, str], RunResult]


@dataclass
class SweepResult:
    """Collected results of one sweep."""

    name: str
    knob: str
    values: List[object]
    schedulers: Tuple[str, ...]
    data: SweepData = field(default_factory=dict)

    def cycles(self, value: object, scheduler: str) -> int:
        return self.data[(value, scheduler)].cycles

    def speedup(self, value: object, scheduler: str,
                over: str = "lrr") -> float:
        """Speedup of ``scheduler`` over ``over`` at one sweep point."""
        return self.cycles(value, over) / self.cycles(value, scheduler)

    def speedup_series(self, scheduler: str = "pro",
                       over: str = "lrr") -> List[float]:
        """The speedup at every sweep point, in value order."""
        return [self.speedup(v, scheduler, over) for v in self.values]

    def speedup_geomean(self, scheduler: str = "pro",
                        over: str = "lrr") -> float:
        """Geomean speedup across the sweep — the single-number summary
        the fidelity scorer's aggregates use, so a sweep can be compared
        against the Fig. 4 geomean expectations directly."""
        return geomean(self.speedup_series(scheduler, over))

    def render(self) -> str:
        headers = [self.knob] + [f"{s} cycles" for s in self.schedulers]
        if "pro" in self.schedulers and "lrr" in self.schedulers:
            headers.append("pro/lrr speedup")
        rows = []
        for v in self.values:
            row: List[object] = [str(v)]
            row += [self.cycles(v, s) for s in self.schedulers]
            if "pro" in self.schedulers and "lrr" in self.schedulers:
                row.append(self.speedup(v, "pro", "lrr"))
            rows.append(tuple(row))
        return render_table(headers, rows, title=self.name)


@dataclass
class Sweep:
    """Generic sweep: run ``kernel`` under ``schedulers`` for each value.

    ``configure(value)`` returns the (GPUConfig, launch-scale) pair for a
    sweep point; ``launch_for(value, model)`` may be overridden via
    ``make_launch`` for knobs that rebuild the program itself.
    """

    name: str
    knob: str
    values: Sequence[object]
    configure: Callable[[object], GPUConfig]
    schedulers: Tuple[str, ...] = ("lrr", "gto", "pro")
    make_launch: Optional[Callable[[object, KernelModel], KernelLaunch]] = None
    scale: float = 1.0

    def run(self, kernel: str | KernelModel) -> SweepResult:
        model = kernel if isinstance(kernel, KernelModel) else get_kernel(kernel)
        result = SweepResult(
            name=f"{self.name} — {model.name}",
            knob=self.knob,
            values=list(self.values),
            schedulers=self.schedulers,
        )
        for value in self.values:
            cfg = self.configure(value)
            for sched in self.schedulers:
                launch = (
                    self.make_launch(value, model)
                    if self.make_launch is not None
                    else model.build_launch(self.scale)
                )
                result.data[(value, sched)] = Gpu(cfg, sched).run(launch)
        return result


# ---------------------------------------------------------------------------
# Ready-made sweeps


def latency_sweep(
    kernel: str | KernelModel,
    factors: Sequence[float] = (0.5, 1.0, 2.0, 4.0),
    *,
    num_sms: int = 2,
    scale: float = 0.5,
    schedulers: Tuple[str, ...] = ("lrr", "gto", "pro"),
) -> SweepResult:
    """Scale every memory-path latency by each factor."""
    base = GPUConfig.scaled(num_sms)

    def configure(factor: float) -> GPUConfig:
        lat = base.latency
        scaled = dataclasses.replace(
            lat,
            l1_hit=max(1, round(lat.l1_hit * factor)),
            l2_hit=max(1, round(lat.l2_hit * factor)),
            dram_row_hit=max(1, round(lat.dram_row_hit * factor)),
            dram_row_miss=max(1, round(lat.dram_row_miss * factor)),
            noc=max(1, round(lat.noc * factor)),
        )
        return base.with_(latency=scaled)

    return Sweep(
        name="Memory latency sensitivity",
        knob="latency x",
        values=list(factors),
        configure=configure,
        schedulers=schedulers,
        scale=scale,
    ).run(kernel)


def sm_count_sweep(
    kernel: str | KernelModel,
    counts: Sequence[int] = (1, 2, 4, 8),
    *,
    scale_per_sm: float = 0.25,
    schedulers: Tuple[str, ...] = ("lrr", "gto", "pro"),
) -> SweepResult:
    """Vary GPU width, scaling the grid proportionally (weak scaling)."""

    def configure(n: int) -> GPUConfig:
        return GPUConfig.scaled(n)

    def make_launch(n: int, model: KernelModel) -> KernelLaunch:
        return model.build_launch(scale_per_sm * n)

    return Sweep(
        name="SM-count (weak) scaling",
        knob="SMs",
        values=list(counts),
        configure=configure,
        make_launch=make_launch,
        schedulers=schedulers,
    ).run(kernel)


def occupancy_sweep(
    kernel: str | KernelModel,
    tb_limits: Sequence[int] = (1, 2, 4, 8),
    *,
    num_sms: int = 2,
    scale: float = 0.5,
    schedulers: Tuple[str, ...] = ("lrr", "gto", "pro"),
) -> SweepResult:
    """Cap resident TBs per SM — the occupancy knob.

    Lower residency means fewer warps to hide latency with, the regime
    where warp-scheduling policy matters most (paper §II).
    """

    def configure(limit: int) -> GPUConfig:
        return GPUConfig.scaled(num_sms).with_(max_tbs_per_sm=limit)

    return Sweep(
        name="Occupancy (resident-TB cap)",
        knob="TBs/SM",
        values=list(tb_limits),
        configure=configure,
        schedulers=schedulers,
        scale=scale,
    ).run(kernel)


def grid_sweep(
    kernel: str | KernelModel,
    scales: Sequence[float] = (0.25, 0.5, 1.0, 2.0),
    *,
    num_sms: int = 2,
    schedulers: Tuple[str, ...] = ("lrr", "gto", "pro"),
) -> SweepResult:
    """Vary the grid size (the fastTBPhase/slowTBPhase balance)."""

    def configure(_s: float) -> GPUConfig:
        return GPUConfig.scaled(num_sms)

    def make_launch(s: float, model: KernelModel) -> KernelLaunch:
        return model.build_launch(s)

    return Sweep(
        name="Grid-size scaling",
        knob="scale",
        values=list(scales),
        configure=configure,
        make_launch=make_launch,
        schedulers=schedulers,
    ).run(kernel)
