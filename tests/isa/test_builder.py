"""Unit tests for the ProgramBuilder DSL."""

import pytest

from repro.errors import ProgramError
from repro.isa.builder import ProgramBuilder
from repro.isa.instructions import Opcode
from repro.isa.patterns import Coalesced


class TestBasics:
    def test_auto_exit(self):
        p = ProgramBuilder("k").ialu(1).build()
        assert p.instructions[-1].op is Opcode.EXIT

    def test_explicit_exit_not_duplicated(self):
        p = ProgramBuilder("k").ialu(1).exit().build()
        assert sum(1 for i in p if i.op is Opcode.EXIT) == 1

    def test_build_once(self):
        b = ProgramBuilder("k").ialu(1)
        b.build()
        with pytest.raises(ProgramError):
            b.build()

    def test_append_after_build_rejected(self):
        b = ProgramBuilder("k").ialu(1)
        b.build()
        with pytest.raises(ProgramError):
            b.ialu(2)

    def test_resources_forwarded(self):
        p = ProgramBuilder("k", threads_per_tb=96, regs_per_thread=11,
                           shared_mem_per_tb=3000).build()
        assert p.threads_per_tb == 96
        assert p.regs_per_thread == 11
        assert p.shared_mem_per_tb == 3000

    def test_fluent_chaining(self):
        p = (ProgramBuilder("k")
             .ialu(1).falu(2, (1,)).fma(3, (1, 2)).sfu(4, (3,))
             .build())
        ops = [i.op for i in p.instructions[:-1]]
        assert ops == [Opcode.IALU, Opcode.FALU, Opcode.FMA, Opcode.SFU]

    def test_len(self):
        b = ProgramBuilder("k")
        assert len(b) == 0
        b.ialu(1)
        assert len(b) == 1


class TestMemoryOps:
    def test_load_global(self):
        p = ProgramBuilder("k").load_global(1, pattern=Coalesced()).build()
        assert p.instructions[0].op is Opcode.LDG
        assert p.instructions[0].dst == 1

    def test_store_global(self):
        p = ProgramBuilder("k").store_global((2,), pattern=Coalesced()).build()
        i = p.instructions[0]
        assert i.op is Opcode.STG and i.srcs == (2,) and i.dst is None

    def test_shared_conflicts(self):
        p = (ProgramBuilder("k")
             .load_shared(1, conflict_ways=4)
             .store_shared((1,), conflict_ways=2)
             .build())
        assert p.instructions[0].conflict_ways == 4
        assert p.instructions[1].conflict_ways == 2


class TestLoops:
    def test_loop_unrolls_to_times(self):
        b = ProgramBuilder("k")
        with b.loop(times=5):
            b.ialu(1)
        p = b.build()
        # body + bra executed 5 times, + exit
        assert p.dynamic_count(0, 0) == 5 * 2 + 1

    def test_loop_once(self):
        b = ProgramBuilder("k")
        with b.loop(times=1):
            b.ialu(1)
        p = b.build()
        assert p.dynamic_count(0, 0) == 2 + 1

    def test_loop_zero_rejected(self):
        b = ProgramBuilder("k")
        with pytest.raises(ProgramError):
            with b.loop(times=0):
                b.ialu(1)

    def test_empty_loop_rejected(self):
        b = ProgramBuilder("k")
        with pytest.raises(ProgramError):
            with b.loop(times=3):
                pass

    def test_callable_times(self):
        b = ProgramBuilder("k")
        with b.loop(times=lambda tb, w: 2 + w):
            b.ialu(1)
        p = b.build()
        assert p.dynamic_count(0, 0) == 2 * 2 + 1
        assert p.dynamic_count(0, 3) == 5 * 2 + 1

    def test_callable_times_below_one_rejected_at_resolution(self):
        b = ProgramBuilder("k")
        with b.loop(times=lambda tb, w: 0):
            b.ialu(1)
        p = b.build()
        with pytest.raises(ProgramError):
            p.dynamic_count(0, 0)

    def test_nested_loops(self):
        b = ProgramBuilder("k")
        with b.loop(times=3):
            b.ialu(1)
            with b.loop(times=2):
                b.ialu(2)
        p = b.build()
        # outer pass: ialu + inner(2*(ialu+bra)) + outer bra = 1+4+1 = 6
        assert p.dynamic_count(0, 0) == 3 * 6 + 1

    def test_build_inside_loop_rejected(self):
        b = ProgramBuilder("k")
        with pytest.raises(ProgramError):
            with b.loop(times=2):
                b.ialu(1)
                b.build()

    def test_alu_chain(self):
        p = ProgramBuilder("k").alu_chain(4, dst=2).build()
        assert sum(1 for i in p if i.op is Opcode.IALU) == 4
        assert all(i.srcs == (2,) for i in p.instructions[:4])

    def test_alu_chain_independent(self):
        p = ProgramBuilder("k").alu_chain(3, dst=2, dep=False).build()
        assert all(i.srcs == () for i in p.instructions[:3])

    def test_alu_chain_negative_rejected(self):
        with pytest.raises(ProgramError):
            ProgramBuilder("k").alu_chain(-1)


class TestBarrier:
    def test_barrier_emitted(self):
        p = ProgramBuilder("k").barrier().build()
        assert p.instructions[0].op is Opcode.BAR
        assert p.has_barrier()
