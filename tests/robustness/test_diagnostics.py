"""Fault-injected deadlocks must produce actionable DeadlockReports."""

import pytest

from repro import Gpu, GPUConfig, KernelLaunch
from repro.errors import DeadlockError
from repro.robustness import DeadlockReport, FaultPlan, report_for_sm
from tests.conftest import bare_sm, tiny_program

CFG1 = GPUConfig.scaled(1)


def run_with_faults(plan, *, num_tbs=1, scheduler="lrr", **prog_kwargs):
    gpu = Gpu(CFG1, scheduler=scheduler)
    gpu.install_faults(plan)
    return gpu, gpu.run(KernelLaunch(tiny_program(**prog_kwargs), num_tbs))


class TestBarrierDropDeadlock:
    def test_raises_deadlock_error_with_report(self):
        plan = FaultPlan(seed=7).drop_barrier_arrival(nth=1)
        with pytest.raises(DeadlockError) as exc:
            run_with_faults(plan, barrier=True)
        report = exc.value.report
        assert isinstance(report, DeadlockReport)
        assert report.cycle > 0

    def test_report_names_every_blocked_warp_and_wait_reason(self):
        plan = FaultPlan().drop_barrier_arrival(nth=1)
        with pytest.raises(DeadlockError) as exc:
            run_with_faults(plan, barrier=True, threads_per_tb=64)
        report = exc.value.report
        blocked = report.blocked_warps()
        # both warps of the 64-thread TB are parked at the barrier
        assert {w.name for w in blocked} == {"tb0.w0", "tb0.w1"}
        assert all(w.state == "barrier" for w in blocked)
        assert all("barrier" in w.wait_reason for w in blocked)
        # the swallowed arrival is visible: 1/2 arrived, never 2/2
        assert any("1/2 arrived" in w.wait_reason for w in blocked)

    def test_report_logs_the_injected_fault(self):
        plan = FaultPlan().drop_barrier_arrival(nth=1)
        with pytest.raises(DeadlockError) as exc:
            run_with_faults(plan, barrier=True)
        assert any("barrier arrival dropped" in entry
                   for entry in exc.value.report.injected_faults)

    def test_str_includes_rendered_report(self):
        plan = FaultPlan().drop_barrier_arrival(nth=1)
        with pytest.raises(DeadlockError) as exc:
            run_with_faults(plan, barrier=True)
        text = str(exc.value)
        assert "DeadlockReport @ cycle" in text
        assert "tb0.w0" in text and "MSHR" in text
        # headline stays one-line for log scrapers / FAILURES sections
        assert "\n" not in exc.value.headline


class TestSwallowedFillDeadlock:
    def test_warp_reported_scoreboard_blocked(self):
        plan = FaultPlan().swallow_mshr_fill(nth=1)
        with pytest.raises(DeadlockError) as exc:
            run_with_faults(plan)
        report = exc.value.report
        stuck = [w for w in report.blocked_warps() if w.state == "scoreboard"]
        assert stuck, report.render()
        # the lost fill's destination register is named
        assert all(w.pending_regs for w in stuck)
        assert all("scoreboard regs" in w.wait_reason for w in stuck)
        assert any("mshr fill swallowed" in entry
                   for entry in report.injected_faults)


class TestReportStructure:
    def test_gpu_level_report_carries_dram_and_tb_state(self):
        plan = FaultPlan().drop_barrier_arrival(nth=1)
        with pytest.raises(DeadlockError) as exc:
            run_with_faults(plan, barrier=True)
        report = exc.value.report
        assert report.dram is not None
        assert report.dram.total_banks > 0
        assert report.total_tbs == 1 and report.finished_tbs == 0
        assert report.sms[0].mshr.capacity == CFG1.memory.mshr_entries
        assert report.sms[0].last_issue_cycle > 0

    def test_render_is_multiline_and_self_describing(self):
        plan = FaultPlan().drop_barrier_arrival(nth=1)
        with pytest.raises(DeadlockError) as exc:
            run_with_faults(plan, barrier=True)
        text = exc.value.report.render()
        for needle in ("DeadlockReport", "TBs:", "DRAM:", "SM 0:",
                       "Injected faults:"):
            assert needle in text, text

    def test_report_for_bare_sm_without_gpu(self, cfg1):
        """SM unit-test setups (no Gpu) still get a single-SM report."""
        sm = bare_sm(cfg1)
        report = report_for_sm(sm, cycle=0, reason="unit test")
        assert report.total_tbs is None and report.dram is None
        assert len(report.sms) == 1
        assert "DeadlockReport" in report.render()


class TestOccupancyAndProgress:
    def test_report_carries_resident_tb_occupancy(self):
        plan = FaultPlan().drop_barrier_arrival(nth=1)
        with pytest.raises(DeadlockError) as exc:
            run_with_faults(plan, barrier=True)
        sm = exc.value.report.sms[0]
        assert set(sm.occupancy) == {"threads", "regs", "smem", "tbs"}
        for used, limit in sm.occupancy.values():
            assert 0 <= used <= limit
        # the deadlocked TB is still resident
        assert sm.occupancy["tbs"][0] == 1
        assert "occupancy:" in exc.value.report.render()

    def test_report_carries_pro_progress_table_under_pro(self):
        plan = FaultPlan().drop_barrier_arrival(nth=1)
        with pytest.raises(DeadlockError) as exc:
            run_with_faults(plan, barrier=True, scheduler="pro")
        sm = exc.value.report.sms[0]
        assert sm.pro_phase in ("fast", "slow")
        assert sm.pro_progress, "PRO per-TB progress table missing"
        for tb_index, state, progress in sm.pro_progress:
            assert tb_index == 0
            assert isinstance(state, str) and state
            assert progress >= 0
        assert "PRO (" in exc.value.report.render()

    def test_non_pro_schedulers_omit_the_progress_table(self):
        plan = FaultPlan().drop_barrier_arrival(nth=1)
        with pytest.raises(DeadlockError) as exc:
            run_with_faults(plan, barrier=True, scheduler="gto")
        sm = exc.value.report.sms[0]
        assert sm.pro_phase is None
        assert sm.pro_progress == ()
        assert "PRO (" not in exc.value.report.render()


class TestUninjectedRunsUnchanged:
    def test_fault_free_plan_does_not_perturb_results(self):
        """An armed-but-never-firing plan must not change cycle counts."""
        prog = tiny_program(barrier=True)
        base = Gpu(CFG1, "lrr").run(KernelLaunch(prog, 2))
        gpu = Gpu(CFG1, "lrr")
        gpu.install_faults(FaultPlan(seed=3))  # nothing armed
        faulted = gpu.run(KernelLaunch(tiny_program(barrier=True), 2))
        assert base.cycles == faulted.cycles
        assert base.counters.instructions == faulted.counters.instructions


class TestReportSerialization:
    """Reports must survive the worker process boundary as JSON."""

    def _report(self):
        plan = FaultPlan().drop_barrier_arrival(nth=1)
        with pytest.raises(DeadlockError) as exc:
            run_with_faults(plan, barrier=True, threads_per_tb=64)
        return exc.value.report

    def test_roundtrip_renders_identically(self):
        from repro.robustness.diagnostics import (
            report_from_json,
            report_to_json,
        )

        report = self._report()
        back = report_from_json(report_to_json(report))
        assert isinstance(back, DeadlockReport)
        assert back == report  # frozen dataclass tree, full equality
        assert back.render() == report.render()

    def test_roundtrip_survives_json_text(self):
        import json as _json

        from repro.robustness.diagnostics import (
            report_from_json,
            report_to_json,
        )

        report = self._report()
        wire = _json.dumps(report_to_json(report))
        back = report_from_json(_json.loads(wire))
        assert back.render() == report.render()
        assert {w.name for w in back.blocked_warps()} == {
            w.name for w in report.blocked_warps()
        }

    def test_text_report_fallback_renders(self):
        from repro.robustness.diagnostics import TextReport

        assert TextReport("frozen text").render() == "frozen text"

    def test_malformed_payload_raises(self):
        from repro.robustness.diagnostics import report_from_json

        with pytest.raises((KeyError, TypeError)):
            report_from_json({"cycle": 1})
