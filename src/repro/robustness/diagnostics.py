"""Machine-state snapshots for hang/deadlock post-mortems.

When the simulator wedges — a barrier that never releases, a writeback
that never arrives, a run that blows past ``max_cycles`` — a one-line
exception string is useless: the state needed to diagnose it lives in a
dozen per-SM structures that are gone by the time the traceback prints.
:func:`snapshot_gpu` (and :func:`snapshot_sm` for SM-local failures)
freeze that state into a :class:`DeadlockReport`:

* per-SM warp tables: every resident warp's pc, state, and — crucially —
  *what it is waiting on* (barrier arrival count, pending scoreboard
  registers, refetch cycle, a full MSHR table);
* MSHR occupancy and next retirement per SM;
* DRAM bank/channel queue occupancy;
* Thread Block Scheduler dispatch progress and per-SM last-issue cycles.

The report is attached to the structured errors in :mod:`repro.errors`
(``DeadlockError``, ``SimulationHang``, ``CellTimeoutError``) and rendered
into their ``str()``, so the diagnosis ships inside the traceback.

This module only *reads* simulator objects (duck-typed, imported nowhere
in the hot path), so it can be imported from :mod:`repro.simt.sm` and
:mod:`repro.gpu.gpu` without cycles.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, List, Optional, Tuple

from ..isa.instructions import ExecUnit, Opcode

if TYPE_CHECKING:  # pragma: no cover
    from ..gpu.gpu import Gpu
    from ..simt.sm import StreamingMultiprocessor
    from ..simt.warp import Warp


@dataclass(frozen=True)
class WarpSnapshot:
    """One resident warp's state at snapshot time."""

    sm_id: int
    tb_index: int
    warp_in_tb: int
    pc: int
    #: "finished" | "barrier" | "refetch" | "scoreboard" | "mshr" | "ready"
    state: str
    #: Human-readable wait cause ("barrier (1/2 arrived)", "scoreboard
    #: regs [4]", ...).
    wait_reason: str
    #: Scoreboard registers still in flight for this warp.
    pending_regs: Tuple[int, ...]
    last_issue_cycle: int
    progress: int

    @property
    def name(self) -> str:
        """Stable warp label, e.g. ``tb3.w1``."""
        return f"tb{self.tb_index}.w{self.warp_in_tb}"

    @property
    def blocked(self) -> bool:
        """True unless the warp finished or could issue right now."""
        return self.state not in ("finished", "ready")


@dataclass(frozen=True)
class MshrSnapshot:
    """One SM's MSHR table occupancy."""

    sm_id: int
    in_flight: int
    capacity: int
    next_retirement: Optional[int]


@dataclass(frozen=True)
class DramSnapshot:
    """Shared DRAM queue occupancy at snapshot time."""

    busy_banks: int
    total_banks: int
    busy_channels: int
    total_channels: int
    latest_bank_free: int
    latest_bus_free: int
    reads: int
    writes: int


@dataclass(frozen=True)
class SmSnapshot:
    """One SM's scheduling state at snapshot time."""

    sm_id: int
    sleep_until: int
    resident_tbs: int
    pending_events: int
    last_issue_cycle: int
    mshr: MshrSnapshot
    warps: Tuple[WarpSnapshot, ...]
    #: Resident-TB occupancy vs the SM's limits:
    #: (used, limit) for threads / registers / shared memory / TB slots.
    occupancy: Optional[dict] = None
    #: PRO per-TB progress table, when a ProManager drives this SM:
    #: one ``(tb_index, state_name, progress_cache)`` row per resident TB.
    pro_progress: Tuple[Tuple[int, str, int], ...] = field(default=())
    #: ``"fast"`` / ``"slow"`` when a ProManager drives this SM.
    pro_phase: Optional[str] = None


@dataclass(frozen=True)
class DeadlockReport:
    """Full diagnostic snapshot attached to structured simulation errors."""

    cycle: int
    reason: str
    sms: Tuple[SmSnapshot, ...]
    dram: Optional[DramSnapshot] = None
    #: Thread Block Scheduler progress (None when snapshotting a bare SM).
    pending_tbs: Optional[int] = None
    finished_tbs: Optional[int] = None
    total_tbs: Optional[int] = None
    #: Log of faults injected by a FaultPlan, if one was installed.
    injected_faults: Tuple[str, ...] = field(default=())

    def blocked_warps(self) -> List[WarpSnapshot]:
        """Every unfinished warp that cannot issue (the deadlock set)."""
        return [w for sm in self.sms for w in sm.warps if w.blocked]

    def render(self) -> str:
        """Human-readable multi-line report (what lands in the traceback)."""
        lines = [f"DeadlockReport @ cycle {self.cycle}: {self.reason}"]
        if self.total_tbs is not None:
            lines.append(
                f"  TBs: {self.finished_tbs}/{self.total_tbs} finished, "
                f"{self.pending_tbs} awaiting dispatch"
            )
        if self.dram is not None:
            d = self.dram
            lines.append(
                f"  DRAM: {d.busy_banks}/{d.total_banks} banks busy, "
                f"{d.busy_channels}/{d.total_channels} channels busy, "
                f"{d.reads} reads / {d.writes} writes serviced"
            )
        for sm in self.sms:
            sleep = "NEVER" if sm.sleep_until >= _NEVER else str(sm.sleep_until)
            lines.append(
                f"  SM {sm.sm_id}: sleep_until={sleep}, "
                f"{sm.resident_tbs} resident TB(s), "
                f"{sm.pending_events} pending event(s), "
                f"last issue @ {sm.last_issue_cycle}"
            )
            m = sm.mshr
            ret = "-" if m.next_retirement is None else str(m.next_retirement)
            lines.append(
                f"    MSHR: {m.in_flight}/{m.capacity} in flight, "
                f"next retirement @ {ret}"
            )
            if sm.occupancy is not None:
                o = sm.occupancy
                lines.append(
                    "    occupancy: "
                    f"threads {o['threads'][0]}/{o['threads'][1]}, "
                    f"regs {o['regs'][0]}/{o['regs'][1]}, "
                    f"smem {o['smem'][0]}/{o['smem'][1]}, "
                    f"TB slots {o['tbs'][0]}/{o['tbs'][1]}"
                )
            if sm.pro_phase is not None:
                rows = " | ".join(
                    f"tb{idx} {state} progress={prog}"
                    for idx, state, prog in sm.pro_progress
                ) or "(no resident TBs)"
                lines.append(
                    f"    PRO ({sm.pro_phase} phase): {rows}"
                )
            for w in sm.warps:
                lines.append(
                    f"    {w.name:<10s} pc={w.pc:<4d} {w.state:<10s} "
                    f"{w.wait_reason:<40s} last_issue={w.last_issue_cycle} "
                    f"progress={w.progress}"
                )
        if self.injected_faults:
            lines.append("  Injected faults:")
            for entry in self.injected_faults:
                lines.append(f"    {entry}")
        return "\n".join(lines)


#: Mirrors repro.simt.sm.NEVER without importing it (no cycle).
_NEVER = 1 << 62


# ---------------------------------------------------------------------------
# (de)serialization — reports must survive the worker process boundary


def report_to_json(report: DeadlockReport) -> dict:
    """Flatten a DeadlockReport to JSON-able data.

    Parallel workers attach these to their failure payloads so the
    parent's FAILURES section carries the same diagnostics a sequential
    sweep would have (live exception objects with report attributes are
    not reliably picklable across the pool boundary).
    """
    return dataclasses.asdict(report)


class TextReport:
    """Fallback carrier for a report that only survived as rendered text
    (a duck-typed report object the structured serializer cannot walk)."""

    def __init__(self, text: str) -> None:
        self.text = text

    def render(self) -> str:
        return self.text


def report_from_json(data: dict) -> DeadlockReport:
    """Rebuild a :func:`report_to_json` payload into real dataclasses.

    The rehydrated report renders identically to the original, so
    ``str(error)`` in the parent matches what the worker would have
    printed. Raises ``KeyError``/``TypeError`` on malformed payloads —
    callers treat that as "no report survived".
    """

    def warp(w: dict) -> WarpSnapshot:
        return WarpSnapshot(**{**w, "pending_regs": tuple(w["pending_regs"])})

    def sm(s: dict) -> SmSnapshot:
        occupancy = s["occupancy"]
        if occupancy is not None:
            occupancy = {k: tuple(v) for k, v in occupancy.items()}
        return SmSnapshot(
            sm_id=s["sm_id"],
            sleep_until=s["sleep_until"],
            resident_tbs=s["resident_tbs"],
            pending_events=s["pending_events"],
            last_issue_cycle=s["last_issue_cycle"],
            mshr=MshrSnapshot(**s["mshr"]),
            warps=tuple(warp(w) for w in s["warps"]),
            occupancy=occupancy,
            pro_progress=tuple(tuple(row) for row in s["pro_progress"]),
            pro_phase=s["pro_phase"],
        )

    dram = DramSnapshot(**data["dram"]) if data.get("dram") else None
    return DeadlockReport(
        cycle=data["cycle"],
        reason=data["reason"],
        sms=tuple(sm(s) for s in data["sms"]),
        dram=dram,
        pending_tbs=data.get("pending_tbs"),
        finished_tbs=data.get("finished_tbs"),
        total_tbs=data.get("total_tbs"),
        injected_faults=tuple(data.get("injected_faults", ())),
    )


# ---------------------------------------------------------------------------
# snapshot builders


def snapshot_warp(
    warp: "Warp", sm: "StreamingMultiprocessor", cycle: int
) -> WarpSnapshot:
    """Classify one warp's wait state at ``cycle``."""
    pending = tuple(sorted(warp.scoreboard.pending()))
    tb = warp.tb
    if warp.finished:
        state, reason = "finished", "-"
    elif warp.at_barrier:
        state = "barrier"
        reason = (
            f"barrier ({tb.n_at_barrier}/{tb.n_warps} arrived, "
            f"{tb.n_finished} finished)"
        )
    elif cycle < warp.next_valid_cycle:
        state = "refetch"
        reason = f"refetch until cycle {warp.next_valid_cycle}"
    else:
        instr = warp.program.instructions[warp.pc]
        needed = tuple(instr.srcs) + (
            (instr.dst,) if instr.dst is not None else ()
        )
        blocking = sorted({r for r in needed if r in pending})
        if blocking:
            state = "scoreboard"
            reason = f"scoreboard regs {blocking}"
        elif instr.op is Opcode.LDG and sm.memory.mshr[sm.sm_id].is_full(cycle):
            state = "mshr"
            cap = sm.memory.mshr[sm.sm_id].capacity
            reason = f"MSHR full ({cap} slots reserved)"
        elif instr.unit is not ExecUnit.NONE and not sm.units.port_available(
            instr.unit, cycle
        ):
            state = "ready"
            reason = f"ready: {instr.op.name}, {instr.unit.name} port busy"
        else:
            state = "ready"
            reason = f"ready to issue {instr.op.name}"
    return WarpSnapshot(
        sm_id=sm.sm_id,
        tb_index=tb.tb_index,
        warp_in_tb=warp.warp_in_tb,
        pc=warp.pc,
        state=state,
        wait_reason=reason,
        pending_regs=pending,
        last_issue_cycle=warp.last_issue_cycle,
        progress=warp.progress,
    )


def _pro_manager_of(sm: "StreamingMultiprocessor"):
    """The SM's shared ProManager, if one drives it (duck-typed)."""
    for listener in sm.listeners:
        if hasattr(listener, "records") and hasattr(listener, "fast_phase"):
            return listener
    return None


def snapshot_sm(sm: "StreamingMultiprocessor", cycle: int) -> SmSnapshot:
    """Freeze one SM's warp table, occupancy and MSHR state."""
    mshr = sm.memory.mshr[sm.sm_id]
    occ = mshr.occupancy(cycle)
    warps = tuple(
        snapshot_warp(w, sm, cycle)
        for tb in sm.resident_tbs
        for w in tb.warps
    )
    cfg = sm.cfg
    occupancy = {
        "threads": (sm.used_threads, cfg.max_threads_per_sm),
        "regs": (sm.used_regs, cfg.registers_per_sm),
        "smem": (sm.used_smem, cfg.shared_mem_per_sm),
        "tbs": (len(sm.resident_tbs), cfg.max_tbs_per_sm),
    }
    manager = _pro_manager_of(sm)
    pro_progress: Tuple[Tuple[int, str, int], ...] = ()
    pro_phase = None
    if manager is not None:
        pro_phase = "fast" if manager.fast_phase else "slow"
        pro_progress = tuple(
            (idx, rec.state.name, rec.progress_cache)
            for idx, rec in sorted(manager.records.items())
        )
    return SmSnapshot(
        sm_id=sm.sm_id,
        sleep_until=sm.sleep_until,
        resident_tbs=len(sm.resident_tbs),
        pending_events=len(sm._events),
        last_issue_cycle=sm.counters.last_issue_cycle,
        mshr=MshrSnapshot(
            sm_id=sm.sm_id,
            in_flight=occ["in_flight"],
            capacity=occ["capacity"],
            next_retirement=occ["next_retirement"],
        ),
        warps=warps,
        occupancy=occupancy,
        pro_progress=pro_progress,
        pro_phase=pro_phase,
    )


def snapshot_gpu(gpu: "Gpu", cycle: int, reason: str) -> DeadlockReport:
    """Freeze the whole GPU (all SMs + DRAM + TB scheduler) at ``cycle``."""
    d = gpu.memory.dram.queue_snapshot(cycle)
    tbs = gpu.tb_scheduler
    faults = getattr(gpu, "faults", None)
    return DeadlockReport(
        cycle=cycle,
        reason=reason,
        sms=tuple(snapshot_sm(sm, cycle) for sm in gpu.sms),
        dram=DramSnapshot(
            busy_banks=d["busy_banks"],
            total_banks=d["total_banks"],
            busy_channels=d["busy_channels"],
            total_channels=d["total_channels"],
            latest_bank_free=d["latest_bank_free"],
            latest_bus_free=d["latest_bus_free"],
            reads=d["reads"],
            writes=d["writes"],
        ),
        pending_tbs=tbs.pending_count,
        finished_tbs=tbs.finished_count,
        total_tbs=tbs.total,
        injected_faults=tuple(faults.injected) if faults is not None else (),
    )


def report_for_sm(
    sm: "StreamingMultiprocessor", cycle: int, reason: str
) -> DeadlockReport:
    """Best-available report from inside an SM: whole GPU when attached,
    the lone SM otherwise (unit tests drive SMs without a Gpu)."""
    if sm.gpu is not None:
        return snapshot_gpu(sm.gpu, cycle, reason)
    return DeadlockReport(cycle=cycle, reason=reason,
                          sms=(snapshot_sm(sm, cycle),))
