"""Disk-checkpointed run matrix: persist completed cells, resume the rest.

A paper-faithful ``pro-sim all`` is a 25-kernel x 4-scheduler matrix whose
cells each take real wall-clock time. :class:`CheckpointStore` gives the
in-memory :class:`~repro.harness.runner.ResultCache` a durable tier: each
completed cell's :class:`~repro.gpu.launch.RunResult` counters are
appended to ``cells.jsonl`` under the checkpoint directory, fsynced per
cell, and keyed by a *content* hash of (kernel, scheduler, config, scale).
Kill the run at any point and the next invocation replays the finished
cells from disk, re-simulating only what is missing.

Design notes:

* **Atomic JSONL rewrites** — each ``put`` serializes the store's own
  records to a temp file, fsyncs, and ``os.replace``\\ s it over the shard,
  so a crash can never tear the file mid-record. The *reader* still
  tolerates a torn trailing line (from files written by older builds, or
  a crashed copy): it is skipped and counted in ``corrupt_lines``, and the
  next ``put`` rewrites the file whole, leaving no trace of the tear.
* **Content-hashed keys** — :func:`config_digest` hashes the full
  ``GPUConfig`` field tree, so a checkpoint taken at 4 SMs can never leak
  into a 14-SM run, and any config tweak invalidates exactly the cells it
  affects. :func:`~repro.harness.runner.id_of` shares this digest.
* **Plain runs only** — results carrying recorders (timeline/sort-trace)
  hold non-serializable trace state and are never written to disk; they
  stay memoized in memory as before.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import os
from pathlib import Path
from typing import Dict, Iterator, Optional

from ..config import GPUConfig
from ..errors import PayloadError
from ..gpu.launch import RunResult
from ..stats.counters import GpuCounters, SmCounters

#: Bump when the serialized cell schema changes; mismatched cells are
#: ignored on load (re-simulated) rather than misparsed.
SCHEMA_VERSION = 1


# ---------------------------------------------------------------------------
# stable keys


def config_digest(config: GPUConfig) -> str:
    """Stable content hash of a full GPUConfig field tree."""
    payload = json.dumps(dataclasses.asdict(config), sort_keys=True)
    return hashlib.sha256(payload.encode()).hexdigest()[:16]


def cell_key(kernel: str, scheduler: str, config: GPUConfig,
             scale: float) -> str:
    """Content hash identifying one run-matrix cell across processes."""
    payload = f"{kernel}|{scheduler}|{config_digest(config)}|{scale!r}"
    return hashlib.sha256(payload.encode()).hexdigest()[:24]


# ---------------------------------------------------------------------------
# RunResult (de)serialization — counters only, no recorders


def result_to_json(result: RunResult) -> dict:
    """Flatten a plain RunResult to JSON-able counter data."""
    c = result.counters
    return {
        "kernel_name": result.kernel_name,
        "scheduler": result.scheduler,
        "num_tbs": result.num_tbs,
        "cycles": result.cycles,
        "counters": {
            "total_cycles": c.total_cycles,
            "l1_miss_rate": c.l1_miss_rate,
            "l2_miss_rate": c.l2_miss_rate,
            "dram_row_hit_rate": c.dram_row_hit_rate,
            "per_sm": [dataclasses.asdict(s) for s in c.per_sm],
        },
    }


#: Scalar fields every serialized result must carry, with their types.
_RESULT_FIELDS = (
    ("kernel_name", str),
    ("scheduler", str),
    ("num_tbs", int),
    ("cycles", int),
)
_COUNTER_FIELDS = (
    ("total_cycles", int),
    ("l1_miss_rate", (int, float)),
    ("l2_miss_rate", (int, float)),
    ("dram_row_hit_rate", (int, float)),
)


def validate_result_payload(data: object) -> dict:
    """Structural schema check of a serialized RunResult.

    Returns ``data`` unchanged when it has the exact shape
    :func:`result_to_json` produces; raises
    :class:`~repro.errors.PayloadError` naming the first defect
    otherwise. This is what turns a truncated or bit-flipped worker
    payload into a retryable failure instead of a crash (or worse, a
    silently poisoned checkpoint).
    """
    if not isinstance(data, dict):
        raise PayloadError(
            f"result payload is {type(data).__name__}, expected dict"
        )
    for name, types in _RESULT_FIELDS:
        if name not in data:
            raise PayloadError(f"result payload missing field {name!r}")
        if not isinstance(data[name], types):
            raise PayloadError(
                f"result payload field {name!r} has type "
                f"{type(data[name]).__name__}"
            )
    counters = data.get("counters")
    if not isinstance(counters, dict):
        raise PayloadError("result payload missing 'counters' dict")
    for name, types in _COUNTER_FIELDS:
        if not isinstance(counters.get(name), types):
            raise PayloadError(f"result payload counter {name!r} missing "
                               "or mistyped")
    per_sm = counters.get("per_sm")
    if not isinstance(per_sm, list) or not per_sm:
        raise PayloadError("result payload 'per_sm' missing or empty")
    for i, sm in enumerate(per_sm):
        if not isinstance(sm, dict):
            raise PayloadError(f"result payload per_sm[{i}] is not a dict")
    return data


def payload_digest(result_json: dict) -> str:
    """Content digest of a serialized result, computed worker-side and
    re-checked by the pool parent before adoption.

    Canonical-JSON hashing makes the digest independent of dict ordering
    and of the pickling that carries the payload across the process
    boundary.
    """
    payload = json.dumps(result_json, sort_keys=True)
    return hashlib.sha256(payload.encode()).hexdigest()[:16]


def result_from_json(data: dict) -> RunResult:
    """Rebuild a RunResult (sans recorders) from checkpointed data.

    Raises :class:`~repro.errors.PayloadError` on malformed input (the
    schema check of :func:`validate_result_payload`) rather than a bare
    ``KeyError`` deep in counter reconstruction.
    """
    validate_result_payload(data)
    cd = data["counters"]
    try:
        counters = GpuCounters(
            total_cycles=cd["total_cycles"],
            per_sm=[SmCounters(**s) for s in cd["per_sm"]],
            l1_miss_rate=cd["l1_miss_rate"],
            l2_miss_rate=cd["l2_miss_rate"],
            dram_row_hit_rate=cd["dram_row_hit_rate"],
        )
    except TypeError as err:  # per-SM dict with unknown/missing fields
        raise PayloadError(f"result payload per_sm fields invalid: {err}")
    return RunResult(
        kernel_name=data["kernel_name"],
        scheduler=data["scheduler"],
        num_tbs=data["num_tbs"],
        cycles=data["cycles"],
        counters=counters,
    )


# ---------------------------------------------------------------------------
# the store


class CheckpointStore:
    """Append-only JSONL store of completed run-matrix cells.

    Concurrency: each store instance appends to exactly one file — the
    default ``cells.jsonl``, or ``cells-<shard>.jsonl`` when a ``shard``
    name is given — so multiple *writer* processes sharing a checkpoint
    directory stay safe by each taking a distinct shard. Every store
    *reads* the union of all ``cells*.jsonl`` files in the directory, so
    a resuming parent sees the cells of every past writer. (The parallel
    executor does not need shards: its workers return counters to the
    parent, which is the single writer.)
    """

    FILENAME = "cells.jsonl"

    def __init__(self, directory: str | os.PathLike,
                 shard: Optional[str] = None) -> None:
        if shard is not None and not shard.replace("-", "").isalnum():
            raise ValueError(
                f"shard must be alphanumeric (with dashes), got {shard!r}"
            )
        self.directory = Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)
        self.shard = shard
        self.path = self.directory / (
            self.FILENAME if shard is None else f"cells-{shard}.jsonl"
        )
        self._cells: Dict[str, dict] = {}
        #: Records this store's own shard file holds (the only file it
        #: writes); kept separately so rewrites never copy other shards'
        #: cells into this one.
        self._own: Dict[str, dict] = {}
        #: Unparseable lines skipped on load (e.g. a line torn by a crash
        #: mid-write under an older, append-based build).
        self.corrupt_lines = 0
        #: Lazy (kernel|scheduler) -> seconds history for dispatch order.
        self._durations: Optional[Dict[str, float]] = None
        self._load()

    def _load(self) -> None:
        # Union of every writer's file; this store's own file is parsed
        # last so its records win ties (last write wins within a file
        # already).
        others = sorted(
            p for p in self.directory.glob("cells*.jsonl") if p != self.path
        )
        for path in others + [self.path]:
            if not path.exists():
                continue
            with open(path, "r", encoding="utf-8") as f:
                text = f.read()
            self._parse(text, own=(path == self.path))

    def _parse(self, text: str, own: bool = False) -> None:
        for line in text.splitlines():
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
                if record.get("schema") != SCHEMA_VERSION:
                    self.corrupt_lines += 1
                    continue
                key = record["key"]
                validate_result_payload(record["result"])
            except (json.JSONDecodeError, KeyError, TypeError,
                    PayloadError):
                self.corrupt_lines += 1
                continue
            # Last write wins (a re-run after a schema-safe retry).
            self._cells[key] = record
            if own:
                self._own[key] = record

    # ------------------------------------------------------------------
    def get(self, key: str) -> Optional[RunResult]:
        """Deserialize the checkpointed cell, or None if missing."""
        record = self._cells.get(key)
        if record is None:
            return None
        return result_from_json(record["result"])

    def put(self, key: str, kernel: str, scheduler: str, scale: float,
            result: RunResult) -> None:
        """Persist one completed cell (atomically, fsynced).

        The whole shard is rewritten through a temp file + ``os.replace``:
        a reader (or a crash) never observes a half-written record, and a
        torn line inherited from an interrupted older write is healed by
        the rewrite. Any mid-run snapshot for the cell is deleted — the
        finished counters supersede it.
        """
        record = {
            "schema": SCHEMA_VERSION,
            "key": key,
            "kernel": kernel,
            "scheduler": scheduler,
            "scale": scale,
            "result": result_to_json(result),
        }
        self._cells[key] = record
        self._own[key] = record
        tmp = self.path.with_name(self.path.name + ".tmp")
        with open(tmp, "w", encoding="utf-8") as f:
            for rec in self._own.values():
                f.write(json.dumps(rec, sort_keys=True) + "\n")
            f.flush()
            os.fsync(f.fileno())
        os.replace(tmp, self.path)
        self.clear_snapshot(key)

    # ------------------------------------------------------------------
    # wall-clock history (worker-pool dispatch ordering)

    DURATIONS = "durations.json"

    def _load_durations(self) -> Dict[str, float]:
        if self._durations is None:
            self._durations = {}
            path = self.directory / self.DURATIONS
            try:
                data = json.loads(path.read_text(encoding="utf-8"))
                self._durations = {
                    str(k): float(v) for k, v in data.items()
                }
            except (OSError, ValueError, TypeError, AttributeError):
                pass  # missing or corrupt history is merely no history
        return self._durations

    def record_seconds(self, kernel: str, scheduler: str,
                       seconds: float) -> None:
        """Remember one cell's simulation wall-clock time.

        Keyed by ``(kernel, scheduler)`` only — unlike result cells, a
        duration is an *estimate*, and the relative ordering of cells is
        stable across configs and scales, which is all the pool's
        longest-estimated-first dispatch needs. Written atomically but
        without per-cell fsync: losing the file costs nothing but a
        slightly worse dispatch order on the next sweep.
        """
        durations = self._load_durations()
        durations[f"{kernel}|{scheduler}"] = seconds
        path = self.directory / self.DURATIONS
        tmp = path.with_name(path.name + ".tmp")
        tmp.write_text(json.dumps(durations, sort_keys=True),
                       encoding="utf-8")
        os.replace(tmp, path)

    def estimate_seconds(self, kernel: str,
                         scheduler: str) -> Optional[float]:
        """Last recorded wall-clock time of ``(kernel, scheduler)``."""
        return self._load_durations().get(f"{kernel}|{scheduler}")

    # ------------------------------------------------------------------
    # mid-run snapshot tier (see repro.robustness.snapshot)

    SNAPSHOT_DIR = "snapshots"

    def snapshot_path(self, key: str) -> Path:
        """Where a mid-run simulator snapshot for this cell lives."""
        return self.directory / self.SNAPSHOT_DIR / f"{key}.snap"

    def get_snapshot(self, key: str) -> Optional[Path]:
        """Path of an interrupted cell's snapshot, or None."""
        path = self.snapshot_path(key)
        return path if path.exists() else None

    def clear_snapshot(self, key: str) -> None:
        """Drop a cell's mid-run snapshot (it completed or went stale)."""
        try:
            self.snapshot_path(key).unlink()
        except FileNotFoundError:
            pass

    # ------------------------------------------------------------------
    def __contains__(self, key: str) -> bool:
        return key in self._cells

    def __len__(self) -> int:
        return len(self._cells)

    def keys(self) -> Iterator[str]:
        return iter(self._cells)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<CheckpointStore {self.path} cells={len(self._cells)} "
            f"corrupt={self.corrupt_lines}>"
        )
