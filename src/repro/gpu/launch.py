"""Kernel launch descriptor and run result."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

from ..errors import LaunchError
from ..isa.program import Program
from ..stats.counters import GpuCounters
from ..stats.timeline import SortTraceRecorder, TimelineRecorder


@dataclass(frozen=True)
class KernelLaunch:
    """A grid launch: a program plus the number of thread blocks.

    The (threads per TB, registers, shared memory) triple lives on the
    :class:`~repro.isa.program.Program`, mirroring how a compiled CUDA
    kernel fixes those at compile time while the grid size is a launch
    parameter.
    """

    program: Program
    num_tbs: int

    def __post_init__(self) -> None:
        if self.num_tbs <= 0:
            raise LaunchError("num_tbs must be positive")


@dataclass
class RunResult:
    """Everything a finished kernel simulation produced."""

    #: Kernel/launch identification.
    kernel_name: str
    scheduler: str
    num_tbs: int
    #: Total simulation cycles (the paper's performance metric).
    cycles: int
    counters: GpuCounters
    #: First TimelineRecorder / SortTraceRecorder among the run's probes
    #: (convenience shortcuts; also filled by the deprecated kwargs).
    timeline: Optional[TimelineRecorder] = None
    sort_trace: Optional[SortTraceRecorder] = None
    #: Every probe that observed this run, in attachment order.
    probes: Tuple[object, ...] = ()

    @property
    def ipc(self) -> float:
        """Warp instructions per cycle."""
        return self.counters.ipc

    def speedup_over(self, baseline: "RunResult") -> float:
        """Baseline cycles / our cycles (>1 means we are faster)."""
        if self.cycles == 0:
            raise ZeroDivisionError("run completed in zero cycles")
        return baseline.cycles / self.cycles

    def summary(self) -> str:
        """One-line human-readable digest."""
        c = self.counters
        return (
            f"{self.kernel_name:<28s} {self.scheduler:<7s} "
            f"cycles={self.cycles:>9d} ipc={self.ipc:5.2f} "
            f"stalls(idle/sb/pipe)={c.stall_idle}/{c.stall_scoreboard}/"
            f"{c.stall_pipeline}"
        )
