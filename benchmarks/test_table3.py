"""Benchmark: regenerate Table III (per-application stall ratios)."""

from repro.harness.experiments import table3_stall_ratios

from .conftest import fresh_setup, once


def test_table3_stall_ratios(benchmark):
    result = once(benchmark, lambda: table3_stall_ratios(fresh_setup()))
    table = result.render_table3()
    assert "Table III" in table and "GEOMEAN" in table
    # every application row carries PRO's absolute stalls + 3x4 ratios
    for app, stalls in result.pro_stalls.items():
        assert set(stalls) == {"pipeline", "idle", "scoreboard"}
        for b in ("tl", "lrr", "gto"):
            assert set(result.ratios[app][b]) == {
                "pipeline", "idle", "scoreboard", "total"
            }
    benchmark.extra_info["geomean_total_vs_lrr"] = (
        result.geomeans["lrr"]["total"]
    )
