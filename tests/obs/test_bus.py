"""ProbeBus unit tests: subscription detection and dispatch."""

from repro.obs import EVENTS, Probe, ProbeBus
from repro.obs.bus import _subscription


class OnlyIssue(Probe):
    def __init__(self):
        self.seen = []

    def on_issue(self, cycle, sm_id, tb_index, warp_in_tb, pc, opcode,
                 active):
        self.seen.append((cycle, sm_id, tb_index, warp_in_tb, pc, opcode,
                          active))


class DuckTyped:
    """Not a Probe subclass; defines two hooks by name only."""

    def __init__(self):
        self.tbs = []
        self.stalls = []

    def on_tb_start(self, sm_id, tb_index, cycle):
        self.tbs.append((sm_id, tb_index, cycle))

    def on_stall(self, sm_id, start, end, kind):
        self.stalls.append((sm_id, start, end, kind))


class TestEventTaxonomy:
    def test_every_event_has_probe_hook_and_emit_method(self):
        bus = ProbeBus([])
        for name in EVENTS:
            assert name.startswith("on_")
            assert callable(getattr(Probe, name))
            assert callable(getattr(bus, name[3:]))

    def test_probe_base_hooks_are_noops(self):
        p = Probe()
        p.on_issue(0, 0, 0, 0, 0, "ialu", 32)
        p.on_stall(0, 0, 5, 0)
        p.on_run_end(None)


class TestSubscriptionDetection:
    def test_probe_subclass_subscribes_only_overridden_hooks(self):
        bus = ProbeBus([OnlyIssue()])
        subs = bus.subscriptions()
        assert subs["on_issue"] == 1
        assert all(n == 0 for name, n in subs.items() if name != "on_issue")

    def test_duck_typed_object_subscribes_defined_hooks(self):
        bus = ProbeBus([DuckTyped()])
        subs = bus.subscriptions()
        assert subs["on_tb_start"] == 1
        assert subs["on_stall"] == 1
        assert subs["on_issue"] == 0

    def test_non_callable_attribute_is_not_subscribed(self):
        class Bogus:
            on_issue = 42

        assert _subscription(Bogus(), "on_issue") is None
        assert ProbeBus([Bogus()]).subscriptions()["on_issue"] == 0

    def test_object_with_no_hooks_subscribes_nothing(self):
        bus = ProbeBus([object()])
        assert all(n == 0 for n in bus.subscriptions().values())


class TestDispatch:
    def test_issue_event_reaches_subscriber_with_argument_order(self):
        probe = OnlyIssue()
        bus = ProbeBus([probe])
        bus.issue(17, 1, 3, 2, 40, "ldg", 32)
        assert probe.seen == [(17, 1, 3, 2, 40, "ldg", 32)]

    def test_unsubscribed_event_is_a_noop(self):
        probe = OnlyIssue()
        bus = ProbeBus([probe])
        bus.tb_start(0, 0, 0)  # nobody listens
        assert probe.seen == []

    def test_multiple_probes_all_receive(self):
        a, b = DuckTyped(), DuckTyped()
        bus = ProbeBus([a, b])
        bus.stall(0, 10, 20, 1)
        assert a.stalls == b.stalls == [(0, 10, 20, 1)]

    def test_mixed_probe_styles_coexist(self):
        issue, duck = OnlyIssue(), DuckTyped()
        bus = ProbeBus([issue, duck])
        bus.issue(1, 0, 0, 0, 0, "ialu", 32)
        bus.tb_start(0, 5, 2)
        assert len(issue.seen) == 1
        assert duck.tbs == [(0, 5, 2)]

    def test_probes_tuple_preserves_attachment_order(self):
        a, b = OnlyIssue(), DuckTyped()
        assert ProbeBus([a, b]).probes == (a, b)
