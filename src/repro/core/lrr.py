"""Loose Round Robin (LRR) — the GPU default baseline.

All warps get equal priority; each cycle the scan starts just after the
last warp that issued, skipping non-ready warps ("loose"). The paper's
motivating observation (§II-A): under LRR all warps make near-equal
progress and reach long-latency instructions together, draining the ready
pool at the same time and inflating Idle stalls.

Hot-path notes: ``order`` runs every cycle, so the rotated view is built
lazily (``chain`` of two ``islice`` windows) instead of slicing and
concatenating a fresh list; ``note_issued`` runs once per issued cycle,
so the issued warp's index comes from a maintained position map instead
of an O(n) ``list.index`` scan. The map is rebuilt from the removal point
only on the rare warp-finish event.
"""

from __future__ import annotations

from itertools import chain, islice
from typing import Dict, Sequence

from .scheduler import WarpScheduler, register_scheduler, simple_factory


class LrrScheduler(WarpScheduler):
    """Rotating-start round robin over this scheduler's warps."""

    name = "lrr"

    def __init__(self, sm, sched_id, cfg) -> None:
        super().__init__(sm, sched_id, cfg)
        self._start = 0
        #: id(warp) -> index in ``self.warps`` (identity semantics, same
        #: as ``list.index`` on warps, which have no custom ``__eq__``).
        self._pos: Dict[int, int] = {}

    def on_tb_assigned(self, tb, cycle: int) -> None:
        warps = self.warps
        first_new = len(warps)
        super().on_tb_assigned(tb, cycle)
        pos = self._pos
        for i in range(first_new, len(warps)):
            pos[id(warps[i])] = i

    def order(self, cycle: int) -> Sequence:
        warps = self.warps
        n = len(warps)
        if n == 0:
            return ()
        start = self._start % n
        if start == 0:
            return warps
        return chain(islice(warps, start, None), islice(warps, start))

    def note_issued(self, warp, cycle: int) -> None:
        # Next scan begins after the warp that just issued. A warp that
        # finished on this very issue (EXIT) was already removed from the
        # pool; the rotation restarts at the front, as before.
        idx = self._pos.get(id(warp))
        self._start = 0 if idx is None else idx + 1

    def on_warp_finished(self, warp, cycle: int) -> None:
        if warp.sched_id != self.sched_id:
            return
        idx = self._pos.pop(id(warp), None)
        super().on_warp_finished(warp, cycle)
        if idx is None:  # pragma: no cover - defensive
            return
        # Reindex the warps shifted down by the removal.
        warps = self.warps
        pos = self._pos
        for i in range(idx, len(warps)):
            pos[id(warps[i])] = i
        # Keep the rotation point stable across removals.
        if idx < self._start:
            self._start -= 1

    # -- state serialization -------------------------------------------

    def snapshot(self) -> dict:
        data = super().snapshot()
        data["start"] = self._start
        return data

    def restore(self, data: dict, warp_map) -> None:
        super().restore(data, warp_map)
        self._start = data["start"]
        # _pos is an id() map — derive it from the rebuilt warp objects.
        self._pos = {id(w): i for i, w in enumerate(self.warps)}


register_scheduler("lrr", simple_factory(LrrScheduler))
