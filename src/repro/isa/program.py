"""Program container and static validation.

A :class:`Program` is an immutable, validated sequence of instructions plus
per-TB resource requirements (threads, registers, shared memory) — the unit
a kernel launch executes on every warp.
"""

from __future__ import annotations

from typing import Iterable, Iterator, List, Optional

from ..config import LatencyConfig
from ..errors import ProgramError
from .instructions import Instruction, Opcode


#: Map opcode -> attribute of LatencyConfig giving the writeback latency.
_LATENCY_ATTR = {
    Opcode.IALU: "alu",
    Opcode.FALU: "alu",
    Opcode.FMA: "mad",
    Opcode.SFU: "sfu",
    Opcode.BRA: "alu",
}


class Program:
    """A validated SIMT program.

    Parameters
    ----------
    name:
        Human-readable kernel name.
    instructions:
        The instruction sequence. Must end with EXIT; every BRA must be a
        backward branch (loop) targeting a pc strictly before itself.
    threads_per_tb:
        Threads per thread block requested at launch.
    regs_per_thread:
        Architectural registers per thread (occupancy input).
    shared_mem_per_tb:
        Shared memory per thread block in bytes (occupancy input).
    """

    __slots__ = (
        "name",
        "instructions",
        "threads_per_tb",
        "regs_per_thread",
        "shared_mem_per_tb",
        "_finalized_for",
    )

    def __init__(
        self,
        name: str,
        instructions: Iterable[Instruction],
        *,
        threads_per_tb: int = 256,
        regs_per_thread: int = 16,
        shared_mem_per_tb: int = 0,
    ) -> None:
        self.name = name
        self.instructions: List[Instruction] = list(instructions)
        self.threads_per_tb = threads_per_tb
        self.regs_per_thread = regs_per_thread
        self.shared_mem_per_tb = shared_mem_per_tb
        self._finalized_for: Optional[LatencyConfig] = None
        for pc, instr in enumerate(self.instructions):
            instr.pc = pc
        self.validate()

    # ------------------------------------------------------------------
    def validate(self) -> None:
        """Static checks; raises :class:`ProgramError` on violations."""
        instrs = self.instructions
        if not instrs:
            raise ProgramError(f"program {self.name!r} is empty")
        if instrs[-1].op is not Opcode.EXIT:
            raise ProgramError(f"program {self.name!r} must end with EXIT")
        for pc, instr in enumerate(instrs):
            if instr.op is Opcode.EXIT and pc != len(instrs) - 1:
                raise ProgramError(
                    f"program {self.name!r}: EXIT allowed only as the last "
                    f"instruction (found at pc {pc})"
                )
            if instr.op is Opcode.BRA:
                if not 0 <= instr.target < pc:
                    raise ProgramError(
                        f"program {self.name!r}: BRA at pc {pc} must target a "
                        f"strictly earlier pc (got {instr.target})"
                    )
        if self.threads_per_tb <= 0:
            raise ProgramError("threads_per_tb must be positive")
        if self.regs_per_thread <= 0:
            raise ProgramError("regs_per_thread must be positive")
        if self.shared_mem_per_tb < 0:
            raise ProgramError("shared_mem_per_tb must be non-negative")

    # ------------------------------------------------------------------
    def finalize(self, latency: LatencyConfig) -> None:
        """Resolve per-instruction writeback latencies from a config.

        Memory latencies are dynamic (hierarchy-dependent) and therefore not
        resolved here; fixed-latency opcodes get their writeback latency.
        Idempotent for a given config.
        """
        if self._finalized_for == latency:
            return
        for instr in self.instructions:
            attr = _LATENCY_ATTR.get(instr.op)
            if attr is not None:
                instr.latency = getattr(latency, attr)
            elif instr.op in (Opcode.LDS, Opcode.STS):
                instr.latency = (
                    latency.shared
                    + (instr.conflict_ways - 1) * latency.shared_conflict
                )
            else:
                instr.latency = 0
        self._finalized_for = latency

    # ------------------------------------------------------------------
    def static_count(self) -> int:
        """Number of static instructions."""
        return len(self.instructions)

    def dynamic_count(self, tb_index: int, warp_in_tb: int) -> int:
        """Dynamic instruction count one warp executes (loops unrolled).

        Used by tests and workload sizing; walks the program exactly as a
        warp would, so it is authoritative.
        """
        instrs = self.instructions
        trips = {
            i.pc: i.resolve_trips(tb_index, warp_in_tb)
            for i in instrs
            if i.op is Opcode.BRA
        }
        pc = 0
        count = 0
        remaining = dict(trips)
        guard = 0
        while True:
            instr = instrs[pc]
            count += 1
            guard += 1
            if guard > 50_000_000:  # pragma: no cover - malformed program net
                raise ProgramError(
                    f"program {self.name!r}: dynamic count exceeds guard; "
                    "check loop trip counts"
                )
            if instr.op is Opcode.EXIT:
                return count
            if instr.op is Opcode.BRA and remaining[pc] > 0:
                remaining[pc] -= 1
                pc = instr.target
            else:
                if instr.op is Opcode.BRA:
                    remaining[pc] = trips[pc]  # rearm for enclosing loops
                pc += 1

    def max_register(self) -> int:
        """Highest register index referenced (for sanity checks)."""
        hi = 0
        for i in self.instructions:
            if i.dst is not None:
                hi = max(hi, i.dst)
            for s in i.srcs:
                hi = max(hi, s)
        return hi

    def has_barrier(self) -> bool:
        """True if the program contains a BAR instruction."""
        return any(i.op is Opcode.BAR for i in self.instructions)

    def __len__(self) -> int:
        return len(self.instructions)

    def __iter__(self) -> Iterator[Instruction]:
        return iter(self.instructions)

    def __getitem__(self, pc: int) -> Instruction:
        return self.instructions[pc]

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<Program {self.name!r}: {len(self.instructions)} instrs, "
            f"{self.threads_per_tb} thr/TB>"
        )
