"""Forward-progress watchdog for the :meth:`repro.gpu.gpu.Gpu.run` loop.

The event-driven main loop cannot spin silently on a *true* deadlock —
the SMs raise — but two failure shapes slip past structural detection:

* **livelock**: events keep firing (so the clock advances) while no warp
  ever issues — e.g. a scheduler bug re-arming wake-ups without progress;
* **wall-clock overrun**: a paper-faithful 14-SM cell is simply taking
  longer than the harness is willing to wait (``--cell-timeout``).

:class:`ProgressWatchdog` is beaten once per loop iteration. It keeps the
hot path at two integer compares: the issued-instruction sum is only
re-read every ``window / 4`` simulated cycles, and the wall clock only
every :data:`WALL_CHECK_EVERY` beats. On a tripped check it raises
:class:`~repro.errors.SimulationHang` / :class:`~repro.errors.CellTimeoutError`
carrying a full :class:`~repro.robustness.diagnostics.DeadlockReport`.
"""

from __future__ import annotations

import time
from typing import TYPE_CHECKING, Optional

from ..errors import CellTimeoutError, SimulationHang
from .diagnostics import snapshot_gpu

if TYPE_CHECKING:  # pragma: no cover
    from ..gpu.gpu import Gpu

#: Beats between wall-clock reads (time.monotonic is ~100x a loop tick).
WALL_CHECK_EVERY = 1024


class ProgressWatchdog:
    """Issued-instruction heartbeat + optional wall-clock deadline."""

    __slots__ = (
        "gpu",
        "window",
        "deadline",
        "_next_check",
        "_last_instr",
        "_last_progress_cycle",
        "_ticks",
    )

    def __init__(
        self,
        gpu: "Gpu",
        window: int = 0,
        deadline: Optional[float] = None,
    ) -> None:
        self.gpu = gpu
        #: Simulated cycles without a single issued instruction before the
        #: run is declared hung (0 disables the progress check).
        self.window = window
        #: Absolute ``time.monotonic()`` budget (None = no wall-clock cap).
        self.deadline = deadline
        self._next_check = max(1, window // 4) if window else 1 << 62
        self._last_instr = 0
        self._last_progress_cycle = 0
        # First beat checks the wall clock, so an already-expired deadline
        # fails fast even on tiny runs.
        self._ticks = WALL_CHECK_EVERY - 1

    # ------------------------------------------------------------------
    def beat(self, cycle: int) -> None:
        """One heartbeat from the main loop; raises on stall or timeout."""
        if self.deadline is not None:
            self._ticks += 1
            if self._ticks >= WALL_CHECK_EVERY:
                self._ticks = 0
                if time.monotonic() > self.deadline:
                    raise CellTimeoutError(
                        f"cell exceeded its wall-clock budget at simulated "
                        f"cycle {cycle}",
                        report=snapshot_gpu(self.gpu, cycle,
                                            "wall-clock budget exhausted"),
                    )
        if cycle >= self._next_check:
            total = sum(sm.counters.instructions for sm in self.gpu.sms)
            if total != self._last_instr:
                self._last_instr = total
                self._last_progress_cycle = cycle
            elif cycle - self._last_progress_cycle >= self.window:
                raise SimulationHang(
                    f"no instruction issued for "
                    f"{cycle - self._last_progress_cycle} cycles "
                    f"(watchdog window {self.window}); "
                    f"{total} instructions total",
                    report=snapshot_gpu(self.gpu, cycle,
                                        "forward progress stalled"),
                )
            self._next_check = cycle + max(1, self.window // 4)
