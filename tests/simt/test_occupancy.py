"""Unit tests for the occupancy calculator."""

import pytest

from repro.config import GPUConfig
from repro.errors import LaunchError
from repro.isa.builder import ProgramBuilder
from repro.simt.occupancy import max_resident_tbs, occupancy_report


def prog(threads=256, regs=16, smem=0):
    return ProgramBuilder("p", threads_per_tb=threads, regs_per_thread=regs,
                          shared_mem_per_tb=smem).ialu(1).build()


CFG = GPUConfig.scaled(1)


class TestLimits:
    def test_tb_slot_limit(self):
        # tiny TBs: bounded by the 8-TB slot limit
        assert max_resident_tbs(prog(threads=32, regs=8), CFG) == 8

    def test_thread_limit(self):
        # 512 threads/TB -> 1536/512 = 3 TBs
        assert max_resident_tbs(prog(threads=512, regs=8), CFG) == 3

    def test_register_limit(self):
        # 256 threads x 32 regs = 8192 regs/TB -> 32768/8192 = 4
        assert max_resident_tbs(prog(threads=256, regs=32), CFG) == 4

    def test_shared_memory_limit(self):
        # 48KB / 20KB = 2
        assert max_resident_tbs(prog(smem=20 * 1024), CFG) == 2

    def test_binding_constraint_is_minimum(self):
        p = prog(threads=256, regs=32, smem=20 * 1024)
        assert max_resident_tbs(p, CFG) == 2  # smem binds tighter than regs


class TestLaunchErrors:
    def test_too_many_threads(self):
        with pytest.raises(LaunchError):
            max_resident_tbs(prog(threads=2048), CFG)

    def test_too_many_registers(self):
        with pytest.raises(LaunchError):
            max_resident_tbs(prog(threads=1536, regs=64), CFG)

    def test_too_much_shared_memory(self):
        with pytest.raises(LaunchError):
            max_resident_tbs(prog(smem=64 * 1024), CFG)


class TestReport:
    def test_report_fields(self):
        rep = occupancy_report(prog(threads=256, regs=16, smem=8 * 1024), CFG)
        assert rep["tb_slot_limit"] == 8
        assert rep["thread_limit"] == 6
        assert rep["register_limit"] == 8
        assert rep["shared_mem_limit"] == 6
        assert rep["resident_tbs"] == 6
        assert rep["resident_warps"] == 6 * 8

    def test_report_without_smem(self):
        rep = occupancy_report(prog(), CFG)
        assert rep["shared_mem_limit"] is None
