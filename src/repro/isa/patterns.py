"""Deterministic global-memory address pattern generators.

A memory instruction does not carry literal per-thread addresses (we do not
simulate data); instead it carries an :class:`AccessPattern` that, given the
dynamic :class:`AccessContext` (which TB, which warp, which loop iteration),
produces the set of *cache-line addresses* the coalesced warp access touches.
This is exactly the information the memory hierarchy needs and mirrors how
trace-driven GPU simulators replay coalesced transactions.

All patterns are pure and deterministic: the same context always yields the
same lines, so whole simulations are reproducible bit-for-bit.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..config import LINE_SIZE, WARP_SIZE
from ..errors import ProgramError

_MASK64 = (1 << 64) - 1


def _splitmix64(x: int) -> int:
    """Cheap deterministic 64-bit mixer (SplitMix64 finalizer).

    Used to derive pseudo-random but reproducible addresses without the
    overhead of a stateful RNG in the simulator's hot path.
    """
    x = (x + 0x9E3779B97F4A7C15) & _MASK64
    x = ((x ^ (x >> 30)) * 0xBF58476D1CE4E5B9) & _MASK64
    x = ((x ^ (x >> 27)) * 0x94D049BB133111EB) & _MASK64
    return x ^ (x >> 31)


@dataclass(frozen=True)
class AccessContext:
    """Dynamic coordinates of one executed memory instruction.

    Attributes
    ----------
    tb_index:
        Global thread-block index within the grid.
    warp_in_tb:
        Warp index within the thread block.
    iteration:
        How many times this warp has already executed this static
        instruction (0 on first execution; increments across loop trips).
    active:
        Number of active threads in the warp for this execution.
    """

    tb_index: int
    warp_in_tb: int
    iteration: int
    active: int = WARP_SIZE


class AccessPattern:
    """Base class for address pattern generators."""

    __slots__ = ()

    def lines(self, ctx: AccessContext) -> list[int]:
        """Return the distinct cache-line addresses of this execution.

        Line addresses are byte addresses aligned to ``LINE_SIZE``; the
        memory subsystem treats each distinct line as one transaction
        (the coalescer contract).
        """
        raise NotImplementedError


class Coalesced(AccessPattern):
    """Fully coalesced access: lane *i* of warp *w* touches element ``w*32+i``.

    Each warp execution generates exactly one 128-byte transaction
    (element size 4 B x 32 lanes = 128 B), the GPU best case. Successive
    loop iterations advance by ``iter_stride`` bytes; successive warps are
    offset so distinct warps touch distinct lines (streaming access).
    """

    __slots__ = ("base", "iter_stride", "warp_region")

    def __init__(
        self, base: int = 0, *, iter_stride: int = 0, warp_region: int = LINE_SIZE
    ) -> None:
        if base < 0 or iter_stride < 0 or warp_region < 0:
            raise ProgramError("Coalesced pattern fields must be non-negative")
        self.base = base
        self.iter_stride = iter_stride
        self.warp_region = warp_region

    def lines(self, ctx: AccessContext) -> list[int]:
        warp_linear = ctx.tb_index * 64 + ctx.warp_in_tb
        addr = (
            self.base
            + warp_linear * self.warp_region
            + ctx.iteration * self.iter_stride
        )
        return [addr & ~(LINE_SIZE - 1)]


class Strided(AccessPattern):
    """Strided access: lane *i* touches ``base + (warp_offset + i*stride)``.

    A stride of ``stride`` bytes across 32 lanes spans
    ``32*stride`` bytes, i.e. ``ceil(32*stride/128)`` cache lines — the
    uncoalesced middle ground between streaming and random access (think
    column-major array walks, the LPS/hotspot halo accesses).
    """

    __slots__ = ("base", "stride", "iter_stride")

    def __init__(self, base: int = 0, *, stride: int = 128, iter_stride: int = 0) -> None:
        if stride <= 0:
            raise ProgramError("Strided stride must be positive")
        if base < 0 or iter_stride < 0:
            raise ProgramError("Strided pattern fields must be non-negative")
        self.base = base
        self.stride = stride
        self.iter_stride = iter_stride

    def lines(self, ctx: AccessContext) -> list[int]:
        warp_linear = ctx.tb_index * 64 + ctx.warp_in_tb
        start = (
            self.base
            + warp_linear * self.stride * WARP_SIZE
            + ctx.iteration * self.iter_stride
        )
        stride = self.stride
        seen: list[int] = []
        last = -1
        for lane in range(ctx.active):
            line = (start + lane * stride) & ~(LINE_SIZE - 1)
            if line != last:
                seen.append(line)
                last = line
        return seen


class Random(AccessPattern):
    """Divergent access: active lanes touch pseudo-random lines in a window.

    ``txns`` bounds the number of distinct transactions per execution
    (hardware coalescers cap at one transaction per lane; 32 models fully
    scattered BFS/b+tree gathers, smaller values model partially clustered
    irregular access). Addresses are drawn from a ``footprint``-byte window
    so cache behaviour is controllable: a footprint smaller than the L2
    yields reuse, a huge footprint streams.
    """

    __slots__ = ("footprint", "txns", "seed", "base")

    def __init__(
        self,
        footprint: int,
        *,
        txns: int = 32,
        seed: int = 1,
        base: int = 0,
    ) -> None:
        if footprint < LINE_SIZE:
            raise ProgramError("Random footprint must be >= one line")
        if not 1 <= txns <= WARP_SIZE:
            raise ProgramError("txns must be in 1..warp size")
        self.footprint = footprint
        self.txns = txns
        self.seed = seed
        self.base = base

    def lines(self, ctx: AccessContext) -> list[int]:
        n_lines = self.footprint // LINE_SIZE
        n = min(self.txns, ctx.active)
        key = (
            self.seed * 0x1F123BB5
            + ctx.tb_index * 0x9E3779B9
            + ctx.warp_in_tb * 0x85EBCA6B
            + ctx.iteration
        )
        out: list[int] = []
        seen: set[int] = set()
        for i in range(n):
            line_idx = _splitmix64(key + i * 0xC2B2AE35) % n_lines
            if line_idx not in seen:
                seen.add(line_idx)
                out.append(self.base + line_idx * LINE_SIZE)
        return out


class Chase(AccessPattern):
    """Pointer-chase access: one dependent transaction per execution.

    Models b+tree node walks: each loop iteration loads a single line whose
    address is a pseudo-random function of the previous hop (iteration).
    One transaction, poor locality, fully latency-bound.
    """

    __slots__ = ("footprint", "seed", "base")

    def __init__(self, footprint: int, *, seed: int = 1, base: int = 0) -> None:
        if footprint < LINE_SIZE:
            raise ProgramError("Chase footprint must be >= one line")
        self.footprint = footprint
        self.seed = seed
        self.base = base

    def lines(self, ctx: AccessContext) -> list[int]:
        n_lines = self.footprint // LINE_SIZE
        key = (
            self.seed * 0x27D4EB2F
            + ctx.tb_index * 0x165667B1
            + ctx.warp_in_tb * 0xD3A2646C
            + ctx.iteration * 0xFD7046C5
        )
        return [self.base + (_splitmix64(key) % n_lines) * LINE_SIZE]


class Broadcast(AccessPattern):
    """All lanes of all warps read the same small table (e.g. AES T-boxes).

    One transaction per execution; extremely cache friendly — after the
    first TB warms the L2 the accesses are near-free, which is why table
    loads contribute little memory stall in the paper's compute kernels.
    """

    __slots__ = ("base", "table_lines", "seed")

    def __init__(self, base: int = 0, *, table_lines: int = 8, seed: int = 0) -> None:
        if table_lines <= 0:
            raise ProgramError("table_lines must be positive")
        self.base = base
        self.table_lines = table_lines
        self.seed = seed

    def lines(self, ctx: AccessContext) -> list[int]:
        idx = _splitmix64(self.seed + ctx.iteration * 0x2545F491) % self.table_lines
        return [self.base + idx * LINE_SIZE]
