"""Property-based tests for the DRAM and MSHR timing models."""

from hypothesis import given, settings, strategies as st

from repro.config import LatencyConfig, MemoryConfig
from repro.memory.dram import Dram
from repro.memory.mshr import Mshr

LINE = 128

#: Streams of (line index, inter-arrival gap).
request_streams = st.lists(
    st.tuples(st.integers(0, 2047), st.integers(0, 50)),
    min_size=1,
    max_size=120,
)


class TestDramProperties:
    @given(request_streams)
    @settings(max_examples=80)
    def test_completion_after_arrival_with_minimum_latency(self, stream):
        d = Dram(MemoryConfig(), LatencyConfig())
        lat = LatencyConfig()
        t = 0
        for line_idx, gap in stream:
            t += gap
            done = d.service(line_idx * LINE, t)
            assert done >= t + lat.dram_row_hit + 1

    @given(request_streams)
    @settings(max_examples=60)
    def test_row_stats_partition_accesses(self, stream):
        d = Dram(MemoryConfig(), LatencyConfig())
        for i, (line_idx, _) in enumerate(stream):
            d.service(line_idx * LINE, i)
        assert d.stats.row_hits + d.stats.row_misses == len(stream)

    @given(request_streams)
    @settings(max_examples=60)
    def test_channel_bus_monotone(self, stream):
        """Per channel, completion times are non-decreasing in arrival
        order (the bus serializes bursts)."""
        d = Dram(MemoryConfig(), LatencyConfig())
        per_channel: dict[int, list[int]] = {}
        t = 0
        for line_idx, gap in stream:
            t += gap
            done = d.service(line_idx * LINE, t)
            ch = line_idx % d.channels
            per_channel.setdefault(ch, []).append(done)
        for dones in per_channel.values():
            assert dones == sorted(dones)

    @given(request_streams)
    @settings(max_examples=40)
    def test_first_access_per_bank_is_always_a_miss(self, stream):
        d = Dram(MemoryConfig(), LatencyConfig())
        seen_banks: set[int] = set()
        for i, (line_idx, _) in enumerate(stream):
            before = d.stats.row_misses
            d.service(line_idx * LINE, i)
            local = line_idx // d.channels
            row = local // d.lines_per_row
            bank = (line_idx % d.channels) * d.banks + row % d.banks
            if bank not in seen_banks:
                assert d.stats.row_misses == before + 1
                seen_banks.add(bank)


class TestMshrProperties:
    @given(st.lists(st.tuples(st.integers(0, 15), st.integers(1, 400)),
                    min_size=1, max_size=100))
    @settings(max_examples=80)
    def test_concurrent_misses_never_exceed_capacity(self, ops):
        """The real capacity invariant: at no instant do more than
        ``capacity`` misses occupy the table, counting each miss as
        occupying [service start, completion). This is the property that
        caught the shared-freed-slot bug in the original design."""
        m = Mshr(capacity=4, merge_limit=4)
        intervals = []
        t = 0
        for line, dur in ops:
            t += 1
            if m.lookup(line, t) is not None:
                continue
            start = m.earliest_start(t)
            completion = start + dur
            m.allocate(line, completion)
            intervals.append((start, completion))
        # max overlap over all interval endpoints
        for probe, _ in intervals:
            overlap = sum(1 for s, c in intervals if s <= probe < c)
            assert overlap <= 4

    @given(st.lists(st.integers(0, 7), min_size=1, max_size=60))
    @settings(max_examples=60)
    def test_merge_returns_original_completion(self, lines):
        m = Mshr(capacity=16, merge_limit=64)
        completions: dict[int, int] = {}
        for i, line in enumerate(lines):
            merged = m.lookup(line, 0)
            if merged is None:
                done = 10_000 + i
                m.allocate(line, done)
                completions[line] = done
            else:
                assert merged == completions[line]

    @given(st.lists(st.integers(0, 31), min_size=1, max_size=60))
    @settings(max_examples=60)
    def test_earliest_start_never_before_now(self, lines):
        m = Mshr(capacity=2, merge_limit=2)
        t = 0
        for line in lines:
            t += 3
            start = m.earliest_start(t)
            assert start >= t
            if m.lookup(line, t) is None and not m.is_full(t):
                m.allocate(line, start + 100)
