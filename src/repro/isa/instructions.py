"""Instruction and opcode definitions.

The instruction set is a distilled PTX: enough opcodes to express the
compute/memory/synchronization structure that warp schedulers react to,
and nothing more. Operands are warp-level architectural registers
(small integers); actual data values are not simulated — only the
*dependence* and *latency* structure matters for scheduling studies,
exactly as in trace-driven GPU simulators.
"""

from __future__ import annotations

import enum
from typing import Callable, Optional, Tuple, Union

from ..errors import ProgramError
from .patterns import AccessPattern


class ExecUnit(enum.IntEnum):
    """Issue-port class an instruction occupies.

    Matches the Fermi SM structure the paper assumes: SP (ALU) ports,
    one SFU port, one LSU port. ``NONE`` marks control instructions
    (barrier, exit) that consume an issue slot but no execution port.
    """

    SP = 0
    SFU = 1
    LSU = 2
    NONE = 3


class Opcode(enum.Enum):
    """Distilled PTX opcodes."""

    #: Integer add/sub/logic — short ALU latency.
    IALU = "ialu"
    #: Single-precision add/mul — short ALU latency.
    FALU = "falu"
    #: Integer multiply / float FMA — medium latency.
    FMA = "fma"
    #: Special function (rsqrt, sin, exp) — SFU, long-ish latency.
    SFU = "sfu"
    #: Global memory load (through L1/L2/DRAM).
    LDG = "ldg"
    #: Global memory store (write-through, fire-and-forget).
    STG = "stg"
    #: Shared memory load.
    LDS = "lds"
    #: Shared memory store.
    STS = "sts"
    #: Thread-block-wide barrier (``__syncthreads``).
    BAR = "bar"
    #: Backward branch (loop) with a per-warp trip count.
    BRA = "bra"
    #: Kernel exit for the warp.
    EXIT = "exit"


#: Execution unit for each opcode.
OPCODE_UNIT: dict[Opcode, ExecUnit] = {
    Opcode.IALU: ExecUnit.SP,
    Opcode.FALU: ExecUnit.SP,
    Opcode.FMA: ExecUnit.SP,
    Opcode.SFU: ExecUnit.SFU,
    Opcode.LDG: ExecUnit.LSU,
    Opcode.STG: ExecUnit.LSU,
    Opcode.LDS: ExecUnit.LSU,
    Opcode.STS: ExecUnit.LSU,
    Opcode.BAR: ExecUnit.NONE,
    Opcode.BRA: ExecUnit.SP,
    Opcode.EXIT: ExecUnit.NONE,
}

#: Opcodes that read or write memory.
MEMORY_OPCODES = frozenset({Opcode.LDG, Opcode.STG, Opcode.LDS, Opcode.STS})
#: Opcodes that produce a register result.
WRITING_OPCODES = frozenset(
    {Opcode.IALU, Opcode.FALU, Opcode.FMA, Opcode.SFU, Opcode.LDG, Opcode.LDS}
)

#: Per-warp trip-count specification for a branch: a constant, or a callable
#: ``(tb_index, warp_in_tb) -> int`` evaluated at warp launch. Callables are
#: how workloads inject *warp-level divergence* (paper §II-B).
TripCount = Union[int, Callable[[int, int], int]]

#: Active-thread count specification: a constant (<= warp size), or a callable
#: ``(tb_index, warp_in_tb) -> int``. Models intra-warp (branch) divergence:
#: progress accounting and memory divergence both honour it.
ActiveCount = Union[int, Callable[[int, int], int]]


class Instruction:
    """One static SIMT instruction.

    Parameters
    ----------
    op:
        The :class:`Opcode`.
    dst:
        Destination register index, or ``None`` for non-writing ops.
    srcs:
        Source register indices (dependences the scoreboard enforces).
    pattern:
        For LDG/STG: the :class:`~repro.isa.patterns.AccessPattern`
        generating the global-memory line addresses of each dynamic
        execution.
    conflict_ways:
        For LDS/STS: shared-memory bank-conflict degree (1 = conflict
        free); each extra way serializes the access further.
    target:
        For BRA: the (backward) branch target pc.
    trips:
        For BRA: per-warp taken-count (see :data:`TripCount`).
    active:
        Active threads executing this instruction (see :data:`ActiveCount`).
        Defaults to a full warp.
    """

    __slots__ = (
        "op",
        "dst",
        "srcs",
        "pattern",
        "conflict_ways",
        "target",
        "trips",
        "active",
        "unit",
        "latency",
        "pc",
    )

    def __init__(
        self,
        op: Opcode,
        dst: Optional[int] = None,
        srcs: Tuple[int, ...] = (),
        *,
        pattern: Optional[AccessPattern] = None,
        conflict_ways: int = 1,
        target: Optional[int] = None,
        trips: Optional[TripCount] = None,
        active: Optional[ActiveCount] = None,
    ) -> None:
        self.op = op
        self.dst = dst
        self.srcs = tuple(srcs)
        self.pattern = pattern
        self.conflict_ways = conflict_ways
        self.target = target
        self.trips = trips
        self.active = active
        self.unit = OPCODE_UNIT[op]
        #: Writeback latency in cycles; resolved by Program.finalize().
        self.latency: int = 0
        #: Static pc within the owning program; set by Program.
        self.pc: int = -1
        self._check()

    def _check(self) -> None:
        op = self.op
        if op in WRITING_OPCODES and self.dst is None:
            raise ProgramError(f"{op.value} requires a destination register")
        if op not in WRITING_OPCODES and self.dst is not None:
            raise ProgramError(f"{op.value} cannot write a register")
        if op in (Opcode.LDG, Opcode.STG):
            if self.pattern is None:
                raise ProgramError(f"{op.value} requires an access pattern")
        elif self.pattern is not None:
            raise ProgramError(f"{op.value} cannot carry an access pattern")
        if op in (Opcode.LDS, Opcode.STS):
            if self.conflict_ways < 1:
                raise ProgramError("conflict_ways must be >= 1")
        if op is Opcode.BRA:
            if self.target is None or self.trips is None:
                raise ProgramError("bra requires target and trips")
        else:
            if self.target is not None or self.trips is not None:
                raise ProgramError(f"{op.value} cannot carry branch fields")
        if self.dst is not None and self.dst < 0:
            raise ProgramError("register indices must be non-negative")
        if any(s < 0 for s in self.srcs):
            raise ProgramError("register indices must be non-negative")
        if isinstance(self.active, int) and self.active <= 0:
            raise ProgramError("constant active count must be positive")

    # -- launch-time resolution helpers ------------------------------------

    def resolve_trips(self, tb_index: int, warp_in_tb: int) -> int:
        """Evaluate the branch trip count for one warp (>= 0)."""
        trips = self.trips
        n = trips(tb_index, warp_in_tb) if callable(trips) else int(trips)
        if n < 0:
            raise ProgramError(
                f"trip count for pc {self.pc} resolved negative ({n})"
            )
        return n

    def resolve_active(self, tb_index: int, warp_in_tb: int, warp_size: int) -> int:
        """Evaluate the active-thread count for one warp (1..warp_size)."""
        active = self.active
        if active is None:
            return warp_size
        n = active(tb_index, warp_in_tb) if callable(active) else int(active)
        if not 1 <= n <= warp_size:
            raise ProgramError(
                f"active count for pc {self.pc} resolved to {n}, "
                f"outside 1..{warp_size}"
            )
        return n

    @property
    def is_memory(self) -> bool:
        """True for LDG/STG/LDS/STS."""
        return self.op in MEMORY_OPCODES

    @property
    def writes_register(self) -> bool:
        """True if the instruction produces a register result."""
        return self.dst is not None

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        parts = [self.op.value]
        if self.dst is not None:
            parts.append(f"r{self.dst}")
        if self.srcs:
            parts.append(",".join(f"r{s}" for s in self.srcs))
        if self.op is Opcode.BRA:
            parts.append(f"->{self.target}")
        return f"<{' '.join(parts)} @pc{self.pc}>"
