#!/usr/bin/env python
"""Author a custom SIMT kernel with the ProgramBuilder DSL and study how
its occupancy and scheduling behaviour change with shared-memory usage.

Demonstrates:
  * building a program (loops, divergent trip counts, barriers, memory
    access patterns),
  * the occupancy calculator,
  * sweeping a resource knob and watching the scheduler gap change —
    warp scheduling matters most at low-to-medium occupancy, the
    regime the paper's shared-memory-hungry kernels live in.
"""

from repro import Coalesced, Gpu, GPUConfig, KernelLaunch, ProgramBuilder
from repro.simt.occupancy import occupancy_report


def build_kernel(shared_mem: int):
    """A reduction-style kernel: divergent accumulate loop + barrier tail."""
    b = ProgramBuilder(
        "custom_reduce",
        threads_per_tb=256,
        regs_per_thread=20,
        shared_mem_per_tb=shared_mem,
    )
    # Warp-level divergence: warps of a TB do unequal amounts of work.
    with b.loop(times=lambda tb, w: 6 + (tb * 64 + w) % 5):
        b.load_global(1, pattern=Coalesced(base=0, iter_stride=128,
                                           warp_region=2048))
        b.fma(2, (1, 2))
    b.store_shared((2,))
    for _ in range(4):  # log-step reduction
        b.barrier()
        b.load_shared(3)
        b.fma(2, (2, 3))
        b.store_shared((2,))
    b.barrier()
    b.store_global((2,), pattern=Coalesced(base=1 << 30))
    return b.build()


def main() -> None:
    cfg = GPUConfig.scaled(4)
    print(f"{'smem/TB':>8} {'TBs/SM':>7} {'warps/SM':>9} "
          f"{'LRR':>8} {'PRO':>8} {'PRO speedup':>12}")
    for smem_kb in (4, 8, 12, 16, 24):
        prog = build_kernel(smem_kb * 1024)
        occ = occupancy_report(prog, cfg)
        cycles = {}
        for sched in ("lrr", "pro"):
            r = Gpu(cfg, scheduler=sched).run(KernelLaunch(prog, num_tbs=64))
            cycles[sched] = r.cycles
        print(f"{smem_kb:>6}KB {occ['resident_tbs']:>7} "
              f"{occ['resident_warps']:>9} {cycles['lrr']:>8} "
              f"{cycles['pro']:>8} {cycles['lrr'] / cycles['pro']:>11.3f}x")

    print("\nLower occupancy -> fewer warps to hide latency -> scheduling "
          "policy matters more (the paper's §II premise).")


if __name__ == "__main__":
    main()
