"""repro — reproduction of "PRO: Progress Aware GPU Warp Scheduling Algorithm".

A pure-Python cycle-level SIMT GPU simulator (the GPGPU-Sim substitute)
plus the four warp schedulers the paper evaluates — LRR, TL, GTO and PRO —
synthetic models of its 25 benchmark kernels, and a harness regenerating
every table and figure of the evaluation (see DESIGN.md / EXPERIMENTS.md).

Quickstart::

    import repro
    from repro.obs import MetricsSampler

    sampler = MetricsSampler()
    result = repro.simulate("scalarProdGPU", "pro", probes=[sampler])
    print(result.summary())

:func:`simulate` is the one-call entry point; :mod:`repro.obs` is the
observability layer (probes, windowed metrics, JSONL/CSV/Perfetto export).
The underlying :class:`Gpu` / :class:`KernelLaunch` objects remain public
for callers that need more control.
"""

from .api import simulate
from .config import GPUConfig, LatencyConfig, MemoryConfig, LINE_SIZE, WARP_SIZE
from .core import available_schedulers
from .core.scheduler import WarpScheduler, register_scheduler
from .errors import (
    ConfigError,
    LaunchError,
    ProgramError,
    ReproError,
    SchedulerError,
    SimulationError,
    WorkloadError,
)
from .gpu import Gpu, KernelLaunch, RunResult
from .isa import (
    Broadcast,
    Chase,
    Coalesced,
    Program,
    ProgramBuilder,
    Random,
    Strided,
)
from .obs import ChromeTraceProbe, MetricsSampler, Probe, ProbeBus
from .simt.occupancy import max_resident_tbs, occupancy_report
from .stats import IssueTrace, SortTraceRecorder, TimelineRecorder

__version__ = "1.0.0"

__all__ = [
    "Broadcast",
    "Chase",
    "ChromeTraceProbe",
    "Coalesced",
    "ConfigError",
    "GPUConfig",
    "IssueTrace",
    "Gpu",
    "KernelLaunch",
    "LINE_SIZE",
    "LatencyConfig",
    "LaunchError",
    "MemoryConfig",
    "MetricsSampler",
    "Probe",
    "ProbeBus",
    "Program",
    "ProgramBuilder",
    "ProgramError",
    "Random",
    "ReproError",
    "RunResult",
    "SchedulerError",
    "SimulationError",
    "SortTraceRecorder",
    "Strided",
    "TimelineRecorder",
    "WARP_SIZE",
    "WarpScheduler",
    "WorkloadError",
    "available_schedulers",
    "max_resident_tbs",
    "occupancy_report",
    "register_scheduler",
    "simulate",
    "__version__",
]
