"""Tests for the analysis sweep utilities."""

import pytest

from repro.analysis import (
    Sweep,
    grid_sweep,
    latency_sweep,
    occupancy_sweep,
    sm_count_sweep,
)
from repro.config import GPUConfig


class TestLatencySweep:
    @pytest.fixture(scope="class")
    def result(self):
        return latency_sweep("executeFirstLayer", factors=(0.5, 2.0),
                             num_sms=2, scale=0.2,
                             schedulers=("lrr", "pro"))

    def test_all_points_run(self, result):
        assert result.values == [0.5, 2.0]
        for v in result.values:
            for s in ("lrr", "pro"):
                assert result.cycles(v, s) > 0

    def test_latency_monotone(self, result):
        """Doubling memory latency cannot make a memory-bound kernel
        faster."""
        for s in ("lrr", "pro"):
            assert result.cycles(2.0, s) > result.cycles(0.5, s)

    def test_speedup_helpers(self, result):
        sp = result.speedup(2.0, "pro", "lrr")
        assert sp == result.cycles(2.0, "lrr") / result.cycles(2.0, "pro")
        assert len(result.speedup_series("pro", "lrr")) == 2

    def test_speedup_geomean(self, result):
        from repro.stats.report import geomean

        series = result.speedup_series("pro", "lrr")
        assert result.speedup_geomean("pro", "lrr") == geomean(series)
        # geomean sits between the per-point extremes
        assert min(series) <= result.speedup_geomean() <= max(series)

    def test_render(self, result):
        out = result.render()
        assert "latency x" in out and "pro/lrr" in out


class TestOccupancySweep:
    def test_tb_cap_respected(self):
        r = occupancy_sweep("cenergy", tb_limits=(1, 4), num_sms=2,
                            scale=0.2, schedulers=("lrr", "pro"))
        # 1 resident TB per SM is slower than 4 (less latency hiding)
        assert r.cycles(1, "lrr") > r.cycles(4, "lrr")


class TestSmCountSweep:
    def test_weak_scaling(self):
        r = sm_count_sweep("cenergy", counts=(1, 2), scale_per_sm=0.2,
                           schedulers=("lrr",))
        # weak scaling: similar cycles per point (work grows with SMs)
        a, b = r.cycles(1, "lrr"), r.cycles(2, "lrr")
        assert 0.5 < a / b < 2.0


class TestGridSweep:
    def test_more_tbs_more_cycles(self):
        r = grid_sweep("cenergy", scales=(0.25, 1.0), num_sms=2,
                       schedulers=("lrr",))
        assert r.cycles(1.0, "lrr") > r.cycles(0.25, "lrr")


class TestGenericSweep:
    def test_custom_knob(self):
        sweep = Sweep(
            name="branch bubble",
            knob="bubble",
            values=[1, 12],
            configure=lambda b: GPUConfig.scaled(1).with_(
                latency=GPUConfig.scaled(1).latency.__class__(branch_bubble=b)
            ),
            schedulers=("lrr",),
            scale=0.2,
        )
        r = sweep.run("sha1_overlap")
        # bigger refetch bubbles -> more idle time -> more cycles
        assert r.cycles(12, "lrr") > r.cycles(1, "lrr")
