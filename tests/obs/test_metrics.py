"""MetricsSampler tests: window arithmetic and run-level exactness."""

import json
from types import SimpleNamespace

import pytest

from repro import Gpu, GPUConfig, KernelLaunch
from repro.obs import MetricsSampler
from repro.stats.counters import StallKind
from tests.conftest import tiny_program

CFG = GPUConfig.scaled(2)


class TestWindowArithmetic:
    def test_stall_span_split_across_windows_is_lossless(self):
        s = MetricsSampler(window=10)
        s.on_stall(0, 5, 25, StallKind.IDLE)
        per_window = {
            (i, sm): cell.stalls[StallKind.IDLE]
            for (i, sm), cell in s._cells.items()
        }
        assert per_window == {(0, 0): 5, (1, 0): 10, (2, 0): 5}
        assert s.stall_totals()["idle"] == 20

    def test_span_within_one_window_stays_whole(self):
        s = MetricsSampler(window=100)
        s.on_stall(1, 10, 40, StallKind.PIPELINE)
        assert s.stall_totals(sm_id=1)["pipeline"] == 30

    def test_same_cycle_dual_issue_counts_one_active_cycle(self):
        s = MetricsSampler(window=100)
        s.on_issue(7, 0, 0, 0, 0, "ialu", 32)
        s.on_issue(7, 0, 1, 2, 4, "fma", 32)  # second scheduler, same cycle
        s.on_issue(8, 0, 0, 0, 1, "ialu", 32)
        cell = s._cells[(0, 0)]
        assert cell.instructions == 3
        assert cell.active_cycles == 2
        assert len(cell.warps) == 2  # (0,0) and (1,2)

    def test_window_validation(self):
        with pytest.raises(ValueError):
            MetricsSampler(window=0)

    def test_last_window_clipped_to_run_length(self):
        s = MetricsSampler(window=100)
        s.on_issue(250, 0, 0, 0, 0, "ialu", 32)
        s.on_run_end(SimpleNamespace(cycles=260))
        row = s.rows()[0]
        assert (row.start, row.end) == (200, 260)
        assert row.cycles == 60

    def test_tb_residency_tracks_assign_and_finish(self):
        s = MetricsSampler(window=100)
        s.on_tb_start(0, 0, 10)
        s.on_tb_start(0, 1, 20)
        s.on_tb_finish(0, 0, 150)
        assert s._cells[(0, 0)].tbs_resident == 2
        assert s._cells[(1, 0)].tbs_resident == 1


class TestRunExactness:
    @pytest.fixture(scope="class")
    def sampled(self):
        sampler = MetricsSampler(window=137)  # deliberately awkward width
        result = Gpu(CFG, "pro").run(
            KernelLaunch(tiny_program(barrier=True), 8),
            probes=[sampler],
        )
        return sampler, result

    def test_per_sm_stall_totals_match_counters_bit_exactly(self, sampled):
        sampler, result = sampled
        for sm in result.counters.per_sm:
            totals = sampler.stall_totals(sm_id=sm.sm_id)
            assert totals["idle"] == sm.stall_idle
            assert totals["scoreboard"] == sm.stall_scoreboard
            assert totals["pipeline"] == sm.stall_pipeline

    def test_instruction_totals_match_counters(self, sampled):
        sampler, result = sampled
        assert (sum(r.instructions for r in sampler.rows())
                == result.counters.instructions)

    def test_active_cycle_totals_match_counters(self, sampled):
        sampler, result = sampled
        for sm in result.counters.per_sm:
            sampled_active = sum(r.active_cycles for r in sampler.rows()
                                 if r.sm_id == sm.sm_id)
            assert sampled_active == sm.active_cycles

    def test_rows_are_sorted_and_bounded(self, sampled):
        sampler, result = sampled
        rows = sampler.rows()
        assert rows == sorted(rows, key=lambda r: (r.index, r.sm_id))
        for r in rows:
            assert 0 <= r.start < r.end <= result.cycles
            assert r.stall_cycles <= r.cycles * 2  # two schedulers max

    def test_run_end_captured_result(self, sampled):
        sampler, result = sampled
        assert sampler.result is result
        assert sampler.total_cycles == result.cycles

    def test_ipc_series_gpu_wide_and_per_sm(self, sampled):
        sampler, _ = sampled
        whole = sampler.ipc_series()
        sm0 = sampler.ipc_series(sm_id=0)
        assert whole and sm0
        assert all(ipc >= 0 for _, ipc in whole)
        starts = [s for s, _ in whole]
        assert starts == sorted(starts)


class TestExports:
    def test_jsonl_roundtrip(self, tmp_path):
        sampler = MetricsSampler(window=200)
        Gpu(CFG, "lrr").run(KernelLaunch(tiny_program(), 4),
                            probes=[sampler])
        path = tmp_path / "metrics.jsonl"
        sampler.write_jsonl(path)
        rows = [json.loads(line) for line in path.read_text().splitlines()]
        assert len(rows) == len(sampler.rows())
        assert rows[0]["window"] == sampler.rows()[0].index
        assert (sum(r["stall_idle"] for r in rows)
                == sampler.stall_totals()["idle"])

    def test_csv_has_header_and_same_rows(self, tmp_path):
        sampler = MetricsSampler(window=200)
        Gpu(CFG, "lrr").run(KernelLaunch(tiny_program(), 4),
                            probes=[sampler])
        path = tmp_path / "metrics.csv"
        sampler.write_csv(path)
        lines = path.read_text().splitlines()
        assert lines[0].split(",")[:4] == ["window", "start", "end", "sm"]
        assert len(lines) == 1 + len(sampler.rows())
