"""Integration-grade unit tests for the top-level Gpu.run loop."""

import pytest

from repro import Gpu, GPUConfig, KernelLaunch, TimelineRecorder
from repro.errors import LaunchError, SimulationError
from tests.conftest import compute_program, tiny_program


CFG = GPUConfig.scaled(2)


class TestRunBasics:
    def test_all_tbs_complete(self):
        res = Gpu(CFG, "lrr").run(KernelLaunch(tiny_program(), 6))
        assert res.counters.tbs_completed == 6
        assert res.cycles > 0

    def test_instruction_conservation(self):
        prog = tiny_program(loops=3, threads_per_tb=96)
        n_tbs = 5
        res = Gpu(CFG, "lrr").run(KernelLaunch(prog, n_tbs))
        expected = sum(
            prog.dynamic_count(t, w)
            for t in range(n_tbs)
            for w in range(3)
        )
        assert res.counters.instructions == expected

    def test_single_tb_grid(self):
        res = Gpu(CFG, "pro").run(KernelLaunch(compute_program(), 1))
        assert res.counters.tbs_completed == 1

    def test_grid_smaller_than_gpu(self):
        cfg = GPUConfig.scaled(4)
        res = Gpu(cfg, "lrr").run(KernelLaunch(compute_program(), 2))
        assert res.counters.tbs_completed == 2
        # SMs 2 and 3 never ran: their cycles are all idle
        idle_sms = [s for s in res.counters.per_sm if s.active_cycles == 0]
        assert len(idle_sms) == 2
        for s in idle_sms:
            assert s.stall_idle == res.cycles

    def test_invalid_launch_rejected(self):
        with pytest.raises(LaunchError):
            KernelLaunch(tiny_program(), 0)

    def test_oversized_tb_rejected(self):
        prog = tiny_program(threads_per_tb=2048)
        with pytest.raises(LaunchError):
            Gpu(CFG, "lrr").run(KernelLaunch(prog, 2))

    def test_max_cycles_guard(self):
        cfg = CFG.with_(max_cycles=10)
        prog = tiny_program(loops=50)
        with pytest.raises(SimulationError):
            Gpu(cfg, "lrr").run(KernelLaunch(prog, 8))


class TestAccountingInvariants:
    @pytest.mark.parametrize("sched", ["lrr", "tl", "gto", "pro"])
    def test_per_sm_cycle_conservation(self, sched):
        res = Gpu(CFG, sched).run(
            KernelLaunch(tiny_program(loops=4, barrier=True), 10)
        )
        for s in res.counters.per_sm:
            assert s.active_cycles + s.stall_cycles == res.cycles, s.sm_id

    def test_gpu_totals_sum_sms(self):
        res = Gpu(CFG, "pro").run(KernelLaunch(tiny_program(), 6))
        c = res.counters
        assert c.stall_cycles == sum(s.stall_cycles for s in c.per_sm)
        assert c.instructions == sum(s.instructions for s in c.per_sm)

    def test_ipc_definition(self):
        res = Gpu(CFG, "lrr").run(KernelLaunch(tiny_program(), 4))
        assert res.ipc == pytest.approx(
            res.counters.instructions / res.cycles
        )


class TestSequentialLaunches:
    def test_gpu_reusable(self):
        gpu = Gpu(CFG, "pro")
        r1 = gpu.run(KernelLaunch(tiny_program(), 4))
        r2 = gpu.run(KernelLaunch(tiny_program(), 4))
        assert r1.cycles == r2.cycles  # cold caches both times

    def test_different_kernels_back_to_back(self):
        gpu = Gpu(CFG, "lrr")
        r1 = gpu.run(KernelLaunch(compute_program(), 3))
        r2 = gpu.run(KernelLaunch(tiny_program(), 3))
        assert r1.counters.tbs_completed == 3
        assert r2.counters.tbs_completed == 3


class TestTimelineIntegration:
    def test_every_tb_recorded(self):
        tl = TimelineRecorder()
        Gpu(CFG, "lrr").run(KernelLaunch(tiny_program(), 7), probes=[tl])
        assert len(tl.intervals) == 7
        assert {iv.tb_index for iv in tl.intervals} == set(range(7))

    def test_intervals_well_formed(self):
        tl = TimelineRecorder()
        res = Gpu(CFG, "pro").run(KernelLaunch(tiny_program(), 7),
                                  probes=[tl])
        for iv in tl.intervals:
            assert 0 <= iv.start_cycle < iv.finish_cycle <= res.cycles
            assert iv.sm_id in (0, 1)


class TestSpeedupHelper:
    def test_speedup_over(self):
        a = Gpu(CFG, "lrr").run(KernelLaunch(tiny_program(), 6))
        b = Gpu(CFG, "pro").run(KernelLaunch(tiny_program(), 6))
        assert b.speedup_over(a) == pytest.approx(a.cycles / b.cycles)

    def test_summary_contains_key_fields(self):
        r = Gpu(CFG, "pro").run(KernelLaunch(tiny_program(), 4))
        s = r.summary()
        assert "tiny" in s and "pro" in s and str(r.cycles) in s


class TestMainLoopVariants:
    """The adaptive run loop (linear scan below HEAP_MIN_SMS, wake-heap
    above) must be an invisible implementation detail: both variants
    produce bit-identical counters on the same launch."""

    @pytest.mark.parametrize("scheduler", ["lrr", "gto", "pro"])
    def test_scan_and_heap_bit_identical(self, monkeypatch, scheduler):
        from dataclasses import asdict

        import repro.gpu.gpu as gpumod
        from repro.workloads import get_kernel

        launch_args = ("cenergy", 0.1)

        def run_once():
            model = get_kernel(launch_args[0])
            gpu = Gpu(GPUConfig.scaled(4), scheduler)
            return gpu.run(model.build_launch(launch_args[1]))

        monkeypatch.setattr(gpumod, "HEAP_MIN_SMS", 999)  # force scan
        scan = run_once()
        monkeypatch.setattr(gpumod, "HEAP_MIN_SMS", 0)  # force heap
        heap = run_once()

        assert scan.cycles == heap.cycles
        assert asdict(scan.counters) == asdict(heap.counters)

    def test_default_threshold_picks_heap_for_large_gpus(self):
        import repro.gpu.gpu as gpumod

        assert 1 < gpumod.HEAP_MIN_SMS <= 16
