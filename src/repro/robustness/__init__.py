"""Reliability layer: watchdog, diagnostics, checkpointing, fault injection.

Long sweeps (the paper's 25-kernel x 4-scheduler matrix at 14 SMs) need
the same machinery a production fleet does:

* :mod:`~repro.robustness.watchdog` — forward-progress + wall-clock
  watchdog beaten from the GPU main loop;
* :mod:`~repro.robustness.diagnostics` — :class:`DeadlockReport`
  machine-state snapshots attached to structured simulation errors;
* :mod:`~repro.robustness.checkpoint` — disk-backed run-matrix cells so
  an interrupted harness invocation resumes instead of restarting;
* :mod:`~repro.robustness.faults` — deterministic, seeded fault injectors
  that prove the above paths actually fire;
* :mod:`~repro.robustness.snapshot` — cycle-level full-state snapshots
  with atomic writes and bit-exact resume (:meth:`repro.gpu.gpu.Gpu.resume`);
* :mod:`~repro.robustness.sanitizer` — windowed conservation-law checks
  (:class:`InvariantSanitizer`) that name state corruption at its origin.
"""

from .checkpoint import (
    CheckpointStore,
    cell_key,
    config_digest,
    result_from_json,
    result_to_json,
)
from .diagnostics import (
    DeadlockReport,
    DramSnapshot,
    MshrSnapshot,
    SmSnapshot,
    WarpSnapshot,
    report_for_sm,
    snapshot_gpu,
    snapshot_sm,
    snapshot_warp,
)
from .faults import FaultPlan
from .sanitizer import InvariantSanitizer, classify_failure
from .snapshot import (
    SNAPSHOT_SCHEMA_VERSION,
    SnapshotControl,
    build_snapshot,
    config_from_snapshot,
    load_snapshot,
    program_digest,
    write_snapshot,
)
from .watchdog import ProgressWatchdog

__all__ = [
    "CheckpointStore",
    "InvariantSanitizer",
    "SNAPSHOT_SCHEMA_VERSION",
    "SnapshotControl",
    "DeadlockReport",
    "DramSnapshot",
    "FaultPlan",
    "MshrSnapshot",
    "ProgressWatchdog",
    "SmSnapshot",
    "WarpSnapshot",
    "build_snapshot",
    "cell_key",
    "classify_failure",
    "config_digest",
    "config_from_snapshot",
    "load_snapshot",
    "program_digest",
    "report_for_sm",
    "result_from_json",
    "result_to_json",
    "snapshot_gpu",
    "snapshot_sm",
    "snapshot_warp",
    "write_snapshot",
]
