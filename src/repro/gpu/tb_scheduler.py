"""GPU-level Thread Block Scheduler (the "global work distribution engine").

Holds the grid's not-yet-dispatched TBs in launch order. At kernel start it
fills every SM round-robin up to resource limits; afterwards, whenever a TB
finishes on an SM, the freed resources are immediately offered to the next
pending TB (paper §I: "the remaining TBs are assigned one at a time to an
SM as and when a previously assigned TB finishes").

``has_pending()`` is the paper's ``TBsWaitingInThrdBlkSched()``: True while
the kernel is in the fastTBPhase.
"""

from __future__ import annotations

from collections import deque
from typing import TYPE_CHECKING, Deque, List

from ..simt.threadblock import ThreadBlock

if TYPE_CHECKING:  # pragma: no cover
    from ..simt.sm import StreamingMultiprocessor


class ThreadBlockScheduler:
    """FIFO dispatcher of TBs to SMs with capacity."""

    def __init__(self, tbs: List[ThreadBlock]) -> None:
        self._pending: Deque[ThreadBlock] = deque(tbs)
        self._total = len(tbs)
        self._finished = 0

    # -- queries ------------------------------------------------------------

    def has_pending(self) -> bool:
        """True while TBs wait for dispatch (the fastTBPhase predicate)."""
        return bool(self._pending)

    @property
    def pending_count(self) -> int:
        return len(self._pending)

    @property
    def total(self) -> int:
        return self._total

    @property
    def finished_count(self) -> int:
        return self._finished

    @property
    def all_finished(self) -> bool:
        return self._finished == self._total

    # -- dispatch -----------------------------------------------------------

    def initial_fill(self, sms: List["StreamingMultiprocessor"], cycle: int = 0) -> int:
        """Round-robin dispatch at kernel start; returns TBs placed.

        Matches hardware: TBs are dealt one per SM in turn until either the
        queue drains or no SM can accept another TB.
        """
        placed = 0
        progress = True
        while self._pending and progress:
            progress = False
            for sm in sms:
                if not self._pending:
                    break
                if sm.can_accept(self._pending[0]):
                    sm.assign_tb(self._pending.popleft(), cycle)
                    placed += 1
                    progress = True
        return placed

    def refill(self, sm: "StreamingMultiprocessor", cycle: int) -> int:
        """Offer pending TBs to one SM (after it freed resources)."""
        placed = 0
        while self._pending and sm.can_accept(self._pending[0]):
            sm.assign_tb(self._pending.popleft(), cycle)
            placed += 1
        return placed

    def note_tb_finished(self) -> None:
        """Bookkeeping hook called by the GPU for each completed TB."""
        self._finished += 1

    # -- state serialization -------------------------------------------

    def snapshot(self) -> dict:
        """Serializable dispatch state (pending TBs by grid index)."""
        return {
            "pending": [tb.tb_index for tb in self._pending],
            "total": self._total,
            "finished": self._finished,
        }

    def restore(self, data: dict, program) -> None:
        """Rebuild the pending queue against ``program``.

        Pending TBs are pre-materialization (no warps yet), so a fresh
        :class:`ThreadBlock` per stored index reproduces them exactly.
        """
        self._pending = deque(
            ThreadBlock(i, program) for i in data["pending"]
        )
        self._total = data["total"]
        self._finished = data["finished"]
