"""Property-based snapshot/resume: bit-exact for arbitrary stop cycles.

Random micro-kernels (loops, divergence, barriers, memory traffic) are
run under every scheduler; each run is then repeated with a cooperative
stop at a randomly chosen point, snapshotted, and resumed. The resumed
run must reproduce the uninterrupted run's final counters *exactly* —
the core guarantee the whole snapshot subsystem exists to provide.
"""

import dataclasses

from hypothesis import given, settings, strategies as st

from repro import Gpu, GPUConfig, KernelLaunch, ProgramBuilder
from repro.errors import SimulationInterrupted
from repro.isa.patterns import Coalesced, Strided
from repro.obs.bus import Probe

CFG = GPUConfig.scaled(2)
SCHEDULERS = ("lrr", "tl", "gto", "pro", "rlws", "wasp")

kernel_recipes = st.fixed_dictionaries({
    "threads": st.sampled_from([32, 64, 96]),
    "loops": st.integers(1, 4),
    "body_alu": st.integers(0, 2),
    "with_mem": st.booleans(),
    "strided": st.booleans(),
    "with_barrier": st.booleans(),
    "divergent": st.booleans(),
    "num_tbs": st.integers(2, 8),
    "scheduler": st.sampled_from(SCHEDULERS),
    "stop_frac": st.floats(0.05, 0.95),
})


def build_kernel(recipe):
    b = ProgramBuilder("snapprop", threads_per_tb=recipe["threads"],
                       regs_per_thread=10)
    trips = (
        (lambda tb, w: 1 + (tb + w) % 3) if recipe["divergent"]
        else recipe["loops"]
    )
    pattern = (
        Strided(base=0, stride=64, iter_stride=256)
        if recipe["strided"]
        else Coalesced(base=0, iter_stride=128, warp_region=1024)
    )
    with b.loop(times=trips):
        if recipe["with_mem"]:
            b.load_global(1, pattern=pattern)
        b.ialu(2, (1, 2) if recipe["with_mem"] else (2,))
        for _ in range(recipe["body_alu"]):
            b.ialu(2, (2,))
    if recipe["with_barrier"]:
        b.barrier()
        b.ialu(3, (2,))
    b.store_global((2,), pattern=Coalesced(base=1 << 30))
    return b.build()


class _StopAtCycle(Probe):
    """Requests a cooperative stop at the first issue at/after ``cycle``."""

    def __init__(self, cycle):
        self.cycle = cycle
        self._gpu = None

    def on_run_start(self, gpu, launch):
        self._gpu = gpu

    def on_issue(self, cycle, sm_id, tb_index, warp_in_tb, pc, opcode,
                 active):
        if cycle >= self.cycle:
            self._gpu.request_stop()


def counters_of(result):
    return dataclasses.asdict(result.counters)


class TestSnapshotResumeBitExact:
    @settings(max_examples=40, deadline=None)
    @given(recipe=kernel_recipes)
    def test_resume_equals_uninterrupted_run(self, tmp_path_factory, recipe):
        snap = tmp_path_factory.mktemp("snap") / "cell.snap"
        launch = KernelLaunch(build_kernel(recipe), recipe["num_tbs"])
        fresh = Gpu(CFG, recipe["scheduler"]).run(launch)

        stop_at = max(1, int(fresh.cycles * recipe["stop_frac"]))
        launch2 = KernelLaunch(build_kernel(recipe), recipe["num_tbs"])
        gpu = Gpu(CFG, recipe["scheduler"])
        try:
            early = gpu.run(launch2, probes=[_StopAtCycle(stop_at)],
                            snapshot_path=snap)
        except SimulationInterrupted as interrupt:
            assert interrupt.snapshot_path == str(snap)
            launch3 = KernelLaunch(build_kernel(recipe), recipe["num_tbs"])
            resumed = Gpu.resume(snap, launch=launch3)
            assert resumed.cycles == fresh.cycles
            assert counters_of(resumed) == counters_of(fresh)
        else:
            # the run drained before the stop cycle was reached: it must
            # still match the uninstrumented run exactly
            assert counters_of(early) == counters_of(fresh)
