"""Measure a fidelity profile and evaluate the paper expectations.

:func:`measure` drives the ordinary harness machinery — an
:class:`~repro.harness.runner.ExperimentSetup` whose
:class:`~repro.harness.runner.ResultCache` may carry a checkpoint tier,
fanning cells out with ``--jobs`` via the parallel executor — so fidelity
runs share cells with any other experiment in the same session and
benefit from every robustness feature the harness has.

:func:`evaluate` turns the measurement into per-expectation
:class:`~repro.fidelity.report.Verdict` rows; :func:`score` adds the
baseline comparison and wraps everything in a
:class:`~repro.fidelity.report.FidelityReport`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from ..config import GPUConfig
from ..gpu.launch import RunResult
from ..robustness.checkpoint import config_digest
from ..stats.report import geomean
from ..workloads import get_kernel
from .baseline import BaselineDiff, BaselineStore
from .expectations import (
    Expectation,
    Expectations,
    FidelityProfile,
    load_expectations,
)
from .report import FidelityReport, Verdict

#: Stall classes in GpuCounters naming.
STALL_KINDS = ("idle", "scoreboard", "pipeline")


@dataclass
class FidelityMeasurement:
    """One measured (kernels x schedulers) matrix plus derived metrics."""

    profile: FidelityProfile
    config: GPUConfig
    scale: float
    #: (kernel, scheduler) -> RunResult.
    cells: Dict[Tuple[str, str], RunResult]
    #: True when (sms, scale) match the profile's canonical geometry, so
    #: per-profile numeric targets apply; off-canonical measurements are
    #: judged by shape bands only.
    canonical: bool = True

    # -- raw access --------------------------------------------------
    def cell(self, kernel: str, scheduler: str) -> RunResult:
        return self.cells[(kernel, scheduler)]

    def stalls(self, kernel: str, scheduler: str) -> Dict[str, int]:
        c = self.cell(kernel, scheduler).counters
        return {"idle": c.stall_idle, "scoreboard": c.stall_scoreboard,
                "pipeline": c.stall_pipeline}

    # -- derived quantities ------------------------------------------
    def speedup(self, kernel: str, over: str, scheduler: str = "pro") -> float:
        return (self.cell(kernel, over).cycles
                / self.cell(kernel, scheduler).cycles)

    def geomean_speedup(self, over: str, scheduler: str = "pro") -> float:
        return geomean(
            self.speedup(k, over, scheduler) for k in self.profile.kernels
        )

    def apps(self) -> Dict[str, List[str]]:
        """Profile kernels grouped by application, registry order."""
        grouped: Dict[str, List[str]] = {}
        for k in self.profile.kernels:
            grouped.setdefault(get_kernel(k).app, []).append(k)
        return grouped

    def app_stalls(self, kernels: List[str], scheduler: str) -> int:
        return sum(
            sum(self.stalls(k, scheduler).values()) for k in kernels
        )

    def stall_ratio_geomean(self, over: str) -> float:
        """Fig. 5 aggregate: per-app geomean of <over>/PRO total stalls."""
        ratios = []
        for kernels in self.apps().values():
            pro = self.app_stalls(kernels, "pro") or 1
            ratios.append(self.app_stalls(kernels, over) / pro)
        return geomean(ratios)

    def stall_share(self, scheduler: str, stall: str) -> float:
        """Share of one stall class in the scheduler's total stall
        cycles, summed over the profile (Table III column structure)."""
        totals = {kind: 0 for kind in STALL_KINDS}
        for k in self.profile.kernels:
            for kind, v in self.stalls(k, scheduler).items():
                totals[kind] += v
        denom = sum(totals.values()) or 1
        return totals[stall] / denom

    def baseline_cells(self) -> Dict[str, Dict[str, int]]:
        """Per-cell counters in the baseline store's golden layout."""
        out: Dict[str, Dict[str, int]] = {}
        for (kernel, sched), r in sorted(self.cells.items()):
            c = r.counters
            out[f"{kernel}/{sched}"] = {
                "cycles": r.cycles,
                "instructions": c.instructions,
                "stall_idle": c.stall_idle,
                "stall_scoreboard": c.stall_scoreboard,
                "stall_pipeline": c.stall_pipeline,
            }
        return out

    @property
    def config_digest(self) -> str:
        return config_digest(self.config)


def measure(
    profile: FidelityProfile,
    *,
    setup=None,
    jobs: int = 1,
    sms: Optional[int] = None,
    scale: Optional[float] = None,
) -> FidelityMeasurement:
    """Simulate (or fetch from cache/checkpoint) the profile's matrix.

    ``setup`` may carry a pre-configured harness session (checkpointing,
    fault plans); when given, its config/scale/jobs win. ``sms``/``scale``
    override the profile's canonical geometry — doing so flips the
    measurement off-canonical, restricting scoring to shape bands.
    """
    from ..harness.runner import ExperimentSetup, ResultCache

    if setup is None:
        use_sms = profile.sms if sms is None else sms
        use_scale = profile.scale if scale is None else scale
        setup = ExperimentSetup(config=GPUConfig.scaled(use_sms),
                                scale=use_scale, cache=ResultCache(),
                                jobs=jobs)
    canonical = (setup.config.num_sms == profile.sms
                 and setup.scale == profile.scale)
    if setup.jobs > 1:
        setup.prewarm(kernels=list(profile.kernels),
                      schedulers=profile.schedulers)
    cells = {
        (k, s): setup.run(k, s)
        for k in profile.kernels for s in profile.schedulers
    }
    return FidelityMeasurement(profile=profile, config=setup.config,
                               scale=setup.scale, cells=cells,
                               canonical=canonical)


# ---------------------------------------------------------------------------
# evaluation


def _measure_expectation(m: FidelityMeasurement,
                         e: Expectation) -> Optional[float]:
    """The measured value for one expectation, or None when the profile
    cannot answer it (e.g. a kernel outside the smoke subset)."""
    if e.kind == "geomean_speedup":
        return m.geomean_speedup(e.over, e.scheduler)
    if e.kind == "kernel_speedup":
        if e.kernel not in m.profile.kernels:
            return None
        return m.speedup(e.kernel, e.over, e.scheduler)
    if e.kind == "stall_ratio_geomean":
        return m.stall_ratio_geomean(e.over)
    if e.kind == "stall_share":
        return m.stall_share(e.scheduler, e.stall)
    if e.kind == "gto_closest":
        # Measured value: how far GTO's geomean overshoots the closest
        # other baseline beyond the allowed margin (<= 0 means GTO is
        # the closest baseline, as the paper finds).
        gto = m.geomean_speedup("gto")
        others = min(m.geomean_speedup("tl"), m.geomean_speedup("lrr"))
        return gto - others - e.margin
    raise AssertionError(f"unhandled kind {e.kind}")  # load_expectations gates


def evaluate(
    measurement: FidelityMeasurement,
    expectations: Optional[Expectations] = None,
) -> List[Verdict]:
    """Judge every applicable expectation against the measurement."""
    expectations = expectations or load_expectations()
    verdicts: List[Verdict] = []
    for e in expectations:
        measured = _measure_expectation(measurement, e)
        if measured is None:
            continue
        band = e.band_for(measurement.profile.name, measurement.canonical)
        if band is None:
            continue
        status, delta = band.judge(measured)
        verdicts.append(Verdict(
            expectation_id=e.id,
            kind=e.kind,
            status=status,
            measured=measured,
            delta=delta,
            band=band.describe(),
            anchor=e.anchor,
            paper_value=e.paper_value,
            numeric=band.is_numeric,
        ))
    return verdicts


def score(
    measurement: FidelityMeasurement,
    expectations: Optional[Expectations] = None,
    baseline: Optional[BaselineStore] = None,
) -> FidelityReport:
    """Full fidelity scoring: expectations + optional baseline trend."""
    verdicts = evaluate(measurement, expectations)
    diff: Optional[BaselineDiff] = None
    if baseline is not None:
        diff = baseline.compare(measurement)
    return FidelityReport(
        profile=measurement.profile,
        sms=measurement.config.num_sms,
        scale=measurement.scale,
        canonical=measurement.canonical,
        config_digest=measurement.config_digest,
        verdicts=verdicts,
        baseline=diff,
    )


# ---------------------------------------------------------------------------
# artifact adapters — the benchmark suite scores its regenerated
# artifacts through the same expectation data instead of ad-hoc asserts.


def verdicts_for_fig4(fig4_result,
                      expectations: Optional[Expectations] = None
                      ) -> List[Verdict]:
    """Judge a :class:`~repro.harness.experiments.Fig4Result` against the
    Fig. 4 shape expectations (geomeans + GTO ordering)."""
    expectations = expectations or load_expectations()
    verdicts = []
    for e in expectations:
        if e.shape is None:
            continue
        if e.scheduler != "pro":
            # Frontier records (rlws/wasp) measure other numerators;
            # Fig. 4 artifacts only carry PRO-over-baseline speedups.
            continue
        if e.kind == "geomean_speedup":
            measured = fig4_result.geomeans[e.over]
        elif e.kind == "gto_closest":
            measured = (fig4_result.geomeans["gto"]
                        - min(fig4_result.geomeans["tl"],
                              fig4_result.geomeans["lrr"]) - e.margin)
        elif e.kind == "kernel_speedup":
            if e.kernel not in fig4_result.speedups:
                continue
            measured = fig4_result.speedups[e.kernel][e.over]
        else:
            continue
        status, delta = e.shape.judge(measured)
        verdicts.append(Verdict(
            expectation_id=e.id, kind=e.kind, status=status,
            measured=measured, delta=delta, band=e.shape.describe(),
            anchor=e.anchor, paper_value=e.paper_value, numeric=False,
        ))
    return verdicts


def verdicts_for_stalls(stall_comparison,
                        expectations: Optional[Expectations] = None
                        ) -> List[Verdict]:
    """Judge a :class:`~repro.harness.experiments.StallComparison`
    against the Fig. 5 stall-ratio shape expectations."""
    expectations = expectations or load_expectations()
    verdicts = []
    for e in expectations:
        if e.kind != "stall_ratio_geomean" or e.shape is None:
            continue
        measured = stall_comparison.geomeans[e.over]["total"]
        status, delta = e.shape.judge(measured)
        verdicts.append(Verdict(
            expectation_id=e.id, kind=e.kind, status=status,
            measured=measured, delta=delta, band=e.shape.describe(),
            anchor=e.anchor, paper_value=e.paper_value, numeric=False,
        ))
    return verdicts
