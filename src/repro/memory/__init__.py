"""Memory hierarchy: coalescer, L1 caches with MSHRs, shared L2, DRAM.

The hierarchy is *timing-stateful but event-computed*: when a warp issues a
memory instruction the subsystem immediately computes the completion cycle
of every cache-line transaction from the current cache/MSHR/bank state and
returns the maximum. The SM schedules a scoreboard-release event at that
cycle. Because SMs are stepped in deterministic order, request arrival
order — and therefore every simulation — is fully reproducible.
"""

from .cache import Cache, CacheStats
from .coalescer import coalesce_addresses
from .dram import Dram, DramStats
from .mshr import Mshr
from .subsystem import AccessResult, MemorySubsystem

__all__ = [
    "AccessResult",
    "Cache",
    "CacheStats",
    "Dram",
    "DramStats",
    "MemorySubsystem",
    "Mshr",
    "coalesce_addresses",
]
