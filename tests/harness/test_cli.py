"""Tests for the pro-sim command-line interface."""

import pytest

from repro.harness.cli import EXPERIMENTS, build_parser, main


class TestParser:
    def test_all_experiments_are_choices(self):
        parser = build_parser()
        args = parser.parse_args(["table1"])
        assert args.experiment == "table1"

    def test_unknown_experiment_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["nope"])

    def test_options(self):
        args = build_parser().parse_args(
            ["fig4", "--sms", "2", "--scale", "0.5", "--out", "x.txt"]
        )
        assert args.sms == 2
        assert args.scale == 0.5
        assert args.out == "x.txt"

    def test_experiment_registry_complete(self):
        for name in ("table1", "table2", "fig1", "fig2", "fig4", "fig5",
                     "table3", "table4", "ablation-barrier",
                     "ablation-threshold"):
            assert name in EXPERIMENTS


class TestMain:
    def test_table1(self, capsys):
        assert main(["table1"]) == 0
        out = capsys.readouterr().out
        assert "Table I" in out

    def test_table2(self, capsys):
        assert main(["table2"]) == 0
        assert "scalarProdGPU" in capsys.readouterr().out

    def test_run_single_kernel(self, capsys):
        assert main(["run", "cenergy", "--sms", "2", "--scale", "0.1"]) == 0
        out = capsys.readouterr().out
        assert "cenergy" in out and "stall breakdown" in out

    def test_run_without_kernel_errors(self, capsys):
        assert main(["run"]) == 2

    def test_out_file(self, tmp_path, capsys):
        path = tmp_path / "report.txt"
        assert main(["table1", "--out", str(path)]) == 0
        assert "Table I" in path.read_text()

    def test_table4_small(self, capsys):
        assert main(["table4", "--sms", "2", "--scale", "0.2"]) == 0
        assert "Table IV" in capsys.readouterr().out

    def test_table4_custom_threshold(self, capsys):
        assert main(["table4", "--sms", "2", "--scale", "0.2",
                     "--threshold", "1000"]) == 0
        assert "Table IV" in capsys.readouterr().out

    def test_json_export(self, tmp_path, capsys):
        import json

        path = tmp_path / "fig2.json"
        assert main(["fig2", "--sms", "2", "--scale", "0.15",
                     "--json", str(path)]) == 0
        data = json.loads(path.read_text())
        assert set(data) >= {"kernel", "intervals", "cycles"}
        assert data["cycles"]["lrr"] > 0

    def test_json_export_table2(self, tmp_path, capsys):
        import json

        path = tmp_path / "t2.json"
        assert main(["table2", "--json", str(path)]) == 0
        data = json.loads(path.read_text())
        assert len(data["rows"]) == 25
