"""Zero-overhead guarantee: uninstrumented runs are bit-identical to the
pre-observability simulator.

``tests/golden/micro_cells.jsonl`` holds the full counter state of an
8-kernel x 4-scheduler micro matrix (2 SMs, scale 0.25) captured from the
simulator *before* the probe bus existed. Every cell re-simulated with
``probes=()`` must reproduce those counters exactly — any divergence means
instrumentation changed simulation behaviour, not just observed it.
"""

import json
from pathlib import Path

import pytest

from repro import GPUConfig
from repro.harness.runner import ResultCache
from repro.robustness.checkpoint import cell_key, result_to_json

GOLDEN = Path(__file__).resolve().parent.parent / "golden"
CFG = GPUConfig.scaled(2)
SCALE = 0.25


def _golden_cells():
    records = [json.loads(line)
               for line in (GOLDEN / "micro_cells.jsonl").read_text().splitlines()]
    return {(r["kernel"], r["scheduler"]): r for r in records}

_CELLS = _golden_cells()


@pytest.mark.parametrize(
    ("kernel", "scheduler"), sorted(_CELLS),
    ids=[f"{k}-{s}" for k, s in sorted(_CELLS)],
)
def test_plain_run_bit_identical_to_pre_probe_golden(kernel, scheduler):
    record = _CELLS[(kernel, scheduler)]
    # The key hashes the full config tree: a mismatch means the test setup
    # drifted from the one the golden was captured under, not a real diff.
    assert cell_key(kernel, scheduler, CFG, SCALE) == record["key"], (
        "config/scale drift — regenerate tests/golden/micro_cells.jsonl"
    )
    result = ResultCache().run(kernel, scheduler, CFG, SCALE)
    assert result_to_json(result) == record["result"]


def test_golden_matrix_covers_expected_shape():
    kernels = {k for k, _ in _CELLS}
    schedulers = {s for _, s in _CELLS}
    assert len(kernels) == 8
    assert schedulers == {"tl", "lrr", "gto", "pro"}
    assert len(_CELLS) == 32
