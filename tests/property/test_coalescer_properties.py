"""Property-based tests for coalescing and the address patterns."""

from hypothesis import given, settings, strategies as st

from repro.config import LINE_SIZE
from repro.isa.patterns import (
    AccessContext,
    Broadcast,
    Chase,
    Coalesced,
    Random,
    Strided,
)
from repro.memory.coalescer import coalesce_addresses

lane_addrs = st.lists(st.integers(min_value=0, max_value=1 << 30),
                      min_size=0, max_size=32)

ctxs = st.builds(
    AccessContext,
    tb_index=st.integers(0, 4096),
    warp_in_tb=st.integers(0, 63),
    iteration=st.integers(0, 256),
    active=st.integers(1, 32),
)

patterns = st.one_of(
    st.builds(Coalesced,
              base=st.integers(0, 1 << 20),
              iter_stride=st.integers(0, 4096),
              warp_region=st.integers(0, 1 << 16)),
    st.builds(Strided,
              base=st.integers(0, 1 << 20),
              stride=st.integers(1, 512)),
    st.builds(Random,
              footprint=st.integers(LINE_SIZE, 1 << 22),
              txns=st.integers(1, 32),
              seed=st.integers(0, 1 << 16)),
    st.builds(Chase,
              footprint=st.integers(LINE_SIZE, 1 << 22),
              seed=st.integers(0, 1 << 16)),
    st.builds(Broadcast, table_lines=st.integers(1, 64)),
)


class TestCoalescerProperties:
    @given(lane_addrs)
    @settings(max_examples=80)
    def test_output_aligned_and_distinct(self, addrs):
        lines = coalesce_addresses(addrs)
        assert all(l % LINE_SIZE == 0 for l in lines)
        assert len(lines) == len(set(lines))

    @given(lane_addrs)
    @settings(max_examples=80)
    def test_count_bounded_by_input(self, addrs):
        assert len(coalesce_addresses(addrs)) <= len(addrs)

    @given(lane_addrs)
    @settings(max_examples=80)
    def test_covers_every_input(self, addrs):
        lines = set(coalesce_addresses(addrs))
        for a in addrs:
            assert (a & ~(LINE_SIZE - 1)) in lines

    @given(lane_addrs)
    @settings(max_examples=50)
    def test_idempotent(self, addrs):
        once = coalesce_addresses(addrs)
        twice = coalesce_addresses(once)
        assert once == twice


class TestPatternProperties:
    @given(patterns, ctxs)
    @settings(max_examples=150)
    def test_lines_aligned_distinct_nonempty(self, pattern, ctx):
        lines = pattern.lines(ctx)
        assert len(lines) >= 1
        assert all(l >= 0 and l % LINE_SIZE == 0 for l in lines)
        assert len(lines) == len(set(lines))

    @given(patterns, ctxs)
    @settings(max_examples=100)
    def test_deterministic(self, pattern, ctx):
        assert pattern.lines(ctx) == pattern.lines(ctx)

    @given(patterns, ctxs)
    @settings(max_examples=100)
    def test_at_most_one_txn_per_lane(self, pattern, ctx):
        assert len(pattern.lines(ctx)) <= max(1, ctx.active)
